#!/usr/bin/env bash
# Serving-path benchmark: requests/sec and p50/p99 latency over a
# loopback TCP connection, for a small-shot mix (queue/framing overhead
# dominated) and a large-shot mix (sampling throughput dominated).
#
# Usage: tools/bench_service.sh [build-dir]
#
# Starts `symphase serve --listen 127.0.0.1:0`, drives it with
# `symphase sample --connect ... --repeat N` (one connection per mix,
# per-request wall times measured client-side around the full
# submit->last-frame round trip), and writes
# bench/results/BENCH_<stamp>-service.json. Honors SYMPHASE_BENCH_STAMP
# and the scalar-backend guard convention of run_benchmarks.sh
# (SYMPHASE_ALLOW_SCALAR_BENCH=1 to record scalar numbers anyway).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"
out_dir="$repo_root/bench/results"
stamp="${SYMPHASE_BENCH_STAMP:-$(date +%Y-%m-%d)}"
out_file="$out_dir/BENCH_${stamp}-service.json"
circuit="$repo_root/data/surface_d3_r3_noisy.stim"

small_shots=1000
small_requests=200
large_shots=2000000
large_requests=5
workers=2

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release -DSYMPHASE_NATIVE=ON >/dev/null
cmake --build "$build_dir" -j --target symphase_cli bench_noise >/dev/null

backend="$("$build_dir/bench_noise" --print-backend)"
if [[ "$backend" == "scalar" &&
      "${SYMPHASE_ALLOW_SCALAR_BENCH:-0}" != "1" ]]; then
  echo "error: native build landed on the scalar WideWord backend;" >&2
  echo "       numbers would not be comparable (set" >&2
  echo "       SYMPHASE_ALLOW_SCALAR_BENCH=1 to record anyway)." >&2
  exit 1
fi

mkdir -p "$out_dir"
tmp_dir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]]; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmp_dir"
}
trap cleanup EXIT

"$build_dir/symphase" serve --listen 127.0.0.1:0 --workers "$workers" \
  2>"$tmp_dir/serve.log" &
server_pid=$!
for _ in $(seq 100); do
  grep -q 'listening on' "$tmp_dir/serve.log" 2>/dev/null && break
  sleep 0.1
done
port="$(grep -oP 'listening on [0-9.]+:\K[0-9]+' "$tmp_dir/serve.log")"
[[ -n "$port" ]] || { echo "error: server never announced a port" >&2; exit 1; }

run_mix() {  # name shots requests
  local name=$1 shots=$2 requests=$3
  echo "mix '$name': $requests requests x $shots shots ..." >&2
  "$build_dir/symphase" sample "$circuit" --shots "$shots" --format b8 \
    --connect 127.0.0.1:"$port" --repeat "$requests" \
    > "$tmp_dir/$name.lat"
}

run_mix small "$small_shots" "$small_requests"
run_mix large "$large_shots" "$large_requests"

python3 - "$tmp_dir" "$out_file" "$stamp" "$backend" \
  "$small_shots" "$large_shots" "$workers" <<'EOF'
import json
import re
import sys

tmp_dir, out_file, stamp, backend, small_shots, large_shots, workers = \
    sys.argv[1:8]

def load(name, shots):
    ms = [float(m.group(1))
          for line in open(f"{tmp_dir}/{name}.lat")
          if (m := re.match(r"req_ms=([0-9.]+)", line))]
    ms.sort()
    q = lambda p: ms[min(len(ms) - 1, int(p * len(ms)))]
    total_s = sum(ms) / 1000.0
    return {
        "shots_per_request": int(shots),
        "requests": len(ms),
        "requests_per_sec": len(ms) / total_s if total_s else None,
        "p50_ms": q(0.50),
        "p90_ms": q(0.90),
        "p99_ms": q(0.99),
        "max_ms": ms[-1],
    }

result = {
    "date": stamp,
    "bench": "bench_service",
    "transport": "tcp-loopback",
    "wideword_backend": backend,
    "server_workers": int(workers),
    "circuit": "surface_d3_r3_noisy.stim",
    "note": ("client-measured full round trip (submit -> final frame) "
             "over one connection per mix; sequential requests, so "
             "requests_per_sec is single-stream serving throughput"),
    "mixes": {
        "small": load("small", small_shots),
        "large": load("large", large_shots),
    },
}
with open(out_file, "w") as f:
    json.dump(result, f, indent=1)
print(out_file)
EOF
