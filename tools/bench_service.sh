#!/usr/bin/env bash
# Serving-path benchmark: requests/sec and p50/p99 latency over a
# loopback TCP connection, for a small-shot mix (queue/framing overhead
# dominated) and a large-shot mix (sampling throughput dominated).
#
# Usage: tools/bench_service.sh [--http|--fusion|--trace] [build-dir]
#
# Starts `symphase serve --listen 127.0.0.1:0`, drives it with
# `symphase sample --connect ... --repeat N` (one connection per mix,
# per-request wall times measured client-side around the full
# submit->last-frame round trip), and writes
# bench/results/BENCH_<stamp>-service.json. Honors SYMPHASE_BENCH_STAMP
# and the scalar-backend guard convention of run_benchmarks.sh
# (SYMPHASE_ALLOW_SCALAR_BENCH=1 to record scalar numbers anyway).
#
# With --http, the server also opens the HTTP gateway and every mix
# runs twice — frame protocol and `POST /v1/sample` over one keep-alive
# connection (python3 stdlib http.client) — and the output becomes
# bench/results/BENCH_<stamp>-gateway.json with per-mix overhead
# ratios. Same server process for both transports, so the deltas are
# pure transport cost.
#
# With --fusion, the benchmark instead measures cross-request shot
# fusion: a client pipelines many concurrent same-circuit small-shot
# requests over one connection (`--repeat N --pipeline W`) against two
# server configurations — fusion disabled (`--fusion 1`) and the
# default fusion cap — and the output becomes
# bench/results/BENCH_<stamp>-fusion.json with the throughput ratio.
#
# With --trace, the benchmark measures the cost of request-lifecycle
# tracing: the small-shot mix runs against a server with tracing off
# (the default — instrumentation compiled in but gated behind one
# relaxed atomic load) and again with `--trace --trace-out`, and the
# output becomes bench/results/BENCH_<stamp>-trace.json with the
# enabled-overhead percentage plus per-stage p50/p95/p99 parsed from
# the captured Perfetto trace. The tracing-off numbers are directly
# comparable to the small mix in BENCH_<stamp>-service.json, which is
# how the "disabled tracing costs <1%" claim is checked across PRs.

set -euo pipefail

http_mode=0
fusion_mode=0
trace_mode=0
if [[ "${1:-}" == "--http" ]]; then
  http_mode=1
  shift
elif [[ "${1:-}" == "--fusion" ]]; then
  fusion_mode=1
  shift
elif [[ "${1:-}" == "--trace" ]]; then
  trace_mode=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"
out_dir="$repo_root/bench/results"
stamp="${SYMPHASE_BENCH_STAMP:-$(date +%Y-%m-%d)}"
if [[ "$http_mode" == 1 ]]; then
  out_file="$out_dir/BENCH_${stamp}-gateway.json"
elif [[ "$fusion_mode" == 1 ]]; then
  out_file="$out_dir/BENCH_${stamp}-fusion.json"
elif [[ "$trace_mode" == 1 ]]; then
  out_file="$out_dir/BENCH_${stamp}-trace.json"
else
  out_file="$out_dir/BENCH_${stamp}-service.json"
fi
circuit="$repo_root/data/surface_d3_r3_noisy.stim"

small_shots=1000
small_requests=200
large_shots=2000000
large_requests=5
workers=2

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release -DSYMPHASE_NATIVE=ON >/dev/null
cmake --build "$build_dir" -j --target symphase_cli bench_noise >/dev/null

backend="$("$build_dir/bench_noise" --print-backend)"
if [[ "$backend" == "scalar" &&
      "${SYMPHASE_ALLOW_SCALAR_BENCH:-0}" != "1" ]]; then
  echo "error: native build landed on the scalar WideWord backend;" >&2
  echo "       numbers would not be comparable (set" >&2
  echo "       SYMPHASE_ALLOW_SCALAR_BENCH=1 to record anyway)." >&2
  exit 1
fi

mkdir -p "$out_dir"
tmp_dir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]]; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmp_dir"
}
trap cleanup EXIT

if [[ "$fusion_mode" == 1 ]]; then
  fusion_shots=1000
  fusion_requests=400
  fusion_window=32  # must stay below the server queue capacity (64)

  run_pipelined() {  # name fusion_cap
    local name=$1 cap=$2
    "$build_dir/symphase" serve --listen 127.0.0.1:0 --workers "$workers" \
      --fusion "$cap" 2>"$tmp_dir/$name-serve.log" &
    server_pid=$!
    for _ in $(seq 100); do
      grep -q 'listening on' "$tmp_dir/$name-serve.log" 2>/dev/null && break
      sleep 0.1
    done
    local port
    port="$(grep -oP 'listening on [0-9.]+:\K[0-9]+' \
            "$tmp_dir/$name-serve.log")"
    [[ -n "$port" ]] || {
      echo "error: server never announced a port" >&2; exit 1; }
    echo "mix '$name': $fusion_requests requests x $fusion_shots shots," \
         "window $fusion_window, server fusion cap $cap ..." >&2
    "$build_dir/symphase" sample "$circuit" --shots "$fusion_shots" \
      --format b8 --connect 127.0.0.1:"$port" \
      --repeat "$fusion_requests" --pipeline "$fusion_window" \
      > "$tmp_dir/$name.lat"
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
  }

  run_pipelined solo 1
  run_pipelined fused 16

  python3 - "$tmp_dir" "$out_file" "$stamp" "$backend" \
    "$fusion_shots" "$fusion_window" "$workers" <<'EOF'
import json
import os
import re
import sys

tmp_dir, out_file, stamp, backend, shots, window, workers = sys.argv[1:8]

def load(name):
    ms = []
    rps = wall_ms = None
    for line in open(f"{tmp_dir}/{name}.lat"):
        if m := re.match(r"req_ms=([0-9.]+)", line):
            ms.append(float(m.group(1)))
        elif m := re.search(r"wall_ms=([0-9.]+) rps=([0-9.]+)", line):
            wall_ms, rps = float(m.group(1)), float(m.group(2))
    ms.sort()
    q = lambda p: ms[min(len(ms) - 1, int(p * len(ms)))]
    return {
        "shots_per_request": int(shots),
        "requests": len(ms),
        "pipeline_window": int(window),
        "wall_ms": wall_ms,
        "requests_per_sec": rps,
        "p50_ms": q(0.50),
        "p99_ms": q(0.99),
        "max_ms": ms[-1],
    }

solo = load("solo")
fused = load("fused")
result = {
    "date": stamp,
    "bench": "bench_service --fusion",
    "transport": "tcp-loopback",
    "wideword_backend": backend,
    "server_workers": int(workers),
    "circuit": "surface_d3_r3_noisy.stim",
    "note": ("one connection, requests pipelined with a client-side "
             "window so same-circuit requests overlap in the server "
             "queue; 'solo' runs against --fusion 1 (fusion disabled), "
             "'fused' against the default cap 16. requests_per_sec is "
             "wall-clock (submitted->all final frames); per-request "
             "latencies overlap under pipelining. On a single-core "
             "host the engine pass serializes with the client and the "
             "speedup is bounded by the per-pass overhead fusion "
             "amortizes; the structural win — one fused pass runs its "
             "members' single sub-8192-shot shards in parallel, which "
             "N solo passes over 1-shard requests never can — needs "
             "cores > workers to show up in throughput"),
    "host_cpus": os.cpu_count(),
    "mixes": {"solo": solo, "fused": fused},
    "fusion_speedup": round(
        fused["requests_per_sec"] / solo["requests_per_sec"], 3),
}
with open(out_file, "w") as f:
    json.dump(result, f, indent=1)
print(out_file)
print(f"solo {solo['requests_per_sec']:.1f} rps -> "
      f"fused {fused['requests_per_sec']:.1f} rps "
      f"({result['fusion_speedup']}x)")
EOF
  exit 0
fi

if [[ "$trace_mode" == 1 ]]; then
  trace_requests=1000  # more samples than the generic small mix: the
                       # effect being measured is a fraction of a
                       # 0.2 ms round trip, so p50 needs the depth
  run_trace_mix() {  # name server_binary [extra serve args...]
    local name=$1 server_bin=$2
    shift 2
    "$server_bin" serve --listen 127.0.0.1:0 --workers "$workers" \
      "$@" 2>"$tmp_dir/$name-serve.log" &
    server_pid=$!
    for _ in $(seq 100); do
      grep -q 'listening on' "$tmp_dir/$name-serve.log" 2>/dev/null && break
      sleep 0.1
    done
    local port
    port="$(grep -oP 'listening on [0-9.]+:\K[0-9]+' \
            "$tmp_dir/$name-serve.log")"
    [[ -n "$port" ]] || {
      echo "error: server never announced a port" >&2; exit 1; }
    echo "mix '$name': $trace_requests requests x $small_shots shots ..." >&2
    "$build_dir/symphase" sample "$circuit" --shots "$small_shots" \
      --format b8 --connect 127.0.0.1:"$port" --repeat "$trace_requests" \
      > "$tmp_dir/$name.lat"
    # Graceful drain: --trace-out is written after run() returns.
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
  }

  # SYMPHASE_TRACE_SEED_BIN, when set, names a `symphase` binary built
  # from a commit *without* the trace instrumentation; its mix becomes
  # the baseline for disabled_vs_seed_overhead_pct — the direct check
  # that compiled-in-but-disabled tracing is free. Same invocation,
  # back to back, so the comparison dodges cross-run container drift.
  if [[ -n "${SYMPHASE_TRACE_SEED_BIN:-}" ]]; then
    run_trace_mix seed "$SYMPHASE_TRACE_SEED_BIN"
  fi
  run_trace_mix off "$build_dir/symphase"
  run_trace_mix on "$build_dir/symphase" \
    --trace --trace-out "$tmp_dir/trace.json"
  [[ -s "$tmp_dir/trace.json" ]] || {
    echo "error: --trace-out produced no trace" >&2; exit 1; }

  python3 - "$tmp_dir" "$out_file" "$stamp" "$backend" \
    "$small_shots" "$workers" <<'EOF'
import json
import re
import sys

tmp_dir, out_file, stamp, backend, shots, workers = sys.argv[1:7]

def load(name):
    ms = [float(m.group(1))
          for line in open(f"{tmp_dir}/{name}.lat")
          if (m := re.match(r"req_ms=([0-9.]+)", line))]
    ms.sort()
    q = lambda p: ms[min(len(ms) - 1, int(p * len(ms)))]
    total_s = sum(ms) / 1000.0
    return {
        "shots_per_request": int(shots),
        "requests": len(ms),
        "requests_per_sec": len(ms) / total_s if total_s else None,
        "p50_ms": q(0.50),
        "p90_ms": q(0.90),
        "p99_ms": q(0.99),
        "max_ms": ms[-1],
    }

off = load("off")
on = load("on")
import os
seed = load("seed") if os.path.exists(f"{tmp_dir}/seed.lat") else None

# Per-stage latency breakdown from the Perfetto trace the "on" server
# dumped at shutdown. Chrome trace-event durations are microseconds.
trace = json.load(open(f"{tmp_dir}/trace.json"))
stage_us = {}
for event in trace["traceEvents"]:
    if event.get("ph") == "X":
        stage_us.setdefault(event["name"], []).append(float(event["dur"]))
stages = {}
for name in ("queue", "compile", "execute", "emit", "fill"):
    durs = sorted(stage_us.get(name, []))
    if not durs:
        continue
    q = lambda p: durs[min(len(durs) - 1, int(p * len(durs)))] / 1000.0
    stages[name] = {
        "spans": len(durs),
        "p50_ms": round(q(0.50), 4),
        "p95_ms": round(q(0.95), 4),
        "p99_ms": round(q(0.99), 4),
    }

result = {
    "date": stamp,
    "bench": "bench_service --trace",
    "transport": "tcp-loopback",
    "wideword_backend": backend,
    "server_workers": int(workers),
    "circuit": "surface_d3_r3_noisy.stim",
    "note": ("small mix against the same binary with tracing off "
             "(default; span recording gated on one relaxed atomic "
             "load) and on (--trace --trace-out). "
             "trace_enabled_overhead_pct compares enabled-vs-off p50; "
             "the off numbers are comparable to the small mix in "
             "BENCH_<stamp>-service.json, so disabled-instrumentation "
             "cost shows up as drift between those two files. stages "
             "are parsed from the captured Perfetto trace (span "
             "durations, microseconds in the file)"),
    "mixes": {"tracing_off": off, "tracing_on": on},
    "trace_enabled_overhead_pct": round(
        (on["p50_ms"] / off["p50_ms"] - 1.0) * 100.0, 2),
    **({"seed_mix": seed,
        "disabled_vs_seed_overhead_pct": round(
            (off["p50_ms"] / seed["p50_ms"] - 1.0) * 100.0, 2)}
       if seed else {}),
    "trace_events": len(trace["traceEvents"]),
    "trace_dropped_events": trace["otherData"]["dropped_events"],
    "stages": stages,
}
with open(out_file, "w") as f:
    json.dump(result, f, indent=1)
print(out_file)
if seed:
    print(f"seed p50 {seed['p50_ms']:.3f} ms -> disabled p50 "
          f"{off['p50_ms']:.3f} ms "
          f"({result['disabled_vs_seed_overhead_pct']:+.2f}%)")
print(f"tracing off p50 {off['p50_ms']:.3f} ms -> on p50 "
      f"{on['p50_ms']:.3f} ms "
      f"({result['trace_enabled_overhead_pct']:+.2f}%), "
      f"{result['trace_events']} events, "
      f"{result['trace_dropped_events']} dropped")
EOF
  exit 0
fi

serve_args=(--listen 127.0.0.1:0 --workers "$workers")
if [[ "$http_mode" == 1 ]]; then
  serve_args+=(--http 127.0.0.1:0 --http-port-file "$tmp_dir/http.port")
fi
"$build_dir/symphase" serve "${serve_args[@]}" 2>"$tmp_dir/serve.log" &
server_pid=$!
for _ in $(seq 100); do
  grep -q 'listening on' "$tmp_dir/serve.log" 2>/dev/null && break
  sleep 0.1
done
port="$(grep -oP 'listening on [0-9.]+:\K[0-9]+' "$tmp_dir/serve.log")"
[[ -n "$port" ]] || { echo "error: server never announced a port" >&2; exit 1; }
if [[ "$http_mode" == 1 ]]; then
  for _ in $(seq 100); do
    [[ -s "$tmp_dir/http.port" ]] && break
    sleep 0.1
  done
  http_port="$(cat "$tmp_dir/http.port")"
  [[ -n "$http_port" ]] || { echo "error: no HTTP port" >&2; exit 1; }
fi

run_mix() {  # name shots requests
  local name=$1 shots=$2 requests=$3
  echo "mix '$name': $requests requests x $shots shots ..." >&2
  "$build_dir/symphase" sample "$circuit" --shots "$shots" --format b8 \
    --connect 127.0.0.1:"$port" --repeat "$requests" \
    > "$tmp_dir/$name.lat"
}

run_http_mix() {  # name shots requests
  local name=$1 shots=$2 requests=$3
  echo "mix '$name' (http): $requests requests x $shots shots ..." >&2
  python3 - "$http_port" "$circuit" "$shots" "$requests" \
    > "$tmp_dir/$name-http.lat" <<'EOF'
import http.client
import json
import sys
import time

port, circuit_path, shots, requests = (
    int(sys.argv[1]), sys.argv[2], int(sys.argv[3]), int(sys.argv[4]))
circuit = open(circuit_path).read()
conn = http.client.HTTPConnection("127.0.0.1", port)
for i in range(requests):
    body = json.dumps(
        {"circuit": circuit, "shots": shots, "seed": i + 1, "format": "b8"})
    start = time.perf_counter()
    conn.request("POST", "/v1/sample", body,
                 {"Content-Type": "application/json"})
    response = conn.getresponse()
    payload = response.read()  # drains the chunked stream
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    assert response.status == 200, (response.status, payload[:200])
    # b8 is ceil(bits/8) bytes per shot; just pin shape, not width.
    assert payload and len(payload) % shots == 0, (len(payload), shots)
    print(f"req_ms={elapsed_ms:.3f}")
conn.close()
EOF
}

run_mix small "$small_shots" "$small_requests"
run_mix large "$large_shots" "$large_requests"
if [[ "$http_mode" == 1 ]]; then
  run_http_mix small "$small_shots" "$small_requests"
  run_http_mix large "$large_shots" "$large_requests"
fi

python3 - "$tmp_dir" "$out_file" "$stamp" "$backend" \
  "$small_shots" "$large_shots" "$workers" "$http_mode" <<'EOF'
import json
import re
import sys

(tmp_dir, out_file, stamp, backend, small_shots, large_shots, workers,
 http_mode) = sys.argv[1:9]

def load(name, shots):
    ms = [float(m.group(1))
          for line in open(f"{tmp_dir}/{name}.lat")
          if (m := re.match(r"req_ms=([0-9.]+)", line))]
    ms.sort()
    q = lambda p: ms[min(len(ms) - 1, int(p * len(ms)))]
    total_s = sum(ms) / 1000.0
    return {
        "shots_per_request": int(shots),
        "requests": len(ms),
        "requests_per_sec": len(ms) / total_s if total_s else None,
        "p50_ms": q(0.50),
        "p90_ms": q(0.90),
        "p99_ms": q(0.99),
        "max_ms": ms[-1],
    }

if http_mode == "1":
    mixes = {}
    for name, shots in (("small", small_shots), ("large", large_shots)):
        frame = load(name, shots)
        http = load(f"{name}-http", shots)
        mixes[name] = {
            "frame": frame,
            "http": http,
            "http_overhead_p50": round(http["p50_ms"] / frame["p50_ms"], 3),
            "http_overhead_ms_p50": round(
                http["p50_ms"] - frame["p50_ms"], 3),
        }
    result = {
        "date": stamp,
        "bench": "bench_service --http",
        "transport": "tcp-loopback (frame protocol vs HTTP/1.1 gateway)",
        "wideword_backend": backend,
        "server_workers": int(workers),
        "circuit": "surface_d3_r3_noisy.stim",
        "note": ("same server process, sequential requests on one "
                 "connection per transport per mix; http is POST "
                 "/v1/sample with inline circuit JSON, chunked b8 "
                 "response drained fully. Overhead = JSON translation + "
                 "HTTP framing; the large mix shows it amortizing to "
                 "noise against sampling time"),
        "mixes": mixes,
    }
else:
    result = {
        "date": stamp,
        "bench": "bench_service",
        "transport": "tcp-loopback",
        "wideword_backend": backend,
        "server_workers": int(workers),
        "circuit": "surface_d3_r3_noisy.stim",
        "note": ("client-measured full round trip (submit -> final frame) "
                 "over one connection per mix; sequential requests, so "
                 "requests_per_sec is single-stream serving throughput"),
        "mixes": {
            "small": load("small", small_shots),
            "large": load("large", large_shots),
        },
    }
with open(out_file, "w") as f:
    json.dump(result, f, indent=1)
print(out_file)
EOF
