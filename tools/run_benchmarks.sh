#!/usr/bin/env bash
# Builds the Release+native benchmark targets and records the perf
# trajectory: runs bench_layouts / bench_matmul / bench_qec and merges
# their outputs into bench/results/BENCH_<date>.json.
#
# Usage: tools/run_benchmarks.sh [build-dir]
#
# bench_layouts and bench_matmul are google-benchmark binaries (JSON
# native); bench_qec prints a throughput table, captured verbatim under
# the "bench_qec" key. Pass SYMPHASE_BENCH_FAST=1 for the quick sizes.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"
out_dir="$repo_root/bench/results"
stamp="$(date +%Y-%m-%d)"
out_file="$out_dir/BENCH_${stamp}.json"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release -DSYMPHASE_NATIVE=ON >/dev/null
cmake --build "$build_dir" -j \
  --target bench_layouts bench_matmul bench_qec >/dev/null

mkdir -p "$out_dir"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

"$build_dir/bench_layouts" \
  --benchmark_out="$tmp_dir/layouts.json" --benchmark_out_format=json \
  >/dev/null
"$build_dir/bench_matmul" \
  --benchmark_out="$tmp_dir/matmul.json" --benchmark_out_format=json \
  >/dev/null

qec_args=()
if [[ "${SYMPHASE_BENCH_FAST:-0}" == "1" ]]; then
  qec_args+=(--fast)
fi
"$build_dir/bench_qec" "${qec_args[@]}" >"$tmp_dir/qec.txt"

python3 - "$tmp_dir" "$out_file" "$stamp" <<'EOF'
import json
import sys

tmp_dir, out_file, stamp = sys.argv[1:4]
merged = {
    "date": stamp,
    "bench_layouts": json.load(open(f"{tmp_dir}/layouts.json")),
    "bench_matmul": json.load(open(f"{tmp_dir}/matmul.json")),
    "bench_qec": open(f"{tmp_dir}/qec.txt").read().splitlines(),
}
with open(out_file, "w") as f:
    json.dump(merged, f, indent=1)
print(out_file)
EOF
