#!/usr/bin/env bash
# Builds the Release+native benchmark targets and records the perf
# trajectory: runs bench_layouts / bench_matmul / bench_qec /
# bench_noise and merges their outputs into
# bench/results/BENCH_<date>.json.
#
# Usage: tools/run_benchmarks.sh [build-dir]
#
# bench_layouts, bench_matmul, and bench_noise are google-benchmark
# binaries (JSON native); bench_qec prints a throughput table, captured
# verbatim under the "bench_qec" key. Pass SYMPHASE_BENCH_FAST=1 for the
# quick sizes.
#
# The build requests -DSYMPHASE_NATIVE=ON; if the WideWord layer still
# lands on the scalar backend (e.g. the host lacks AVX2) the numbers are
# not comparable to the checked-in trajectory, so the script fails
# loudly. Set SYMPHASE_ALLOW_SCALAR_BENCH=1 to record a scalar machine's
# numbers anyway.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-bench}"
out_dir="$repo_root/bench/results"
stamp="${SYMPHASE_BENCH_STAMP:-$(date +%Y-%m-%d)}"
out_file="$out_dir/BENCH_${stamp}.json"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release -DSYMPHASE_NATIVE=ON >/dev/null
cmake --build "$build_dir" -j \
  --target bench_layouts bench_matmul bench_qec bench_noise >/dev/null

backend="$("$build_dir/bench_noise" --print-backend)"
if [[ "$backend" == "scalar" &&
      "${SYMPHASE_ALLOW_SCALAR_BENCH:-0}" != "1" ]]; then
  echo "error: SYMPHASE_NATIVE=ON was requested but the build compiled" >&2
  echo "       the scalar WideWord backend (no AVX2/AVX-512 on this" >&2
  echo "       host?). Benchmark numbers would not be comparable to the" >&2
  echo "       checked-in trajectory. Set SYMPHASE_ALLOW_SCALAR_BENCH=1" >&2
  echo "       to record them anyway." >&2
  exit 1
fi

mkdir -p "$out_dir"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

"$build_dir/bench_layouts" \
  --benchmark_out="$tmp_dir/layouts.json" --benchmark_out_format=json \
  >/dev/null
"$build_dir/bench_matmul" \
  --benchmark_out="$tmp_dir/matmul.json" --benchmark_out_format=json \
  >/dev/null
"$build_dir/bench_noise" \
  --benchmark_out="$tmp_dir/noise.json" --benchmark_out_format=json \
  >/dev/null

qec_args=()
if [[ "${SYMPHASE_BENCH_FAST:-0}" == "1" ]]; then
  qec_args+=(--fast)
fi
"$build_dir/bench_qec" "${qec_args[@]}" >"$tmp_dir/qec.txt"

# bench/results/noise_baseline.json is a frozen snapshot of bench_noise
# against the pre-engine scalar noise path; embedding it keeps the
# before/after comparison inside the day's trajectory file.
python3 - "$tmp_dir" "$out_file" "$stamp" "$out_dir" "$backend" <<'EOF'
import json
import os
import sys

tmp_dir, out_file, stamp, out_dir, backend = sys.argv[1:6]
merged = {
    "date": stamp,
    "wideword_backend": backend,
    "bench_layouts": json.load(open(f"{tmp_dir}/layouts.json")),
    "bench_matmul": json.load(open(f"{tmp_dir}/matmul.json")),
    "bench_noise": json.load(open(f"{tmp_dir}/noise.json")),
    "bench_qec": open(f"{tmp_dir}/qec.txt").read().splitlines(),
}
baseline = os.path.join(out_dir, "noise_baseline.json")
if os.path.exists(baseline):
    merged["bench_noise_baseline"] = json.load(open(baseline))
with open(out_file, "w") as f:
    json.dump(merged, f, indent=1)
print(out_file)
EOF
