// symphase — command-line front end to the library.
//
//   symphase sample  CIRCUIT [--shots N] [--seed S]    sample measurements
//   symphase detect  CIRCUIT [--shots N] [--seed S]    sample detectors (+ observables)
//   symphase analyze CIRCUIT [--max-expr K]            stats + symbolic expressions
//   symphase dem     CIRCUIT                           detector error model
//   symphase gen     FAMILY [options]                  emit a circuit (text format)
//   symphase serve   --stdio [--workers N]             framed sampling service loop
//   symphase serve   --listen H:P [--http H:P]         TCP server (+ HTTP gateway)
//   symphase stats   HOST:PORT [--json]                service counters snapshot
//   symphase health  HOST:PORT [--json]                readiness probe (exit 1 draining)
//
// CIRCUIT is a file in the Stim-style text format, or "-" for stdin.
// Samples print shot-major: one line of 0/1 per shot. `sample`/`detect`
// run through the SimulatorSession streaming API (src/api/), so output
// is produced shard-by-shard: peak memory is bounded by the shard size
// and thread count, not by --shots. `gen` families:
//   surface    --distance D --rounds R --p-data P --p-gate P --p-meas P
//   steane     --rounds R --p-data P --p-meas P
//   repetition --distance D --rounds R --p-data P --p-gate P --p-meas P
//   layered    --qubits N --layers L --cnot-pairs C --p-depolarize P
//
// Exit codes: 0 success, 1 runtime error, 2 usage error. Remote mode
// (--connect) distinguishes its failures so scripts can react: 3 the
// connection could not be established (even after --retries), 4 the
// server rejected the request (error frame; non-retryable, or retries
// exhausted), 5 the per-request --timeout-ms expired.

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "circuit/surface_code.hpp"
#include "common/trace.hpp"
#include "core/symphase.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "sampler/sample_writer.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace {

using namespace symphase;

[[noreturn]] void usage(const std::string& detail = {}) {
  if (!detail.empty()) {
    std::cerr << "error: " << detail << "\n\n";
  }
  std::cerr <<
      "usage:\n"
      "  symphase sample  CIRCUIT [--shots N] [--seed S] [--threads N]\n"
      "                   [--format 01|hex|b8|ptb64] [--backend symphase|frames]\n"
      "                   [--connect HOST:PORT [--priority high|normal|low]\n"
      "                   [--deadline-ms N] [--repeat N] [--pipeline W]\n"
      "                   [--retries N] [--retry-backoff-ms N] [--timeout-ms N]]\n"
      "  symphase detect  CIRCUIT [--shots N] [--seed S] [--threads N]\n"
      "                   [--format 01|hex|b8|ptb64|dets] [--backend symphase|frames]\n"
      "                   [--connect HOST:PORT [--priority high|normal|low]\n"
      "                   [--deadline-ms N] [--repeat N] [--pipeline W]\n"
      "                   [--retries N] [--retry-backoff-ms N] [--timeout-ms N]]\n"
      "  symphase analyze CIRCUIT [--max-expr K]\n"
      "  symphase dem     CIRCUIT\n"
      "  symphase gen     surface|repetition|steane|layered [options]\n"
      "  symphase health  HOST:PORT [--json]   (readiness probe of a\n"
      "                   serving instance: state=accepting|draining plus\n"
      "                   queue pressure; exit 1 when draining — a k8s\n"
      "                   readiness probe — and 3 when unreachable)\n"
      "  symphase stats   HOST:PORT [--json]   (service counters snapshot;\n"
      "                   --json prints one JSON object for tooling)\n"
      "  symphase serve   --stdio [--workers N] [--queue N] [--cache N]\n"
      "                   [--max-frame BYTES] [--fusion N] [--rate-shots N]\n"
      "                   [--burst-shots N] [--max-shots N]\n"
      "                   [--exec-timeout-ms N] [--stall-warn-ms N]\n"
      "                   [--slow-request-ms N] [--trace] [--trace-out PATH]\n"
      "                   (framed requests\n"
      "                   on stdin, framed responses on stdout; see\n"
      "                   docs/service.md)\n"
      "  symphase serve   --listen HOST:PORT [--workers N] [--queue N]\n"
      "                   [--cache N] [--max-frame BYTES] [--fusion N]\n"
      "                   [--max-clients N]\n"
      "                   [--rate-shots N] [--burst-shots N] [--max-shots N]\n"
      "                   [--exec-timeout-ms N] [--stall-warn-ms N]\n"
      "                   [--slow-request-ms N] [--trace] [--trace-out PATH]\n"
      "                   [--idle-timeout-ms N]\n"
      "                   [--port-file PATH]\n"
      "                   [--http HOST:PORT [--http-port-file PATH] [--log-json]]\n"
      "                   (multi-client TCP server on the same frames;\n"
      "                   port 0 picks a free port, announced on stderr and\n"
      "                   written to --port-file; SIGTERM drains gracefully,\n"
      "                   a second SIGTERM or SIGINT stops immediately;\n"
      "                   --exec-timeout-ms caps per-request execution\n"
      "                   wall-clock, --stall-warn-ms logs no-progress runs,\n"
      "                   --slow-request-ms logs a per-stage breakdown of\n"
      "                   slow requests, --trace records lifecycle spans\n"
      "                   (GET /v1/trace), --trace-out dumps them at exit,\n"
      "                   --idle-timeout-ms closes idle frame connections;\n"
      "                   --http adds the HTTP/JSON gateway with /metrics —\n"
      "                   see docs/gateway.md and docs/observability.md)\n"
      "\n"
      "remote exit codes: 3 connection failed, 4 rejected by server,\n"
      "5 timed out (see docs/service.md)\n";
  std::exit(2);
}

/// Trivial --key value option parser. Keys listed in `flags` are
/// value-less booleans (--json, --log-json): present = "1".
class Options {
 public:
  Options(int argc, char** argv, int first,
          const std::set<std::string>& flags = {}) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        usage("unexpected argument '" + key + "'");
      }
      if (flags.contains(key.substr(2))) {
        values_[key.substr(2)] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        usage("missing value for " + key);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  /// True when a boolean flag (see the constructor) was given.
  bool get_flag(const std::string& key) {
    consumed_.insert(key);
    return values_.contains(key);
  }

  /// Called after the command consumed its options; rejects leftovers.
  void finish() const {
    for (const auto& [key, value] : values_) {
      if (!consumed_.contains(key)) {
        usage("unknown option --" + key);
      }
    }
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    // Malformed numbers are usage errors (exit 2), not runtime errors:
    // std::stoull throws std::invalid_argument/std::out_of_range, and a
    // partial parse like "12x" is rejected explicitly. A leading minus
    // must be rejected too — stoull would silently wrap "-1" to 2^64-1.
    try {
      if (it->second.find_first_not_of("0123456789") != std::string::npos) {
        usage("invalid integer for --" + key + ": '" + it->second + "'");
      }
      std::size_t pos = 0;
      const std::uint64_t value = std::stoull(it->second, &pos);
      if (pos != it->second.size()) {
        usage("invalid integer for --" + key + ": '" + it->second + "'");
      }
      return value;
    } catch (const std::invalid_argument&) {
      usage("invalid integer for --" + key + ": '" + it->second + "'");
    } catch (const std::out_of_range&) {
      usage("integer out of range for --" + key + ": '" + it->second + "'");
    }
  }

  std::string get_string(const std::string& key, std::string fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? std::move(fallback) : it->second;
  }

  /// Presence check without consuming — for flags that are only valid
  /// in combination with another flag.
  bool has(const std::string& key) const { return values_.contains(key); }

  double get_double(const std::string& key, double fallback) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    try {
      std::size_t pos = 0;
      const double value = std::stod(it->second, &pos);
      if (pos != it->second.size()) {
        usage("invalid number for --" + key + ": '" + it->second + "'");
      }
      return value;
    } catch (const std::invalid_argument&) {
      usage("invalid number for --" + key + ": '" + it->second + "'");
    } catch (const std::out_of_range&) {
      usage("number out of range for --" + key + ": '" + it->second + "'");
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

Circuit load_circuit(const std::string& path) {
  if (path == "-") {
    std::ostringstream oss;
    oss << std::cin.rdbuf();
    return parse_circuit(oss.str());
  }
  return parse_circuit_file(path);
}

/// Raw circuit text for remote submission (the server parses it).
std::string load_circuit_text(const std::string& path) {
  std::ostringstream oss;
  if (path == "-") {
    oss << std::cin.rdbuf();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      throw std::runtime_error("cannot read circuit file '" + path + "'");
    }
    oss << in.rdbuf();
  }
  return oss.str();
}

SampleBackend backend_from_name(const std::string& name) {
  if (name == "symphase") {
    return SampleBackend::kSymPhase;
  }
  if (name == "frames") {
    return SampleBackend::kFrameSimulator;
  }
  usage("unknown backend '" + name + "' (symphase|frames)");
}

/// Shared option handling for the sampling subcommands: every knob of a
/// SampleTask is surfaced as a flag.
SampleTask task_from_options(SampleTarget target, Options& opt) {
  SampleTask task;
  task.target = target;
  task.shots = opt.get_u64("shots", 1024);
  task.seed = opt.get_u64("seed", 0);
  task.num_threads = opt.get_u64("threads", 0);
  task.backend = backend_from_name(opt.get_string("backend", "symphase"));
  return task;
}

/// Flags that only mean something with --connect must fail *before*
/// the local sampling run, not via the post-run finish() sweep — a
/// forgotten --connect would otherwise sample for minutes and then
/// exit 2.
void reject_remote_only_flags(const Options& opt) {
  for (const char* flag : {"priority", "deadline-ms", "repeat", "pipeline",
                           "retries", "retry-backoff-ms", "timeout-ms"}) {
    if (opt.has(flag)) {
      usage(std::string("--") + flag + " requires --connect HOST:PORT");
    }
  }
}

/// Exit code for a failed remote run (documented in usage()).
int remote_exit_code(ResilientClient::FailureKind failure) {
  switch (failure) {
    case ResilientClient::FailureKind::kConnect:
      return 3;
    case ResilientClient::FailureKind::kRejected:
      return 4;
    case ResilientClient::FailureKind::kTimeout:
      return 5;
    default:
      return 1;
  }
}

/// `sample`/`detect` over the TCP transport: ship the request, stream
/// the response chunks to stdout as they arrive. The single-request
/// path runs through ResilientClient, so --retries / --retry-backoff-ms
/// / --timeout-ms survive connection loss, retryable rejections
/// (queue_full, rate_limited, draining), and stalled servers. With
/// --repeat > 1 the circuit is registered once, the request repeats
/// over the single connection by digest, data is discarded, and one
/// per-request latency line prints instead — the measurement mode
/// behind tools/bench_service.sh (latency numbers must not hide
/// retries, so the resilience flags are rejected there).
int run_remote(const std::string& address, const std::string& path,
               RequestVerb verb, const SampleTask& task, SampleFormat format,
               Options& opt) {
  SampleRequest request;
  request.verb = verb;
  request.task = task;
  request.format = format;
  request.priority = priority_from_name(opt.get_string("priority", "normal"));
  request.deadline_ms = opt.get_u64("deadline-ms", 0);
  const std::uint64_t repeat =
      std::max<std::uint64_t>(1, opt.get_u64("repeat", 1));
  const std::uint64_t pipeline = opt.get_u64("pipeline", 0);
  if (pipeline > 0 && repeat <= 1) {
    usage("--pipeline W requires --repeat N");
  }
  RetryPolicy policy;
  policy.max_retries = opt.get_u64("retries", 0);
  policy.initial_backoff_ms =
      std::max<std::uint64_t>(1, opt.get_u64("retry-backoff-ms", 100));
  policy.max_backoff_ms =
      std::max<std::uint64_t>(policy.initial_backoff_ms, 5000);
  policy.request_timeout_ms = opt.get_u64("timeout-ms", 0);
  const std::string circuit_text = load_circuit_text(path);

  if (repeat > 1) {
    for (const char* flag : {"retries", "retry-backoff-ms", "timeout-ms"}) {
      if (opt.has(flag)) {
        usage(std::string("--") + flag +
              " does not combine with --repeat (latency mode measures "
              "single attempts)");
      }
    }
    std::unique_ptr<ServiceClient> client;
    try {
      client = std::make_unique<ServiceClient>(address);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 3;
    }
    request.digest = client->register_circuit(circuit_text);
    if (pipeline > 0) {
      // Pipelined latency mode: keep up to `pipeline` requests
      // outstanding on the one connection (each with its own seed, like
      // distinct clients would send), awaiting completions in submit
      // order. This measures server-side throughput under concurrent
      // same-circuit load — the scenario cross-request shot fusion
      // accelerates — instead of single-stream round-trip latency.
      const std::uint64_t window = std::min(pipeline, repeat);
      std::vector<std::chrono::steady_clock::time_point> started(repeat + 1);
      const auto wall_start = std::chrono::steady_clock::now();
      std::uint64_t next_submit = 1;
      const auto submit_next = [&] {
        request.task.seed = task.seed + next_submit;
        started[next_submit] = std::chrono::steady_clock::now();
        client->submit(next_submit, request);
        ++next_submit;
      };
      while (next_submit <= window) {
        submit_next();
      }
      for (std::uint64_t i = 1; i <= repeat; ++i) {
        const MessageAssembler::Message reply = client->await(i);
        const auto elapsed = std::chrono::steady_clock::now() - started[i];
        if (reply.error) {
          std::cerr << "error: " << reply.error_text << '\n';
          return 4;
        }
        std::printf(
            "req_ms=%.3f bytes=%zu\n",
            std::chrono::duration<double, std::milli>(elapsed).count(),
            reply.payload.size());
        if (next_submit <= repeat) {
          submit_next();
        }
      }
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - wall_start)
                                 .count();
      std::printf("pipeline_requests=%llu wall_ms=%.3f rps=%.1f\n",
                  static_cast<unsigned long long>(repeat), wall_ms,
                  wall_ms > 0.0 ? 1000.0 * static_cast<double>(repeat) / wall_ms
                                : 0.0);
      return 0;
    }
    for (std::uint64_t i = 1; i <= repeat; ++i) {
      const auto start = std::chrono::steady_clock::now();
      client->submit(i, request);
      const MessageAssembler::Message reply = client->await(i);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (reply.error) {
        std::cerr << "error: " << reply.error_text << '\n';
        return 4;
      }
      std::printf(
          "req_ms=%.3f bytes=%zu\n",
          std::chrono::duration<double, std::milli>(elapsed).count(),
          reply.payload.size());
    }
    return 0;
  }

  request.circuit_text = circuit_text;
  ResilientClient client(address, policy);
  const ResilientClient::Result result =
      client.run(request, [](std::string_view bytes) {
        std::cout.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size()));
      });
  if (result.ok) {
    std::cout.flush();
    return 0;
  }
  std::cerr << "error: " << result.detail;
  if (result.attempts > 1) {
    std::cerr << " (after " << result.attempts << " attempts)";
  }
  std::cerr << '\n';
  return remote_exit_code(result.failure);
}

int cmd_sample(const std::string& path, Options& opt) {
  const SampleTask task =
      task_from_options(SampleTarget::kMeasurements, opt);
  const SampleFormat format =
      sample_format_from_name(opt.get_string("format", "01"));
  if (format == SampleFormat::kDets) {
    usage("dets format is for `symphase detect`");
  }
  const std::string connect = opt.get_string("connect", "");
  if (!connect.empty()) {
    return run_remote(connect, path, RequestVerb::kSample, task, format, opt);
  }
  reject_remote_only_flags(opt);
  const SimulatorSession session(load_circuit(path));
  WriterSink sink(std::cout, format);
  session.run(task, sink);
  return 0;
}

int cmd_detect(const std::string& path, Options& opt) {
  const SampleTask task =
      task_from_options(SampleTarget::kDetectionEvents, opt);
  const SampleFormat format =
      sample_format_from_name(opt.get_string("format", "dets"));
  const std::string connect = opt.get_string("connect", "");
  if (!connect.empty()) {
    return run_remote(connect, path, RequestVerb::kDetect, task, format, opt);
  }
  reject_remote_only_flags(opt);
  const SimulatorSession session(load_circuit(path));
  if (session.num_detectors() == 0 && session.num_observables() == 0) {
    std::cerr << "error: circuit declares no detectors or observables; "
                 "use `symphase sample`\n";
    return 1;
  }
  // The detection record streams detectors first, observables after;
  // WriterSink picks the D/L split up from the stream metadata.
  WriterSink sink(std::cout, format);
  session.run(task, sink);
  return 0;
}

int cmd_analyze(const std::string& path, Options& opt) {
  const auto max_expr = opt.get_u64("max-expr", 32);
  const Circuit circuit = load_circuit(path);
  const CircuitStats stats = circuit.stats();
  const CompiledSampler sampler = CompiledSampler::compile(circuit);
  std::cout << "qubits:        " << stats.num_qubits << '\n'
            << "gates:         " << stats.num_gates << '\n'
            << "measurements:  " << stats.num_measurements << '\n'
            << "fault sites:   " << stats.num_noise_sites << '\n'
            << "detectors:     " << sampler.num_detectors() << '\n'
            << "observables:   " << sampler.num_observables() << '\n'
            << "symbols:       " << sampler.num_symbols() << '\n'
            << "expression nnz:" << ' ' << sampler.expression_nnz() << '\n';
  const std::size_t shown =
      std::min<std::size_t>(max_expr, sampler.num_measurements());
  for (std::size_t k = 0; k < shown; ++k) {
    std::cout << "m" << k << " = "
              << expression_to_string(sampler.expressions()[k])
              << (sampler.expressions()[k].was_random ? "   (coin)" : "")
              << '\n';
  }
  if (shown < sampler.num_measurements()) {
    std::cout << "... (" << sampler.num_measurements() - shown
              << " more; raise --max-expr)\n";
  }
  return 0;
}

int cmd_dem(const std::string& path, Options& opt) {
  (void)opt;
  const Circuit circuit = load_circuit(path);
  const CompiledSampler sampler = CompiledSampler::compile(circuit);
  std::cout << sampler.error_model().to_text();
  return 0;
}

/// The framed stdio service loop. Frames arrive on stdin (possibly
/// split across reads), complete request messages are parsed and fed to
/// the SamplingService, and response frames go to stdout — interleaved
/// across in-flight requests, serialized per frame by a write mutex.
/// Protocol errors on stdin (bad framing) end the session with exit 1
/// after an error frame for request 0; per-request errors (bad
/// directive, parse failure, unknown digest) only fail that request.
int cmd_serve(Options& opt) {
  ServiceOptions service_options;
  service_options.num_workers =
      std::max<std::uint64_t>(1, opt.get_u64("workers", 2));
  service_options.queue_capacity =
      std::max<std::uint64_t>(1, opt.get_u64("queue", 64));
  service_options.session_cache_capacity =
      std::max<std::uint64_t>(1, opt.get_u64("cache", 8));
  service_options.max_frame_payload = std::clamp<std::uint64_t>(
      opt.get_u64("max-frame", 1u << 20), 1, 0xffffffffu);
  service_options.fusion_cap = opt.get_u64("fusion", 16);
  service_options.admission.client_shots_per_second =
      opt.get_u64("rate-shots", 0);
  service_options.admission.client_burst_shots = opt.get_u64("burst-shots", 0);
  service_options.admission.max_shots_in_flight = opt.get_u64("max-shots", 0);
  service_options.exec_timeout_ms = opt.get_u64("exec-timeout-ms", 0);
  service_options.stall_warn_ms = opt.get_u64("stall-warn-ms", 0);
  service_options.slow_request_ms = opt.get_u64("slow-request-ms", 0);
  const std::string trace_out = opt.get_string("trace-out", "");
  if (opt.get_flag("trace") || !trace_out.empty()) {
    trace::set_enabled(true);
  }
  opt.finish();

  SamplingService service(service_options);
  std::mutex out_mutex;
  // request_ids with a response stream still open, mapped to their
  // scheduler tickets (0 until submit() hands one back) so `cancel
  // id=N` can reach them. A request may reuse an id its previous
  // message completed with, but concurrent reuse would interleave two
  // chunk sequences under one id and poison the client's assembler —
  // it is rejected as a protocol error below.
  std::mutex inflight_mutex;
  std::map<std::uint64_t, std::uint64_t> inflight;
  const FrameFn emit = [&](const FrameHeader& header,
                           std::string_view payload) {
    {
      const std::lock_guard<std::mutex> lock(out_mutex);
      write_frame(std::cout, header, payload);
      std::cout.flush();
    }
    if ((header.flags & kFrameLast) != 0) {
      const std::lock_guard<std::mutex> lock(inflight_mutex);
      inflight.erase(header.request_id);
    }
  };
  const auto emit_error = [&emit](std::uint64_t request_id,
                                  const ServiceError& error) {
    FrameHeader header;
    header.request_id = request_id;
    header.flags = kFrameLast | kFrameError;
    emit(header, encode_error_payload(error));
  };
  // Claims `id` for a response stream; false = already streaming.
  const auto claim = [&](std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(inflight_mutex);
    return inflight.emplace(id, 0).second;
  };
  // Records id's ticket — unless the request already finished (its
  // final frame may race submit()'s return and erase the entry first).
  const auto record_ticket = [&](std::uint64_t id, std::uint64_t ticket) {
    const std::lock_guard<std::mutex> lock(inflight_mutex);
    const auto it = inflight.find(id);
    if (it != inflight.end()) {
      it->second = ticket;
    }
  };
  const auto ticket_of = [&](std::uint64_t id) -> std::uint64_t {
    const std::lock_guard<std::mutex> lock(inflight_mutex);
    const auto it = inflight.find(id);
    return it == inflight.end() ? 0 : it->second;
  };

  // Raising --max-frame also raises the inbound allowance (it never
  // shrinks below the decoder default, so big inline circuits keep
  // working with the small response-chunk default).
  FrameDecoder decoder(
      std::max<std::size_t>(service_options.max_frame_payload,
                            kDefaultMaxFramePayload));
  MessageAssembler assembler;
  std::vector<char> buffer(1 << 16);
  std::string protocol_error;
  while (protocol_error.empty()) {
    // POSIX read: returns as soon as *any* bytes are available, so an
    // interactive client gets its response without having to fill a
    // buffer or close stdin first (istream::read would block for the
    // full buffer).
    const ssize_t got = ::read(STDIN_FILENO, buffer.data(), buffer.size());
    if (got < 0 && errno == EINTR) {
      continue;
    }
    if (got <= 0) {
      break;
    }
    decoder.feed({buffer.data(), static_cast<std::size_t>(got)});
    Frame frame;
    while (protocol_error.empty() && decoder.next(frame)) {
      const auto message = assembler.accept(frame);
      if (!message) {
        continue;
      }
      if (message->request_id == 0) {
        // 0 is reserved for session-level error frames, so a response
        // under it could collide with one; refuse it per-request.
        emit_error(0, make_error(ErrorCode::kBadCircuit,
                                 "request_id 0 is reserved for "
                                 "session-level errors"));
        continue;
      }
      if (!claim(message->request_id)) {
        std::ostringstream oss;
        oss << "request id " << message->request_id
            << " reused while still in flight";
        protocol_error = oss.str();
        break;
      }
      if (message->error) {
        emit_error(message->request_id,
                   make_error(ErrorCode::kBadCircuit,
                              "client sent an error frame"));
        continue;
      }
      try {
        SampleRequest request = parse_request_payload(message->payload);
        switch (request.verb) {
          case RequestVerb::kRegister: {
            const std::string digest =
                service.register_circuit(request.circuit_text);
            FrameHeader header;
            header.request_id = message->request_id;
            header.flags = kFrameLast;
            emit(header, "digest=" + digest + "\n");
            break;
          }
          case RequestVerb::kStats: {
            // Quiesce first so the reply reflects every request that was
            // submitted before this one on the stream.
            service.drain();
            FrameHeader header;
            header.request_id = message->request_id;
            header.flags = kFrameLast;
            const ServiceStats stats = service.stats();
            emit(header, request.stats_json ? stats.to_json() : stats.to_line());
            break;
          }
          case RequestVerb::kHealth: {
            // A point-in-time snapshot — deliberately no drain() here;
            // health must answer while the queue is busy.
            FrameHeader header;
            header.request_id = message->request_id;
            header.flags = kFrameLast;
            const ServiceHealth health = service.health();
            emit(header,
                 request.stats_json ? health.to_json() : health.to_line());
            break;
          }
          case RequestVerb::kCancel: {
            // The cancel message has its own id (claimed above); the
            // target is request.cancel_id within this session.
            const std::uint64_t ticket = ticket_of(request.cancel_id);
            if (ticket != 0 && service.cancel(ticket)) {
              FrameHeader header;
              header.request_id = message->request_id;
              header.flags = kFrameLast;
              emit(header, "cancelled\n");
            } else {
              std::ostringstream oss;
              oss << "request " << request.cancel_id
                  << " is not in flight on this session";
              emit_error(message->request_id,
                         make_error(ErrorCode::kBadCircuit, oss.str()));
            }
            break;
          }
          case RequestVerb::kSample:
          case RequestVerb::kDetect: {
            const std::uint64_t id = message->request_id;
            // All stdio requests share client id 0 for admission — one
            // pipe, one client. A rejection returns ticket 0 and emits
            // no frames, so ship the structured error here.
            ServiceError rejection;
            const std::uint64_t ticket =
                service.submit(id, std::move(request), emit, 0, &rejection,
                               /*transport=*/"frame");
            if (ticket == 0) {
              emit_error(id, rejection);
              break;
            }
            record_ticket(id, ticket);
            break;
          }
        }
      } catch (const std::invalid_argument& e) {
        emit_error(message->request_id,
                   make_error(ErrorCode::kBadCircuit, e.what()));
      } catch (const std::exception& e) {
        emit_error(message->request_id,
                   make_error(ErrorCode::kInternal, e.what()));
      }
    }
    if (decoder.failed() || assembler.failed()) {
      break;
    }
  }
  service.drain();
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::trunc);
    out << trace::drain_json();
  }
  if (!protocol_error.empty()) {
    emit_error(0, make_error(ErrorCode::kBadCircuit,
                             "protocol error: " + protocol_error));
    std::cerr << "error: protocol error: " << protocol_error << '\n';
    return 1;
  }
  if (decoder.failed() || assembler.failed() || !decoder.finish()) {
    const std::string reason = decoder.failed()
                                   ? decoder.error()
                                   : assembler.failed() ? assembler.error()
                                                        : decoder.error();
    emit_error(0, make_error(ErrorCode::kBadCircuit,
                             "protocol error: " + reason));
    std::cerr << "error: protocol error: " << reason << '\n';
    return 1;
  }
  if (assembler.open_messages() > 0) {
    std::ostringstream oss;
    oss << "protocol error: stream ended with " << assembler.open_messages()
        << " incomplete request(s)";
    emit_error(0, make_error(ErrorCode::kBadCircuit, oss.str()));
    std::cerr << "error: " << oss.str() << '\n';
    return 1;
  }
  return 0;
}

/// Signal targets for `serve --listen`. Everything the handlers touch
/// is async-signal-safe: SocketServer::drain()/shutdown() are an atomic
/// store plus a self-pipe write, and the escalation latch is a
/// lock-free atomic flag.
///
/// SIGTERM asks for a graceful drain — stop accepting, reject new work
/// with `draining`, finish and flush what is in flight, exit 0. A
/// second SIGTERM (or SIGINT at any point) escalates to the immediate
/// clean shutdown, for operators who cannot wait out long requests.
SocketServer* g_listen_server = nullptr;
std::atomic<bool> g_drain_requested{false};

extern "C" void handle_term_signal(int) {
  if (g_listen_server == nullptr) {
    return;
  }
  if (g_drain_requested.exchange(true)) {
    g_listen_server->shutdown();
  } else {
    g_listen_server->drain();
  }
}

extern "C" void handle_int_signal(int) {
  if (g_listen_server != nullptr) {
    g_listen_server->shutdown();
  }
}

/// The TCP transport: same service, same frames, many clients. Blocks
/// in the event loop until SIGTERM (drain) or SIGINT (stop).
int cmd_serve_listen(const std::string& address, Options& opt) {
  SocketServerOptions options;
  options.listen = address;
  options.service.num_workers =
      std::max<std::uint64_t>(1, opt.get_u64("workers", 2));
  options.service.queue_capacity =
      std::max<std::uint64_t>(1, opt.get_u64("queue", 64));
  options.service.session_cache_capacity =
      std::max<std::uint64_t>(1, opt.get_u64("cache", 8));
  options.service.max_frame_payload = std::clamp<std::uint64_t>(
      opt.get_u64("max-frame", 1u << 20), 1, 0xffffffffu);
  options.service.fusion_cap = opt.get_u64("fusion", 16);
  options.service.admission.client_shots_per_second =
      opt.get_u64("rate-shots", 0);
  options.service.admission.client_burst_shots = opt.get_u64("burst-shots", 0);
  options.service.admission.max_shots_in_flight = opt.get_u64("max-shots", 0);
  options.service.exec_timeout_ms = opt.get_u64("exec-timeout-ms", 0);
  options.service.stall_warn_ms = opt.get_u64("stall-warn-ms", 0);
  options.service.slow_request_ms = opt.get_u64("slow-request-ms", 0);
  const std::string trace_out = opt.get_string("trace-out", "");
  if (opt.get_flag("trace") || !trace_out.empty()) {
    trace::set_enabled(true);
  }
  options.idle_timeout_ms = opt.get_u64("idle-timeout-ms", 0);
  options.max_connections =
      std::max<std::uint64_t>(1, opt.get_u64("max-clients", 64));
  const std::string port_file = opt.get_string("port-file", "");
  options.http_listen = opt.get_string("http", "");
  options.http.log_json = opt.get_flag("log-json");
  const std::string http_port_file = opt.get_string("http-port-file", "");
  if (options.http_listen.empty() &&
      (!http_port_file.empty() || options.http.log_json)) {
    usage("--http-port-file/--log-json require --http HOST:PORT");
  }
  opt.finish();

  // A bind failure throws out of the constructor into main()'s handler:
  // one clean "error: cannot listen on HOST:PORT: ..." line, exit 1,
  // and no "listening" announcement or port file was produced.
  const std::string http_listen = options.http_listen;
  SocketServer server(std::move(options));
  g_listen_server = &server;
  g_drain_requested.store(false);
  std::signal(SIGINT, handle_int_signal);
  std::signal(SIGTERM, handle_term_signal);

  // Announce the bound address — with port 0 this is where the chosen
  // port becomes known. --port-file is the machine-readable version:
  // written (then flushed) only after the bind succeeded, so a reader
  // that sees the file can connect immediately.
  const HostPort at = parse_host_port(address);
  std::cerr << "listening on " << (at.host.empty() ? "0.0.0.0" : at.host)
            << ":" << server.port() << std::endl;
  if (server.http_port() != 0) {
    const HostPort http_at = parse_host_port(http_listen);
    std::cerr << "http on " << (http_at.host.empty() ? "0.0.0.0" : http_at.host)
              << ":" << server.http_port() << std::endl;
  }
  const auto write_port_file = [&](const std::string& path,
                                   std::uint16_t port) {
    if (path.empty()) {
      return;
    }
    std::ofstream out(path, std::ios::trunc);
    out << port << '\n';
    out.flush();
    if (!out.good()) {
      g_listen_server = nullptr;
      throw std::runtime_error("cannot write port file '" + path + "'");
    }
  };
  write_port_file(port_file, server.port());
  write_port_file(http_port_file, server.http_port());
  const bool clean = server.run();
  g_listen_server = nullptr;
  if (!trace_out.empty()) {
    // Whatever /v1/trace did not already drain, written at shutdown —
    // the Perfetto-loadable record of the server's whole life.
    std::ofstream out(trace_out, std::ios::trunc);
    out << trace::drain_json();
  }
  return clean ? 0 : 1;
}

/// Readiness probe: prints the server's health line (or JSON object
/// with --json) and exits 0 only when the server is accepting. A
/// reachable-but-draining server exits 1 — `symphase health` is
/// directly usable as a k8s readiness probe, which must fail during a
/// graceful drain so traffic stops routing before the pod dies. An
/// unreachable server exits 3 (same code as a failed --connect).
int cmd_health(const std::string& address, Options& opt) {
  const bool json = opt.get_flag("json");
  opt.finish();
  try {
    ServiceClient client(address);
    const std::string reply = client.health(json);
    std::cout << reply;
    const bool draining = json ? reply.find("\"state\":\"draining\"") !=
                                     std::string::npos
                               : reply.find("state=draining") !=
                                     std::string::npos;
    return draining ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}

/// Service counters snapshot; --json prints the machine-readable
/// rendering (one JSON object) for dashboards and scripts.
int cmd_stats(const std::string& address, Options& opt) {
  const bool json = opt.get_flag("json");
  opt.finish();
  try {
    ServiceClient client(address);
    std::cout << client.stats(json);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 3;
  }
}

int cmd_gen(const std::string& family, Options& opt) {
  if (family == "surface") {
    SurfaceCodeOptions sc;
    sc.distance = opt.get_u64("distance", 3);
    sc.rounds = opt.get_u64("rounds", 3);
    sc.data_depolarization = opt.get_double("p-data", 0.0);
    sc.gate_depolarization = opt.get_double("p-gate", 0.0);
    sc.measurement_flip_probability = opt.get_double("p-meas", 0.0);
    std::cout << surface_code_memory(sc).to_text();
    return 0;
  }
  if (family == "repetition") {
    RepetitionCodeOptions rc;
    rc.distance = opt.get_u64("distance", 3);
    rc.rounds = opt.get_u64("rounds", 3);
    rc.data_error_probability = opt.get_double("p-data", 0.0);
    rc.gate_error_probability = opt.get_double("p-gate", 0.0);
    rc.measurement_error_probability = opt.get_double("p-meas", 0.0);
    std::cout << repetition_code_memory(rc).to_text();
    return 0;
  }
  if (family == "steane") {
    SteaneCodeOptions st;
    st.rounds = opt.get_u64("rounds", 3);
    st.data_error_probability = opt.get_double("p-data", 0.0);
    st.measurement_error_probability = opt.get_double("p-meas", 0.0);
    std::cout << steane_code_memory(st).to_text();
    return 0;
  }
  if (family == "layered") {
    LayeredRandomCircuitOptions lc;
    lc.num_qubits = opt.get_u64("qubits", 100);
    lc.num_layers = opt.get_u64("layers", lc.num_qubits);
    lc.cnot_pairs_per_layer = opt.get_u64("cnot-pairs", 5);
    lc.depolarize_probability = opt.get_double("p-depolarize", 0.0);
    Rng rng(opt.get_u64("seed", 2024));
    std::cout << layered_random_circuit(lc, rng).to_text();
    return 0;
  }
  usage("unknown family '" + family + "'");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
  }
  const std::string command = argv[1];
  const std::string target = argv[2];
  try {
    if (command == "serve") {
      int code = 2;
      if (target == "--stdio") {
        Options opt(argc, argv, 3, {"trace"});
        code = cmd_serve(opt);
        opt.finish();
      } else if (target == "--listen") {
        if (argc < 4) {
          usage("serve --listen needs HOST:PORT");
        }
        Options opt(argc, argv, 4, {"log-json", "trace"});
        code = cmd_serve_listen(argv[3], opt);
        opt.finish();
      } else {
        usage("serve requires --stdio or --listen HOST:PORT");
      }
      return code;
    }
    Options opt(argc, argv, 3,
                command == "health" || command == "stats"
                    ? std::set<std::string>{"json"}
                    : std::set<std::string>{});
    int code = 2;
    if (command == "sample") {
      code = cmd_sample(target, opt);
    } else if (command == "detect") {
      code = cmd_detect(target, opt);
    } else if (command == "analyze") {
      code = cmd_analyze(target, opt);
    } else if (command == "dem") {
      code = cmd_dem(target, opt);
    } else if (command == "gen") {
      code = cmd_gen(target, opt);
    } else if (command == "health") {
      code = cmd_health(target, opt);
    } else if (command == "stats") {
      code = cmd_stats(target, opt);
    } else {
      usage("unknown command '" + command + "'");
    }
    opt.finish();
    return code;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
