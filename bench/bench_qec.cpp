// QEC-workload benchmark: detector sampling on surface-code memory
// circuits. Compiled expressions stay shallow here (sparse circuits, the
// paper's §5 remark about LDPC codes), so Algorithm 1's sampling is
// O(n_smp·n_m) — but syndrome-extraction circuits are measurement-heavy
// (n_g ≈ 4·n_m), so the frame baseline's O(n_smp·n_g) is only a small
// constant factor above SymPhase's bound, and which sampler wins comes
// down to constants (B-matrix generation vs frame propagation). Contrast
// with bench_fig3*/bench_table1_scaling, where n_g >> n_m and SymPhase
// wins decisively. Both behaviours are the complexity model of Table 1.

#include <cstdio>

#include "bench_common.hpp"
#include "circuit/surface_code.hpp"

int main(int argc, char** argv) {
  using namespace symphase;
  using namespace symphase::bench;

  const GridOptions opt = parse_grid(argc, argv,
                                     /*standard=*/{3, 5, 7, 9, 11},
                                     /*paper=*/{3, 5, 7, 9, 11, 13, 15},
                                     /*fast=*/{3, 5});

  std::printf("# Surface-code memory, rounds = distance, depolarizing data "
              "noise p=0.003, measurement flips p=0.002\n");
  std::printf("# samples per point: %zu\n", opt.samples);
  std::printf("%4s %8s %8s %10s %10s %14s %14s %16s %16s %9s\n", "d",
              "qubits", "gates", "meas", "dets", "init_sym[s]",
              "init_frame[s]", "detsmp_sym[s]", "detsmp_frame[s]",
              "speedup");

  for (const std::size_t d : opt.sizes) {
    SurfaceCodeOptions sc;
    sc.distance = d;
    sc.rounds = d;
    sc.data_depolarization = 0.003;
    sc.measurement_flip_probability = 0.002;
    const Circuit circuit = surface_code_memory(sc);
    const CircuitStats stats = circuit.stats();

    Timer t;
    const CompiledSampler sym = CompiledSampler::compile(circuit);
    const double init_sym = t.seconds();

    t.restart();
    const FrameSimulator frame(circuit, opt.seed + 1);
    const double init_frame = t.seconds();

    t.restart();
    const auto se = sym.sample_detection_events(opt.samples, opt.seed + 2);
    const double sample_sym = t.seconds();

    t.restart();
    const auto fe = frame.sample_detection_events(opt.samples, opt.seed + 3);
    const double sample_frame = t.seconds();

    std::printf("%4zu %8zu %8zu %10zu %10zu %14.4f %14.4f %16.4f %16.4f "
                "%8.2fx\n",
                d, stats.num_qubits, stats.num_gates, stats.num_measurements,
                sym.num_detectors(), init_sym, init_frame, sample_sym,
                sample_frame, sample_frame / sample_sym);
    std::fflush(stdout);
    if (se.detectors.count_ones() + fe.detectors.count_ones() == 0xDEADBEEF) {
      std::printf("# impossible\n");
    }
  }
  return 0;
}
