// Data-layout ablation for paper §4 / Fig. 2: row-major (chp.c),
// column-major with whole-matrix transposition (Stim-style), and the
// paper's 512x512 blocked layout with local tile transposition.
//
// Measures, per layout:
//   - gate throughput (pure column operations),
//   - mode-switch (transpose) cost,
//   - measurement throughput (row operations after a mode switch),
//   - end-to-end concrete simulation of a layered random circuit, and
//   - end-to-end SymPhase compilation of a noisy layered circuit.

#include <benchmark/benchmark.h>

#include "circuit/generators.hpp"
#include "symbolic/symphase_compiler.hpp"
#include "tableau/stabilizer_simulator.hpp"

namespace {

using namespace symphase;

template <typename Layout>
void BM_GateLayer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Layout t(n, 1);
  t.prepare_column_mode();
  std::size_t q = 0;
  for (auto _ : state) {
    // One "layer": H + S on every qubit, CNOT chain.
    for (std::size_t i = 0; i < n; ++i) {
      t.gate_h(i);
      t.gate_s(i);
    }
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      t.gate_cnot(i, i + 1);
    }
    benchmark::DoNotOptimize(q += t.x_bit(0, 0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n + n / 2));
}

/// The layered-circuit access pattern in miniature: a burst of gates
/// (column ops) followed by entering measurement (row) mode. For the
/// Stim-style layout every alternation transposes the whole live matrix;
/// for the blocked layout only the tile-columns the gates touched flip.
template <typename Layout>
void BM_GateMeasureAlternation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Layout t(n, 1);
  for (auto _ : state) {
    t.prepare_column_mode();
    t.gate_h(0);
    t.gate_cnot(0, n / 2);
    t.prepare_row_mode();
    benchmark::DoNotOptimize(t.x_bit(0, 0));
  }
}

template <typename Layout>
void BM_MeasurementBurst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    StabilizerSimulator<Layout> sim(n, 7);
    for (std::size_t i = 0; i < n; ++i) {
      sim.apply_unitary(GateType::H, static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      sim.apply_unitary(GateType::CNOT, static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(i + 1));
    }
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          sim.measure(static_cast<std::uint32_t>(i)).outcome);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

template <typename Layout>
void BM_LayeredCircuitSimulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = n;
  opt.num_layers = n;
  opt.cnot_pairs_per_layer = 5;
  Rng rng(11);
  const Circuit circuit = layered_random_circuit(opt, rng);
  for (auto _ : state) {
    StabilizerSimulator<Layout> sim(n, 13);
    sim.run_circuit(circuit);
    benchmark::DoNotOptimize(sim.record().size());
  }
}

template <typename Layout>
void BM_SymPhaseCompile(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = n;
  opt.num_layers = n;
  opt.cnot_pairs_per_layer = 5;
  opt.depolarize_probability = 0.001;
  Rng rng(17);
  const Circuit circuit = layered_random_circuit(opt, rng);
  for (auto _ : state) {
    SymPhaseCompiler<Layout> compiler(circuit);
    benchmark::DoNotOptimize(compiler.expression_nnz());
  }
}

}  // namespace

BENCHMARK_TEMPLATE(BM_GateLayer, RowMajorTableau)->Arg(256)->Arg(1024);
BENCHMARK_TEMPLATE(BM_GateLayer, ColMajorTableau)->Arg(256)->Arg(1024);
BENCHMARK_TEMPLATE(BM_GateLayer, BlockedTableau)->Arg(256)->Arg(1024);

BENCHMARK_TEMPLATE(BM_GateMeasureAlternation, RowMajorTableau)
    ->Arg(256)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_GateMeasureAlternation, ColMajorTableau)
    ->Arg(256)
    ->Arg(1024);
BENCHMARK_TEMPLATE(BM_GateMeasureAlternation, BlockedTableau)
    ->Arg(256)
    ->Arg(1024);

BENCHMARK_TEMPLATE(BM_MeasurementBurst, RowMajorTableau)->Arg(256);
BENCHMARK_TEMPLATE(BM_MeasurementBurst, ColMajorTableau)->Arg(256);
BENCHMARK_TEMPLATE(BM_MeasurementBurst, BlockedTableau)->Arg(256);

BENCHMARK_TEMPLATE(BM_LayeredCircuitSimulation, RowMajorTableau)->Arg(128);
BENCHMARK_TEMPLATE(BM_LayeredCircuitSimulation, ColMajorTableau)->Arg(128);
BENCHMARK_TEMPLATE(BM_LayeredCircuitSimulation, BlockedTableau)->Arg(128);

BENCHMARK_TEMPLATE(BM_SymPhaseCompile, RowMajorTableau)->Arg(96);
BENCHMARK_TEMPLATE(BM_SymPhaseCompile, ColMajorTableau)->Arg(96);
BENCHMARK_TEMPLATE(BM_SymPhaseCompile, BlockedTableau)->Arg(96);

BENCHMARK_MAIN();
