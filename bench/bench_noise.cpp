// Noise-generation microbenchmarks: biased-bit fills across the
// probability range (sparse geometric-skip regime through dense
// mid-range), uniform fills as the throughput ceiling, and end-to-end
// frame sampling of DEPOLARIZE1/2-heavy circuits plus the noisy
// surface-code memory workload. These pin the cost of the noise engine
// behind every noisy sampler path; run via tools/run_benchmarks.sh and
// compare against the checked-in bench/results JSON.
//
// `--print-backend` prints the compiled WideWord backend and exits; the
// benchmark script uses it to fail loudly when a native build silently
// fell back to the scalar backend.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/surface_code.hpp"
#include "common/rng.hpp"
#include "common/simd_word.hpp"
#include "sampler/frame_simulator.hpp"

namespace {

using namespace symphase;

// Indexed by benchmark arg 0; spans both geometric-skip and refinement
// regimes plus the inverted (p > 1/2) band.
constexpr double kProbs[] = {1e-4, 1e-3, 0.01, 0.1, 0.3, 0.5, 0.7, 0.999};

void BM_FillBiased(benchmark::State& state) {
  const double p = kProbs[state.range(0)];
  const auto words = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint64_t> buf(words);
  Rng rng(42);
  for (auto _ : state) {
    fill_biased_words(rng, buf.data(), words, p);
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words * sizeof(Word)));
  state.SetLabel("p=" + std::to_string(p));
}

void BM_FillRandom(benchmark::State& state) {
  const auto words = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> buf(words);
  Rng rng(43);
  for (auto _ : state) {
    fill_random_words(rng, buf.data(), words);
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words * sizeof(Word)));
}

/// n-qubit circuit dominated by single-qubit depolarizing noise: layers
/// of H + DEPOLARIZE1 on every qubit, all qubits measured at the end.
Circuit depolarize1_heavy_circuit(std::size_t n, std::size_t layers,
                                  double p) {
  Circuit c(n);
  std::vector<std::uint32_t> all;
  for (std::uint32_t q = 0; q < n; ++q) {
    all.push_back(q);
  }
  for (std::size_t l = 0; l < layers; ++l) {
    c.append(GateType::H, all, 0.0);
    c.append(GateType::DEPOLARIZE1, all, p);
  }
  c.append(GateType::M, all, 0.0);
  return c;
}

/// n-qubit circuit dominated by two-qubit depolarizing noise: layers of
/// a CNOT chain with DEPOLARIZE2 after every pair.
Circuit depolarize2_heavy_circuit(std::size_t n, std::size_t layers,
                                  double p) {
  Circuit c(n);
  std::vector<std::uint32_t> pairs;
  for (std::uint32_t q = 0; q + 1 < n; q += 2) {
    pairs.push_back(q);
    pairs.push_back(q + 1);
  }
  std::vector<std::uint32_t> all;
  for (std::uint32_t q = 0; q < n; ++q) {
    all.push_back(q);
  }
  for (std::size_t l = 0; l < layers; ++l) {
    c.append(GateType::CNOT, pairs, 0.0);
    c.append(GateType::DEPOLARIZE2, pairs, p);
  }
  c.append(GateType::M, all, 0.0);
  return c;
}

void run_frame_sampling(benchmark::State& state, const Circuit& circuit,
                        std::size_t shots) {
  const FrameSimulator sim(circuit, 7);
  for (auto _ : state) {
    const BitMatrix out = sim.sample(shots, 11, 1);
    benchmark::DoNotOptimize(out.count_ones());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shots));
}

void BM_FrameDepolarize1(benchmark::State& state) {
  const double p = kProbs[state.range(0)];
  run_frame_sampling(state, depolarize1_heavy_circuit(64, 16, p), 1 << 15);
  state.SetLabel("p=" + std::to_string(p));
}

void BM_FrameDepolarize2(benchmark::State& state) {
  const double p = kProbs[state.range(0)];
  run_frame_sampling(state, depolarize2_heavy_circuit(64, 16, p), 1 << 15);
  state.SetLabel("p=" + std::to_string(p));
}

void BM_FrameXError(benchmark::State& state) {
  const double p = kProbs[state.range(0)];
  Circuit c(64);
  std::vector<std::uint32_t> all;
  for (std::uint32_t q = 0; q < 64; ++q) {
    all.push_back(q);
  }
  for (std::size_t l = 0; l < 16; ++l) {
    c.append(GateType::H, all, 0.0);
    c.append(GateType::X_ERROR, all, p);
  }
  c.append(GateType::M, all, 0.0);
  run_frame_sampling(state, c, 1 << 15);
  state.SetLabel("p=" + std::to_string(p));
}

void BM_SurfaceCodeNoisy(benchmark::State& state) {
  SurfaceCodeOptions opt;
  opt.distance = static_cast<std::size_t>(state.range(0));
  opt.rounds = opt.distance;
  opt.data_depolarization = 0.001;
  opt.gate_depolarization = 0.001;
  opt.measurement_flip_probability = 0.001;
  run_frame_sampling(state, surface_code_memory(opt), 1 << 14);
}

}  // namespace

BENCHMARK(BM_FillBiased)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7}, {128, 4096}});
BENCHMARK(BM_FillRandom)->Arg(128)->Arg(4096);
BENCHMARK(BM_FrameXError)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_FrameDepolarize1)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_FrameDepolarize2)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_SurfaceCodeNoisy)->Arg(3)->Arg(5);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--print-backend") == 0) {
      std::printf("%s\n", SYMPHASE_WIDEWORD_BACKEND);
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
