// Reproduces paper Fig. 3a: layered random interaction circuits with 5
// CNOT pairs per layer (n qubits, n layers, 5% of qubits measured each
// layer, full final measurement; no noise). Reports sampler
// initialization time and the time to generate 10,000 samples for
// SymPhase (Algorithm 1) vs the Pauli-frame baseline (Stim's algorithm).

#include "bench_common.hpp"

#include "circuit/generators.hpp"

int main(int argc, char** argv) {
  using namespace symphase;
  using namespace symphase::bench;

  const GridOptions opt = parse_grid(
      argc, argv,
      /*standard=*/{50, 100, 200, 300, 400, 500},
      /*paper=*/{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
      /*fast=*/{32, 64});

  print_figure_header(
      "Fig. 3a: layered random circuits, 5 CNOT pairs/layer, no noise",
      opt.samples);
  for (const std::size_t n : opt.sizes) {
    LayeredRandomCircuitOptions circuit_opt;
    circuit_opt.num_qubits = n;
    circuit_opt.num_layers = n;
    circuit_opt.cnot_pairs_per_layer = 5;
    circuit_opt.measure_fraction = 0.05;
    Rng rng(opt.seed + n);
    const Circuit circuit = layered_random_circuit(circuit_opt, rng);
    print_figure_row(run_figure_point(circuit, n, opt.samples, opt.seed));
  }
  return 0;
}
