// Ablation for paper §3.2.3 / §5: the Sampling step as F2 matrix
// multiplication. Compares the dense product against the sparse
// XOR-accumulation SymPhase.jl ships, across expression densities, plus
// the bit-transpose kernels the layouts rely on.

#include <benchmark/benchmark.h>

#include "bitvec/bit_matrix.hpp"
#include "bitvec/sparse_bit_matrix.hpp"
#include "bitvec/transpose.hpp"
#include "common/rng.hpp"

namespace {

using namespace symphase;

BitMatrix random_density(std::size_t rows, std::size_t cols,
                         double density, Rng& rng) {
  BitMatrix m(rows, cols);
  const auto target = static_cast<std::size_t>(
      density * static_cast<double>(rows * cols));
  for (std::size_t k = 0; k < target; ++k) {
    m.set(rng.next_below(rows), rng.next_below(cols), true);
  }
  return m;
}

/// Dense M (n_m x n_s) times B (n_s x n_smp); density in per-mille.
void BM_DenseMultiply(benchmark::State& state) {
  Rng rng(1);
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const BitMatrix m = random_density(1024, 4096, density, rng);
  const BitMatrix b = BitMatrix::random(4096, 10000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.multiply(b).count_ones());
  }
}

void BM_SparseMultiply(benchmark::State& state) {
  Rng rng(1);
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const BitMatrix dense = random_density(1024, 4096, density, rng);
  const SparseBitMatrix m = SparseBitMatrix::from_dense(dense);
  const BitMatrix b = BitMatrix::random(4096, 10000, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.multiply(b).count_ones());
  }
}

void BM_Transpose64(benchmark::State& state) {
  Rng rng(2);
  std::uint64_t block[64];
  for (auto& w : block) {
    w = rng.next_word();
  }
  for (auto _ : state) {
    transpose_64x64(block);
    benchmark::DoNotOptimize(block[0]);
  }
}

void BM_FullBitMatrixTranspose(benchmark::State& state) {
  Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const BitMatrix m = BitMatrix::random(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.transposed().count_ones());
  }
}

void BM_InplaceBlockTranspose512(benchmark::State& state) {
  Rng rng(4);
  AlignedWordVec tile(512 * 8);
  for (auto& w : tile) {
    w = rng.next_word();
  }
  for (auto _ : state) {
    transpose_bit_matrix_inplace(tile.data(), 8);
    benchmark::DoNotOptimize(tile[0]);
  }
}

}  // namespace

BENCHMARK(BM_DenseMultiply)->Arg(5)->Arg(50)->Arg(500);
BENCHMARK(BM_SparseMultiply)->Arg(5)->Arg(50)->Arg(500);
BENCHMARK(BM_Transpose64);
BENCHMARK(BM_FullBitMatrixTranspose)->Arg(1024)->Arg(4096);
BENCHMARK(BM_InplaceBlockTranspose512);

BENCHMARK_MAIN();
