// Reproduces paper Fig. 3b: as Fig. 3a but with floor(n/2) random CNOT
// pairs per layer — the dense-interaction regime where the gate count
// grows quadratically in n, stressing the frame baseline's per-sample
// circuit traversal.

#include "bench_common.hpp"

#include "circuit/generators.hpp"

int main(int argc, char** argv) {
  using namespace symphase;
  using namespace symphase::bench;

  const GridOptions opt = parse_grid(
      argc, argv,
      /*standard=*/{50, 100, 200, 300, 400},
      /*paper=*/{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
      /*fast=*/{32, 64});

  print_figure_header(
      "Fig. 3b: layered random circuits, n/2 CNOT pairs/layer, no noise",
      opt.samples);
  for (const std::size_t n : opt.sizes) {
    LayeredRandomCircuitOptions circuit_opt;
    circuit_opt.num_qubits = n;
    circuit_opt.num_layers = n;
    circuit_opt.half_n_cnot_pairs = true;
    circuit_opt.measure_fraction = 0.05;
    Rng rng(opt.seed + n);
    const Circuit circuit = layered_random_circuit(circuit_opt, rng);
    print_figure_row(run_figure_point(circuit, n, opt.samples, opt.seed));
  }
  return 0;
}
