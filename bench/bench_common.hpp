#pragma once

/// \file bench_common.hpp
/// Shared harness for the figure-reproduction benchmarks.
///
/// Each fig3 binary sweeps circuit sizes and reports, per size:
///   - sampler initialization time (Algorithm 1 Initialization vs the
///     frame baseline's reference pass), and
///   - time to generate `samples` samples (Algorithm 1 Sampling vs frame
///     propagation).
/// Sizes default to a grid that completes in minutes on one core;
/// `--paper` switches to the paper's full n = 1000 grid, `--fast` (or env
/// SYMPHASE_BENCH_FAST=1) shrinks it for CI smoke runs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/symphase.hpp"
#include "sampler/frame_simulator.hpp"

namespace symphase::bench {

struct GridOptions {
  std::vector<std::size_t> sizes;
  std::size_t samples = 10000;
  std::uint64_t seed = 2024;
};

inline GridOptions parse_grid(int argc, char** argv,
                              std::vector<std::size_t> standard,
                              std::vector<std::size_t> paper,
                              std::vector<std::size_t> fast) {
  GridOptions opt;
  opt.sizes = std::move(standard);
  const char* env_fast = std::getenv("SYMPHASE_BENCH_FAST");
  if (env_fast != nullptr && std::strcmp(env_fast, "0") != 0) {
    opt.sizes = fast;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) {
      opt.sizes = paper;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      opt.sizes = fast;
    } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      opt.samples = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--paper|--fast] [--samples N] [--seed S]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

struct FigureRow {
  std::size_t n = 0;
  CircuitStats stats;
  double init_symphase = 0;
  double init_frame = 0;
  double sample_symphase = 0;
  double sample_frame = 0;
};

inline void print_figure_header(const char* title, std::size_t samples) {
  std::printf("# %s\n", title);
  std::printf("# samples per size: %zu\n", samples);
  std::printf(
      "%6s %10s %10s %12s %14s %14s %16s %16s %9s\n", "n", "gates", "meas",
      "faults", "init_sym[s]", "init_frame[s]", "sample_sym[s]",
      "sample_frame[s]", "speedup");
}

inline void print_figure_row(const FigureRow& row) {
  const double speedup =
      row.sample_symphase > 0 ? row.sample_frame / row.sample_symphase : 0.0;
  std::printf("%6zu %10zu %10zu %12zu %14.4f %14.4f %16.4f %16.4f %8.2fx\n",
              row.n, row.stats.num_gates, row.stats.num_measurements,
              row.stats.num_noise_sites, row.init_symphase, row.init_frame,
              row.sample_symphase, row.sample_frame, speedup);
  std::fflush(stdout);
}

/// Times both samplers on one circuit. The sampled outputs are reduced to
/// a checksum so the work cannot be optimized away.
inline FigureRow run_figure_point(const Circuit& circuit, std::size_t n,
                                  std::size_t samples, std::uint64_t seed) {
  FigureRow row;
  row.n = n;
  row.stats = circuit.stats();

  Timer t;
  const CompiledSampler sym = CompiledSampler::compile(circuit);
  row.init_symphase = t.seconds();

  t.restart();
  const FrameSimulator frame(circuit, seed + 1);
  row.init_frame = t.seconds();

  t.restart();
  const BitMatrix sym_out = sym.sample(samples, seed + 2);
  row.sample_symphase = t.seconds();

  t.restart();
  const BitMatrix frame_out = frame.sample(samples, seed + 3);
  row.sample_frame = t.seconds();

  // Defeat dead-code elimination.
  if (sym_out.count_ones() == 0xDEADBEEF &&
      frame_out.count_ones() == 0xDEADBEEF) {
    std::printf("# impossible\n");
  }
  return row;
}

}  // namespace symphase::bench
