// Reproduces the scaling claims of paper Table 1:
//
//   (A) Sampling cost vs gate count n_g: the frame baseline re-traverses
//       the circuit per batch, so its sampling time grows linearly in
//       n_g; Algorithm 1's sampling is independent of n_g.
//   (B) Sampling cost vs sample count n_smp: both scale linearly, with
//       SymPhase's slope set by expression nnz (O(n_smp·n_m) sparse)
//       rather than circuit size.
//   (C) Initialization overhead vs measurement count n_m: SymPhase pays
//       the extra O(n·n_m·(n_m+n_p)) once.
//
// Each sweep holds every other parameter fixed and varies one knob.

#include <cstdio>

#include "bench_common.hpp"
#include "circuit/generators.hpp"

namespace {

using namespace symphase;
using namespace symphase::bench;

/// Builds a circuit with tunable gate count at fixed measurement count:
/// `layers` layers of random H/S/CNOT padding on `n` qubits, a light
/// sprinkle of noise, then one final measurement layer.
Circuit padded_circuit(std::size_t n, std::size_t layers,
                       std::size_t measurements, std::uint64_t seed) {
  Circuit c(n);
  Rng rng(seed);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    std::vector<std::uint32_t> h_targets;
    for (std::uint32_t q = 0; q < n; ++q) {
      if (rng.next_below(2) == 0) {
        h_targets.push_back(q);
      }
    }
    if (!h_targets.empty()) {
      c.append(GateType::H, h_targets);
    }
    for (std::size_t k = 0; k < n / 4; ++k) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(n));
      auto b = static_cast<std::uint32_t>(rng.next_below(n - 1));
      if (b >= a) {
        ++b;
      }
      c.append2(GateType::CNOT, a, b);
    }
  }
  std::vector<std::uint32_t> noise_targets;
  for (std::uint32_t q = 0; q < n; ++q) {
    noise_targets.push_back(q);
  }
  c.append(GateType::X_ERROR, noise_targets, 0.01);
  std::vector<std::uint32_t> measured;
  for (std::size_t k = 0; k < measurements; ++k) {
    measured.push_back(static_cast<std::uint32_t>(k % n));
  }
  // Measure one qubit at a time so n_m is exactly `measurements`.
  for (const std::uint32_t q : measured) {
    c.append1(GateType::M, q);
  }
  return c;
}

void sweep_gate_count(std::size_t samples, std::uint64_t seed) {
  std::printf("# (A) sampling time vs gate count n_g");
  std::printf("  [n=128, n_m=128 fixed]\n");
  std::printf("%10s %10s %16s %16s %12s\n", "layers", "gates",
              "sample_sym[s]", "sample_frame[s]", "frame/sym");
  for (const std::size_t layers : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const Circuit c = padded_circuit(128, layers, 128, seed);
    const CompiledSampler sym = CompiledSampler::compile(c);
    const FrameSimulator frame(c, seed);
    Timer t;
    const BitMatrix a = sym.sample(samples, seed + 1);
    const double sym_time = t.seconds();
    t.restart();
    const BitMatrix b = frame.sample(samples, seed + 2);
    const double frame_time = t.seconds();
    std::printf("%10zu %10zu %16.4f %16.4f %11.2fx\n", layers,
                c.stats().num_gates, sym_time, frame_time,
                frame_time / sym_time);
    std::fflush(stdout);
    if (a.count_ones() + b.count_ones() == 0xDEADBEEF) {
      std::printf("# impossible\n");
    }
  }
}

void sweep_sample_count(std::uint64_t seed) {
  std::printf("\n# (B) sampling time vs sample count n_smp");
  std::printf("  [n=128, 64 layers, n_m=128 fixed]\n");
  std::printf("%10s %16s %16s %12s\n", "samples", "sample_sym[s]",
              "sample_frame[s]", "frame/sym");
  const Circuit c = padded_circuit(128, 64, 128, seed);
  const CompiledSampler sym = CompiledSampler::compile(c);
  const FrameSimulator frame(c, seed);
  for (const std::size_t samples :
       {1000u, 4000u, 16000u, 64000u, 256000u}) {
    Timer t;
    const BitMatrix a = sym.sample(samples, seed + 1);
    const double sym_time = t.seconds();
    t.restart();
    const BitMatrix b = frame.sample(samples, seed + 2);
    const double frame_time = t.seconds();
    std::printf("%10zu %16.4f %16.4f %11.2fx\n", samples, sym_time,
                frame_time, frame_time / sym_time);
    std::fflush(stdout);
    if (a.count_ones() + b.count_ones() == 0xDEADBEEF) {
      std::printf("# impossible\n");
    }
  }
}

void sweep_measurement_count(std::size_t samples, std::uint64_t seed) {
  std::printf("\n# (C) initialization overhead vs measurement count n_m");
  std::printf("  [n=128, 32 layers fixed]\n");
  std::printf("%10s %14s %14s %16s %16s\n", "n_m", "init_sym[s]",
              "init_frame[s]", "sample_sym[s]", "sample_frame[s]");
  for (const std::size_t nm : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    const Circuit c = padded_circuit(128, 32, nm, seed);
    Timer t;
    const CompiledSampler sym = CompiledSampler::compile(c);
    const double init_sym = t.seconds();
    t.restart();
    const FrameSimulator frame(c, seed);
    const double init_frame = t.seconds();
    t.restart();
    const BitMatrix a = sym.sample(samples, seed + 1);
    const double sample_sym = t.seconds();
    t.restart();
    const BitMatrix b = frame.sample(samples, seed + 2);
    const double sample_frame = t.seconds();
    std::printf("%10zu %14.4f %14.4f %16.4f %16.4f\n", nm, init_sym,
                init_frame, sample_sym, sample_frame);
    std::fflush(stdout);
    if (a.count_ones() + b.count_ones() == 0xDEADBEEF) {
      std::printf("# impossible\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace symphase::bench;
  const GridOptions opt =
      parse_grid(argc, argv, /*standard=*/{0}, /*paper=*/{0}, /*fast=*/{0});
  std::printf("# Table 1 scaling study (complexity shape reproduction)\n");
  sweep_gate_count(opt.samples, opt.seed);
  sweep_sample_count(opt.seed);
  sweep_measurement_count(opt.samples, opt.seed);
  return 0;
}
