// Reproduces paper Fig. 3c: as Fig. 3b plus single-qubit depolarizing
// noise on every qubit in every layer. This is the noisy-sampling
// workload SymPhase targets: the symbol count grows to 2·n·layers, and
// the initialization pays for symbolic phase upkeep once while sampling
// stays a sparse matrix product.

#include "bench_common.hpp"

#include "circuit/generators.hpp"

int main(int argc, char** argv) {
  using namespace symphase;
  using namespace symphase::bench;

  const GridOptions opt = parse_grid(
      argc, argv,
      /*standard=*/{50, 100, 150, 200, 250},
      /*paper=*/{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
      /*fast=*/{32, 64});

  print_figure_header(
      "Fig. 3c: layered random circuits, n/2 CNOT pairs/layer, "
      "DEPOLARIZE1 on every qubit each layer",
      opt.samples);
  for (const std::size_t n : opt.sizes) {
    LayeredRandomCircuitOptions circuit_opt;
    circuit_opt.num_qubits = n;
    circuit_opt.num_layers = n;
    circuit_opt.half_n_cnot_pairs = true;
    circuit_opt.measure_fraction = 0.05;
    circuit_opt.depolarize_probability = 0.001;
    Rng rng(opt.seed + n);
    const Circuit circuit = layered_random_circuit(circuit_opt, rng);
    print_figure_row(run_figure_point(circuit, n, opt.samples, opt.seed));
  }
  return 0;
}
