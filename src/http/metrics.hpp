#pragma once

/// \file metrics.hpp
/// Prometheus-style metrics registry for the gateway and service.
///
/// Three instrument kinds, all lock-free on the hot path:
///
///  - Counter: monotonically increasing u64 (relaxed fetch_add).
///  - Gauge: signed i64 set/add (relaxed store/fetch_add).
///  - Histogram: fixed bucket bounds chosen at registration; observe()
///    does one relaxed fetch_add on the matching bucket plus one on the
///    nanosecond sum — no floating-point atomics, no locks.
///
/// Registration (cold path: server startup, first use of a label set)
/// takes a mutex; the returned references stay valid for the registry's
/// lifetime, so hot paths hold a Counter*/Histogram* and never touch
/// the registry again. scrape() renders Prometheus text exposition
/// format 0.0.4 — one HELP/TYPE block per family, then each label
/// set's series. Collectors registered via add_collector() are invoked
/// at scrape time to pull point-in-time values out of subsystems that
/// already track their own stats (ServiceStats, ServiceHealth) without
/// double-instrumenting them.
///
/// Scrapes race benignly with increments: each atomic load is
/// individually consistent, which is all Prometheus asks of a scrape.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace symphase {

/// Label set as (name, value) pairs, rendered in registration order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bounds are upper-inclusive bucket
/// edges in seconds; a final +Inf bucket is implicit. Cumulative
/// counts are computed at render time so observe() touches exactly one
/// bucket counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double seconds);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (non-cumulative); i == bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total_count() const;
  double sum_seconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// Default request-latency edges: 0.5 ms .. 10 s, roughly 1-2-5.
  static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> sum_nanos_{0};
};

class MetricsRegistry {
 public:
  /// Each getter returns the existing instrument when (name, labels)
  /// was registered before, so callers can re-resolve idempotently.
  /// `help` is recorded on first registration of the family. A family
  /// never mixes instrument kinds (throws std::logic_error).
  Counter& counter(std::string_view name, std::string_view help,
                   MetricLabels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               MetricLabels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, MetricLabels labels = {});

  /// Scrape-time callback appending exposition text for values owned
  /// elsewhere (e.g. ServiceStats). The callback must emit complete
  /// families (its own HELP/TYPE lines).
  void add_collector(std::function<void(std::string&)> collector);

  /// Full Prometheus text exposition (0.0.4): registered instruments
  /// first, then collectors in registration order.
  std::string scrape() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<Series> series;
  };

  Family& family_for(std::string_view name, std::string_view help, Kind kind);
  Series* find_series(Family& family, const MetricLabels& labels);

  mutable std::mutex mutex_;
  /// Deque-free stability: Family objects may move, but Series holds
  /// instruments by unique_ptr so instrument addresses are stable.
  std::vector<Family> families_;
  std::vector<std::function<void(std::string&)>> collectors_;
};

/// Renders one exposition sample line: name{labels} value\n.
/// Exposed for collectors composing families by hand.
void append_metric_line(std::string& out, std::string_view name,
                        const MetricLabels& labels, double value);
void append_metric_line(std::string& out, std::string_view name,
                        const MetricLabels& labels, std::uint64_t value);

}  // namespace symphase
