#pragma once

/// \file json.hpp
/// Minimal JSON codec for the HTTP gateway (src/http/).
///
/// The gateway's request bodies and control-plane replies are JSON;
/// pulling in a library for that would be the repo's first external
/// dependency, so this is a small, hardened recursive-descent parser
/// plus escaping helpers instead. Scope is deliberately narrow:
///
///  - parse_json(): full JSON (RFC 8259) into a JsonValue tree, with a
///    nesting-depth cap and a single-document requirement (trailing
///    non-whitespace is an error). Numbers are held as double plus the
///    original token, so integer fields up to 2^53 round-trip exactly
///    and u64 fields re-parse from the token. Malformed input throws
///    std::invalid_argument with a byte offset — the gateway maps that
///    straight to HTTP 400.
///  - json_escape(): string-body escaping for handwritten replies (the
///    gateway composes its small response objects by hand; a writer
///    class would be more machinery than the output warrants).
///
/// Hostile input is the normal case here (the gateway is an open HTTP
/// port), so the parser never recurses past kMaxDepth, never reads past
/// its buffer, and has no global state. tests/http_parser_test.cpp
/// fuzzes it alongside the HTTP parser under ASan/UBSan.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace symphase {

class JsonValue;

/// Object members keep source order (std::map would be fine for the
/// gateway, but ordered iteration makes error messages and tests
/// deterministic without sorting).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; each throws std::invalid_argument naming the
  /// expected type when the value is something else (the gateway
  /// surfaces that text verbatim in its 400 replies).
  bool as_bool() const;
  double as_number() const;
  /// Re-parses the original number token as u64 — rejects negatives,
  /// fractions, exponents, and overflow (doubles cannot carry a full
  /// u64, seeds included).
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  // Construction (parser + tests).
  static JsonValue null();
  static JsonValue boolean(bool value);
  static JsonValue number(double value, std::string token);
  static JsonValue string(std::string value);
  static JsonValue array(JsonArray values);
  static JsonValue object(JsonObject members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;  ///< String value, or the raw number token.
  /// Indirect so JsonValue stays movable/copyable without recursion
  /// into incomplete types.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses exactly one JSON document. Throws std::invalid_argument
/// ("json parse error at byte N: ...") on malformed input, depth past
/// kMaxJsonDepth, or trailing garbage.
inline constexpr std::size_t kMaxJsonDepth = 64;
JsonValue parse_json(std::string_view text);

/// Escapes `text` for inclusion inside a JSON string literal (quotes
/// not included): ", \, control bytes -> \uXXXX.
std::string json_escape(std::string_view text);

}  // namespace symphase
