#include "http/http_parser.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <utility>

namespace symphase {

namespace {

bool is_token_char(char c) {
  // RFC 7230 tchar.
  if (std::isalnum(static_cast<unsigned char>(c))) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

std::string lowercase(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Splits a comma-separated header value and reports whether any
/// element equals `needle` case-insensitively (Connection, TE).
bool header_list_contains(std::string_view value, std::string_view needle) {
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t comma = value.find(',', start);
    if (comma == std::string_view::npos) {
      comma = value.size();
    }
    const std::string element =
        lowercase(trim(value.substr(start, comma - start)));
    if (element == needle) {
      return true;
    }
    start = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

void HttpParser::feed(std::string_view bytes) {
  if (failed_) {
    return;
  }
  buffer_.append(bytes.data(), bytes.size());
}

void HttpParser::fail(int status, std::string message) {
  failed_ = true;
  error_status_ = status;
  error_ = std::move(message);
  buffer_.clear();
  consumed_ = 0;
}

bool HttpParser::next(HttpRequest& out) {
  while (!failed_ && ready_.empty()) {
    switch (state_) {
      case State::kHead: {
        // Find the blank line ending the head: \n optionally followed
        // by \r, then \n. Scan from just before the unscanned tail so
        // a terminator torn across feed() calls is still found.
        std::size_t head_end = 0;  // One past the terminator.
        for (std::size_t i = consumed_; i + 1 < buffer_.size(); ++i) {
          if (buffer_[i] != '\n') {
            continue;
          }
          if (buffer_[i + 1] == '\n') {
            head_end = i + 2;
            break;
          }
          if (buffer_[i + 1] == '\r' && i + 2 < buffer_.size() &&
              buffer_[i + 2] == '\n') {
            head_end = i + 3;
            break;
          }
        }
        if (head_end == 0) {
          if (buffer_.size() - consumed_ > limits_.max_head_bytes) {
            fail(431, "request head exceeds " +
                          std::to_string(limits_.max_head_bytes) + " bytes");
          }
          return false;  // Need more bytes.
        }
        if (head_end - consumed_ > limits_.max_head_bytes) {
          fail(431, "request head exceeds " +
                        std::to_string(limits_.max_head_bytes) + " bytes");
          return false;
        }
        parse_head(head_end);
        break;
      }
      case State::kBodyFixed: {
        const std::size_t available = buffer_.size() - consumed_;
        const std::size_t take = std::min(available, body_remaining_);
        pending_.body.append(buffer_, consumed_, take);
        consumed_ += take;
        body_remaining_ -= take;
        if (body_remaining_ != 0) {
          compact();
          return false;
        }
        complete_request();
        break;
      }
      case State::kChunkSize: {
        const std::size_t eol = buffer_.find('\n', consumed_);
        if (eol == std::string::npos) {
          if (buffer_.size() - consumed_ > 1024) {
            fail(400, "chunk-size line too long");
          }
          return false;
        }
        std::string_view line(buffer_.data() + consumed_, eol - consumed_);
        if (!line.empty() && line.back() == '\r') {
          line.remove_suffix(1);
        }
        // Chunk extensions (";ext=...") are ignored per RFC 7230.
        const std::size_t semi = line.find(';');
        if (semi != std::string_view::npos) {
          line = line.substr(0, semi);
        }
        line = trim(line);
        std::uint64_t size = 0;
        const auto [ptr, ec] =
            std::from_chars(line.data(), line.data() + line.size(), size, 16);
        if (line.empty() || ec != std::errc() ||
            ptr != line.data() + line.size()) {
          fail(400, "malformed chunk size");
          return false;
        }
        consumed_ = eol + 1;
        // Overflow-safe form of `body.size() + size > max_body_bytes`:
        // `size` is attacker-controlled up to 2^64-1, so the sum can
        // wrap past zero and slip under the cap.
        if (size > limits_.max_body_bytes ||
            pending_.body.size() > limits_.max_body_bytes - size) {
          fail(413, "chunked body exceeds " +
                        std::to_string(limits_.max_body_bytes) + " bytes");
          return false;
        }
        if (size == 0) {
          state_ = State::kTrailers;
        } else {
          body_remaining_ = static_cast<std::size_t>(size);
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkData: {
        const std::size_t available = buffer_.size() - consumed_;
        const std::size_t take = std::min(available, body_remaining_);
        pending_.body.append(buffer_, consumed_, take);
        consumed_ += take;
        body_remaining_ -= take;
        if (body_remaining_ != 0) {
          compact();
          return false;
        }
        // Consume the CRLF (or LF) that terminates the chunk data.
        if (consumed_ >= buffer_.size()) {
          compact();
          return false;
        }
        if (buffer_[consumed_] == '\r') {
          if (consumed_ + 1 >= buffer_.size()) {
            compact();
            return false;
          }
          if (buffer_[consumed_ + 1] != '\n') {
            fail(400, "missing CRLF after chunk data");
            return false;
          }
          consumed_ += 2;
        } else if (buffer_[consumed_] == '\n') {
          consumed_ += 1;
        } else {
          fail(400, "missing CRLF after chunk data");
          return false;
        }
        state_ = State::kChunkSize;
        break;
      }
      case State::kTrailers: {
        const std::size_t eol = buffer_.find('\n', consumed_);
        if (eol == std::string::npos) {
          if (buffer_.size() - consumed_ > limits_.max_head_bytes) {
            fail(431, "trailer section too large");
          }
          return false;
        }
        std::string_view line(buffer_.data() + consumed_, eol - consumed_);
        if (!line.empty() && line.back() == '\r') {
          line.remove_suffix(1);
        }
        consumed_ = eol + 1;
        if (line.empty()) {
          // Blank line ends the trailer section; trailers themselves
          // are discarded (nothing in the gateway consumes them).
          complete_request();
        }
        break;
      }
    }
  }
  if (ready_.empty()) {
    return false;
  }
  out = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return true;
}

void HttpParser::parse_head(std::size_t head_end) {
  std::string_view head(buffer_.data() + consumed_, head_end - consumed_);
  consumed_ = head_end;
  pending_ = HttpRequest{};

  // --- Request line ---
  std::size_t line_end = head.find('\n');
  std::string_view request_line = head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  std::size_t rest_pos = line_end + 1;

  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(400, "malformed request line");
    return;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16 ||
      !std::all_of(method.begin(), method.end(), is_token_char)) {
    fail(400, "malformed method token");
    return;
  }
  if (target.empty() || target.size() > 8192 || target[0] != '/') {
    fail(400, "request target must be origin-form");
    return;
  }
  for (const char c : target) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7F) {
      fail(400, "control byte in request target");
      return;
    }
  }
  if (version == "HTTP/1.1") {
    pending_.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    pending_.minor_version = 0;
  } else {
    fail(505, "unsupported HTTP version");
    return;
  }
  pending_.method.assign(method);
  pending_.target.assign(target);

  // --- Header fields ---
  while (rest_pos < head.size()) {
    line_end = head.find('\n', rest_pos);
    std::string_view line = head.substr(rest_pos, line_end - rest_pos);
    rest_pos = line_end + 1;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    if (line.empty()) {
      break;  // Blank line: end of headers.
    }
    if (line[0] == ' ' || line[0] == '\t') {
      fail(400, "obs-fold header continuation rejected");
      return;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      fail(400, "malformed header field");
      return;
    }
    const std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), is_token_char)) {
      fail(400, "malformed header name");
      return;
    }
    const std::string_view value = trim(line.substr(colon + 1));
    for (const char c : value) {
      const unsigned char u = static_cast<unsigned char>(c);
      if ((u < 0x20 && u != '\t') || u == 0x7F) {
        fail(400, "control byte in header value");
        return;
      }
    }
    pending_.headers.emplace_back(lowercase(name), std::string(value));
  }

  // --- Connection semantics ---
  pending_.keep_alive = pending_.minor_version >= 1;
  if (const std::string* conn = pending_.header("connection")) {
    if (header_list_contains(*conn, "close")) {
      pending_.keep_alive = false;
    } else if (header_list_contains(*conn, "keep-alive")) {
      pending_.keep_alive = true;
    }
  }

  // --- Body framing ---
  const std::string* te = pending_.header("transfer-encoding");
  const std::string* cl = pending_.header("content-length");
  if (te != nullptr) {
    if (cl != nullptr) {
      // Request-smuggling vector; refuse outright.
      fail(400, "both Transfer-Encoding and Content-Length present");
      return;
    }
    if (lowercase(trim(*te)) != "chunked") {
      fail(501, "unsupported Transfer-Encoding: " + *te);
      return;
    }
    state_ = State::kChunkSize;
    return;
  }
  if (cl != nullptr) {
    // Reject duplicates with conflicting values.
    for (const auto& [key, value] : pending_.headers) {
      if (key == "content-length" && value != *cl) {
        fail(400, "conflicting Content-Length headers");
        return;
      }
    }
    const std::string_view digits = *cl;
    std::uint64_t length = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), length);
    if (digits.empty() || ec != std::errc() ||
        ptr != digits.data() + digits.size()) {
      fail(400, "malformed Content-Length");
      return;
    }
    if (length > limits_.max_body_bytes) {
      fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                    " bytes");
      return;
    }
    if (length == 0) {
      complete_request();
      return;
    }
    body_remaining_ = static_cast<std::size_t>(length);
    pending_.body.reserve(body_remaining_);
    state_ = State::kBodyFixed;
    return;
  }
  complete_request();  // No body.
}

void HttpParser::complete_request() {
  ready_.push_back(std::move(pending_));
  pending_ = HttpRequest{};
  body_remaining_ = 0;
  state_ = State::kHead;
  compact();
}

void HttpParser::compact() {
  // Drop the decoded prefix so buffered bytes stay bounded by one
  // in-progress head/chunk plus whatever pipelined requests follow.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

}  // namespace symphase
