#include "http/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace symphase {

namespace {

/// Prometheus label values escape \, ", and newline.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_label_block(std::string& out, const MetricLabels& labels) {
  if (labels.empty()) {
    return;
  }
  out += '{';
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += name;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  out += '}';
}

std::string format_double(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buffer[64];
  // %.17g round-trips doubles; trim to %g-style readability where exact.
  std::snprintf(buffer, sizeof buffer, "%g", value);
  double reparsed = 0;
  std::sscanf(buffer, "%lf", &reparsed);
  if (reparsed != value) {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
  }
  return buffer;
}

}  // namespace

void append_metric_line(std::string& out, std::string_view name,
                        const MetricLabels& labels, double value) {
  out += name;
  append_label_block(out, labels);
  out += ' ';
  out += format_double(value);
  out += '\n';
}

void append_metric_line(std::string& out, std::string_view name,
                        const MetricLabels& labels, std::uint64_t value) {
  out += name;
  append_label_block(out, labels);
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("histogram bounds must be sorted");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double seconds) {
  const std::size_t index = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), seconds) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  if (seconds > 0) {
    sum_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> Histogram::default_latency_bounds() {
  return {0.0005, 0.001, 0.0025, 0.005, 0.01,  0.025, 0.05,
          0.1,    0.25,  0.5,    1.0,   2.5,   5.0,   10.0};
}

MetricsRegistry::Family& MetricsRegistry::family_for(std::string_view name,
                                                     std::string_view help,
                                                     Kind kind) {
  for (Family& family : families_) {
    if (family.name == name) {
      if (family.kind != kind) {
        throw std::logic_error("metric family '" + family.name +
                               "' re-registered with a different kind");
      }
      return family;
    }
  }
  families_.push_back(
      Family{std::string(name), std::string(help), kind, {}});
  return families_.back();
}

MetricsRegistry::Series* MetricsRegistry::find_series(
    Family& family, const MetricLabels& labels) {
  for (Series& series : family.series) {
    if (series.labels == labels) {
      return &series;
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help, MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, help, Kind::kCounter);
  if (Series* existing = find_series(family, labels)) {
    return *existing->counter;
  }
  Series series;
  series.labels = std::move(labels);
  series.counter = std::make_unique<Counter>();
  family.series.push_back(std::move(series));
  return *family.series.back().counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, help, Kind::kGauge);
  if (Series* existing = find_series(family, labels)) {
    return *existing->gauge;
  }
  Series series;
  series.labels = std::move(labels);
  series.gauge = std::make_unique<Gauge>();
  family.series.push_back(std::move(series));
  return *family.series.back().gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::vector<double> bounds,
                                      MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, help, Kind::kHistogram);
  if (Series* existing = find_series(family, labels)) {
    return *existing->histogram;
  }
  Series series;
  series.labels = std::move(labels);
  series.histogram = std::make_unique<Histogram>(std::move(bounds));
  family.series.push_back(std::move(series));
  return *family.series.back().histogram;
}

void MetricsRegistry::add_collector(
    std::function<void(std::string&)> collector) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(collector));
}

std::string MetricsRegistry::scrape() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const Family& family : families_) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " ";
    switch (family.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const Series& series : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          append_metric_line(out, family.name, series.labels,
                             series.counter->value());
          break;
        case Kind::kGauge: {
          const std::int64_t value = series.gauge->value();
          out += family.name;
          append_label_block(out, series.labels);
          out += ' ';
          out += std::to_string(value);
          out += '\n';
          break;
        }
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
            cumulative += h.bucket_count(i);
            MetricLabels labels = series.labels;
            labels.emplace_back(
                "le", i < h.bounds().size() ? format_double(h.bounds()[i])
                                            : "+Inf");
            append_metric_line(out, family.name + "_bucket", labels,
                               cumulative);
          }
          append_metric_line(out, family.name + "_sum", series.labels,
                             h.sum_seconds());
          append_metric_line(out, family.name + "_count", series.labels,
                             cumulative);
          break;
        }
      }
    }
  }
  for (const auto& collector : collectors_) {
    collector(out);
  }
  return out;
}

}  // namespace symphase
