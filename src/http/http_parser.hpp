#pragma once

/// \file http_parser.hpp
/// Incremental HTTP/1.1 request parser for the gateway (src/http/).
///
/// Mirrors the two-layer hardening style of the frame protocol
/// (service/wire.hpp): this layer turns hostile bytes into validated
/// HttpRequest values and nothing else — no routing, no sockets. It is
/// incremental (feed() arbitrary byte slices as they arrive from the
/// poll loop), supports HTTP/1.1 pipelining (next() pops completed
/// requests one at a time; bytes behind them stay buffered), and
/// decodes both Content-Length and chunked request bodies.
///
/// A malformed stream poisons the parser (failed()/error()) and
/// records the HTTP status the connection should answer with before
/// closing:
///
///   400  malformed request line / headers / chunked framing
///   413  body larger than Limits::max_body_bytes
///   431  request line + headers larger than Limits::max_head_bytes
///   501  Transfer-Encoding other than chunked
///   505  HTTP version other than 1.0 / 1.1
///
/// The parser never throws on input bytes, never reads past its
/// buffer, and holds no more than one head + one body beyond the
/// largest single feed() slice — the properties the seeded fuzz tests
/// (tests/http_parser_test.cpp) pin under ASan/UBSan: torn at every
/// byte boundary, oversized heads, bad chunk framing, garbage.
///
/// Line endings: CRLF per RFC 7230, with bare LF tolerated the way
/// mainstream servers do. obs-fold header continuations are rejected.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace symphase {

/// One complete, validated request. Header names are lowercased;
/// values are trimmed of surrounding whitespace.
struct HttpRequest {
  std::string method;  ///< Uppercase token ("GET", "POST", ...).
  std::string target;  ///< Origin-form ("/v1/sample?x=1") as received.
  int minor_version = 1;  ///< 0 or 1 (HTTP/1.x).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;  ///< Decoded (de-chunked) body bytes.
  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive, HTTP/1.0 to close, both overridable by the
  /// Connection header.
  bool keep_alive = true;

  /// First header with `name` (lowercase); nullptr when absent.
  const std::string* header(std::string_view name) const;
};

struct HttpParserLimits {
  /// Request line + headers, terminator included.
  std::size_t max_head_bytes = 16u << 10;
  /// Decoded body bytes (Content-Length value or de-chunked total).
  std::size_t max_body_bytes = 64u << 20;
};

class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {}) : limits_(limits) {}

  /// Appends raw connection bytes. No-op once failed().
  void feed(std::string_view bytes);

  /// Pops the next complete request into `out`. Returns false when no
  /// complete request is buffered (or the parser is poisoned).
  bool next(HttpRequest& out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Status code to answer with before closing (failed() only).
  int error_status() const { return error_status_; }

  /// True while bytes of an incomplete request are buffered — the
  /// hook for the connection's slow-loris header/body deadline.
  bool mid_request() const {
    return !failed_ && (state_ != State::kHead || consumed_ < buffer_.size());
  }

 private:
  enum class State {
    kHead,        ///< Accumulating request line + headers.
    kBodyFixed,   ///< Content-Length body.
    kChunkSize,   ///< Chunk-size line.
    kChunkData,   ///< Chunk payload + trailing CRLF.
    kTrailers,    ///< After the 0-chunk, until the blank line.
  };

  void fail(int status, std::string message);
  /// Parses the head in [consumed_, head_end) and transitions state.
  void parse_head(std::size_t head_end);
  void complete_request();
  void compact();

  HttpParserLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already decoded.
  State state_ = State::kHead;
  HttpRequest pending_;         ///< Request under construction.
  std::size_t body_remaining_ = 0;  ///< kBodyFixed/kChunkData countdown.
  std::vector<HttpRequest> ready_;  ///< Completed, not yet popped.
  bool failed_ = false;
  int error_status_ = 400;
  std::string error_;
};

}  // namespace symphase
