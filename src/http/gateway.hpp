#pragma once

/// \file gateway.hpp
/// HTTP/1.1 front door of the sampling service.
///
/// The frame protocol (service/wire.hpp) is the fast path; browsers,
/// load balancers, and fleet tooling speak HTTP. The gateway serves
/// both from one poll loop: `symphase serve --listen ... --http
/// HOST:PORT` opens a second listener whose connections are
/// HttpConnection objects on the same net/connection.hpp base as the
/// frame protocol — shared outbound buffering, worker backpressure,
/// disconnect cancellation, and drain handling.
///
/// Endpoints (full reference: docs/gateway.md):
///
///   POST /v1/sample      JSON body -> sample request; raw sample
///   POST /v1/detect      bytes stream back chunked, bit-identical to
///                        the frame protocol and direct sessions
///   GET  /v1/stats       ServiceStats as JSON
///   GET  /healthz        readiness: 200 accepting / 503 draining
///   GET  /metrics        Prometheus text exposition
///   GET  /v1/trace       drains the in-process trace ring as Chrome
///                        trace-event JSON (Perfetto-loadable); empty
///                        unless tracing is enabled (--trace)
///   POST /v1/cancel/{t}  cancel by scheduler ticket (the
///                        Symphase-Ticket response header)
///
/// Streaming responses declare `Trailer: Server-Timing` and finish the
/// chunked body with a Server-Timing trailer carrying the request's
/// stage breakdown (queue/compile/execute/emit/total, ms) — the HTTP
/// rendering of the frame protocol's kFrameTiming final frame.
///
/// Error mapping is total over service/errors.hpp: queue_full -> 503,
/// rate_limited -> 429 + Retry-After, draining -> 503, deadline_expired
/// -> 504, cancelled -> 499, bad_circuit -> 400, internal -> 500.
/// Errors that arrive before any sample bytes become proper JSON error
/// responses; a failure after the 200 header was sent terminates the
/// chunked body without the final 0-chunk, so clients detect the
/// truncation.
///
/// A request that streams (sample/detect) marks its connection busy:
/// pipelined requests behind it wait in the kernel socket buffer
/// (wants_read off), which keeps responses ordered and memory flat.
/// Slow-loris protection: a connection mid-request-head longer than
/// `header_timeout_ms` gets 408 and is closed. Drain: /healthz answers
/// 503 + state JSON, /metrics still scrapes, everything else is
/// rejected 503 with `Connection: close`; idle connections are closed
/// after `drain_grace_ms`, and a connection still mid-stream when the
/// grace expires closes as soon as its in-flight response finishes
/// (instead of returning to keep-alive), so the server's drain
/// actually completes.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "http/metrics.hpp"
#include "net/connection.hpp"

namespace symphase {

class SamplingService;

struct HttpGatewayOptions {
  /// HTTP parser limits (http_parser.hpp): request head and decoded
  /// body caps. The body cap bounds inline circuit text.
  std::size_t max_head_bytes = 16u << 10;
  std::size_t max_body_bytes = 64u << 20;
  /// A connection that sits mid-request (incomplete head or body)
  /// longer than this is answered 408 and closed (slow-loris guard).
  std::uint64_t header_timeout_ms = 10000;
  /// During a graceful drain, idle HTTP connections (keep-alive, no
  /// request in flight) are closed after this grace period so run()
  /// returns; in-flight responses always finish first.
  std::uint64_t drain_grace_ms = 1000;
  /// Emit one JSON object per completed request (--log-json).
  bool log_json = false;
  /// Where request logs go; default writes lines to stderr. Tests
  /// inject a sink to assert on log contents.
  std::function<void(const std::string& line)> log_sink;
};

/// Shared per-server gateway state: options, the metrics registry (all
/// HTTP connections and the service collector feed it), and the
/// HttpConnection factory the socket server calls on accept. One
/// instance per SocketServer, owned by it; outlives every connection.
class HttpGateway {
 public:
  HttpGateway(SamplingService& service, HttpGatewayOptions options);
  ~HttpGateway();

  HttpGateway(const HttpGateway&) = delete;
  HttpGateway& operator=(const HttpGateway&) = delete;

  const HttpGatewayOptions& options() const { return options_; }

  /// The registry behind GET /metrics. Exposed so embedders and tests
  /// can scrape without an HTTP round trip.
  MetricsRegistry& metrics() { return registry_; }

  /// Creates an HTTP connection on `host`'s event loop (called by the
  /// socket server's accept path).
  std::shared_ptr<Connection> make_connection(ConnectionHost& host,
                                              Socket socket,
                                              std::uint64_t client_id);

 private:
  friend class HttpConnection;

  /// Endpoint classes for metrics labels and logs.
  enum class Endpoint { kSample, kDetect, kStats, kMetrics, kHealthz,
                        kCancel, kTrace, kOther };
  static const char* endpoint_name(Endpoint endpoint);

  /// Records a finished request: counter + latency histogram + bytes
  /// + one structured log line (when enabled). `request_id` is the
  /// submit-path correlation id (`"id"` in logs, matching watchdog and
  /// slow_request events); 0 for endpoints that never reach the
  /// scheduler.
  void finish_request(Endpoint endpoint, int status, std::uint64_t bytes,
                      double seconds, std::uint64_t client_id,
                      const std::string& method, const std::string& target,
                      std::uint64_t ticket, std::uint64_t request_id);

  SamplingService& service_;
  HttpGatewayOptions options_;
  MetricsRegistry registry_;

  /// Every status code the gateway can emit (the domain of its status
  /// maps). The (endpoint, code) series of http_requests_total are
  /// pre-registered over this set so finish_request() increments a
  /// resolved Counter* instead of taking the registry mutex on the
  /// worker-thread response path.
  static constexpr int kKnownStatusCodes[] = {200, 400, 404, 405, 408,
                                              413, 429, 431, 499, 500,
                                              501, 503, 504, 505};
  static constexpr std::size_t kNumStatusCodes =
      sizeof(kKnownStatusCodes) / sizeof(kKnownStatusCodes[0]);
  /// Index of `status` in kKnownStatusCodes, or -1 when unknown.
  static int status_slot(int status);

  // Pre-resolved hot-path instruments (see metrics.hpp: resolve once,
  // increment lock-free).
  Counter* connections_total_ = nullptr;
  Gauge* connections_active_ = nullptr;
  Counter* parse_errors_total_ = nullptr;
  Counter* response_bytes_total_ = nullptr;
  Histogram* latency_[8] = {};  ///< Indexed by Endpoint.
  Counter* requests_[8][kNumStatusCodes] = {};  ///< [Endpoint][status slot].
};

}  // namespace symphase
