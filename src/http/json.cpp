#include "http/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace symphase {

namespace {

[[noreturn]] void type_error(const char* expected, JsonValue::Kind actual) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw std::invalid_argument(std::string("expected ") + expected +
                              ", got " + names[static_cast<int>(actual)]);
}

/// One parse run over an immutable buffer. Position-carrying so every
/// error can name its byte offset.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream oss;
    oss << "json parse error at byte " << pos_ << ": " << message;
    throw std::invalid_argument(oss.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxJsonDepth) {
      fail("nesting too deep");
    }
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return JsonValue::boolean(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return JsonValue::boolean(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return JsonValue::null();
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonObject members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::object(std::move(members));
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonArray values;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(values));
    }
    for (;;) {
      values.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::array(std::move(values));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      switch (peek()) {
        case '"': out += '"'; ++pos_; break;
        case '\\': out += '\\'; ++pos_; break;
        case '/': out += '/'; ++pos_; break;
        case 'b': out += '\b'; ++pos_; break;
        case 'f': out += '\f'; ++pos_; break;
        case 'n': out += '\n'; ++pos_; break;
        case 'r': out += '\r'; ++pos_; break;
        case 't': out += '\t'; ++pos_; break;
        case 'u': {
          ++pos_;
          std::uint32_t code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half immediately.
            if (!consume_literal("\\u")) {
              fail("high surrogate without low surrogate");
            }
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number: digit required after '.'");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number: digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        !std::isfinite(value)) {
      fail("number out of range");
    }
    return JsonValue::number(value, token);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) {
    type_error("bool", kind_);
  }
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    type_error("number", kind_);
  }
  return number_;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) {
    type_error("number", kind_);
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      string_.data(), string_.data() + string_.size(), value);
  if (ec != std::errc() || ptr != string_.data() + string_.size()) {
    throw std::invalid_argument("expected a non-negative integer, got '" +
                                string_ + "'");
  }
  return value;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    type_error("string", kind_);
  }
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    type_error("array", kind_);
  }
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) {
    type_error("object", kind_);
  }
  return *object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : *object_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value, std::string token) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  v.string_ = std::move(token);
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array(JsonArray values) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<JsonArray>(std::move(values));
  return v;
}

JsonValue JsonValue::object(JsonObject members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<JsonObject>(std::move(members));
  return v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", u);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace symphase
