#include "http/gateway.hpp"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/trace.hpp"
#include "http/http_parser.hpp"
#include "http/json.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"
#include "service/service.hpp"

namespace symphase {

namespace {

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

/// The total error mapping promised in gateway.hpp / docs/gateway.md.
int error_http_status(ErrorCode code) {
  switch (code) {
    case ErrorCode::kQueueFull: return 503;
    case ErrorCode::kRateLimited: return 429;
    case ErrorCode::kDraining: return 503;
    case ErrorCode::kDeadlineExpired: return 504;
    case ErrorCode::kCancelled: return 499;  // nginx convention
    case ErrorCode::kBadCircuit: return 400;
    case ErrorCode::kInternal: return 500;
    case ErrorCode::kTimeout: return 408;
  }
  return 500;
}

std::string error_body(const ServiceError& error) {
  std::string body = "{\"error\":\"";
  body += error_code_name(error.code);
  body += "\",\"retryable\":";
  body += error.retryable ? "true" : "false";
  body += ",\"retry_after_ms\":";
  body += std::to_string(error.retry_after_ms);
  body += ",\"message\":\"";
  body += json_escape(error.message);
  body += "\"}\n";
  return body;
}

std::string simple_error_body(std::string_view name, std::string_view message) {
  std::string body = "{\"error\":\"";
  body += name;
  body += "\",\"retryable\":false,\"retry_after_ms\":0,\"message\":\"";
  body += json_escape(message);
  body += "\"}\n";
  return body;
}

/// Head for a fixed-length (non-streaming) response.
void append_response_head(std::string& out, int status,
                          std::string_view content_type, std::size_t body_size,
                          bool keep_alive, std::uint64_t retry_after_ms,
                          const char* allow) {
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body_size);
  if (retry_after_ms != 0) {
    // Retry-After is whole seconds; round the hint up so clients never
    // come back before the server said they could.
    out += "\r\nRetry-After: ";
    out += std::to_string((retry_after_ms + 999) / 1000);
  }
  if (allow != nullptr) {
    out += "\r\nAllow: ";
    out += allow;
  }
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  out += "\r\n\r\n";
}

/// Head for a chunked streaming response (sample/detect bytes). The
/// stage breakdown is only known once the stream finishes, so it rides
/// in a declared Server-Timing trailer instead of the head.
void append_stream_head(std::string& out, bool keep_alive,
                        std::uint64_t ticket) {
  out += "HTTP/1.1 200 OK\r\n"
         "Content-Type: application/octet-stream\r\n"
         "Transfer-Encoding: chunked\r\n"
         "Trailer: Server-Timing\r\n";
  if (ticket != 0) {
    out += "Symphase-Ticket: ";
    out += std::to_string(ticket);
    out += "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
}

void append_chunk(std::string& out, std::string_view payload) {
  char size_line[20];
  const int n = std::snprintf(size_line, sizeof size_line, "%zx\r\n",
                              payload.size());
  out.append(size_line, static_cast<std::size_t>(n));
  out.append(payload.data(), payload.size());
  out += "\r\n";
}

SampleBackend backend_from_name(std::string_view name) {
  if (name == "symphase") {
    return SampleBackend::kSymPhase;
  }
  if (name == "frames") {
    return SampleBackend::kFrameSimulator;
  }
  throw std::invalid_argument("unknown backend '" + std::string(name) +
                              "' (symphase|frames)");
}

/// JSON body -> SampleRequest. Typed fields only (enum names are
/// validated here and re-rendered canonically), then a round trip
/// through the directive codec so both transports accept exactly the
/// same requests — validation parity with zero duplicated rules.
SampleRequest translate_json_request(const std::string& body, bool detect) {
  const JsonValue doc = parse_json(body);
  const JsonObject& object = doc.as_object();
  SampleRequest request =
      detect ? SampleRequest::detect("", 1024) : SampleRequest::sample("", 1024);
  for (const auto& [key, value] : object) {
    try {
      if (key == "circuit") {
        request.circuit_text = value.as_string();
      } else if (key == "digest") {
        request.digest = value.as_string();
      } else if (key == "shots") {
        request.task.shots = value.as_u64();
      } else if (key == "seed") {
        request.task.seed = value.as_u64();
      } else if (key == "threads") {
        request.task.num_threads = value.as_u64();
      } else if (key == "format") {
        request.format = sample_format_from_name(value.as_string());
      } else if (key == "backend") {
        request.task.backend = backend_from_name(value.as_string());
      } else if (key == "priority") {
        request.priority = priority_from_name(value.as_string());
      } else if (key == "deadline_ms") {
        request.deadline_ms = value.as_u64();
      } else if (key == "rows") {
        request.task.bit_selection.clear();
        for (const JsonValue& row : value.as_array()) {
          request.task.bit_selection.push_back(row.as_u64());
        }
      } else {
        throw std::invalid_argument("unknown field");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("field \"" + key + "\": " + e.what());
    }
  }
  return parse_request_payload(encode_request_payload(request));
}

std::uint64_t now_unix_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// HttpConnection

/// One HTTP/1.1 client on the shared poll loop. Parsing and routing run
/// on the poll thread; response frames for sample/detect arrive from
/// service workers through on_frame(). Cross-thread response state is
/// guarded by the base connection mutex.
class HttpConnection : public Connection,
                       public std::enable_shared_from_this<HttpConnection> {
 public:
  HttpConnection(HttpGateway& gateway, ConnectionHost& host, Socket socket,
                 std::uint64_t client_id)
      : Connection(host, std::move(socket), client_id),
        gateway_(gateway),
        parser_(HttpParserLimits{gateway.options().max_head_bytes,
                                 gateway.options().max_body_bytes}) {
    gateway_.connections_total_->inc();
    gateway_.connections_active_->add(1);
  }

  ~HttpConnection() override { gateway_.connections_active_->add(-1); }

  Clock::time_point next_deadline() override {
    return std::min(header_deadline_, drain_deadline_);
  }

  void on_deadline() override {
    const Clock::time_point now = Clock::now();
    if (header_deadline_ != kNoConnDeadline && now >= header_deadline_) {
      // Slow-loris: the client has been sitting mid-request too long.
      header_deadline_ = kNoConnDeadline;
      send_simple(HttpGateway::Endpoint::kOther, 408, "application/json",
                  simple_error_body("timeout", "request not received in time"),
                  false, now, "", "");
    }
    if (drain_deadline_ != kNoConnDeadline && now >= drain_deadline_) {
      drain_deadline_ = kNoConnDeadline;
      const std::lock_guard<std::mutex> lock(mutex_);
      if (busy_) {
        // Grace expired mid-stream: the in-flight response always
        // finishes, but the connection must not return to keep-alive
        // afterwards — on_frame's last-frame path sees the cleared
        // flag and retires it, so the server's drain completes.
        resp_keep_alive_ = false;
      } else {
        read_done_ = true;  // Idle during drain past the grace: retire.
      }
    }
  }

  void on_loop_tick() override {
    if (host_.host_draining() && !drain_armed_) {
      drain_armed_ = true;
      drain_deadline_ =
          Clock::now() +
          std::chrono::milliseconds(gateway_.options().drain_grace_ms);
    }
    pump();
  }

 protected:
  bool on_bytes(std::string_view bytes) override {
    parser_.feed(bytes);
    pump();
    return true;  // Closure is signalled via read_done_, not the return.
  }

  bool wants_read_locked() const override { return !busy_; }

  /// Keep-alive connections stay; drain lingering is bounded by the
  /// grace deadline above, not by the base's immediate-on-drain rule.
  bool retire_when_idle_locked() const override { return read_done_; }

 private:
  using Endpoint = HttpGateway::Endpoint;

  /// Parses and dispatches as many buffered requests as possible.
  /// Requests behind a streaming response wait (busy_); the poll loop
  /// re-enters here from on_loop_tick() once the stream finishes.
  void pump() {
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!open_ || read_done_ || busy_) {
          break;
        }
      }
      HttpRequest request;
      if (!parser_.next(request)) {
        break;
      }
      handle_request(std::move(request));
    }
    if (parser_.failed() && !parse_error_sent_) {
      parse_error_sent_ = true;
      gateway_.parse_errors_total_->inc();
      send_simple(Endpoint::kOther, parser_.error_status(), "application/json",
                  simple_error_body("bad_request", parser_.error()), false,
                  Clock::now(), "", "");
    }
    // Arm the slow-loris timer only while idle-parsing: buffered
    // pipelined requests behind a long streaming response must not
    // count as a stalled client.
    bool busy;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      busy = busy_;
    }
    if (parser_.failed() || busy || !parser_.mid_request()) {
      header_deadline_ = kNoConnDeadline;
    } else if (header_deadline_ == kNoConnDeadline) {
      header_deadline_ =
          Clock::now() +
          std::chrono::milliseconds(gateway_.options().header_timeout_ms);
    }
  }

  void handle_request(HttpRequest request) {
    const Clock::time_point start = Clock::now();
    const std::string path =
        request.target.substr(0, request.target.find('?'));
    const bool draining = host_.host_draining();
    const bool keep = request.keep_alive && !draining;

    // Probe endpoints answer even during drain — a load balancer must
    // be able to see "draining" rather than a refused connection.
    if (path == "/healthz") {
      if (request.method != "GET") {
        send_method_not_allowed(Endpoint::kHealthz, "GET", request, start,
                                keep);
        return;
      }
      const ServiceHealth health = gateway_.service_.health();
      send_simple(Endpoint::kHealthz, health.accepting ? 200 : 503,
                  "application/json", health.to_json(), keep, start,
                  request.method, request.target);
      return;
    }
    if (path == "/metrics") {
      if (request.method != "GET") {
        send_method_not_allowed(Endpoint::kMetrics, "GET", request, start,
                                keep);
        return;
      }
      send_simple(Endpoint::kMetrics, 200,
                  "text/plain; version=0.0.4; charset=utf-8",
                  gateway_.registry_.scrape(), keep, start, request.method,
                  request.target);
      return;
    }
    if (path == "/v1/trace") {
      // Answers during drain like /metrics: the trace of a misbehaving
      // shutdown is exactly what an operator wants to pull. Draining
      // the ring consumes it — each GET returns only events recorded
      // since the previous one.
      if (request.method != "GET") {
        send_method_not_allowed(Endpoint::kTrace, "GET", request, start,
                                keep);
        return;
      }
      send_simple(Endpoint::kTrace, 200, "application/json",
                  trace::drain_json(), keep, start, request.method,
                  request.target);
      return;
    }
    if (draining) {
      const ServiceError error = make_error(
          ErrorCode::kDraining,
          "server is draining; this connection will close");
      send_simple(endpoint_for(path), error_http_status(error.code),
                  "application/json", error_body(error), false, start,
                  request.method, request.target);
      return;
    }
    if (path == "/v1/stats") {
      if (request.method != "GET") {
        send_method_not_allowed(Endpoint::kStats, "GET", request, start, keep);
        return;
      }
      send_simple(Endpoint::kStats, 200, "application/json",
                  gateway_.service_.stats().to_json(), keep, start,
                  request.method, request.target);
      return;
    }
    if (path == "/v1/sample" || path == "/v1/detect") {
      const bool detect = path == "/v1/detect";
      const Endpoint endpoint =
          detect ? Endpoint::kDetect : Endpoint::kSample;
      if (request.method != "POST") {
        send_method_not_allowed(endpoint, "POST", request, start, keep);
        return;
      }
      handle_submit(std::move(request), endpoint, detect, start, keep);
      return;
    }
    constexpr std::string_view kCancelPrefix = "/v1/cancel/";
    if (path.rfind(kCancelPrefix, 0) == 0) {
      if (request.method != "POST") {
        send_method_not_allowed(Endpoint::kCancel, "POST", request, start,
                                keep);
        return;
      }
      const std::string_view id_text =
          std::string_view(path).substr(kCancelPrefix.size());
      std::uint64_t ticket = 0;
      const auto [ptr, ec] = std::from_chars(
          id_text.data(), id_text.data() + id_text.size(), ticket);
      if (id_text.empty() || ec != std::errc() ||
          ptr != id_text.data() + id_text.size() || ticket == 0) {
        send_simple(Endpoint::kCancel, 400, "application/json",
                    simple_error_body("bad_request",
                                      "cancel target must be a ticket id"),
                    keep, start, request.method, request.target);
        return;
      }
      if (gateway_.service_.cancel(ticket)) {
        send_simple(Endpoint::kCancel, 200, "application/json",
                    "{\"cancelled\":true,\"ticket\":" +
                        std::to_string(ticket) + "}\n",
                    keep, start, request.method, request.target);
      } else {
        send_simple(Endpoint::kCancel, 404, "application/json",
                    simple_error_body(
                        "not_found",
                        "ticket unknown or request already finished"),
                    keep, start, request.method, request.target);
      }
      return;
    }
    send_simple(Endpoint::kOther, 404, "application/json",
                simple_error_body("not_found", "no such endpoint"), keep,
                start, request.method, request.target);
  }

  void handle_submit(HttpRequest http, Endpoint endpoint, bool detect,
                     Clock::time_point start, bool keep) {
    SampleRequest request;
    try {
      request = translate_json_request(http.body, detect);
    } catch (const std::invalid_argument& e) {
      send_simple(endpoint, 400, "application/json",
                  simple_error_body("bad_circuit", e.what()), keep, start,
                  http.method, http.target);
      return;
    }
    // The gateway always asks for the stage summary: it arrives as the
    // kFrameTiming final frame and becomes the Server-Timing trailer,
    // never part of the decoded body.
    request.want_timing = true;
    const std::uint64_t seq = next_seq_++;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      busy_ = true;
      // Workers hold their first frame until the scheduler ticket is
      // known, so the Symphase-Ticket header is always present.
      awaiting_ticket_ = true;
      headers_sent_ = false;
      resp_keep_alive_ = keep;
      resp_endpoint_ = endpoint;
      resp_method_ = http.method;
      resp_target_ = http.target;
      resp_start_ = start;
      resp_bytes_ = 0;
      pending_ticket_ = 0;
      inflight_.emplace(seq, 0);
    }
    auto self = shared_from_this();
    FrameFn emit = [self, seq](const FrameHeader& header,
                               std::string_view payload) {
      self->on_frame(seq, header, payload);
    };
    ServiceError rejection;
    const std::uint64_t ticket = gateway_.service_.try_submit(
        seq, std::move(request), std::move(emit), client_id(), &rejection,
        /*transport=*/"http");
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      awaiting_ticket_ = false;
      if (ticket == 0) {
        inflight_.erase(seq);
        busy_ = false;
      } else {
        const auto it = inflight_.find(seq);
        if (it != inflight_.end()) {
          // Still streaming (the final frame can race try_submit()'s
          // return; if it won, the entry is already gone).
          it->second = ticket;
        }
        pending_ticket_ = ticket;
      }
    }
    space_.notify_all();  // Release workers parked on awaiting_ticket_.
    if (ticket == 0) {
      send_simple(endpoint, error_http_status(rejection.code),
                  "application/json", error_body(rejection), keep, start,
                  http.method, http.target, rejection.retry_after_ms);
    }
  }

  /// One response frame from the service (worker threads; the poll
  /// thread for queued-cancel errors). Translates frames to HTTP:
  /// first frame decides the status line, data frames become chunks,
  /// the final frame finishes the response and frees the pipeline.
  void on_frame(std::uint64_t seq, const FrameHeader& header,
                std::string_view payload) {
    bool wake = false;
    bool completed = false;
    int status = 200;
    Endpoint endpoint{};
    std::uint64_t bytes = 0;
    double seconds = 0;
    std::string method;
    std::string target;
    std::uint64_t ticket = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!host_.host_on_loop_thread()) {
        space_.wait(lock, [&] {
          return !open_ ||
                 (!awaiting_ticket_ &&
                  pending_out_locked() < host_.host_max_outbound());
        });
      }
      const bool last = (header.flags & kFrameLast) != 0;
      const bool error = (header.flags & kFrameError) != 0;
      const bool timing = (header.flags & kFrameTiming) != 0;
      if (open_) {
        if (error) {
          const ServiceError err = parse_error_payload(payload);
          status = error_http_status(err.code);
          if (!headers_sent_) {
            const std::string body = error_body(err);
            append_response_head(outbound_, status, "application/json",
                                 body.size(), resp_keep_alive_,
                                 err.retry_after_ms, nullptr);
            outbound_ += body;
            headers_sent_ = true;
            resp_bytes_ += body.size();
          } else {
            // The 200 header is already on the wire: terminate the
            // chunked body WITHOUT the final 0-chunk so the client
            // detects the truncation, and close the connection.
            resp_keep_alive_ = false;
          }
        } else {
          if (!headers_sent_) {
            append_stream_head(outbound_, resp_keep_alive_, pending_ticket_);
            headers_sent_ = true;
          }
          if (!timing && !payload.empty()) {
            append_chunk(outbound_, payload);
            resp_bytes_ += payload.size();
          }
          if (last) {
            // The declared Server-Timing trailer: the timing frame's
            // payload, verbatim. An empty trailer section is still a
            // valid chunked terminator if the frame had none.
            outbound_ += "0\r\n";
            if (timing && !payload.empty()) {
              outbound_ += "Server-Timing: ";
              outbound_.append(payload.data(), payload.size());
              outbound_ += "\r\n";
            }
            outbound_ += "\r\n";
          }
        }
        wake = true;
      }
      if (last) {
        inflight_.erase(seq);
        busy_ = false;
        if (!resp_keep_alive_) {
          read_done_ = true;
        }
        completed = open_;  // Log/meter only responses actually delivered.
        endpoint = resp_endpoint_;
        bytes = resp_bytes_;
        seconds = std::chrono::duration<double>(Clock::now() - resp_start_)
                      .count();
        method = resp_method_;
        target = resp_target_;
        ticket = pending_ticket_;
        wake = true;  // The loop must resume the pipeline (or retire).
      }
    }
    if (wake) {
      host_.host_wake();
    }
    if (completed) {
      gateway_.finish_request(endpoint, status, bytes, seconds, client_id(),
                              method, target, ticket, seq);
    }
  }

  /// Builds and enqueues a complete fixed-length response. Poll thread
  /// only (bypasses the outbound cap like every loop-thread send).
  void send_simple(Endpoint endpoint, int status, std::string_view content_type,
                   std::string body, bool keep, Clock::time_point start,
                   const std::string& method, const std::string& target,
                   std::uint64_t retry_after_ms = 0,
                   const char* allow = nullptr) {
    bool delivered = false;
    send_locked([&] {
      if (!open_) {
        return false;
      }
      append_response_head(outbound_, status, content_type, body.size(), keep,
                           retry_after_ms, allow);
      outbound_ += body;
      if (!keep) {
        read_done_ = true;
      }
      delivered = true;
      return true;
    });
    if (delivered) {
      gateway_.finish_request(
          endpoint, status, body.size(),
          std::chrono::duration<double>(Clock::now() - start).count(),
          client_id(), method, target, /*ticket=*/0, /*request_id=*/0);
    }
  }

  void send_method_not_allowed(Endpoint endpoint, const char* allow,
                               const HttpRequest& request,
                               Clock::time_point start, bool keep) {
    send_simple(endpoint, 405, "application/json",
                simple_error_body("method_not_allowed",
                                  std::string("use ") + allow),
                keep, start, request.method, request.target, 0, allow);
  }

  static Endpoint endpoint_for(const std::string& path) {
    if (path == "/v1/sample") return Endpoint::kSample;
    if (path == "/v1/detect") return Endpoint::kDetect;
    if (path == "/v1/stats") return Endpoint::kStats;
    if (path == "/v1/trace") return Endpoint::kTrace;
    if (path.rfind("/v1/cancel/", 0) == 0) return Endpoint::kCancel;
    return Endpoint::kOther;
  }

  HttpGateway& gateway_;

  // --- Poll-thread-only state ---
  HttpParser parser_;
  bool parse_error_sent_ = false;
  bool drain_armed_ = false;
  Clock::time_point header_deadline_ = kNoConnDeadline;
  Clock::time_point drain_deadline_ = kNoConnDeadline;
  std::uint64_t next_seq_ = 1;

  // --- Shared with service workers; guarded by the base mutex_ ---
  bool busy_ = false;            ///< A sample/detect response is streaming.
  bool awaiting_ticket_ = false; ///< try_submit() hasn't returned yet.
  bool headers_sent_ = false;
  bool resp_keep_alive_ = true;
  Endpoint resp_endpoint_ = Endpoint::kOther;
  std::string resp_method_;
  std::string resp_target_;
  Clock::time_point resp_start_{};
  std::uint64_t resp_bytes_ = 0;
  std::uint64_t pending_ticket_ = 0;
};

// ---------------------------------------------------------------------------
// HttpGateway

HttpGateway::HttpGateway(SamplingService& service, HttpGatewayOptions options)
    : service_(service), options_(std::move(options)) {
  connections_total_ = &registry_.counter(
      "http_connections_total", "HTTP connections accepted");
  connections_active_ =
      &registry_.gauge("http_connections_active", "Open HTTP connections");
  parse_errors_total_ = &registry_.counter(
      "http_parse_errors_total", "Requests rejected by the HTTP parser");
  response_bytes_total_ = &registry_.counter(
      "http_response_bytes_total", "Response bytes enqueued to HTTP clients");
  for (int i = 0; i <= static_cast<int>(Endpoint::kOther); ++i) {
    latency_[i] = &registry_.histogram(
        "http_request_duration_seconds",
        "HTTP request latency from parse to final response byte enqueued",
        Histogram::default_latency_bounds(),
        {{"endpoint", endpoint_name(static_cast<Endpoint>(i))}});
    for (std::size_t s = 0; s < kNumStatusCodes; ++s) {
      requests_[i][s] = &registry_.counter(
          "http_requests_total", "HTTP requests by endpoint and status code",
          {{"endpoint", endpoint_name(static_cast<Endpoint>(i))},
           {"code", std::to_string(kKnownStatusCodes[s])}});
    }
  }
  // The service keeps its own counters (ServiceStats/ServiceHealth);
  // expose them at scrape time instead of double-instrumenting the
  // hot paths.
  registry_.add_collector([this](std::string& out) {
    const ServiceStats s = service_.stats();
    const ServiceHealth h = service_.health();
    const auto counter = [&out](const char* name, const char* help,
                                std::uint64_t value) {
      out += std::string("# HELP ") + name + " " + help + "\n";
      out += std::string("# TYPE ") + name + " counter\n";
      append_metric_line(out, name, {}, value);
    };
    const auto gauge = [&out](const char* name, const char* help,
                              std::uint64_t value) {
      out += std::string("# HELP ") + name + " " + help + "\n";
      out += std::string("# TYPE ") + name + " gauge\n";
      append_metric_line(out, name, {}, value);
    };
    gauge("symphase_queue_depth", "Requests waiting in the scheduler queue",
          s.queue_depth);
    gauge("symphase_queue_peak", "Highest queue depth ever observed",
          s.queue_peak);
    gauge("symphase_shots_in_flight", "Shots queued plus running",
          s.shots_in_flight);
    gauge("symphase_active_jobs", "Requests currently executing",
          h.active_jobs);
    gauge("symphase_accepting",
          "1 while accepting new requests, 0 while draining",
          h.accepting ? 1 : 0);
    counter("symphase_cache_hits_total",
            "Requests served by a cached compiled session", s.hits);
    counter("symphase_cache_misses_total",
            "Requests that had to create a session", s.misses);
    counter("symphase_cache_evictions_total",
            "Sessions dropped by LRU pressure", s.evictions);
    counter("symphase_compiles_total", "Symbolic compilations", s.compiles);
    counter("symphase_frame_builds_total", "Frame-simulator builds",
            s.frame_builds);
    counter("symphase_requests_completed_total",
            "Requests finished successfully", s.completed);
    counter("symphase_requests_failed_total",
            "Requests that ended in an error frame", s.failed);
    counter("symphase_requests_cancelled_total",
            "Requests cancelled while queued or mid-stream", s.cancelled);
    counter("symphase_fused_requests_total",
            "Requests executed as members of a fused engine pass",
            s.fused_requests);
    counter("symphase_fusion_groups_total",
            "Fused engine passes (groups of two or more same-circuit "
            "requests)",
            s.fusion_groups);
    counter("symphase_requests_expired_running_total",
            "Requests cut mid-run by the watchdog (deadline or execution "
            "cap); pre-run deadline rejections stay in "
            "symphase_requests_rejected_total",
            s.expired_running);
    counter("symphase_exec_timeouts_total",
            "Watchdog enforcements of the per-request execution "
            "wall-clock cap",
            s.exec_timeouts);
    counter("symphase_stalled_requests",
            "In-flight runs flagged for making no shard-chunk progress "
            "for stall_warn_ms",
            s.stalled);
    counter("symphase_worker_restarts_total",
            "Worker threads respawned after an escaped exception",
            s.worker_restarts);
    counter("symphase_error_emit_failures_total",
            "Error frames the transport emitter failed to deliver",
            s.error_emit_failures);
    gauge("symphase_longest_running_ms",
          "Age in milliseconds of the oldest in-flight run",
          s.longest_running_ms);
    gauge("symphase_workers_alive", "Live worker threads", s.workers_alive);
    gauge("symphase_trace_enabled",
          "1 while request-lifecycle trace recording is on",
          trace::enabled() ? 1 : 0);
    counter("symphase_trace_dropped_events_total",
            "Trace events overwritten in a ring buffer before a drain "
            "collected them",
            trace::dropped_events());
    out += "# HELP symphase_requests_rejected_total Requests turned away "
           "before execution, by reason\n"
           "# TYPE symphase_requests_rejected_total counter\n";
    append_metric_line(out, "symphase_requests_rejected_total",
                       {{"reason", "deadline_expired"}}, s.rejected_expired);
    append_metric_line(out, "symphase_requests_rejected_total",
                       {{"reason", "queue_full"}}, s.rejected_queue_full);
    append_metric_line(out, "symphase_requests_rejected_total",
                       {{"reason", "rate_limited"}}, s.rejected_rate_limited);
    append_metric_line(out, "symphase_requests_rejected_total",
                       {{"reason", "draining"}}, s.rejected_draining);
    out += "# HELP symphase_served_total Successfully completed requests "
           "by priority class\n"
           "# TYPE symphase_served_total counter\n";
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
      append_metric_line(
          out, "symphase_served_total",
          {{"priority",
            std::string(priority_name(static_cast<RequestPriority>(i)))}},
          s.served[i]);
    }
  });
}

HttpGateway::~HttpGateway() = default;

const char* HttpGateway::endpoint_name(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kSample: return "/v1/sample";
    case Endpoint::kDetect: return "/v1/detect";
    case Endpoint::kStats: return "/v1/stats";
    case Endpoint::kMetrics: return "/metrics";
    case Endpoint::kHealthz: return "/healthz";
    case Endpoint::kCancel: return "/v1/cancel";
    case Endpoint::kTrace: return "/v1/trace";
    case Endpoint::kOther: return "other";
  }
  return "other";
}

std::shared_ptr<Connection> HttpGateway::make_connection(
    ConnectionHost& host, Socket socket, std::uint64_t client_id) {
  return std::make_shared<HttpConnection>(*this, host, std::move(socket),
                                          client_id);
}

int HttpGateway::status_slot(int status) {
  for (std::size_t i = 0; i < kNumStatusCodes; ++i) {
    if (kKnownStatusCodes[i] == status) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void HttpGateway::finish_request(Endpoint endpoint, int status,
                                 std::uint64_t bytes, double seconds,
                                 std::uint64_t client_id,
                                 const std::string& method,
                                 const std::string& target,
                                 std::uint64_t ticket,
                                 std::uint64_t request_id) {
  const int slot = status_slot(status);
  if (slot >= 0) {
    requests_[static_cast<int>(endpoint)][slot]->inc();
  } else {
    // A status outside kKnownStatusCodes is unreachable today; keep the
    // counter total anyway via the cold registry path.
    registry_
        .counter("http_requests_total",
                 "HTTP requests by endpoint and status code",
                 {{"endpoint", endpoint_name(endpoint)},
                  {"code", std::to_string(status)}})
        .inc();
  }
  latency_[static_cast<int>(endpoint)]->observe(seconds);
  response_bytes_total_->inc(bytes);
  if (!options_.log_json && !options_.log_sink) {
    return;
  }
  std::string line = "{\"ts_ms\":";
  line += std::to_string(now_unix_ms());
  line += ",\"client\":";
  line += std::to_string(client_id);
  line += ",\"method\":\"";
  line += json_escape(method);
  line += "\",\"target\":\"";
  line += json_escape(target);
  line += "\",\"status\":";
  line += std::to_string(status);
  line += ",\"bytes\":";
  line += std::to_string(bytes);
  line += ",\"duration_ms\":";
  char duration[32];
  std::snprintf(duration, sizeof duration, "%.3f", seconds * 1e3);
  line += duration;
  if (request_id != 0) {
    // The submit-path correlation key: matches `"id"` on watchdog and
    // slow_request events and the `id` arg of trace spans.
    line += ",\"id\":";
    line += std::to_string(request_id);
  }
  if (ticket != 0) {
    line += ",\"ticket\":";
    line += std::to_string(ticket);
  }
  line += "}";
  if (options_.log_sink) {
    options_.log_sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace symphase
