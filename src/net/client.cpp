#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"

namespace symphase {

namespace {

/// Request messages are split at this payload size — far below the
/// server's inbound cap, while still exercising multi-frame assembly
/// for big inline circuits.
constexpr std::size_t kRequestFramePayload = 1u << 20;

}  // namespace

ServiceClient::ServiceClient(const std::string& address,
                             std::size_t max_frame_payload)
    : socket_(tcp_connect(parse_host_port(address))),
      decoder_(max_frame_payload) {}

void ServiceClient::send_message(std::uint64_t request_id,
                                 std::string_view payload) {
  std::uint32_t chunk = 0;
  std::size_t offset = 0;
  do {
    const std::string_view slice =
        payload.substr(offset, kRequestFramePayload);
    offset += slice.size();
    FrameHeader header;
    header.request_id = request_id;
    header.chunk_index = chunk++;
    if (offset >= payload.size()) {
      header.flags = kFrameLast;
    }
    send_all(socket_.fd(), encode_frame(header, slice));
  } while (offset < payload.size());
}

void ServiceClient::submit(std::uint64_t request_id,
                           const SampleRequest& request) {
  SYMPHASE_CHECK_MSG(request_id != 0 && request_id < (std::uint64_t{1} << 32),
                     "client request ids must be in [1, 2^32)");
  send_message(request_id, encode_request_payload(request));
}

bool ServiceClient::next_chunk(Frame& out) {
  for (;;) {
    if (decoder_.next(out)) {
      return true;
    }
    if (decoder_.failed()) {
      throw std::runtime_error("protocol error from server: " +
                               decoder_.error());
    }
    if (eof_) {
      if (!decoder_.finish()) {
        throw std::runtime_error("connection ended mid-frame: " +
                                 decoder_.error());
      }
      return false;
    }
    char buffer[1 << 16];
    const ssize_t got = ::recv(socket_.fd(), buffer, sizeof buffer, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    if (got == 0) {
      eof_ = true;
      continue;
    }
    decoder_.feed({buffer, static_cast<std::size_t>(got)});
  }
}

MessageAssembler::Message ServiceClient::await(std::uint64_t request_id) {
  const auto ready = completed_.find(request_id);
  if (ready != completed_.end()) {
    MessageAssembler::Message message = std::move(ready->second);
    completed_.erase(ready);
    return message;
  }
  Frame frame;
  while (next_chunk(frame)) {
    auto message = assembler_.accept(frame);
    if (assembler_.failed()) {
      throw std::runtime_error("protocol error from server: " +
                               assembler_.error());
    }
    if (!message) {
      continue;
    }
    if (message->request_id == request_id) {
      return std::move(*message);
    }
    completed_[message->request_id] = std::move(*message);
  }
  throw std::runtime_error("connection closed before request " +
                           std::to_string(request_id) + " completed");
}

MessageAssembler::Message ServiceClient::transact(
    const SampleRequest& request) {
  const std::uint64_t id = next_internal_id_++;
  send_message(id, encode_request_payload(request));
  return await(id);
}

std::string ServiceClient::register_circuit(std::string_view circuit_text) {
  SampleRequest request;
  request.verb = RequestVerb::kRegister;
  request.circuit_text = std::string(circuit_text);
  MessageAssembler::Message reply = transact(request);
  if (reply.error) {
    throw std::runtime_error("register failed: " + reply.error_text);
  }
  // Reply is "digest=<hex>\n".
  const std::string_view payload = reply.payload;
  constexpr std::string_view kPrefix = "digest=";
  if (payload.substr(0, kPrefix.size()) != kPrefix) {
    throw std::runtime_error("malformed register reply: " + reply.payload);
  }
  std::string digest(payload.substr(kPrefix.size()));
  if (!digest.empty() && digest.back() == '\n') {
    digest.pop_back();
  }
  return digest;
}

std::string ServiceClient::stats() {
  SampleRequest request;
  request.verb = RequestVerb::kStats;
  MessageAssembler::Message reply = transact(request);
  if (reply.error) {
    throw std::runtime_error("stats failed: " + reply.error_text);
  }
  return reply.payload;
}

bool ServiceClient::cancel(std::uint64_t request_id) {
  SampleRequest request;
  request.verb = RequestVerb::kCancel;
  request.cancel_id = request_id;
  return !transact(request).error;
}

void ServiceClient::finish_writes() {
  if (socket_.valid()) {
    (void)::shutdown(socket_.fd(), SHUT_WR);
  }
}

}  // namespace symphase
