#include "net/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/check.hpp"

namespace symphase {

namespace {

/// Request messages are split at this payload size — far below the
/// server's inbound cap, while still exercising multi-frame assembly
/// for big inline circuits.
constexpr std::size_t kRequestFramePayload = 1u << 20;

}  // namespace

ServiceClient::ServiceClient(const std::string& address,
                             std::size_t max_frame_payload)
    : socket_(tcp_connect(parse_host_port(address))),
      decoder_(max_frame_payload) {}

void ServiceClient::send_message(std::uint64_t request_id,
                                 std::string_view payload) {
  std::uint32_t chunk = 0;
  std::size_t offset = 0;
  do {
    const std::string_view slice =
        payload.substr(offset, kRequestFramePayload);
    offset += slice.size();
    FrameHeader header;
    header.request_id = request_id;
    header.chunk_index = chunk++;
    if (offset >= payload.size()) {
      header.flags = kFrameLast;
    }
    send_all(socket_.fd(), encode_frame(header, slice));
  } while (offset < payload.size());
}

void ServiceClient::submit(std::uint64_t request_id,
                           const SampleRequest& request) {
  SYMPHASE_CHECK_MSG(request_id != 0 && request_id < (std::uint64_t{1} << 32),
                     "client request ids must be in [1, 2^32)");
  send_message(request_id, encode_request_payload(request));
}

void ServiceClient::set_receive_deadline(std::uint64_t ms_from_now) {
  has_deadline_ = ms_from_now != 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms_from_now);
  }
}

bool ServiceClient::next_chunk(Frame& out) {
  for (;;) {
    if (decoder_.next(out)) {
      return true;
    }
    if (decoder_.failed()) {
      throw std::runtime_error("protocol error from server: " +
                               decoder_.error());
    }
    if (eof_) {
      if (!decoder_.finish()) {
        throw std::runtime_error("connection ended mid-frame: " +
                                 decoder_.error());
      }
      return false;
    }
    if (has_deadline_) {
      // Bounded wait for readability so a stalled server cannot park
      // us in recv() past the deadline.
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline_ - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        throw ClientTimeout("receive deadline expired");
      }
      pollfd pfd{socket_.fd(), POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                              remaining.count(), 1000 * 60 * 60)));
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw std::runtime_error(std::string("poll: ") +
                                 std::strerror(errno));
      }
      if (ready == 0) {
        continue;  // re-check the deadline, then wait again
      }
    }
    char buffer[1 << 16];
    const ssize_t got = ::recv(socket_.fd(), buffer, sizeof buffer, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("recv: ") + std::strerror(errno));
    }
    if (got == 0) {
      eof_ = true;
      continue;
    }
    decoder_.feed({buffer, static_cast<std::size_t>(got)});
  }
}

MessageAssembler::Message ServiceClient::await(std::uint64_t request_id) {
  const auto ready = completed_.find(request_id);
  if (ready != completed_.end()) {
    MessageAssembler::Message message = std::move(ready->second);
    completed_.erase(ready);
    return message;
  }
  Frame frame;
  while (next_chunk(frame)) {
    auto message = assembler_.accept(frame);
    if (assembler_.failed()) {
      throw std::runtime_error("protocol error from server: " +
                               assembler_.error());
    }
    if (!message) {
      continue;
    }
    if (message->request_id == request_id) {
      return std::move(*message);
    }
    completed_[message->request_id] = std::move(*message);
  }
  throw std::runtime_error("connection closed before request " +
                           std::to_string(request_id) + " completed");
}

MessageAssembler::Message ServiceClient::transact(
    const SampleRequest& request) {
  const std::uint64_t id = next_internal_id_++;
  send_message(id, encode_request_payload(request));
  return await(id);
}

std::string ServiceClient::register_circuit(std::string_view circuit_text) {
  SampleRequest request;
  request.verb = RequestVerb::kRegister;
  request.circuit_text = std::string(circuit_text);
  MessageAssembler::Message reply = transact(request);
  if (reply.error) {
    throw std::runtime_error("register failed: " + reply.error_text);
  }
  // Reply is "digest=<hex>\n".
  const std::string_view payload = reply.payload;
  constexpr std::string_view kPrefix = "digest=";
  if (payload.substr(0, kPrefix.size()) != kPrefix) {
    throw std::runtime_error("malformed register reply: " + reply.payload);
  }
  std::string digest(payload.substr(kPrefix.size()));
  if (!digest.empty() && digest.back() == '\n') {
    digest.pop_back();
  }
  return digest;
}

std::string ServiceClient::stats(bool json) {
  SampleRequest request;
  request.verb = RequestVerb::kStats;
  request.stats_json = json;
  MessageAssembler::Message reply = transact(request);
  if (reply.error) {
    throw std::runtime_error("stats failed: " + reply.error_text);
  }
  return reply.payload;
}

std::string ServiceClient::health(bool json) {
  SampleRequest request;
  request.verb = RequestVerb::kHealth;
  request.stats_json = json;
  MessageAssembler::Message reply = transact(request);
  if (reply.error) {
    throw std::runtime_error("health failed: " + reply.error_text);
  }
  return reply.payload;
}

bool ServiceClient::cancel(std::uint64_t request_id) {
  SampleRequest request;
  request.verb = RequestVerb::kCancel;
  request.cancel_id = request_id;
  return !transact(request).error;
}

void ServiceClient::finish_writes() {
  if (socket_.valid()) {
    (void)::shutdown(socket_.fd(), SHUT_WR);
  }
}

void ServiceClient::abort_connection() {
  if (!socket_.valid()) {
    return;
  }
  // SO_LINGER{on, 0} turns close() into an RST: the server sees
  // ECONNRESET now instead of an EOF that asks it to finish the work.
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  (void)::setsockopt(socket_.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  socket_.close_fd();
}

ResilientClient::ResilientClient(std::string address, RetryPolicy policy)
    : address_(std::move(address)),
      policy_(policy),
      // Jitter decorrelates retry storms across clients; it need not be
      // reproducible (response bytes are pinned by the request's seed,
      // not by when we retried).
      jitter_(std::random_device{}()) {}

void ResilientClient::backoff(std::size_t attempt, std::uint64_t hint_ms) {
  std::uint64_t base = policy_.initial_backoff_ms;
  for (std::size_t i = 0; i < attempt && base < policy_.max_backoff_ms; ++i) {
    base *= 2;
  }
  base = std::min(std::max<std::uint64_t>(base, 1), policy_.max_backoff_ms);
  // Full jitter over the top half of the window, floored at the
  // server's own hint — it knows when capacity frees up.
  std::uniform_int_distribution<std::uint64_t> dist(base / 2, base);
  const std::uint64_t sleep_ms = std::max(dist(jitter_), hint_ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

ResilientClient::Result ResilientClient::run(
    const SampleRequest& request,
    const std::function<void(std::string_view)>& on_data) {
  SYMPHASE_CHECK_MSG(request.verb == RequestVerb::kSample ||
                         request.verb == RequestVerb::kDetect,
                     "ResilientClient::run takes sample/detect requests");
  Result result;
  // Payload bytes already handed to on_data across all attempts; a
  // replayed (bit-identical) stream skips this prefix.
  std::size_t delivered = 0;
  for (std::size_t attempt = 0;; ++attempt) {
    result.attempts = attempt + 1;
    const bool attempts_left = attempt < policy_.max_retries;
    bool retry_rejection = false;  // retryable error frame, retries left
    std::uint64_t hint_ms = 0;
    try {
      if (client_ == nullptr) {
        try {
          client_ = std::make_unique<ServiceClient>(address_);
        } catch (const std::exception& e) {
          result.failure = FailureKind::kConnect;
          result.detail = e.what();
          if (!attempts_left) {
            return result;
          }
          backoff(attempt, 0);
          continue;
        }
      }
      client_->set_receive_deadline(policy_.request_timeout_ms);
      client_->submit(1, request);
      std::size_t replayed = 0;  // response bytes seen this attempt
      Frame frame;
      bool stream_open = true;
      while (stream_open && client_->next_chunk(frame)) {
        if (frame.header.request_id != 1) {
          continue;
        }
        if ((frame.header.flags & kFrameError) != 0) {
          result.error = parse_error_payload(frame.payload);
          result.failure = FailureKind::kRejected;
          result.detail = result.error.message;
          if (!result.error.retryable || !attempts_left) {
            return result;
          }
          // The connection itself is healthy — the request id is free
          // again after its final (error) frame, so resubmit on it.
          retry_rejection = true;
          hint_ms = result.error.retry_after_ms;
          stream_open = false;
          continue;
        }
        if (!frame.payload.empty()) {
          std::string_view payload = frame.payload;
          if (replayed < delivered) {
            const std::size_t skip =
                std::min(payload.size(), delivered - replayed);
            replayed += skip;
            payload.remove_prefix(skip);
          }
          replayed += payload.size();
          if (!payload.empty()) {
            on_data(payload);
            delivered += payload.size();
          }
        }
        if ((frame.header.flags & kFrameLast) != 0) {
          client_->set_receive_deadline(0);
          result.ok = true;
          result.failure = FailureKind::kNone;
          return result;
        }
      }
      if (!retry_rejection) {
        throw std::runtime_error(
            "connection closed before the response completed");
      }
    } catch (const ClientTimeout&) {
      result.failure = FailureKind::kTimeout;
      result.detail = "request timed out after " +
                      std::to_string(policy_.request_timeout_ms) + " ms";
      // Abort (RST), don't close (FIN): a clean close asks the server
      // to finish the submitted work, an abort cancels it.
      client_->abort_connection();
      client_.reset();
      if (!attempts_left) {
        return result;
      }
    } catch (const std::exception& e) {
      result.failure = FailureKind::kTransport;
      result.detail = e.what();
      client_.reset();
      if (!attempts_left) {
        return result;
      }
    }
    backoff(attempt, hint_ms);
  }
}

}  // namespace symphase
