#pragma once

/// \file connection.hpp
/// Transport-agnostic connection half of the poll(2) server.
///
/// `symphase serve --listen` serves two protocols from one event loop:
/// the binary frame protocol (net/server.cpp) and the HTTP/1.1 gateway
/// (http/gateway.cpp). Everything that is about *being a connection on
/// that loop* — the socket, the outbound buffer and its slow-reader
/// backpressure, the open/read_done lifecycle, the in-flight request →
/// scheduler-ticket map that disconnect cancellation walks, retirement
/// — lives here, so a protocol implementation is only the parsing and
/// response-encoding layer on top.
///
/// Threading contract (inherited from the original frame server):
/// exactly one poll thread drives handle_readable()/handle_writable()/
/// close()/finished() and owns protocol parser state; service workers
/// call into the connection only through send_locked() when emitting
/// response bytes. send_locked() blocks workers while the outbound
/// buffer is over the host's cap — per-request backpressure against a
/// slow reader — but never blocks the poll thread itself (the only
/// drainer must not wait for space it would itself create).
///
/// Protocol hooks marked `_locked` are called with the connection
/// mutex held; subclasses guard their own cross-thread response state
/// (anything an emit callback touches) with that same mutex.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace symphase {

class SamplingService;

/// What a connection needs from the event loop that owns it. The
/// socket server's Impl is the one implementation; tests may stub it.
class ConnectionHost {
 public:
  virtual ~ConnectionHost() = default;
  virtual SamplingService& host_service() = 0;
  /// Wakes poll() (self-pipe); safe from any thread.
  virtual void host_wake() = 0;
  /// Per-connection cap on buffered unsent response bytes.
  virtual std::size_t host_max_outbound() const = 0;
  /// Whether the calling thread is the poll thread.
  virtual bool host_on_loop_thread() const = 0;
  /// Loop-thread view of a graceful drain in progress.
  virtual bool host_draining() const = 0;
};

class Connection {
 public:
  /// A deadline of kNoConnDeadline means "none".
  using Clock = std::chrono::steady_clock;
  static constexpr Clock::time_point kNoConnDeadline = Clock::time_point::max();

  Connection(ConnectionHost& host, Socket socket, std::uint64_t client_id);
  virtual ~Connection() = default;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // --- Poll-thread driver API ------------------------------------

  int fd() const { return socket_.fd(); }
  std::uint64_t client_id() const { return client_id_; }

  /// POLLIN/POLLOUT interest right now (0 when closed).
  short poll_events();

  /// Drains readable bytes into on_bytes(); handles EOF and errors.
  void handle_readable();

  /// Flushes outbound bytes; wakes workers waiting for buffer space.
  void handle_writable();

  /// Marks the connection closed and cancels every outstanding request
  /// it owns (queued ones leave the scheduler, in-flight ones stop at
  /// the next shard-chunk boundary). Idempotent. Must not be called
  /// with the connection mutex held.
  void close();

  /// Whether the connection should retire: closed, or idle (no open
  /// response stream, nothing left to flush) with no reason to stay.
  bool finished();

  /// Earliest protocol deadline (slow-loris header timers, drain
  /// grace); the loop's poll timeout is the minimum over connections.
  virtual Clock::time_point next_deadline() { return kNoConnDeadline; }

  /// Called when next_deadline() passed.
  virtual void on_deadline() {}

  /// Called once per loop iteration after I/O dispatch — protocols
  /// with internal queues (HTTP pipelining) resume work here.
  virtual void on_loop_tick() {}

 protected:
  // --- Protocol hooks (poll thread) -------------------------------

  /// Consumes freshly received bytes. Returning false is a
  /// session-fatal protocol error: reading stops, buffered responses
  /// still flush, then the connection retires.
  virtual bool on_bytes(std::string_view bytes) = 0;

  /// Clean EOF from the client (half-close). Responses keep flowing.
  virtual void on_read_end() {}

  /// Whether the protocol wants more inbound bytes right now. Called
  /// with the connection mutex held. HTTP returns false while a
  /// response streams (the kernel socket buffer then backpressures
  /// pipelined requests); frames always read.
  virtual bool wants_read_locked() const { return true; }

  /// Whether an idle connection (inflight empty, outbound flushed)
  /// should retire. Called with the connection mutex held. The frame
  /// protocol retires on EOF or drain; HTTP keeps keep-alive
  /// connections and bounds drain lingering with a grace deadline.
  virtual bool retire_when_idle_locked() const {
    return read_done_ || host_.host_draining();
  }

  // --- Shared machinery for subclasses -----------------------------

  /// Runs `fn` under the connection mutex after waiting — on worker
  /// threads only — for outbound space. `fn` appends response bytes to
  /// `outbound_` (after checking `open_`; a closed connection drops
  /// bytes) and updates protocol/inflight state; it runs even when
  /// closed so request completion is never lost. Returns true from
  /// `fn` to wake the poll loop.
  void send_locked(const std::function<bool()>& fn);

  std::size_t pending_out_locked() const { return outbound_.size() - offset_; }

  ConnectionHost& host_;
  Socket socket_;

  std::mutex mutex_;
  /// Workers wait here when the outbound buffer is full (slow reader).
  std::condition_variable space_;
  std::string outbound_;
  std::size_t offset_ = 0;  ///< Prefix of outbound_ already written.
  /// Response streams still open: protocol-scoped request key ->
  /// scheduler ticket (0 while submit() is still returning). close()
  /// cancels every nonzero ticket.
  std::map<std::uint64_t, std::uint64_t> inflight_;
  bool open_ = true;       ///< False once closed: emits become drops.
  /// EOF or protocol error: no more reads; the connection retires once
  /// its in-flight responses finished and the outbound buffer flushed.
  bool read_done_ = false;

 private:
  std::uint64_t client_id_ = 0;
};

}  // namespace symphase
