#include "net/fault.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace symphase {

FaultSocket::FaultSocket(Socket socket, FaultPlan plan)
    : socket_(std::move(socket)), plan_(std::move(plan)) {
  std::sort(plan_.tear_offsets.begin(), plan_.tear_offsets.end());
}

bool FaultSocket::send(std::string_view bytes) {
  while (!bytes.empty()) {
    if (!socket_.valid()) {
      return false;
    }
    if (sent_ == plan_.reset_after_bytes) {
      reset_now();
      return false;
    }
    if (sent_ == plan_.close_after_bytes) {
      close_writes_now();
      return false;
    }
    // The next slice ends at the nearest scripted event: a tear, the
    // reset/close offset, or the short-write cap.
    std::size_t limit = bytes.size();
    const auto tear = std::upper_bound(plan_.tear_offsets.begin(),
                                       plan_.tear_offsets.end(), sent_);
    if (tear != plan_.tear_offsets.end()) {
      limit = std::min(limit, *tear - sent_);
    }
    if (plan_.reset_after_bytes != FaultPlan::kNever &&
        plan_.reset_after_bytes > sent_) {
      limit = std::min(limit, plan_.reset_after_bytes - sent_);
    }
    if (plan_.close_after_bytes != FaultPlan::kNever &&
        plan_.close_after_bytes > sent_) {
      limit = std::min(limit, plan_.close_after_bytes - sent_);
    }
    limit = std::min(limit, plan_.max_write_chunk);

    const std::string_view slice = bytes.substr(0, limit);
    // MSG_NOSIGNAL: a peer that reset us must answer with EPIPE, not
    // kill the test process.
    const ssize_t n =
        ::send(socket_.fd(), slice.data(), slice.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("fault send: ") +
                               std::strerror(errno));
    }
    sent_ += static_cast<std::size_t>(n);
    bytes.remove_prefix(static_cast<std::size_t>(n));
    if (std::binary_search(plan_.tear_offsets.begin(),
                           plan_.tear_offsets.end(), sent_) &&
        plan_.stall.count() > 0) {
      std::this_thread::sleep_for(plan_.stall);
    }
  }
  // A plan event landing exactly on the end of the stream still fires.
  if (sent_ == plan_.reset_after_bytes) {
    reset_now();
    return false;
  }
  if (sent_ == plan_.close_after_bytes) {
    close_writes_now();
    return false;
  }
  return true;
}

std::size_t FaultSocket::recv_some(char* buffer, std::size_t size) {
  for (;;) {
    const ssize_t got = ::recv(socket_.fd(), buffer, size, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("fault recv: ") +
                               std::strerror(errno));
    }
    return static_cast<std::size_t>(got);
  }
}

void FaultSocket::reset_now() {
  if (!socket_.valid()) {
    return;
  }
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  (void)::setsockopt(socket_.fd(), SOL_SOCKET, SO_LINGER, &hard,
                     sizeof hard);
  socket_.close_fd();
}

void FaultSocket::close_writes_now() {
  if (socket_.valid()) {
    (void)::shutdown(socket_.fd(), SHUT_WR);
  }
}

}  // namespace symphase
