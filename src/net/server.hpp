#pragma once

/// \file server.hpp
/// The TCP transport of the sampling service: `symphase serve --listen`.
///
/// One poll(2)-driven event-loop thread owns every socket; the
/// SamplingService's worker pool does all compilation and sampling.
/// The same loop optionally serves the HTTP/JSON gateway on a second
/// listener (SocketServerOptions::http_listen): both protocols are
/// net/connection.hpp connections, sharing outbound buffering, worker
/// backpressure, disconnect cancellation, and drain.
/// Frames a worker emits are appended to the owning connection's
/// outbound buffer (bounded — a slow reader backpressures its own
/// requests, never the loop or other clients) and flushed by the loop
/// when the socket is writable; a self-pipe wakes poll() when a worker
/// enqueues. The wire protocol is service/wire.hpp *verbatim* — a
/// socket client and a `--stdio` client exchange byte-identical frame
/// streams (pinned by tests/socket_test.cpp over the corpus), so the
/// DAC-style chunked codeword framing stays the single contract across
/// transports.
///
/// Per connection, the server enforces the same session rules as the
/// stdio loop: request ids are scoped to the connection (the service
/// demultiplexes internally by ticket), id 0 is reserved, and reusing
/// an id whose response is still streaming is a protocol error that
/// ends that connection only. Disconnects cancel the connection's
/// queued and in-flight requests — abandoned work stops at the next
/// shard-chunk boundary instead of sampling into a void.
///
/// Verb differences from --stdio (documented in docs/service.md):
/// `stats` replies with a live snapshot instead of draining — a drain
/// would block the shared loop on every other client's work.
///
/// Shutdown comes in two shapes. shutdown() is immediate: every
/// connection closes, outstanding requests are cancelled. drain() is
/// graceful (the CLI maps SIGTERM to it): the listener closes, new
/// submissions are rejected with a structured `draining` error frame,
/// in-flight responses finish and flush, idle connections retire, and
/// run() returns true once the last connection is gone — the clean
/// exit-0 path under orchestrators.
///
///   SocketServer server({.listen = "127.0.0.1:0"});
///   std::thread loop([&] { server.run(); });
///   ServiceClient client("127.0.0.1:" + std::to_string(server.port()));
///   ...
///   server.shutdown();
///   loop.join();

#include <cstdint>
#include <memory>
#include <string>

#include "http/gateway.hpp"
#include "service/service.hpp"

namespace symphase {

struct SocketServerOptions {
  /// host:port to bind; port 0 picks an ephemeral port (see port()).
  std::string listen = "127.0.0.1:0";
  ServiceOptions service;
  /// Connections beyond this are accepted and immediately closed.
  /// Shared across the frame and HTTP listeners.
  std::size_t max_connections = 64;
  /// Per-connection cap on buffered unsent response bytes; a worker
  /// emitting past it blocks until the client drains (per-request
  /// backpressure against slow readers).
  std::size_t max_outbound_buffer = 64u << 20;
  /// Idle-read timeout for frame connections in milliseconds (0 = off):
  /// a connection with no request in flight and no inbound bytes for
  /// this long is answered with a `timeout` error frame (request id 0)
  /// and closed — the frame-protocol counterpart of the HTTP gateway's
  /// slow-loris 408. A client mid-request never idles out: in-flight
  /// responses reset the clock when they finish.
  std::uint64_t idle_timeout_ms = 0;
  /// host:port for the HTTP/JSON gateway (http/gateway.hpp), served
  /// from the same event loop; empty disables HTTP. Port 0 picks an
  /// ephemeral port (see http_port()).
  std::string http_listen;
  HttpGatewayOptions http;
};

class SocketServer {
 public:
  /// Binds the listen socket (throws on failure); the loop starts with
  /// run().
  explicit SocketServer(SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound port — the ephemeral one when the spec said port 0.
  std::uint16_t port() const;

  /// The bound HTTP gateway port; 0 when HTTP is disabled.
  std::uint16_t http_port() const;

  /// The gateway behind the HTTP listener (metrics registry access);
  /// nullptr when HTTP is disabled.
  HttpGateway* gateway();

  /// The event loop. Blocks the calling thread until shutdown();
  /// close/error on individual connections never ends it. Returns
  /// false when the loop died on an internal error (poll failure)
  /// instead of a requested shutdown.
  bool run();

  /// Thread-safe: wakes the loop, closes every connection (cancelling
  /// their outstanding requests), and makes run() return. Idempotent.
  void shutdown();

  /// Thread-safe and async-signal-safe (an atomic store plus a
  /// self-pipe write): starts a graceful drain. The loop stops
  /// accepting connections, the service rejects new requests with
  /// `draining`, in-flight work finishes and flushes, and run()
  /// returns once every connection retired. Idempotent; a subsequent
  /// shutdown() escalates to an immediate stop.
  void drain();

  /// The underlying service (stats, in-process submissions in tests).
  SamplingService& service();

  // Implementation detail, defined in server.cpp. (The per-connection
  // state that used to live here is now the transport-agnostic
  // net/connection.hpp, shared with the HTTP gateway.)
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace symphase
