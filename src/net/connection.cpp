#include "net/connection.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <vector>

#include "service/service.hpp"

namespace symphase {

Connection::Connection(ConnectionHost& host, Socket socket,
                       std::uint64_t client_id)
    : host_(host), socket_(std::move(socket)), client_id_(client_id) {}

short Connection::poll_events() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) {
    return 0;
  }
  short events = 0;
  if (!read_done_ && wants_read_locked()) {
    events |= POLLIN;
  }
  if (pending_out_locked() > 0) {
    events |= POLLOUT;
  }
  return events;
}

void Connection::send_locked(const std::function<bool()>& fn) {
  bool wake = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // The poll thread is the only drainer, so it must never wait for
    // space it would itself create (its own responses — verb replies,
    // error bodies — are small and bypass the cap). Worker threads do
    // wait: that is the slow-reader backpressure.
    if (!host_.host_on_loop_thread()) {
      space_.wait(lock, [&] {
        return !open_ || pending_out_locked() < host_.host_max_outbound();
      });
    }
    wake = fn();
  }
  if (wake) {
    host_.host_wake();
  }
}

void Connection::close() {
  std::vector<std::uint64_t> tickets;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!open_) {
      return;
    }
    open_ = false;
    read_done_ = true;
    for (const auto& [key, ticket] : inflight_) {
      if (ticket != 0) {
        tickets.push_back(ticket);
      }
    }
    socket_.close_fd();
  }
  space_.notify_all();
  // Abandoned by its client: queued requests leave the scheduler now,
  // in-flight ones stop at the next shard-chunk boundary. Their final
  // frames fall into the closed connection and are dropped.
  for (const std::uint64_t ticket : tickets) {
    host_.host_service().cancel(ticket);
  }
}

bool Connection::finished() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) {
    return true;
  }
  return retire_when_idle_locked() && inflight_.empty() &&
         pending_out_locked() == 0;
}

void Connection::handle_readable() {
  char buffer[1 << 16];
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!open_ || read_done_) {
        return;
      }
    }
    const ssize_t got = ::recv(socket_.fd(), buffer, sizeof buffer, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      close();
      return;
    }
    if (got == 0) {
      // Clean half-close: the client is done sending. Responses keep
      // flowing; the connection retires once the last one flushed.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        read_done_ = true;
      }
      on_read_end();
      return;
    }
    if (!on_bytes({buffer, static_cast<std::size_t>(got)})) {
      const std::lock_guard<std::mutex> lock(mutex_);
      read_done_ = true;
      return;
    }
  }
}

void Connection::handle_writable() {
  bool notify = false;
  bool broken = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!open_) {
      return;
    }
    while (offset_ < outbound_.size()) {
      const ssize_t n = ::send(socket_.fd(), outbound_.data() + offset_,
                               outbound_.size() - offset_, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        broken = true;
        break;
      }
      offset_ += static_cast<std::size_t>(n);
      notify = true;
    }
    if (offset_ == outbound_.size()) {
      outbound_.clear();
      offset_ = 0;
    } else if (offset_ > (1u << 20)) {
      // Reclaim the flushed prefix without quadratic churn.
      outbound_.erase(0, offset_);
      offset_ = 0;
    }
  }
  if (broken) {
    close();
  } else if (notify) {
    space_.notify_all();
  }
}

}  // namespace symphase
