#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/check.hpp"

namespace symphase {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: a transport that works without Nagle disabled still
  // works with it, just with worse small-frame latency.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

struct AddrInfoHolder {
  addrinfo* list = nullptr;
  AddrInfoHolder() = default;
  AddrInfoHolder(const AddrInfoHolder&) = delete;
  AddrInfoHolder& operator=(const AddrInfoHolder&) = delete;
  AddrInfoHolder(AddrInfoHolder&& other) noexcept : list(other.list) {
    other.list = nullptr;
  }
  AddrInfoHolder& operator=(AddrInfoHolder&&) = delete;
  ~AddrInfoHolder() {
    if (list != nullptr) {
      ::freeaddrinfo(list);
    }
  }
};

/// getaddrinfo over the parsed spec; empty host maps to the wildcard
/// (listen) or loopback (connect).
AddrInfoHolder resolve(const HostPort& at, bool for_listen) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = for_listen ? AI_PASSIVE : 0;
  const std::string port = std::to_string(at.port);
  AddrInfoHolder holder;
  const char* node = at.host.empty() ? nullptr : at.host.c_str();
  const int rc = ::getaddrinfo(node, port.c_str(), &hints, &holder.list);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve '" + at.host +
                             "': " + ::gai_strerror(rc));
  }
  return holder;
}

}  // namespace

void Socket::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

HostPort parse_host_port(std::string_view spec) {
  HostPort result;
  std::string_view host;
  std::string_view port;
  if (!spec.empty() && spec.front() == '[') {
    // [v6-literal]:port
    const std::size_t close = spec.find(']');
    SYMPHASE_CHECK_MSG(close != std::string_view::npos &&
                           close + 1 < spec.size() && spec[close + 1] == ':',
                       "malformed address '" << spec
                                             << "' (expected [host]:port)");
    host = spec.substr(1, close - 1);
    port = spec.substr(close + 2);
  } else {
    const std::size_t colon = spec.rfind(':');
    SYMPHASE_CHECK_MSG(colon != std::string_view::npos,
                       "malformed address '" << spec
                                             << "' (expected host:port)");
    host = spec.substr(0, colon);
    port = spec.substr(colon + 1);
  }
  SYMPHASE_CHECK_MSG(!port.empty() &&
                         port.find_first_not_of("0123456789") ==
                             std::string_view::npos &&
                         port.size() <= 5,
                     "malformed port in '" << spec << "'");
  const unsigned long value = std::stoul(std::string(port));
  SYMPHASE_CHECK_MSG(value <= 65535, "port out of range in '" << spec << "'");
  result.host = std::string(host);
  result.port = static_cast<std::uint16_t>(value);
  return result;
}

Socket tcp_listen(const HostPort& at) {
  const AddrInfoHolder addresses = resolve(at, /*for_listen=*/true);
  std::string last_error = "no addresses";
  for (addrinfo* ai = addresses.list; ai != nullptr; ai = ai->ai_next) {
    Socket socket(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!socket.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);
    if (::bind(socket.fd(), ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(socket.fd(), SOMAXCONN) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    return socket;
  }
  throw std::runtime_error("cannot listen on " + at.host + ":" +
                           std::to_string(at.port) + ": " + last_error);
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_storage addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw_errno("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  throw std::runtime_error("unexpected socket family");
}

Socket tcp_accept(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    return Socket();
  }
  set_nodelay(fd);
  return Socket(fd);
}

Socket tcp_connect(const HostPort& to) {
  HostPort target = to;
  if (target.host.empty()) {
    target.host = "127.0.0.1";
  }
  const AddrInfoHolder addresses = resolve(target, /*for_listen=*/false);
  std::string last_error = "no addresses";
  for (addrinfo* ai = addresses.list; ai != nullptr; ai = ai->ai_next) {
    Socket socket(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!socket.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(socket.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    set_nodelay(socket.fd());
    return socket;
  }
  throw std::runtime_error("cannot connect to " + target.host + ":" +
                           std::to_string(target.port) + ": " + last_error);
}

void set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    throw_errno("fcntl(F_GETFL)");
  }
  const int next = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) {
    throw_errno("fcntl(F_SETFL)");
  }
}

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace symphase
