#pragma once

/// \file socket.hpp
/// Thin POSIX TCP wrappers under the network transport (src/net/).
///
/// Everything here is deliberately minimal: an RAII fd owner, address
/// parsing, and the three operations the server/client need (listen,
/// accept, connect) plus blocking-write/nonblocking helpers. All
/// failures surface as std::runtime_error with errno text — no error
/// codes leak upward. The wire protocol itself lives one layer up
/// (service/wire.hpp) and is transport-agnostic; these sockets just
/// move its bytes.

#include <cstdint>
#include <string>
#include <string_view>

namespace symphase {

/// Move-only owner of a POSIX file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close_fd(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close_fd();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close_fd();

 private:
  int fd_ = -1;
};

struct HostPort {
  std::string host;  ///< Empty = all interfaces (listen only).
  std::uint16_t port = 0;
};

/// Parses "host:port" ("127.0.0.1:7777", ":0", "[::1]:7777"). Throws
/// std::invalid_argument on malformed specs.
HostPort parse_host_port(std::string_view spec);

/// Binds and listens on `at` (port 0 = ephemeral; read the bound port
/// back with local_port). SO_REUSEADDR is set.
Socket tcp_listen(const HostPort& at);

/// The locally bound port of a listening socket.
std::uint16_t local_port(const Socket& socket);

/// Accepts one pending connection (TCP_NODELAY set — the protocol
/// writes latency-sensitive small status frames). Returns an invalid
/// Socket on transient failures (EAGAIN, aborted handshake).
Socket tcp_accept(const Socket& listener);

/// Connects to `to` (blocking, TCP_NODELAY set).
Socket tcp_connect(const HostPort& to);

/// Toggles O_NONBLOCK.
void set_nonblocking(int fd, bool enable);

/// Blocking loop until all of `bytes` is written (retries EINTR).
void send_all(int fd, std::string_view bytes);

}  // namespace symphase
