#pragma once

/// \file client.hpp
/// Small C++ client for the sampling service's TCP transport.
///
/// One ServiceClient owns one connection and speaks the wire protocol
/// of service/wire.hpp: requests out as framed messages, responses back
/// as interleaved chunk streams demultiplexed by request id. It is the
/// library under `symphase sample --connect`, the socket differential
/// tests, and tools/bench_service.sh — and the reference for writing
/// clients in other languages (the protocol is 17-byte headers plus
/// payload; see docs/service.md).
///
/// Two consumption styles:
///  - next_chunk(): the raw frame stream, for incremental processing
///    (the CLI pipes data payloads straight to stdout). The caller
///    demultiplexes by header.request_id when several requests are in
///    flight.
///  - await(id): reads until request `id`'s message completes,
///    assembling every other in-flight response on the side (fetch
///    those later with await too). The request/reply helpers
///    (register_circuit / stats / cancel) are await-based, so do not
///    mix them with a concurrent next_chunk() loop — chunks consumed
///    inside await() are not replayed to next_chunk().
///
/// Caller-chosen request ids must be nonzero and below 2^32; ids at
/// 2^32 and above are reserved for the helpers' internal messages.
/// Not thread-safe: one thread per client (open several clients for
/// concurrent connections — they are cheap).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "net/socket.hpp"
#include "service/request.hpp"
#include "service/wire.hpp"

namespace symphase {

class ServiceClient {
 public:
  /// Connects to "host:port". Throws std::runtime_error on failure.
  ///
  /// `max_frame_payload` bounds accepted response frames. The default
  /// is the wire protocol's u32 length bound rather than the decoder's
  /// hostile-input default: a client talks to a server it chose, and
  /// that server's frame size follows its --max-frame option (up to
  /// 4 GiB - 1), which the client has no way to discover. Pass a
  /// smaller cap to bound memory against an untrusted server.
  explicit ServiceClient(const std::string& address,
                         std::size_t max_frame_payload = 0xffffffffu);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Registers a circuit, returning its digest handle. Throws
  /// std::runtime_error when the server answers with an error frame.
  std::string register_circuit(std::string_view circuit_text);

  /// The service stats line (the socket server snapshots; see
  /// docs/service.md).
  std::string stats();

  /// Sends a sample/detect request under `request_id` (nonzero, below
  /// 2^32, not currently in flight on this connection). Returns
  /// immediately; consume the response with next_chunk()/await().
  void submit(std::uint64_t request_id, const SampleRequest& request);

  /// Asks the server to cancel in-flight request `request_id`. Returns
  /// true when the server claimed the cancellation. Cancellation is
  /// cooperative: the request still ends with its own final frame —
  /// usually a `cancelled` error frame, but a request already past its
  /// last boundary check completes normally. Treat that final frame as
  /// the source of truth.
  bool cancel(std::uint64_t request_id);

  /// Blocking: the next response frame from the server, any request.
  /// Returns false on clean end-of-stream; throws on protocol errors.
  bool next_chunk(Frame& out);

  /// Blocking: reads until request `request_id`'s response completes
  /// and returns the assembled message (check .error / .error_text).
  /// Throws on protocol errors or connection loss before completion.
  MessageAssembler::Message await(std::uint64_t request_id);

  /// Half-closes the write side: the server sees EOF, finishes
  /// streaming what was submitted, and closes when done.
  void finish_writes();

 private:
  void send_message(std::uint64_t request_id, std::string_view payload);
  MessageAssembler::Message transact(const SampleRequest& request);

  Socket socket_;
  FrameDecoder decoder_;
  MessageAssembler assembler_;
  /// Messages completed inside await() for ids not yet asked about.
  std::map<std::uint64_t, MessageAssembler::Message> completed_;
  std::uint64_t next_internal_id_ = std::uint64_t{1} << 32;
  bool eof_ = false;
};

}  // namespace symphase
