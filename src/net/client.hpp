#pragma once

/// \file client.hpp
/// Small C++ client for the sampling service's TCP transport.
///
/// One ServiceClient owns one connection and speaks the wire protocol
/// of service/wire.hpp: requests out as framed messages, responses back
/// as interleaved chunk streams demultiplexed by request id. It is the
/// library under `symphase sample --connect`, the socket differential
/// tests, and tools/bench_service.sh — and the reference for writing
/// clients in other languages (the protocol is 17-byte headers plus
/// payload; see docs/service.md).
///
/// Two consumption styles:
///  - next_chunk(): the raw frame stream, for incremental processing
///    (the CLI pipes data payloads straight to stdout). The caller
///    demultiplexes by header.request_id when several requests are in
///    flight.
///  - await(id): reads until request `id`'s message completes,
///    assembling every other in-flight response on the side (fetch
///    those later with await too). The request/reply helpers
///    (register_circuit / stats / cancel) are await-based, so do not
///    mix them with a concurrent next_chunk() loop — chunks consumed
///    inside await() are not replayed to next_chunk().
///
/// Caller-chosen request ids must be nonzero and below 2^32; ids at
/// 2^32 and above are reserved for the helpers' internal messages.
/// Not thread-safe: one thread per client (open several clients for
/// concurrent connections — they are cheap).

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>

#include "net/socket.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"
#include "service/wire.hpp"

namespace symphase {

/// Thrown by ServiceClient reads when the receive deadline passes
/// before the server produced the next frame. Distinct from generic
/// transport errors so callers can map it to its own exit code.
struct ClientTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class ServiceClient {
 public:
  /// Connects to "host:port". Throws std::runtime_error on failure.
  ///
  /// `max_frame_payload` bounds accepted response frames. The default
  /// is the wire protocol's u32 length bound rather than the decoder's
  /// hostile-input default: a client talks to a server it chose, and
  /// that server's frame size follows its --max-frame option (up to
  /// 4 GiB - 1), which the client has no way to discover. Pass a
  /// smaller cap to bound memory against an untrusted server.
  explicit ServiceClient(const std::string& address,
                         std::size_t max_frame_payload = 0xffffffffu);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Registers a circuit, returning its digest handle. Throws
  /// std::runtime_error when the server answers with an error frame.
  std::string register_circuit(std::string_view circuit_text);

  /// The service stats line (the socket server snapshots; see
  /// docs/service.md). `json` selects the JSON rendering (`json=1`).
  std::string stats(bool json = false);

  /// The service health line ("state=accepting|draining ..."). Never
  /// blocks behind queued work server-side. `json` as in stats().
  std::string health(bool json = false);

  /// Sends a sample/detect request under `request_id` (nonzero, below
  /// 2^32, not currently in flight on this connection). Returns
  /// immediately; consume the response with next_chunk()/await().
  void submit(std::uint64_t request_id, const SampleRequest& request);

  /// Asks the server to cancel in-flight request `request_id`. Returns
  /// true when the server claimed the cancellation. Cancellation is
  /// cooperative: the request still ends with its own final frame —
  /// usually a `cancelled` error frame, but a request already past its
  /// last boundary check completes normally. Treat that final frame as
  /// the source of truth.
  bool cancel(std::uint64_t request_id);

  /// Blocking: the next response frame from the server, any request.
  /// Returns false on clean end-of-stream; throws on protocol errors.
  bool next_chunk(Frame& out);

  /// Blocking: reads until request `request_id`'s response completes
  /// and returns the assembled message (check .error / .error_text).
  /// Throws on protocol errors or connection loss before completion.
  MessageAssembler::Message await(std::uint64_t request_id);

  /// Half-closes the write side: the server sees EOF, finishes
  /// streaming what was submitted, and closes when done.
  void finish_writes();

  /// Abandons the connection with an RST instead of a clean FIN. A
  /// clean close means "finish what I submitted" (see finish_writes);
  /// an abort means the opposite — the server cancels this
  /// connection's in-flight and queued requests at the next boundary.
  /// The ResilientClient timeout path uses this so a stalled server
  /// does not keep computing for a client that gave up.
  void abort_connection();

  /// Arms a wall-clock receive deadline `ms_from_now` milliseconds out:
  /// any read (next_chunk/await/helpers) still waiting for bytes once
  /// it passes throws ClientTimeout. The deadline is absolute — it
  /// spans a whole response, not each individual read. 0 disarms.
  void set_receive_deadline(std::uint64_t ms_from_now);

 private:
  void send_message(std::uint64_t request_id, std::string_view payload);
  MessageAssembler::Message transact(const SampleRequest& request);

  Socket socket_;
  FrameDecoder decoder_;
  MessageAssembler assembler_;
  /// Messages completed inside await() for ids not yet asked about.
  std::map<std::uint64_t, MessageAssembler::Message> completed_;
  std::uint64_t next_internal_id_ = std::uint64_t{1} << 32;
  bool eof_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Retry/backoff policy for ResilientClient. The defaults retry
/// nothing — resilience is opt-in per call site (the CLI wires
/// --retries / --retry-backoff-ms / --timeout-ms here).
struct RetryPolicy {
  /// Additional attempts after the first (0 = fail fast).
  std::size_t max_retries = 0;
  /// First backoff; doubles per attempt (full jitter: the actual sleep
  /// is uniform in [backoff/2, backoff], and at least the server's
  /// retry_after_ms hint when one was given).
  std::uint64_t initial_backoff_ms = 100;
  std::uint64_t max_backoff_ms = 5000;
  /// Per-attempt wall-clock budget for the whole response (0 = none).
  std::uint64_t request_timeout_ms = 0;
};

/// One-request-at-a-time client that survives the failures ServiceClient
/// surfaces: connection refused/lost (reconnects with exponential
/// backoff + jitter), retryable structured rejections — queue_full,
/// rate_limited, draining — (resubmits, honoring the server's
/// retry_after_ms hint), and receive timeouts (drops the connection,
/// which cancels the abandoned request server-side, and retries).
///
/// Resubmission is safe by construction: requests carry explicit seeds,
/// so a replayed request streams bit-identical bytes. run() exploits
/// that to deliver each payload byte exactly once across attempts — on
/// a retry it skips the prefix already handed to `on_data` and resumes
/// mid-stream.
class ResilientClient {
 public:
  enum class FailureKind {
    kNone,       ///< Success.
    kConnect,    ///< Could not (re)connect.
    kRejected,   ///< Server error frame; `error` holds the taxonomy.
    kTimeout,    ///< request_timeout_ms elapsed.
    kTransport,  ///< Connection lost / protocol error mid-response.
  };

  struct Result {
    bool ok = false;
    FailureKind failure = FailureKind::kNone;
    /// The server's structured rejection (failure == kRejected).
    ServiceError error;
    /// Human-readable description of the final failure.
    std::string detail;
    /// Attempts consumed (1 = first try succeeded).
    std::size_t attempts = 0;
  };

  ResilientClient(std::string address, RetryPolicy policy);

  /// Runs one sample/detect request to completion, streaming response
  /// payload bytes to `on_data` in order. Never throws on the failure
  /// paths listed in FailureKind — inspect the Result.
  Result run(const SampleRequest& request,
             const std::function<void(std::string_view)>& on_data);

 private:
  /// Sleeps the backoff for `attempt` (0-based). `hint_ms` is the
  /// server's retry_after_ms (0 = none).
  void backoff(std::size_t attempt, std::uint64_t hint_ms);

  std::string address_;
  RetryPolicy policy_;
  std::mt19937_64 jitter_;
  std::unique_ptr<ServiceClient> client_;
};

}  // namespace symphase
