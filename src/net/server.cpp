#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"

namespace symphase {

/// Per-client state. The poll thread owns socket/decoder/assembler and
/// the lifecycle; everything under `mutex` is shared with the service
/// workers that emit this connection's response frames.
struct SocketServer::Connection {
  Socket socket;
  FrameDecoder decoder;
  MessageAssembler assembler;

  std::mutex mutex;
  /// Workers wait here when the outbound buffer is full (slow reader).
  std::condition_variable space;
  std::string outbound;
  std::size_t offset = 0;  ///< Prefix of outbound already written.
  /// Response streams still open on this connection: request id ->
  /// scheduler ticket (0 while submit() is still returning).
  std::map<std::uint64_t, std::uint64_t> inflight;
  bool open = true;       ///< False once closed: emits become drops.
  /// EOF or protocol error: no more reads; the connection retires once
  /// its in-flight responses finished and the outbound buffer flushed.
  bool read_done = false;
  /// Stable id for the service's per-client admission buckets.
  std::uint64_t client_id = 0;

  Connection(Socket s, std::size_t max_inbound, std::uint64_t id)
      : socket(std::move(s)), decoder(max_inbound), client_id(id) {}

  std::size_t pending_out_locked() const { return outbound.size() - offset; }
};

struct SocketServer::Impl {
  explicit Impl(SocketServerOptions opts)
      : options(std::move(opts)),
        listen_at(parse_host_port(options.listen)),
        listener(tcp_listen(listen_at)),
        bound_port(local_port(listener)),
        // Inbound frames follow the stdio loop's allowance: at least
        // the decoder default, so big inline circuits always fit.
        max_inbound(std::max(options.service.max_frame_payload,
                             kDefaultMaxFramePayload)),
        service(options.service) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
    }
    wake_read = pipe_fds[0];
    wake_write = pipe_fds[1];
    set_nonblocking(wake_read, true);
    set_nonblocking(wake_write, true);
    set_nonblocking(listener.fd(), true);
  }

  ~Impl() {
    // Workers may still be finishing (and poking wake_write) until the
    // service member — declared last — destructs; only then close the
    // pipe.
    service.stop();
    if (wake_read >= 0) {
      ::close(wake_read);
    }
    if (wake_write >= 0) {
      ::close(wake_write);
    }
  }

  void wake() const {
    const char byte = 0;
    // Full pipe means a wakeup is already pending — exactly as good.
    (void)::write(wake_write, &byte, 1);
  }

  SocketServerOptions options;
  HostPort listen_at;
  Socket listener;
  std::uint16_t bound_port;
  std::size_t max_inbound;
  int wake_read = -1;
  int wake_write = -1;
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> drain_requested{false};
  bool draining = false;  ///< Loop-thread view of drain_requested.
  /// Next Connection::client_id; ids are never reused, so a
  /// reconnecting client starts a fresh rate bucket (the old one ages
  /// out of the admission LRU).
  std::uint64_t next_client_id = 1;
  bool loop_failed = false;  ///< poll() died; run() reports failure.
  /// The thread running run(); set before any connection exists.
  std::atomic<std::thread::id> loop_thread{};
  /// Poll-thread-only.
  std::vector<std::shared_ptr<Connection>> connections;
  /// Last member: destroyed first, joining workers while the wake pipe
  /// and options (which their emit lambdas touch) are still alive.
  SamplingService service;
};

namespace {

using Connection = SocketServer::Connection;

}  // namespace

SocketServer::SocketServer(SocketServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SocketServer::~SocketServer() { shutdown(); }

std::uint16_t SocketServer::port() const { return impl_->bound_port; }

SamplingService& SocketServer::service() { return impl_->service; }

void SocketServer::shutdown() {
  impl_->stop_requested.store(true, std::memory_order_release);
  impl_->wake();
}

void SocketServer::drain() {
  impl_->drain_requested.store(true, std::memory_order_release);
  impl_->wake();
}

namespace {

/// Appends one encoded frame to the connection's outbound buffer,
/// blocking while the buffer is over the cap. Runs on service worker
/// threads (and, for queued-cancel error frames, the poll thread —
/// which never holds conn->mutex when it can reach here).
void enqueue_frame(SocketServer::Impl* impl,
                   const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header, std::string_view payload) {
  bool wake = false;
  {
    std::unique_lock<std::mutex> lock(conn->mutex);
    // The poll thread is the only drainer, so it must never wait for
    // space it would itself create (its own frames — verb replies and
    // queued-cancel errors — are small and bypass the cap). Worker
    // threads do wait: that is the slow-reader backpressure.
    const bool is_loop_thread =
        std::this_thread::get_id() ==
        impl->loop_thread.load(std::memory_order_relaxed);
    if (!is_loop_thread) {
      conn->space.wait(lock, [&] {
        return !conn->open ||
               conn->pending_out_locked() < impl->options.max_outbound_buffer;
      });
    }
    if (conn->open) {
      conn->outbound += encode_frame(header, payload);
      wake = true;
    }
    if ((header.flags & kFrameLast) != 0) {
      conn->inflight.erase(header.request_id);
    }
  }
  if (wake) {
    impl->wake();
  }
}

void enqueue_error(SocketServer::Impl* impl,
                   const std::shared_ptr<Connection>& conn,
                   std::uint64_t request_id, const ServiceError& error) {
  const std::string payload = encode_error_payload(error);
  FrameHeader header;
  header.request_id = request_id;
  header.flags = kFrameLast | kFrameError;
  header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  enqueue_frame(impl, conn, header, payload);
}

/// Marks the connection closed and cancels every outstanding request it
/// owns. Poll thread only; must NOT hold conn->mutex on entry (cancel
/// emits error frames through enqueue_frame).
void close_connection(SocketServer::Impl* impl,
                      const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint64_t> tickets;
  {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->open) {
      return;
    }
    conn->open = false;
    conn->read_done = true;
    for (const auto& [id, ticket] : conn->inflight) {
      if (ticket != 0) {
        tickets.push_back(ticket);
      }
    }
    conn->socket.close_fd();
  }
  conn->space.notify_all();
  // Abandoned by its client: queued requests leave the scheduler now,
  // in-flight ones stop at the next shard-chunk boundary. Their final
  // frames fall into the closed connection and are dropped.
  for (const std::uint64_t ticket : tickets) {
    impl->service.cancel(ticket);
  }
}

/// One complete request message from this connection. Mirrors the
/// --stdio loop's verb handling; divergences are documented in
/// server.hpp. Returns false on a session-fatal protocol error.
bool handle_message(SocketServer::Impl* impl,
                    const std::shared_ptr<Connection>& conn,
                    MessageAssembler::Message message) {
  if (message.request_id == 0) {
    enqueue_error(impl, conn, 0,
                  make_error(ErrorCode::kBadCircuit,
                             "request_id 0 is reserved for session-level "
                             "errors"));
    return true;
  }
  {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->inflight.emplace(message.request_id, 0).second) {
      return false;  // concurrent id reuse: protocol error
    }
  }
  if (message.error) {
    enqueue_error(impl, conn, message.request_id,
                  make_error(ErrorCode::kBadCircuit,
                             "client sent an error frame"));
    return true;
  }
  try {
    SampleRequest request = parse_request_payload(message.payload);
    switch (request.verb) {
      case RequestVerb::kRegister: {
        // Parses on the loop thread — a deliberate tradeoff: register
        // is a rare control verb and its reply must come from the
        // registration, while the hot path (inline sample/detect
        // circuits) parses on worker threads. A multi-MB register does
        // stall other clients for the parse; route registrations
        // through sample-by-inline-text if that ever matters.
        const std::string digest =
            impl->service.register_circuit(request.circuit_text);
        FrameHeader header;
        header.request_id = message.request_id;
        header.flags = kFrameLast;
        const std::string reply = "digest=" + digest + "\n";
        header.payload_bytes = static_cast<std::uint32_t>(reply.size());
        enqueue_frame(impl, conn, header, reply);
        break;
      }
      case RequestVerb::kStats: {
        // Snapshot, not drain: draining would park the shared event
        // loop behind every other client's queue.
        FrameHeader header;
        header.request_id = message.request_id;
        header.flags = kFrameLast;
        const std::string reply = impl->service.stats().to_line();
        header.payload_bytes = static_cast<std::uint32_t>(reply.size());
        enqueue_frame(impl, conn, header, reply);
        break;
      }
      case RequestVerb::kHealth: {
        FrameHeader header;
        header.request_id = message.request_id;
        header.flags = kFrameLast;
        const std::string reply = impl->service.health().to_line();
        header.payload_bytes = static_cast<std::uint32_t>(reply.size());
        enqueue_frame(impl, conn, header, reply);
        break;
      }
      case RequestVerb::kCancel: {
        std::uint64_t ticket = 0;
        {
          const std::lock_guard<std::mutex> lock(conn->mutex);
          const auto it = conn->inflight.find(request.cancel_id);
          ticket = it == conn->inflight.end() ? 0 : it->second;
        }
        if (ticket != 0 && impl->service.cancel(ticket)) {
          FrameHeader header;
          header.request_id = message.request_id;
          header.flags = kFrameLast;
          enqueue_frame(impl, conn, header, "cancelled\n");
        } else {
          std::ostringstream oss;
          oss << "request " << request.cancel_id
              << " is not in flight on this connection";
          enqueue_error(impl, conn, message.request_id,
                        make_error(ErrorCode::kBadCircuit, oss.str()));
        }
        break;
      }
      case RequestVerb::kSample:
      case RequestVerb::kDetect: {
        const std::uint64_t id = message.request_id;
        const FrameFn emit = [impl, conn](const FrameHeader& header,
                                          std::string_view payload) {
          enqueue_frame(impl, conn, header, payload);
        };
        // try_submit, not submit: the loop thread must never park on
        // queue space — workers free that space only after draining
        // response bytes through sockets only this thread flushes, so
        // blocking here could deadlock the whole transport. Admission
        // rejections (full/shed queue, rate limit, drain) turn into
        // structured error frames with a retry hint.
        ServiceError rejection;
        const std::uint64_t ticket = impl->service.try_submit(
            id, std::move(request), emit, conn->client_id, &rejection);
        if (ticket == 0) {
          enqueue_error(impl, conn, id, rejection);
          break;
        }
        const std::lock_guard<std::mutex> lock(conn->mutex);
        const auto it = conn->inflight.find(id);
        if (it != conn->inflight.end()) {
          // Still streaming (the final frame can race try_submit()'s
          // return; if it won, the entry is already gone).
          it->second = ticket;
        }
        break;
      }
    }
  } catch (const std::invalid_argument& e) {
    // Parse/validation failures of the client's own payload.
    enqueue_error(impl, conn, message.request_id,
                  make_error(ErrorCode::kBadCircuit, e.what()));
  } catch (const std::exception& e) {
    enqueue_error(impl, conn, message.request_id,
                  make_error(ErrorCode::kInternal, e.what()));
  }
  return true;
}

/// Drains readable bytes into the decoder and dispatches complete
/// messages. Poll thread only.
void handle_readable(SocketServer::Impl* impl,
                     const std::shared_ptr<Connection>& conn) {
  char buffer[1 << 16];
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      if (!conn->open || conn->read_done) {
        return;
      }
    }
    const ssize_t got =
        ::recv(conn->socket.fd(), buffer, sizeof buffer, 0);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      close_connection(impl, conn);
      return;
    }
    if (got == 0) {
      // Clean half-close: the client is done sending. Responses keep
      // flowing; the connection retires once the last one flushed.
      std::string eof_error;
      {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        conn->read_done = true;
      }
      if (!conn->decoder.finish()) {
        eof_error = "protocol error: " + conn->decoder.error();
      } else if (conn->assembler.open_messages() > 0) {
        std::ostringstream oss;
        oss << "protocol error: stream ended with "
            << conn->assembler.open_messages() << " incomplete request(s)";
        eof_error = oss.str();
      }
      if (!eof_error.empty()) {
        enqueue_error(impl, conn, 0,
                      make_error(ErrorCode::kBadCircuit, eof_error));
      }
      return;
    }
    conn->decoder.feed({buffer, static_cast<std::size_t>(got)});
    Frame frame;
    bool session_ok = true;
    while (session_ok && conn->decoder.next(frame)) {
      if (auto message = conn->assembler.accept(frame)) {
        const std::uint64_t id = message->request_id;
        session_ok = handle_message(impl, conn, std::move(*message));
        if (!session_ok) {
          std::ostringstream oss;
          oss << "protocol error: request id " << id
              << " reused while still in flight";
          enqueue_error(impl, conn, 0,
                        make_error(ErrorCode::kBadCircuit, oss.str()));
        }
      }
    }
    if (conn->decoder.failed() || conn->assembler.failed()) {
      const std::string reason = conn->decoder.failed()
                                     ? conn->decoder.error()
                                     : conn->assembler.error();
      enqueue_error(impl, conn, 0,
                    make_error(ErrorCode::kBadCircuit,
                               "protocol error: " + reason));
      session_ok = false;
    }
    if (!session_ok) {
      const std::lock_guard<std::mutex> lock(conn->mutex);
      conn->read_done = true;
      return;
    }
  }
}

/// Flushes as much outbound as the socket accepts. Poll thread only.
void handle_writable(SocketServer::Impl* impl,
                     const std::shared_ptr<Connection>& conn) {
  bool notify = false;
  bool broken = false;
  {
    const std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->open) {
      return;
    }
    while (conn->offset < conn->outbound.size()) {
      const ssize_t n =
          ::send(conn->socket.fd(), conn->outbound.data() + conn->offset,
                 conn->outbound.size() - conn->offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        broken = true;
        break;
      }
      conn->offset += static_cast<std::size_t>(n);
      notify = true;
    }
    if (conn->offset == conn->outbound.size()) {
      conn->outbound.clear();
      conn->offset = 0;
    } else if (conn->offset > (1u << 20)) {
      // Reclaim the flushed prefix without quadratic churn.
      conn->outbound.erase(0, conn->offset);
      conn->offset = 0;
    }
  }
  if (broken) {
    close_connection(impl, conn);
  } else if (notify) {
    conn->space.notify_all();
  }
}

}  // namespace

bool SocketServer::run() {
  Impl* impl = impl_.get();
  impl->loop_thread.store(std::this_thread::get_id(),
                          std::memory_order_relaxed);
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  while (!impl->stop_requested.load(std::memory_order_acquire)) {
    if (!impl->draining &&
        impl->drain_requested.load(std::memory_order_acquire)) {
      // Graceful drain: close the listener so the OS refuses new
      // connections (instead of parking them in the backlog of a
      // server that will never serve them), and flip the service so
      // new submissions on existing connections are rejected with a
      // structured `draining` frame. Accepted work keeps streaming.
      impl->draining = true;
      impl->listener.close_fd();
      impl->service.begin_drain();
    }
    fds.clear();
    polled.clear();
    fds.push_back({impl->wake_read, POLLIN, 0});
    const bool accepting =
        !impl->draining &&
        impl->connections.size() < impl->options.max_connections;
    fds.push_back({accepting ? impl->listener.fd() : -1, POLLIN, 0});
    for (const auto& conn : impl->connections) {
      short events = 0;
      {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->open) {
          if (!conn->read_done) {
            events |= POLLIN;
          }
          if (conn->pending_out_locked() > 0) {
            events |= POLLOUT;
          }
        }
      }
      fds.push_back({events != 0 ? conn->socket.fd() : -1, events, 0});
      polled.push_back(conn);
    }

    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      // A dead event loop must not masquerade as a clean shutdown —
      // run() reports failure so the CLI exits nonzero.
      std::fprintf(stderr, "error: poll: %s\n", std::strerror(errno));
      impl->loop_failed = true;
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(impl->wake_read, drain, sizeof drain) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        errno = 0;
        Socket accepted = tcp_accept(impl->listener);
        if (!accepted.valid()) {
          if (errno != 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != ECONNABORTED && errno != EINTR) {
            // Persistent accept failure (EMFILE, ENFILE, ENOMEM...):
            // the pending connection stays in the backlog, so the
            // listener polls readable forever. Back off instead of
            // spinning a core; fds freed by retiring connections let
            // the next round succeed.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          break;
        }
        if (impl->connections.size() >= impl->options.max_connections) {
          continue;  // accepted and dropped: over capacity
        }
        set_nonblocking(accepted.fd(), true);
        impl->connections.push_back(std::make_shared<Connection>(
            std::move(accepted), impl->max_inbound,
            impl->next_client_id++));
      }
    }

    for (std::size_t c = 0; c < polled.size(); ++c) {
      const auto& conn = polled[c];
      const short revents = fds[c + 2].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        close_connection(impl, conn);
        continue;
      }
      if ((revents & POLLOUT) != 0) {
        handle_writable(impl, conn);
      }
      if ((revents & (POLLIN | POLLHUP)) != 0) {
        handle_readable(impl, conn);
      }
    }

    // Retire connections that are finished (or were closed above):
    // reading done, no response stream open, nothing left to flush.
    // During a drain, idle connections retire without waiting for the
    // client's EOF — everything they could still send would only be
    // rejected, and run() must eventually return.
    std::vector<std::shared_ptr<Connection>> alive;
    for (const auto& conn : impl->connections) {
      bool keep = true;
      {
        const std::lock_guard<std::mutex> lock(conn->mutex);
        if (!conn->open) {
          keep = false;
        } else if ((conn->read_done || impl->draining) &&
                   conn->inflight.empty() &&
                   conn->pending_out_locked() == 0) {
          keep = false;
        }
      }
      if (!keep) {
        close_connection(impl, conn);
      } else {
        alive.push_back(conn);
      }
    }
    impl->connections.swap(alive);
    if (impl->draining && impl->connections.empty()) {
      // Drained dry: every in-flight response finished and flushed.
      break;
    }
  }

  for (const auto& conn : impl->connections) {
    close_connection(impl, conn);
  }
  impl->connections.clear();
  return !impl->loop_failed;
}

}  // namespace symphase
