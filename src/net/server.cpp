#include "net/server.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/connection.hpp"
#include "net/socket.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"

namespace symphase {

struct SocketServer::Impl : ConnectionHost {
  explicit Impl(SocketServerOptions opts)
      : options(std::move(opts)),
        listen_at(parse_host_port(options.listen)),
        listener(tcp_listen(listen_at)),
        bound_port(local_port(listener)),
        // Inbound frames follow the stdio loop's allowance: at least
        // the decoder default, so big inline circuits always fit.
        max_inbound(std::max(options.service.max_frame_payload,
                             kDefaultMaxFramePayload)),
        service(options.service) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
    }
    wake_read = pipe_fds[0];
    wake_write = pipe_fds[1];
    set_nonblocking(wake_read, true);
    set_nonblocking(wake_write, true);
    set_nonblocking(listener.fd(), true);
    if (!options.http_listen.empty()) {
      http_listener = tcp_listen(parse_host_port(options.http_listen));
      http_bound_port = local_port(http_listener);
      set_nonblocking(http_listener.fd(), true);
      gateway = std::make_unique<HttpGateway>(service, options.http);
      // One shared instrument path for both transports: the service's
      // timing observer feeds per-stage and per-transport histograms in
      // the gateway's registry, so frame/TCP requests show up on
      // /metrics exactly like HTTP ones. Wired before run() accepts
      // anything, as set_timing_observer requires.
      MetricsRegistry& reg = gateway->metrics();
      const auto stage_hist = [&reg](const char* stage) {
        return &reg.histogram(
            "symphase_stage_duration_seconds",
            "Per-request stage latency (queue|compile|execute|emit)",
            Histogram::default_latency_bounds(), {{"stage", stage}});
      };
      const auto request_hist = [&reg](const char* transport) {
        return &reg.histogram(
            "symphase_request_duration_seconds",
            "End-to-end request latency (acceptance to final frame) by "
            "submitting transport",
            Histogram::default_latency_bounds(), {{"transport", transport}});
      };
      Histogram* queue_h = stage_hist("queue");
      Histogram* compile_h = stage_hist("compile");
      Histogram* execute_h = stage_hist("execute");
      Histogram* emit_h = stage_hist("emit");
      Histogram* frame_h = request_hist("frame");
      Histogram* http_h = request_hist("http");
      Histogram* local_h = request_hist("local");
      service.set_timing_observer(
          [queue_h, compile_h, execute_h, emit_h, frame_h, http_h,
           local_h](const RequestTiming& t) {
            queue_h->observe(t.queue_s);
            compile_h->observe(t.compile_s);
            execute_h->observe(t.execute_s);
            emit_h->observe(t.emit_s);
            if (std::strcmp(t.transport, "http") == 0) {
              http_h->observe(t.total_s);
            } else if (std::strcmp(t.transport, "frame") == 0) {
              frame_h->observe(t.total_s);
            } else {
              local_h->observe(t.total_s);
            }
          });
    }
  }

  ~Impl() override {
    // Workers may still be finishing (and poking wake_write) until the
    // service member — declared last — destructs; only then close the
    // pipe.
    service.stop();
    if (wake_read >= 0) {
      ::close(wake_read);
    }
    if (wake_write >= 0) {
      ::close(wake_write);
    }
  }

  void wake() const {
    const char byte = 0;
    // Full pipe means a wakeup is already pending — exactly as good.
    (void)::write(wake_write, &byte, 1);
  }

  // --- ConnectionHost -----------------------------------------------
  SamplingService& host_service() override { return service; }
  void host_wake() override { wake(); }
  std::size_t host_max_outbound() const override {
    return options.max_outbound_buffer;
  }
  bool host_on_loop_thread() const override {
    return std::this_thread::get_id() ==
           loop_thread.load(std::memory_order_relaxed);
  }
  bool host_draining() const override { return draining; }

  SocketServerOptions options;
  HostPort listen_at;
  Socket listener;
  std::uint16_t bound_port;
  std::size_t max_inbound;
  Socket http_listener;  ///< Invalid when HTTP is disabled.
  std::uint16_t http_bound_port = 0;
  /// HTTP connection factory + metrics. Declared before `service` so
  /// it is destroyed after it (emit lambdas into HTTP connections run
  /// until service.stop() joins the workers).
  std::unique_ptr<HttpGateway> gateway;
  int wake_read = -1;
  int wake_write = -1;
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> drain_requested{false};
  bool draining = false;  ///< Loop-thread view of drain_requested.
  /// Next Connection::client_id; ids are never reused, so a
  /// reconnecting client starts a fresh rate bucket (the old one ages
  /// out of the admission LRU).
  std::uint64_t next_client_id = 1;
  bool loop_failed = false;  ///< poll() died; run() reports failure.
  /// The thread running run(); set before any connection exists.
  std::atomic<std::thread::id> loop_thread{};
  /// Poll-thread-only.
  std::vector<std::shared_ptr<Connection>> connections;
  /// Last member: destroyed first, joining workers while the wake pipe
  /// and options (which their emit lambdas touch) are still alive.
  SamplingService service;
};

namespace {

/// The frame-protocol connection: service/wire.hpp frames over the
/// shared net/connection.hpp machinery. The wire behavior is the one
/// the stdio loop defines — byte-identical streams, pinned by
/// tests/socket_test.cpp.
class FrameConnection : public Connection,
                        public std::enable_shared_from_this<FrameConnection> {
 public:
  FrameConnection(ConnectionHost& host, Socket socket,
                  std::size_t max_inbound, std::uint64_t client_id,
                  std::uint64_t idle_timeout_ms)
      : Connection(host, std::move(socket), client_id),
        idle_timeout_(std::chrono::milliseconds(idle_timeout_ms)),
        idle_enabled_(idle_timeout_ms != 0),
        last_activity_(Clock::now()),
        decoder_(max_inbound) {}

 protected:
  /// Idle-read timeout (SocketServerOptions::idle_timeout_ms): armed
  /// only while nothing is in flight — a slow *response* must never
  /// trip it, so enqueue_frame() restamps the clock when a final frame
  /// empties inflight_.
  Clock::time_point next_deadline() override {
    if (!idle_enabled_) {
      return kNoConnDeadline;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (read_done_ || !inflight_.empty()) {
      return kNoConnDeadline;
    }
    return last_activity_ + idle_timeout_;
  }

  void on_deadline() override {
    // Re-check under the lock: a request may have landed since the
    // poll loop sampled the deadline.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (read_done_ || !inflight_.empty() ||
          Clock::now() < last_activity_ + idle_timeout_) {
        return;
      }
    }
    std::ostringstream oss;
    oss << "idle timeout: no request in "
        << std::chrono::duration_cast<std::chrono::milliseconds>(
               idle_timeout_)
               .count()
        << " ms; closing connection";
    enqueue_error(0, make_error(ErrorCode::kTimeout, oss.str()));
    // Stop reading; the connection retires once the error frame flushed
    // (retire_when_idle_locked() — read_done_ — plus empty inflight_).
    const std::lock_guard<std::mutex> lock(mutex_);
    read_done_ = true;
  }

  bool on_bytes(std::string_view bytes) override {
    if (idle_enabled_) {
      const std::lock_guard<std::mutex> lock(mutex_);
      last_activity_ = Clock::now();
    }
    decoder_.feed(bytes);
    Frame frame;
    bool session_ok = true;
    while (session_ok && decoder_.next(frame)) {
      if (auto message = assembler_.accept(frame)) {
        const std::uint64_t id = message->request_id;
        session_ok = handle_message(std::move(*message));
        if (!session_ok) {
          std::ostringstream oss;
          oss << "protocol error: request id " << id
              << " reused while still in flight";
          enqueue_error(0, make_error(ErrorCode::kBadCircuit, oss.str()));
        }
      }
    }
    if (decoder_.failed() || assembler_.failed()) {
      const std::string reason =
          decoder_.failed() ? decoder_.error() : assembler_.error();
      enqueue_error(0, make_error(ErrorCode::kBadCircuit,
                                  "protocol error: " + reason));
      session_ok = false;
    }
    return session_ok;
  }

  void on_read_end() override {
    std::string eof_error;
    if (!decoder_.finish()) {
      eof_error = "protocol error: " + decoder_.error();
    } else if (assembler_.open_messages() > 0) {
      std::ostringstream oss;
      oss << "protocol error: stream ended with "
          << assembler_.open_messages() << " incomplete request(s)";
      eof_error = oss.str();
    }
    if (!eof_error.empty()) {
      enqueue_error(0, make_error(ErrorCode::kBadCircuit, eof_error));
    }
  }

 private:
  /// Appends one encoded frame to the outbound buffer. Runs on service
  /// worker threads (and, for queued-cancel error frames, the poll
  /// thread); backpressure and the final-frame inflight erase live in
  /// the shared send_locked().
  void enqueue_frame(const FrameHeader& header, std::string_view payload) {
    send_locked([&] {
      bool wake = false;
      if (open_) {
        outbound_ += encode_frame(header, payload);
        wake = true;
      }
      if ((header.flags & kFrameLast) != 0) {
        inflight_.erase(header.request_id);
        // The idle clock starts when the connection actually goes idle,
        // not when its last inbound byte arrived mid-stream.
        last_activity_ = Clock::now();
      }
      return wake;
    });
  }

  void enqueue_error(std::uint64_t request_id, const ServiceError& error) {
    const std::string payload = encode_error_payload(error);
    FrameHeader header;
    header.request_id = request_id;
    header.flags = kFrameLast | kFrameError;
    header.payload_bytes = static_cast<std::uint32_t>(payload.size());
    enqueue_frame(header, payload);
  }

  void enqueue_reply(std::uint64_t request_id, std::string_view reply) {
    FrameHeader header;
    header.request_id = request_id;
    header.flags = kFrameLast;
    header.payload_bytes = static_cast<std::uint32_t>(reply.size());
    enqueue_frame(header, reply);
  }

  /// One complete request message. Mirrors the --stdio loop's verb
  /// handling; divergences are documented in server.hpp. Returns false
  /// on a session-fatal protocol error.
  bool handle_message(MessageAssembler::Message message) {
    SamplingService& service = host_.host_service();
    if (message.request_id == 0) {
      enqueue_error(0, make_error(ErrorCode::kBadCircuit,
                                  "request_id 0 is reserved for "
                                  "session-level errors"));
      return true;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!inflight_.emplace(message.request_id, 0).second) {
        return false;  // concurrent id reuse: protocol error
      }
    }
    if (message.error) {
      enqueue_error(message.request_id,
                    make_error(ErrorCode::kBadCircuit,
                               "client sent an error frame"));
      return true;
    }
    try {
      SampleRequest request = parse_request_payload(message.payload);
      switch (request.verb) {
        case RequestVerb::kRegister: {
          // Parses on the loop thread — a deliberate tradeoff: register
          // is a rare control verb and its reply must come from the
          // registration, while the hot path (inline sample/detect
          // circuits) parses on worker threads. A multi-MB register
          // does stall other clients for the parse; route registrations
          // through sample-by-inline-text if that ever matters.
          const std::string digest =
              service.register_circuit(request.circuit_text);
          enqueue_reply(message.request_id, "digest=" + digest + "\n");
          break;
        }
        case RequestVerb::kStats: {
          // Snapshot, not drain: draining would park the shared event
          // loop behind every other client's queue.
          const ServiceStats stats = service.stats();
          enqueue_reply(message.request_id, request.stats_json
                                                ? stats.to_json()
                                                : stats.to_line());
          break;
        }
        case RequestVerb::kHealth: {
          const ServiceHealth health = service.health();
          enqueue_reply(message.request_id, request.stats_json
                                                ? health.to_json()
                                                : health.to_line());
          break;
        }
        case RequestVerb::kCancel: {
          std::uint64_t ticket = 0;
          {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = inflight_.find(request.cancel_id);
            ticket = it == inflight_.end() ? 0 : it->second;
          }
          if (ticket != 0 && service.cancel(ticket)) {
            enqueue_reply(message.request_id, "cancelled\n");
          } else {
            std::ostringstream oss;
            oss << "request " << request.cancel_id
                << " is not in flight on this connection";
            enqueue_error(message.request_id,
                          make_error(ErrorCode::kBadCircuit, oss.str()));
          }
          break;
        }
        case RequestVerb::kSample:
        case RequestVerb::kDetect: {
          const std::uint64_t id = message.request_id;
          auto self = shared_from_this();
          const FrameFn emit = [self](const FrameHeader& header,
                                      std::string_view payload) {
            self->enqueue_frame(header, payload);
          };
          // try_submit, not submit: the loop thread must never park on
          // queue space — workers free that space only after draining
          // response bytes through sockets only this thread flushes, so
          // blocking here could deadlock the whole transport. Admission
          // rejections (full/shed queue, rate limit, drain) turn into
          // structured error frames with a retry hint.
          ServiceError rejection;
          const std::uint64_t ticket = service.try_submit(
              id, std::move(request), emit, client_id(), &rejection,
              /*transport=*/"frame");
          if (ticket == 0) {
            enqueue_error(id, rejection);
            break;
          }
          const std::lock_guard<std::mutex> lock(mutex_);
          const auto it = inflight_.find(id);
          if (it != inflight_.end()) {
            // Still streaming (the final frame can race try_submit()'s
            // return; if it won, the entry is already gone).
            it->second = ticket;
          }
          break;
        }
      }
    } catch (const std::invalid_argument& e) {
      // Parse/validation failures of the client's own payload.
      enqueue_error(message.request_id,
                    make_error(ErrorCode::kBadCircuit, e.what()));
    } catch (const std::exception& e) {
      enqueue_error(message.request_id,
                    make_error(ErrorCode::kInternal, e.what()));
    }
    return true;
  }

  const Clock::duration idle_timeout_;
  const bool idle_enabled_;
  /// Last inbound byte or response completion (mutex_).
  Clock::time_point last_activity_;
  FrameDecoder decoder_;
  MessageAssembler assembler_;
};

}  // namespace

SocketServer::SocketServer(SocketServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SocketServer::~SocketServer() { shutdown(); }

std::uint16_t SocketServer::port() const { return impl_->bound_port; }

std::uint16_t SocketServer::http_port() const { return impl_->http_bound_port; }

HttpGateway* SocketServer::gateway() { return impl_->gateway.get(); }

SamplingService& SocketServer::service() { return impl_->service; }

void SocketServer::shutdown() {
  impl_->stop_requested.store(true, std::memory_order_release);
  impl_->wake();
}

void SocketServer::drain() {
  impl_->drain_requested.store(true, std::memory_order_release);
  impl_->wake();
}

bool SocketServer::run() {
  Impl* impl = impl_.get();
  impl->loop_thread.store(std::this_thread::get_id(),
                          std::memory_order_relaxed);
  using Clock = Connection::Clock;
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  while (!impl->stop_requested.load(std::memory_order_acquire)) {
    if (!impl->draining &&
        impl->drain_requested.load(std::memory_order_acquire)) {
      // Graceful drain: close the frame listener so the OS refuses new
      // connections (instead of parking them in the backlog of a
      // server that will never serve them), and flip the service so
      // new submissions on existing connections are rejected with a
      // structured `draining` frame. Accepted work keeps streaming.
      // The HTTP listener stays open: readiness probes must be able to
      // read "draining" (503 from /healthz) rather than a refused
      // connection; HTTP requests beyond the probe endpoints get 503 +
      // Connection: close, and idle HTTP connections retire after the
      // gateway's drain grace.
      impl->draining = true;
      impl->listener.close_fd();
      impl->service.begin_drain();
    }
    fds.clear();
    polled.clear();
    fds.push_back({impl->wake_read, POLLIN, 0});
    const bool room =
        impl->connections.size() < impl->options.max_connections;
    const bool accepting = !impl->draining && room;
    fds.push_back({accepting ? impl->listener.fd() : -1, POLLIN, 0});
    fds.push_back({impl->http_listener.valid() && room
                       ? impl->http_listener.fd()
                       : -1,
                   POLLIN, 0});
    Clock::time_point next_deadline = Connection::kNoConnDeadline;
    for (const auto& conn : impl->connections) {
      const short events = conn->poll_events();
      fds.push_back({events != 0 ? conn->fd() : -1, events, 0});
      polled.push_back(conn);
      next_deadline = std::min(next_deadline, conn->next_deadline());
    }

    int timeout_ms = -1;
    if (next_deadline != Connection::kNoConnDeadline) {
      const auto until = std::chrono::ceil<std::chrono::milliseconds>(
          next_deadline - Clock::now());
      timeout_ms = static_cast<int>(
          std::clamp<long long>(until.count(), 0, 60 * 1000));
    }
    if (::poll(fds.data(), fds.size(), timeout_ms) < 0) {
      if (errno == EINTR) {
        continue;
      }
      // A dead event loop must not masquerade as a clean shutdown —
      // run() reports failure so the CLI exits nonzero.
      std::fprintf(stderr, "error: poll: %s\n", std::strerror(errno));
      impl->loop_failed = true;
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(impl->wake_read, drain, sizeof drain) > 0) {
      }
    }
    const auto accept_from = [&](Socket& listener, bool http) {
      for (;;) {
        errno = 0;
        Socket accepted = tcp_accept(listener);
        if (!accepted.valid()) {
          if (errno != 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != ECONNABORTED && errno != EINTR) {
            // Persistent accept failure (EMFILE, ENFILE, ENOMEM...):
            // the pending connection stays in the backlog, so the
            // listener polls readable forever. Back off instead of
            // spinning a core; fds freed by retiring connections let
            // the next round succeed.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          break;
        }
        if (impl->connections.size() >= impl->options.max_connections) {
          continue;  // accepted and dropped: over capacity
        }
        set_nonblocking(accepted.fd(), true);
        const std::uint64_t client_id = impl->next_client_id++;
        if (http) {
          impl->connections.push_back(impl->gateway->make_connection(
              *impl, std::move(accepted), client_id));
        } else {
          impl->connections.push_back(std::make_shared<FrameConnection>(
              *impl, std::move(accepted), impl->max_inbound, client_id,
              impl->options.idle_timeout_ms));
        }
      }
    };
    if ((fds[1].revents & POLLIN) != 0) {
      accept_from(impl->listener, false);
    }
    if ((fds[2].revents & POLLIN) != 0) {
      accept_from(impl->http_listener, true);
    }

    for (std::size_t c = 0; c < polled.size(); ++c) {
      const auto& conn = polled[c];
      const short revents = fds[c + 3].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        conn->close();
        continue;
      }
      if ((revents & POLLOUT) != 0) {
        conn->handle_writable();
      }
      if ((revents & (POLLIN | POLLHUP)) != 0) {
        conn->handle_readable();
      }
    }

    // Protocol timers (slow-loris, drain grace) and deferred work
    // (HTTP pipelining resumes once a streaming response finished).
    const Clock::time_point now = Clock::now();
    for (const auto& conn : impl->connections) {
      if (conn->next_deadline() <= now) {
        conn->on_deadline();
      }
      conn->on_loop_tick();
    }

    // Retire connections that are finished (or were closed above):
    // reading done, no response stream open, nothing left to flush.
    // During a drain, idle frame connections retire without waiting
    // for the client's EOF — everything they could still send would
    // only be rejected, and run() must eventually return. (HTTP
    // connections bound their drain lingering with a grace deadline
    // instead, so probes still get one answer.)
    std::vector<std::shared_ptr<Connection>> alive;
    for (const auto& conn : impl->connections) {
      if (conn->finished()) {
        conn->close();
      } else {
        alive.push_back(conn);
      }
    }
    impl->connections.swap(alive);
    if (impl->draining && impl->connections.empty()) {
      // Drained dry: every in-flight response finished and flushed.
      break;
    }
  }

  for (const auto& conn : impl->connections) {
    conn->close();
  }
  impl->connections.clear();
  return !impl->loop_failed;
}

}  // namespace symphase
