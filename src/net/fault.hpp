#pragma once

/// \file fault.hpp
/// FaultSocket: a test-only client-side socket wrapper that injects
/// transport faults against a live server — the sharp end of
/// tests/chaos_test.cpp.
///
/// A FaultPlan scripts how the byte stream misbehaves:
///  - max_write_chunk slices writes into short sends, so the server's
///    decoder sees frames arriving a few bytes at a time;
///  - tear_offsets flush the stream and stall at exact byte positions
///    (e.g. inside a 17-byte frame header), proving reassembly never
///    depends on send() boundaries;
///  - reset_after_bytes aborts the connection with an RST mid-stream
///    (SO_LINGER zero-timeout close) — the client vanished;
///  - close_after_bytes half-closes cleanly at an arbitrary position,
///    e.g. mid-frame, which the server must call out as a protocol
///    error rather than hang or crash.
///
/// It deliberately does NOT wrap the server side: the server's own
/// socket handling is the system under test and stays untouched.
/// Sends use MSG_NOSIGNAL, like every other socket write in src/net/ —
/// a peer that already reset us must surface as an error return, not
/// SIGPIPE.

#include <chrono>
#include <cstddef>
#include <string_view>
#include <vector>

#include "net/socket.hpp"

namespace symphase {

struct FaultPlan {
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

  /// Writes are sliced to at most this many bytes per send(2) call.
  std::size_t max_write_chunk = kNever;
  /// Absolute stream offsets (bytes sent so far) at which the write
  /// pauses for `stall` before the next byte leaves. Unsorted is fine.
  std::vector<std::size_t> tear_offsets;
  std::chrono::milliseconds stall{0};
  /// After exactly this many bytes were sent, abort with an RST.
  std::size_t reset_after_bytes = kNever;
  /// After exactly this many bytes were sent, half-close cleanly (FIN).
  std::size_t close_after_bytes = kNever;
};

class FaultSocket {
 public:
  /// Wraps a connected socket (e.g. tcp_connect's result).
  FaultSocket(Socket socket, FaultPlan plan);

  /// Pushes `bytes` through the plan. Returns false once the plan
  /// killed the connection (reset/close offset reached) — the
  /// remainder of `bytes` is dropped, like the kernel would.
  bool send(std::string_view bytes);

  /// Plain recv(2) with EINTR retry. Returns 0 on EOF; throws
  /// std::runtime_error on socket errors.
  std::size_t recv_some(char* buffer, std::size_t size);

  /// Aborts now: SO_LINGER{on, 0} + close makes the kernel send RST
  /// instead of FIN, so the server sees ECONNRESET mid-stream.
  void reset_now();

  /// Half-closes the write side now (FIN); reads keep working.
  void close_writes_now();

  bool alive() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }
  std::size_t bytes_sent() const { return sent_; }

 private:
  Socket socket_;
  FaultPlan plan_;
  std::size_t sent_ = 0;
};

}  // namespace symphase
