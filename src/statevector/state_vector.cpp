#include "statevector/state_vector.hpp"

#include <cmath>

namespace symphase {

namespace {
using C = StateVector::Amplitude;
const C kI{0.0, 1.0};
}  // namespace

StateVector::StateVector(std::size_t num_qubits)
    : num_qubits_(num_qubits), amps_(std::size_t{1} << num_qubits, C{0.0}) {
  SYMPHASE_CHECK_MSG(num_qubits <= 24, "state-vector oracle capped at 24 qubits");
  amps_[0] = C{1.0};
}

void StateVector::apply_single(std::uint32_t q, const C m00, const C m01,
                               const C m10, const C m11) {
  SYMPHASE_CHECK(q < num_qubits_);
  const std::size_t stride = std::size_t{1} << q;
  for (std::size_t base = 0; base < amps_.size(); base += 2 * stride) {
    for (std::size_t i = base; i < base + stride; ++i) {
      const C a0 = amps_[i];
      const C a1 = amps_[i + stride];
      amps_[i] = m00 * a0 + m01 * a1;
      amps_[i + stride] = m10 * a0 + m11 * a1;
    }
  }
}

void StateVector::apply_gate(GateType type, std::uint32_t a, std::uint32_t b) {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (type) {
    case GateType::I:
      return;
    case GateType::X:
      apply_single(a, 0, 1, 1, 0);
      return;
    case GateType::Y:
      apply_single(a, 0, -kI, kI, 0);
      return;
    case GateType::Z:
      apply_single(a, 1, 0, 0, -1);
      return;
    case GateType::H:
      apply_single(a, inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
      return;
    case GateType::S:
      apply_single(a, 1, 0, 0, kI);
      return;
    case GateType::S_DAG:
      apply_single(a, 1, 0, 0, -kI);
      return;
    case GateType::SQRT_X:
      apply_single(a, C{0.5, 0.5}, C{0.5, -0.5}, C{0.5, -0.5}, C{0.5, 0.5});
      return;
    case GateType::SQRT_X_DAG:
      apply_single(a, C{0.5, -0.5}, C{0.5, 0.5}, C{0.5, 0.5}, C{0.5, -0.5});
      return;
    case GateType::H_YZ: {
      // Maps Y <-> Z under conjugation: (S H S) up to phase. Matrix:
      // [[1, -i], [i, -1]] / sqrt(2).
      apply_single(a, inv_sqrt2 * C{1, 0}, inv_sqrt2 * (-kI),
                   inv_sqrt2 * kI, inv_sqrt2 * C{-1, 0});
      return;
    }
    case GateType::CNOT: {
      SYMPHASE_CHECK(a < num_qubits_ && b < num_qubits_ && a != b);
      const std::size_t ca = std::size_t{1} << a;
      const std::size_t cb = std::size_t{1} << b;
      for (std::size_t i = 0; i < amps_.size(); ++i) {
        if ((i & ca) != 0 && (i & cb) == 0) {
          std::swap(amps_[i], amps_[i | cb]);
        }
      }
      return;
    }
    case GateType::CZ: {
      SYMPHASE_CHECK(a < num_qubits_ && b < num_qubits_ && a != b);
      const std::size_t ca = std::size_t{1} << a;
      const std::size_t cb = std::size_t{1} << b;
      for (std::size_t i = 0; i < amps_.size(); ++i) {
        if ((i & ca) != 0 && (i & cb) != 0) {
          amps_[i] = -amps_[i];
        }
      }
      return;
    }
    case GateType::SWAP: {
      SYMPHASE_CHECK(a < num_qubits_ && b < num_qubits_ && a != b);
      const std::size_t ca = std::size_t{1} << a;
      const std::size_t cb = std::size_t{1} << b;
      for (std::size_t i = 0; i < amps_.size(); ++i) {
        if ((i & ca) != 0 && (i & cb) == 0) {
          std::swap(amps_[i], amps_[(i & ~ca) | cb]);
        }
      }
      return;
    }
    default:
      SYMPHASE_CHECK_MSG(false, "apply_gate: " << gate_name(type)
                                               << " is not a unitary gate");
  }
}

void StateVector::apply_pauli(const PauliString& pauli) {
  SYMPHASE_CHECK(pauli.num_qubits() == num_qubits_);
  for (std::uint32_t q = 0; q < num_qubits_; ++q) {
    switch (pauli.pauli_at(q)) {
      case SinglePauli::I:
        break;
      case SinglePauli::X:
        apply_gate(GateType::X, q);
        break;
      case SinglePauli::Y:
        apply_gate(GateType::Y, q);
        break;
      case SinglePauli::Z:
        apply_gate(GateType::Z, q);
        break;
    }
  }
  C phase{1.0};
  for (int k = 0; k < pauli.phase_exponent(); ++k) {
    phase *= kI;
  }
  if (phase != C{1.0}) {
    for (auto& amp : amps_) {
      amp *= phase;
    }
  }
}

double StateVector::prob_zero(std::uint32_t q) const {
  SYMPHASE_CHECK(q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & mask) == 0) {
      p += std::norm(amps_[i]);
    }
  }
  return p;
}

bool StateVector::measure(std::uint32_t q, Rng& rng) {
  const double p0 = prob_zero(q);
  const bool outcome = rng.next_double() >= p0;
  postselect(q, outcome);
  return outcome;
}

double StateVector::postselect(std::uint32_t q, bool outcome) {
  SYMPHASE_CHECK(q < num_qubits_);
  const std::size_t mask = std::size_t{1} << q;
  double p = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const bool bit = (i & mask) != 0;
    if (bit == outcome) {
      p += std::norm(amps_[i]);
    } else {
      amps_[i] = C{0.0};
    }
  }
  SYMPHASE_CHECK_MSG(p > 1e-12, "postselected on a zero-probability outcome");
  const double scale = 1.0 / std::sqrt(p);
  for (auto& amp : amps_) {
    amp *= scale;
  }
  return p;
}

void StateVector::reset(std::uint32_t q, Rng& rng) {
  if (measure(q, rng)) {
    apply_gate(GateType::X, q);
  }
}

void StateVector::run_circuit(const Circuit& circuit, Rng& rng,
                              std::vector<bool>& record) {
  SYMPHASE_CHECK(circuit.num_qubits() <= num_qubits_);
  for (const Instruction& inst : circuit.instructions()) {
    const GateInfo& info = gate_info(inst.type);
    switch (info.kind) {
      case GateKind::kUnitary1:
        for (const std::uint32_t q : inst.targets) {
          apply_gate(inst.type, q);
        }
        break;
      case GateKind::kUnitary2:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          apply_gate(inst.type, inst.targets[i], inst.targets[i + 1]);
        }
        break;
      case GateKind::kMeasure:
        for (const std::uint32_t q : inst.targets) {
          const bool outcome = measure(q, rng);
          record.push_back(outcome);
          if (inst.type == GateType::MR && outcome) {
            apply_gate(GateType::X, q);
          }
        }
        break;
      case GateKind::kReset:
        for (const std::uint32_t q : inst.targets) {
          reset(q, rng);
        }
        break;
      case GateKind::kNoise1:
        for (const std::uint32_t q : inst.targets) {
          if (inst.type == GateType::DEPOLARIZE1) {
            if (rng.next_double() < inst.probability) {
              switch (rng.next_below(3)) {
                case 0:
                  apply_gate(GateType::X, q);
                  break;
                case 1:
                  apply_gate(GateType::Y, q);
                  break;
                default:
                  apply_gate(GateType::Z, q);
                  break;
              }
            }
          } else if (rng.next_double() < inst.probability) {
            switch (inst.type) {
              case GateType::X_ERROR:
                apply_gate(GateType::X, q);
                break;
              case GateType::Y_ERROR:
                apply_gate(GateType::Y, q);
                break;
              default:
                apply_gate(GateType::Z, q);
                break;
            }
          }
        }
        break;
      case GateKind::kNoise2:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          if (rng.next_double() < inst.probability) {
            // Uniform non-identity two-qubit Pauli (15 options).
            const std::uint64_t pick = rng.next_below(15) + 1;
            const auto apply_single_pauli = [&](std::uint32_t q,
                                                std::uint64_t code) {
              switch (code) {
                case 1:
                  apply_gate(GateType::X, q);
                  break;
                case 2:
                  apply_gate(GateType::Z, q);
                  break;
                case 3:
                  apply_gate(GateType::Y, q);
                  break;
                default:
                  break;
              }
            };
            apply_single_pauli(inst.targets[i], pick & 3);
            apply_single_pauli(inst.targets[i + 1], (pick >> 2) & 3);
          }
        }
        break;
      case GateKind::kControlled:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          const std::uint32_t lookback = rec_lookback(inst.targets[i]);
          SYMPHASE_CHECK_MSG(lookback >= 1 && lookback <= record.size(),
                             "record lookback exceeds the record");
          if (!record[record.size() - lookback]) {
            continue;
          }
          const std::uint32_t q = inst.targets[i + 1];
          switch (inst.type) {
            case GateType::COND_X:
              apply_gate(GateType::X, q);
              break;
            case GateType::COND_Y:
              apply_gate(GateType::Y, q);
              break;
            default:
              apply_gate(GateType::Z, q);
              break;
          }
        }
        break;
      case GateKind::kDetector:
      case GateKind::kAnnotation:
        break;
    }
  }
}

double StateVector::fidelity_with(const StateVector& other) const {
  SYMPHASE_CHECK(num_qubits_ == other.num_qubits_);
  C inner{0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    inner += std::conj(amps_[i]) * other.amps_[i];
  }
  return std::norm(inner);
}

bool StateVector::is_stabilized_by(const PauliString& pauli,
                                   double tol) const {
  StateVector copy = *this;
  copy.apply_pauli(pauli);
  C inner{0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    inner += std::conj(amps_[i]) * copy.amps_[i];
  }
  return std::abs(inner - C{1.0}) < tol;
}

}  // namespace symphase
