#pragma once

/// \file state_vector.hpp
/// Dense state-vector simulator used as the ground-truth oracle in tests.
///
/// Exponential in qubit count (intended for n <= ~14); the stabilizer
/// machinery is validated against it on small random circuits. Not part
/// of the performance path.

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "pauli/pauli_string.hpp"

namespace symphase {

class StateVector {
 public:
  using Amplitude = std::complex<double>;

  /// |0...0> on `num_qubits` qubits.
  explicit StateVector(std::size_t num_qubits);

  std::size_t num_qubits() const { return num_qubits_; }
  const std::vector<Amplitude>& amplitudes() const { return amps_; }

  /// Applies a unitary gate (kUnitary1/kUnitary2 only) to the targets.
  void apply_gate(GateType type, std::uint32_t a, std::uint32_t b = 0);

  /// Applies a literal Pauli string (including its i^k phase).
  void apply_pauli(const PauliString& pauli);

  /// Probability of measuring qubit q as 0.
  double prob_zero(std::uint32_t q) const;

  /// Measures qubit q in the computational basis, collapsing the state.
  bool measure(std::uint32_t q, Rng& rng);

  /// Forces qubit q to `outcome`, renormalizing. Returns the probability
  /// the outcome had; caller must ensure it is non-zero.
  double postselect(std::uint32_t q, bool outcome);

  /// Resets qubit q to |0> (measure, then flip if needed).
  void reset(std::uint32_t q, Rng& rng);

  /// Runs a full circuit. Noise channels are sampled using `rng`;
  /// measurement outcomes are appended to `record`.
  void run_circuit(const Circuit& circuit, Rng& rng,
                   std::vector<bool>& record);

  /// |<this|other>|^2 — 1 when equal up to global phase.
  double fidelity_with(const StateVector& other) const;

  /// True when `pauli` stabilizes the state: P|psi> == |psi> within tol.
  bool is_stabilized_by(const PauliString& pauli, double tol = 1e-9) const;

 private:
  void apply_single(std::uint32_t q, const Amplitude m00, const Amplitude m01,
                    const Amplitude m10, const Amplitude m11);

  std::size_t num_qubits_;
  std::vector<Amplitude> amps_;
};

}  // namespace symphase
