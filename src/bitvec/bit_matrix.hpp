#pragma once

/// \file bit_matrix.hpp
/// Row-major packed bit-matrix over F2.
///
/// Used for the measurement-expression matrix M, the symbol-sample matrix
/// B, and the sample output matrix of Algorithm 1 (Eq. 4). Rows are padded
/// to whole 64-bit words and 64-byte alignment so row XOR runs at SIMD
/// width.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/aligned.hpp"
#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/simd_word.hpp"

namespace symphase {

class BitMatrix {
 public:
  BitMatrix() = default;

  /// All-zero matrix of shape rows × cols.
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        // Pad the row stride to a multiple of 8 words (one cache line) so
        // each row starts 64-byte aligned.
        words_per_row_(round_up_pow2(words_for_bits(cols), 8)),
        data_(rows * words_per_row_, 0) {}

  static BitMatrix identity(std::size_t n) {
    BitMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      m.set(i, i, true);
    }
    return m;
  }

  /// Matrix of independent fair coin flips (tail bits kept zero).
  static BitMatrix random(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t words_per_row() const { return words_per_row_; }

  Word* row(std::size_t r) {
    SYMPHASE_ASSERT(r < rows_);
    return data_.data() + r * words_per_row_;
  }
  const Word* row(std::size_t r) const {
    SYMPHASE_ASSERT(r < rows_);
    return data_.data() + r * words_per_row_;
  }

  std::span<Word> row_span(std::size_t r) {
    return {row(r), words_per_row_};
  }
  std::span<const Word> row_span(std::size_t r) const {
    return {row(r), words_per_row_};
  }

  bool get(std::size_t r, std::size_t c) const {
    SYMPHASE_ASSERT(c < cols_);
    return get_bit(row(r), c);
  }
  void set(std::size_t r, std::size_t c, bool v) {
    SYMPHASE_ASSERT(c < cols_);
    set_bit(row(r), c, v);
  }
  void flip(std::size_t r, std::size_t c) {
    SYMPHASE_ASSERT(c < cols_);
    flip_bit(row(r), c);
  }

  /// row(dst) ^= row(src).
  void xor_row_into(std::size_t src, std::size_t dst) {
    wide::xor_words(row(dst), row(src), words_per_row_);
  }

  /// row(dst) ^= external word span (must cover words_per_row words).
  void xor_words_into_row(std::span<const Word> src, std::size_t dst) {
    SYMPHASE_ASSERT(src.size() >= words_per_row_);
    wide::xor_words(row(dst), src.data(), words_per_row_);
  }

  void swap_rows(std::size_t a, std::size_t b) {
    if (a == b) {
      return;
    }
    wide::swap_words(row(a), row(b), words_per_row_);
  }

  void clear_row(std::size_t r) {
    wide::clear_words(row(r), words_per_row_);
  }

  void clear_all() { wide::clear_words(data_.data(), data_.size()); }

  bool row_is_zero(std::size_t r) const {
    return !wide::any_nonzero(row(r), words_per_row_);
  }

  std::size_t count_ones() const {
    return wide::count_ones(data_.data(), data_.size());
  }

  /// Exact transpose into a fresh (cols × rows) matrix.
  BitMatrix transposed() const;

  /// F2 product: (*this) · rhs, shapes (r×k)·(k×c) → r×c.
  BitMatrix multiply(const BitMatrix& rhs) const;

  bool operator==(const BitMatrix& other) const;

  /// Multi-line "0101…" dump for debugging/tests.
  std::string to_string() const;

  /// Writes the transpose of the [0,row_limit)x[0,col_limit) region of
  /// src into the same region (transposed) of dst. dst must be at least
  /// col_limit x row_limit; untouched dst bits keep their values. Used by
  /// the Stim-style tableau layout to transpose only the live prefix.
  friend void transpose_region(const BitMatrix& src, std::size_t row_limit,
                               std::size_t col_limit, BitMatrix& dst);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  AlignedWordVec data_;
};

}  // namespace symphase
