#include "bitvec/transpose.hpp"

#include <utility>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/check.hpp"

namespace symphase {

namespace {

/// One level of the recursive bitwise block swap: exchanges the
/// `shift`-offset sub-blocks selected by `mask` between rows k and
/// k+shift for every applicable k.
template <int Shift>
inline void swap_level(std::uint64_t* row_a, std::uint64_t* row_b,
                       std::uint64_t mask) {
  // LSB-first convention (bit j = column j): the high-column sub-block of
  // row_a exchanges with the low-column sub-block of row_b.
  const std::uint64_t t = ((*row_a >> Shift) ^ *row_b) & mask;
  *row_a ^= t << Shift;
  *row_b ^= t;
}

template <int Shift>
inline void transpose_pass(std::uint64_t* rows, std::size_t stride,
                           std::uint64_t mask) {
  for (int group = 0; group < 64; group += 2 * Shift) {
    for (int k = group; k < group + Shift; ++k) {
      swap_level<Shift>(&rows[static_cast<std::size_t>(k) * stride],
                        &rows[static_cast<std::size_t>(k + Shift) * stride],
                        mask);
    }
  }
}

}  // namespace

void transpose_64x64_strided(std::uint64_t* base, std::size_t stride) {
  transpose_pass<32>(base, stride, 0x00000000FFFFFFFFull);
  transpose_pass<16>(base, stride, 0x0000FFFF0000FFFFull);
  transpose_pass<8>(base, stride, 0x00FF00FF00FF00FFull);
  transpose_pass<4>(base, stride, 0x0F0F0F0F0F0F0F0Full);
  transpose_pass<2>(base, stride, 0x3333333333333333ull);
  transpose_pass<1>(base, stride, 0x5555555555555555ull);
}

void transpose_64x64(std::uint64_t block[64]) {
  transpose_64x64_strided(block, 1);
}

void transpose_bit_matrix(const std::uint64_t* in, std::size_t wr,
                          std::size_t wc, std::uint64_t* out) {
  SYMPHASE_ASSERT(in != out);
  std::uint64_t tile[64];
  for (std::size_t br = 0; br < wr; ++br) {
    for (std::size_t bc = 0; bc < wc; ++bc) {
      for (std::size_t r = 0; r < 64; ++r) {
        tile[r] = in[(br * 64 + r) * wc + bc];
      }
      transpose_64x64(tile);
      for (std::size_t r = 0; r < 64; ++r) {
        out[(bc * 64 + r) * wr + br] = tile[r];
      }
    }
  }
}

namespace {

/// One butterfly level of the 64×64 transpose applied to a 64-line ×
/// 8-word block, all 8 words of each line pair at once. AVX-512 handles
/// a full line per register, AVX2 two halves, and the scalar fallback
/// relies on unrolling. Unaligned loads cost nothing when the data is in
/// fact aligned (tiles live in 64-byte-aligned storage).
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's _mm512_loadu_si512 expansion trips -Wuninitialized on a
// compiler-internal temporary; the loads below are fully initialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
template <int Shift>
inline void transpose_pass_lines(std::uint64_t* block, std::uint64_t mask) {
#if defined(__AVX512F__)
  const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(mask));
  for (int group = 0; group < 64; group += 2 * Shift) {
    for (int k = group; k < group + Shift; ++k) {
      auto* a = reinterpret_cast<__m512i*>(block +
                                           static_cast<std::size_t>(k) * 8);
      auto* b = reinterpret_cast<__m512i*>(
          block + static_cast<std::size_t>(k + Shift) * 8);
      const __m512i va = _mm512_loadu_si512(a);
      const __m512i vb = _mm512_loadu_si512(b);
      const __m512i vt = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(va, Shift), vb), vmask);
      _mm512_storeu_si512(a,
                         _mm512_xor_si512(va, _mm512_slli_epi64(vt, Shift)));
      _mm512_storeu_si512(b, _mm512_xor_si512(vb, vt));
    }
  }
#elif defined(__AVX2__)
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  for (int group = 0; group < 64; group += 2 * Shift) {
    for (int k = group; k < group + Shift; ++k) {
      auto* a = reinterpret_cast<__m256i*>(block +
                                           static_cast<std::size_t>(k) * 8);
      auto* b = reinterpret_cast<__m256i*>(
          block + static_cast<std::size_t>(k + Shift) * 8);
      for (int half = 0; half < 2; ++half) {
        const __m256i va = _mm256_loadu_si256(a + half);
        const __m256i vb = _mm256_loadu_si256(b + half);
        const __m256i vt = _mm256_and_si256(
            _mm256_xor_si256(_mm256_srli_epi64(va, Shift), vb), vmask);
        _mm256_storeu_si256(a + half, _mm256_xor_si256(
                                         va, _mm256_slli_epi64(vt, Shift)));
        _mm256_storeu_si256(b + half, _mm256_xor_si256(vb, vt));
      }
    }
  }
#else
  for (int group = 0; group < 64; group += 2 * Shift) {
    for (int k = group; k < group + Shift; ++k) {
      std::uint64_t* __restrict__ a = block + static_cast<std::size_t>(k) * 8;
      std::uint64_t* __restrict__ b =
          block + static_cast<std::size_t>(k + Shift) * 8;
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t t = ((a[j] >> Shift) ^ b[j]) & mask;
        a[j] ^= t << Shift;
        b[j] ^= t;
      }
    }
  }
#endif
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

void transpose_tile512_inplace(std::uint64_t* tile) {
  // Step 1: transpose every 64×64 sub-block in place. Sub-block (i, j)
  // occupies word j of lines 64i..64i+63; handling all j together keeps
  // every access a full 64-byte line.
  for (std::size_t i = 0; i < 8; ++i) {
    std::uint64_t* block = tile + i * 64 * 8;
    transpose_pass_lines<32>(block, 0x00000000FFFFFFFFull);
    transpose_pass_lines<16>(block, 0x0000FFFF0000FFFFull);
    transpose_pass_lines<8>(block, 0x00FF00FF00FF00FFull);
    transpose_pass_lines<4>(block, 0x0F0F0F0F0F0F0F0Full);
    transpose_pass_lines<2>(block, 0x3333333333333333ull);
    transpose_pass_lines<1>(block, 0x5555555555555555ull);
  }
  // Step 2: exchange sub-block (i, j) with (j, i).
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      for (std::size_t r = 0; r < 64; ++r) {
        std::swap(tile[(64 * i + r) * 8 + j], tile[(64 * j + r) * 8 + i]);
      }
    }
  }
}

void transpose_bit_matrix_inplace(std::uint64_t* data, std::size_t w) {
  // Diagonal tiles transpose in place; off-diagonal tile pairs transpose
  // and swap.
  for (std::size_t bd = 0; bd < w; ++bd) {
    transpose_64x64_strided(&data[bd * 64 * w + bd], w);
  }
  for (std::size_t br = 0; br < w; ++br) {
    for (std::size_t bc = br + 1; bc < w; ++bc) {
      std::uint64_t* upper = &data[br * 64 * w + bc];
      std::uint64_t* lower = &data[bc * 64 * w + br];
      transpose_64x64_strided(upper, w);
      transpose_64x64_strided(lower, w);
      for (std::size_t r = 0; r < 64; ++r) {
        std::swap(upper[r * w], lower[r * w]);
      }
    }
  }
}

}  // namespace symphase
