#include "bitvec/sparse_bit_matrix.hpp"

namespace symphase {

SparseBitMatrix SparseBitMatrix::from_dense(const BitMatrix& dense) {
  SparseBitMatrix out(dense.rows(), dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    std::vector<std::uint32_t> indices;
    const Word* words = dense.row(r);
    for (std::size_t wi = 0; wi < words_for_bits(dense.cols()); ++wi) {
      Word bits = words[wi];
      while (bits != 0) {
        const auto k = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        indices.push_back(static_cast<std::uint32_t>(wi * kWordBits + k));
      }
    }
    out.set_row(r, std::move(indices));
  }
  return out;
}

BitMatrix SparseBitMatrix::to_dense() const {
  BitMatrix out(rows(), cols_);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::uint32_t c : rows_[r]) {
      out.set(r, c, true);
    }
  }
  return out;
}

BitMatrix SparseBitMatrix::multiply(const BitMatrix& rhs) const {
  SYMPHASE_CHECK_MSG(cols_ == rhs.rows(),
                     "sparse shape ?x" << cols_ << " does not compose with "
                                       << rhs.rows() << "x" << rhs.cols());
  BitMatrix out(rows(), rhs.cols());
  multiply_word_range(rhs, out, 0, out.words_per_row());
  return out;
}

void SparseBitMatrix::multiply_word_range(const BitMatrix& rhs, BitMatrix& out,
                                          std::size_t word0,
                                          std::size_t words) const {
  SYMPHASE_CHECK_MSG(cols_ == rhs.rows(),
                     "sparse shape ?x" << cols_ << " does not compose with "
                                       << rhs.rows() << "x" << rhs.cols());
  SYMPHASE_CHECK(out.rows() == rows() && out.cols() == rhs.cols());
  SYMPHASE_CHECK(word0 + words <= out.words_per_row());
  // Copy-first accumulation: the first selected rhs row is written with
  // plain stores (rows with no entries need no work), further rows XOR
  // on top. Halves the write traffic versus XOR-into-zero on the 1-entry
  // rows that dominate compiled measurement expressions.
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto& cols = rows_[r];
    if (cols.empty()) {
      continue;
    }
    Word* dst = out.row(r) + word0;
    wide::copy_words(dst, rhs.row(cols[0]) + word0, words);
    for (std::size_t k = 1; k < cols.size(); ++k) {
      wide::xor_words(dst, rhs.row(cols[k]) + word0, words);
    }
  }
}

void SparseBitMatrix::multiply_into(const BitMatrix& rhs,
                                    BitMatrix& out) const {
  SYMPHASE_CHECK_MSG(cols_ == rhs.rows(),
                     "sparse shape ?x" << cols_ << " does not compose with "
                                       << rhs.rows() << "x" << rhs.cols());
  SYMPHASE_CHECK(out.rows() == rows() && out.cols() == rhs.cols());
  const std::size_t words = out.words_per_row();
  for (std::size_t r = 0; r < rows(); ++r) {
    Word* dst = out.row(r);
    for (std::uint32_t c : rows_[r]) {
      wide::xor_words(dst, rhs.row(c), words);
    }
  }
}

}  // namespace symphase
