#include "bitvec/bit_matrix.hpp"

#include <sstream>

#include "bitvec/transpose.hpp"

namespace symphase {

BitMatrix BitMatrix::random(std::size_t rows, std::size_t cols, Rng& rng) {
  BitMatrix m(rows, cols);
  const std::size_t full_words = words_for_bits(cols);
  const Word tail = tail_mask(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    Word* d = m.row(r);
    for (std::size_t i = 0; i < full_words; ++i) {
      d[i] = rng.next_word();
    }
    if (full_words > 0) {
      d[full_words - 1] &= tail;
    }
  }
  return m;
}

BitMatrix BitMatrix::transposed() const {
  BitMatrix out(cols_, rows_);
  // Tile-wise: gather a 64×64 bit tile, transpose in registers, scatter.
  const std::size_t row_tiles = ceil_div(rows_, 64);
  const std::size_t col_tiles = ceil_div(cols_, 64);
  Word tile[64];
  for (std::size_t br = 0; br < row_tiles; ++br) {
    const std::size_t r_count = std::min<std::size_t>(64, rows_ - br * 64);
    for (std::size_t bc = 0; bc < col_tiles; ++bc) {
      for (std::size_t r = 0; r < 64; ++r) {
        tile[r] = r < r_count ? row(br * 64 + r)[bc] : 0;
      }
      transpose_64x64(tile);
      const std::size_t c_count = std::min<std::size_t>(64, cols_ - bc * 64);
      for (std::size_t c = 0; c < c_count; ++c) {
        out.row(bc * 64 + c)[br] = tile[c];
      }
    }
  }
  return out;
}

BitMatrix BitMatrix::multiply(const BitMatrix& rhs) const {
  SYMPHASE_CHECK_MSG(cols_ == rhs.rows_,
                     "bit-matrix shapes " << rows_ << "x" << cols_ << " and "
                                          << rhs.rows_ << "x" << rhs.cols_
                                          << " do not compose");
  BitMatrix out(rows_, rhs.cols_);
  // Row-by-row accumulation: out.row(r) = XOR of rhs rows selected by the
  // set bits of this->row(r). Word-at-a-time over the selector keeps the
  // inner loop branch-light.
  for (std::size_t r = 0; r < rows_; ++r) {
    const Word* sel = row(r);
    Word* dst = out.row(r);
    for (std::size_t wi = 0; wi < words_for_bits(cols_); ++wi) {
      Word bits = sel[wi];
      while (bits != 0) {
        const auto k = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const Word* src = rhs.row(wi * kWordBits + k);
        wide::xor_words(dst, src, out.words_per_row_);
      }
    }
  }
  return out;
}

void transpose_region(const BitMatrix& src, std::size_t row_limit,
                      std::size_t col_limit, BitMatrix& dst) {
  SYMPHASE_CHECK(row_limit <= src.rows() && col_limit <= src.cols());
  SYMPHASE_CHECK(col_limit <= dst.rows() && row_limit <= dst.cols());
  const std::size_t row_tiles = ceil_div(row_limit, 64);
  const std::size_t col_tiles = ceil_div(col_limit, 64);
  Word tile[64];
  for (std::size_t br = 0; br < row_tiles; ++br) {
    const std::size_t r_count = std::min<std::size_t>(64, row_limit - br * 64);
    for (std::size_t bc = 0; bc < col_tiles; ++bc) {
      for (std::size_t r = 0; r < 64; ++r) {
        tile[r] = r < r_count ? src.row(br * 64 + r)[bc] : 0;
      }
      transpose_64x64(tile);
      const std::size_t c_count =
          std::min<std::size_t>(64, col_limit - bc * 64);
      for (std::size_t c = 0; c < c_count; ++c) {
        dst.row(bc * 64 + c)[br] = tile[c];
      }
    }
  }
}

bool BitMatrix::operator==(const BitMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return false;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!wide::spans_equal(row(r), other.row(r), words_for_bits(cols_))) {
      return false;
    }
  }
  return true;
}

std::string BitMatrix::to_string() const {
  std::ostringstream oss;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      oss << (get(r, c) ? '1' : '0');
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace symphase
