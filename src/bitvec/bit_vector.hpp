#pragma once

/// \file bit_vector.hpp
/// Dynamically sized packed bit vector over F2.
///
/// This is the scalar workhorse behind symbolic phases and measurement
/// expressions: a phase is a BitVector over (1 + n_s) symbol columns, and
/// the dominant operation is whole-vector XOR (row multiplication in the
/// tableau, expression accumulation in measurements).

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/aligned.hpp"
#include "common/bits.hpp"
#include "common/check.hpp"
#include "common/simd_word.hpp"

namespace symphase {

class BitVector {
 public:
  BitVector() = default;

  /// All-zero vector of `bits` bits.
  explicit BitVector(std::size_t bits)
      : bits_(bits), words_(words_for_bits(bits), 0) {}

  std::size_t size() const { return bits_; }
  std::size_t word_count() const { return words_.size(); }
  bool empty() const { return bits_ == 0; }

  Word* words() { return words_.data(); }
  const Word* words() const { return words_.data(); }

  bool get(std::size_t bit) const {
    SYMPHASE_ASSERT(bit < bits_);
    return get_bit(words_.data(), bit);
  }

  void set(std::size_t bit, bool value) {
    SYMPHASE_ASSERT(bit < bits_);
    set_bit(words_.data(), bit, value);
  }

  void flip(std::size_t bit) {
    SYMPHASE_ASSERT(bit < bits_);
    flip_bit(words_.data(), bit);
  }

  bool operator[](std::size_t bit) const { return get(bit); }

  void clear_all() { wide::clear_words(words_.data(), words_.size()); }

  /// Grows (or shrinks) to `bits`; preserved bits keep their values, new
  /// bits are zero.
  void resize(std::size_t bits) {
    words_.resize(words_for_bits(bits), 0);
    bits_ = bits;
    trim_tail();
  }

  /// this ^= other. Sizes must match.
  BitVector& operator^=(const BitVector& other) {
    SYMPHASE_ASSERT(bits_ == other.bits_);
    wide::xor_words(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  BitVector& operator&=(const BitVector& other) {
    SYMPHASE_ASSERT(bits_ == other.bits_);
    wide::and_words(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  BitVector& operator|=(const BitVector& other) {
    SYMPHASE_ASSERT(bits_ == other.bits_);
    wide::or_words(words_.data(), other.words_.data(), words_.size());
    return *this;
  }

  friend BitVector operator^(BitVector lhs, const BitVector& rhs) {
    lhs ^= rhs;
    return lhs;
  }

  bool operator==(const BitVector& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }

  /// Number of set bits.
  std::size_t count_ones() const {
    return wide::count_ones(words_.data(), words_.size());
  }

  bool any() const { return wide::any_nonzero(words_.data(), words_.size()); }

  /// Parity of the AND with another vector: <this, other> over F2.
  bool dot(const BitVector& other) const {
    SYMPHASE_ASSERT(bits_ == other.bits_);
    return parity(
        wide::xor_and_fold(words_.data(), other.words_.data(), words_.size()));
  }

  /// Index of the lowest set bit, or size() if none.
  std::size_t first_set() const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] != 0) {
        return i * kWordBits +
               static_cast<std::size_t>(std::countr_zero(words_[i]));
      }
    }
    return bits_;
  }

  /// "0110..." string, LSB (bit 0) first. Debug/test aid.
  std::string to_string() const {
    std::string s;
    s.reserve(bits_);
    for (std::size_t i = 0; i < bits_; ++i) {
      s.push_back(get(i) ? '1' : '0');
    }
    return s;
  }

 private:
  /// Zeroes bits beyond size() in the last word so equality and popcount
  /// stay canonical after resize.
  void trim_tail() {
    if (!words_.empty()) {
      words_.back() &= tail_mask(bits_);
    }
  }

  std::size_t bits_ = 0;
  AlignedWordVec words_;
};

}  // namespace symphase
