#pragma once

/// \file sparse_bit_matrix.hpp
/// Row-sparse bit-matrix over F2.
///
/// The measurement-expression matrix of Algorithm 1 is column-sparse for
/// realistic circuits: each measurement outcome depends on few symbols.
/// The paper's Sampling step exploits this ("the sparse implementation of
/// matrix multiplication", §5), reducing per-shot cost from
/// O(n_m·(n_m+n_p)) to O(n_m). We store each row as a sorted list of set
/// column indices.

#include <cstdint>
#include <vector>

#include "bitvec/bit_matrix.hpp"
#include "common/check.hpp"

namespace symphase {

class SparseBitMatrix {
 public:
  SparseBitMatrix() = default;

  SparseBitMatrix(std::size_t rows, std::size_t cols)
      : cols_(cols), rows_(rows) {}

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return cols_; }

  /// Sorted set-column indices of row r.
  const std::vector<std::uint32_t>& row(std::size_t r) const {
    SYMPHASE_ASSERT(r < rows_.size());
    return rows_[r];
  }

  /// Replaces row r. `indices` must be sorted and duplicate-free; callers
  /// produce them that way, and debug builds verify it.
  void set_row(std::size_t r, std::vector<std::uint32_t> indices) {
    SYMPHASE_ASSERT(r < rows_.size());
#ifndef NDEBUG
    for (std::size_t i = 0; i < indices.size(); ++i) {
      SYMPHASE_ASSERT(indices[i] < cols_);
      SYMPHASE_ASSERT(i == 0 || indices[i - 1] < indices[i]);
    }
#endif
    rows_[r] = std::move(indices);
  }

  void append_row(std::vector<std::uint32_t> indices) {
    rows_.emplace_back();
    set_row(rows_.size() - 1, std::move(indices));
  }

  /// Total number of stored non-zeros.
  std::size_t nnz() const {
    std::size_t total = 0;
    for (const auto& r : rows_) {
      total += r.size();
    }
    return total;
  }

  static SparseBitMatrix from_dense(const BitMatrix& dense);
  BitMatrix to_dense() const;

  /// F2 product (*this) · rhs. Cost O(nnz · rhs.cols/64): for each row,
  /// XOR together the rhs rows named by its indices.
  BitMatrix multiply(const BitMatrix& rhs) const;

  /// Like multiply(), but XORs into a caller-owned output (shape
  /// rows() × rhs.cols()) without allocating.
  void multiply_into(const BitMatrix& rhs, BitMatrix& out) const;

  /// The product kernel restricted to words [word0, word0 + words) of
  /// every row: overwrites that range of out with the XOR of the
  /// corresponding rhs row ranges (rows with no entries are left
  /// untouched — callers start from a zero matrix). Disjoint ranges
  /// write disjoint memory, so the shot-sharded samplers run this
  /// concurrently from several threads.
  void multiply_word_range(const BitMatrix& rhs, BitMatrix& out,
                           std::size_t word0, std::size_t words) const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::vector<std::uint32_t>> rows_;
};

}  // namespace symphase
