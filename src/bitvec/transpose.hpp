#pragma once

/// \file transpose.hpp
/// Bit-matrix transpose kernels.
///
/// The data-layout study in the paper (§4) hinges on transposition cost:
/// Stim transposes the whole tableau between gate phases (column ops) and
/// measurement phases (row ops); SymPhase only transposes 512×512-bit
/// tiles locally. Both reduce to the same inner kernel: an in-register
/// 64×64 bit transpose.

#include <cstddef>
#include <cstdint>

namespace symphase {

/// In-place transpose of a 64×64 bit block stored as 64 words
/// (word i = row i, bit j = column j). Hacker's Delight 7-3 style
/// recursive block swap; O(64 log 64) word operations.
void transpose_64x64(std::uint64_t block[64]);

/// Transposes a 64×64 bit block held as 64 strided rows: row i is at
/// rows[i * stride]. Used to transpose tiles inside larger matrices
/// without copying them out.
void transpose_64x64_strided(std::uint64_t* base, std::size_t stride);

/// Transposes a bit-matrix of shape (64*wr) × (64*wc) packed row-major
/// with `wc` words per row, into `out` (shape (64*wc) × (64*wr), `wr`
/// words per row). in != out.
void transpose_bit_matrix(const std::uint64_t* in, std::size_t wr,
                          std::size_t wc, std::uint64_t* out);

/// In-place transpose of a square bit-matrix of shape (64*w) × (64*w)
/// packed row-major with `w` words per row.
void transpose_bit_matrix_inplace(std::uint64_t* data, std::size_t w);

/// In-place transpose of one 512×512-bit tile (512 rows of 8 words,
/// row-major). Semantically identical to
/// transpose_bit_matrix_inplace(tile, 8) but organized so the inner loops
/// stream whole 8-word (cache-line / AVX-512 register) lines: the
/// per-tile hot path of the blocked tableau layout.
void transpose_tile512_inplace(std::uint64_t* tile);

}  // namespace symphase
