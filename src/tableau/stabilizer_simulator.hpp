#pragma once

/// \file stabilizer_simulator.hpp
/// Aaronson–Gottesman stabilizer simulator with concrete phases.
///
/// This is the classic improved-tableau algorithm (paper §2.2): Clifford
/// gates in O(n), computational-basis measurements in O(n²) via
/// destabilizer bookkeeping. It is templated over the data layout
/// (RowMajorTableau / ColMajorTableau / BlockedTableau) so the §4 layout
/// study applies to the baseline algorithm as well as to SymPhase.
///
/// Used directly as a reference simulator (it also powers the Pauli-frame
/// baseline's noiseless reference run) and as the structural skeleton the
/// symbolic-phase compiler extends.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "pauli/pauli_string.hpp"
#include "tableau/blocked_tableau.hpp"

namespace symphase {

/// Result of one concrete measurement.
struct MeasureResult {
  bool outcome = false;
  bool was_random = false;
};

template <typename Layout>
class StabilizerSimulator {
 public:
  explicit StabilizerSimulator(std::size_t num_qubits, std::uint64_t seed = 0)
      : tableau_(num_qubits, /*phase_capacity=*/1), rng_(seed) {}

  std::size_t num_qubits() const { return tableau_.num_qubits(); }
  Layout& tableau() { return tableau_; }
  const Layout& tableau() const { return tableau_; }

  /// Measurement record accumulated by run_circuit / measure calls.
  const std::vector<bool>& record() const { return record_; }

  // --- Unitary gates -------------------------------------------------
  void apply_unitary(GateType type, std::uint32_t a, std::uint32_t b = 0) {
    tableau_.prepare_column_mode();
    switch (type) {
      case GateType::I:
        break;
      case GateType::X:
        tableau_.gate_x(a);
        break;
      case GateType::Y:
        tableau_.gate_y(a);
        break;
      case GateType::Z:
        tableau_.gate_z(a);
        break;
      case GateType::H:
        tableau_.gate_h(a);
        break;
      case GateType::S:
        tableau_.gate_s(a);
        break;
      case GateType::S_DAG:
        tableau_.gate_s_dag(a);
        break;
      case GateType::SQRT_X:
        tableau_.gate_sqrt_x(a);
        break;
      case GateType::SQRT_X_DAG:
        tableau_.gate_sqrt_x_dag(a);
        break;
      case GateType::H_YZ:
        tableau_.gate_h_yz(a);
        break;
      case GateType::CNOT:
        tableau_.gate_cnot(a, b);
        break;
      case GateType::CZ:
        tableau_.gate_cz(a, b);
        break;
      case GateType::SWAP:
        tableau_.gate_swap(a, b);
        break;
      default:
        SYMPHASE_CHECK_MSG(false, "apply_unitary: " << gate_name(type)
                                                    << " is not unitary");
    }
  }

  // --- Measurement / reset --------------------------------------------
  /// Measures qubit a in the computational basis.
  MeasureResult measure(std::uint32_t a) {
    tableau_.prepare_row_mode();
    const std::size_t n = num_qubits();
    const std::size_t pivot = find_pivot(a);
    if (pivot != kNoPivot) {
      collapse_on_pivot(a, pivot);
      const bool outcome = (rng_.next_word() & 1) != 0;
      if (outcome) {
        tableau_.row_phase_xor_bit(pivot, 0);
      }
      return {outcome, true};
    }
    // Deterministic: accumulate stabilizer rows named by destabilizer
    // X hits into the scratch row; its sign is the outcome.
    const std::size_t scratch = tableau_.shape().scratch_row();
    tableau_.row_clear(scratch);
    for (std::size_t i = 0; i < n; ++i) {
      if (tableau_.x_bit(tableau_.shape().destab_row(i), a)) {
        tableau_.row_mult(scratch, tableau_.shape().stab_row(i));
      }
    }
    return {tableau_.row_phase_bit(scratch, 0), false};
  }

  /// True when measuring `a` right now would give a deterministic
  /// outcome (no state change).
  bool measurement_is_deterministic(std::uint32_t a) {
    tableau_.prepare_row_mode();
    return find_pivot(a) == kNoPivot;
  }

  /// Resets qubit a to |0>: measure, then conditionally flip.
  void reset_qubit(std::uint32_t a) {
    const MeasureResult r = measure(a);
    if (r.outcome) {
      apply_x_in_row_mode(a);
    }
  }

  // --- Full circuit execution -----------------------------------------
  /// Executes every instruction; noise channels are sampled concretely
  /// with this simulator's RNG. This is the "resampling by re-simulation"
  /// baseline: one full traversal per sample.
  void run_circuit(const Circuit& circuit) {
    SYMPHASE_CHECK(circuit.num_qubits() <= num_qubits());
    for (const Instruction& inst : circuit.instructions()) {
      apply_instruction(inst);
    }
  }

  void apply_instruction(const Instruction& inst) {
    const GateInfo& info = gate_info(inst.type);
    switch (info.kind) {
      case GateKind::kUnitary1:
        for (const std::uint32_t q : inst.targets) {
          apply_unitary(inst.type, q);
        }
        break;
      case GateKind::kUnitary2:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          apply_unitary(inst.type, inst.targets[i], inst.targets[i + 1]);
        }
        break;
      case GateKind::kMeasure:
        for (const std::uint32_t q : inst.targets) {
          const MeasureResult r = measure(q);
          record_.push_back(r.outcome);
          if (inst.type == GateType::MR && r.outcome) {
            apply_x_in_row_mode(q);
          }
        }
        break;
      case GateKind::kReset:
        for (const std::uint32_t q : inst.targets) {
          reset_qubit(q);
        }
        break;
      case GateKind::kNoise1:
        for (const std::uint32_t q : inst.targets) {
          apply_noise1(inst.type, q, inst.probability);
        }
        break;
      case GateKind::kNoise2:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          apply_noise2(inst.probability, inst.targets[i],
                       inst.targets[i + 1]);
        }
        break;
      case GateKind::kControlled:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          apply_controlled(inst.type, inst.targets[i], inst.targets[i + 1]);
        }
        break;
      case GateKind::kDetector:
      case GateKind::kAnnotation:
        break;  // annotations; consumed by the sampling layers
    }
  }

  /// Record-controlled Pauli (COND_X/COND_Y/COND_Z): applies the Pauli
  /// iff the looked-up measurement record bit is 1.
  void apply_controlled(GateType type, std::uint32_t rec_target,
                        std::uint32_t qubit) {
    const std::uint32_t lookback = rec_lookback(rec_target);
    SYMPHASE_CHECK_MSG(lookback >= 1 && lookback <= record_.size(),
                       gate_name(type) << " record lookback " << lookback
                                       << " exceeds the measurement record");
    if (!record_[record_.size() - lookback]) {
      return;
    }
    switch (type) {
      case GateType::COND_X:
        apply_unitary(GateType::X, qubit);
        break;
      case GateType::COND_Y:
        apply_unitary(GateType::Y, qubit);
        break;
      case GateType::COND_Z:
        apply_unitary(GateType::Z, qubit);
        break;
      default:
        SYMPHASE_CHECK_MSG(false, "not a controlled Pauli");
    }
  }

  // --- Test/inspection helpers ----------------------------------------
  PauliString stabilizer(std::size_t i) const {
    return extract_row(tableau_.shape().stab_row(i));
  }
  PauliString destabilizer(std::size_t i) const {
    return extract_row(tableau_.shape().destab_row(i));
  }

 private:
  static constexpr std::size_t kNoPivot = static_cast<std::size_t>(-1);

  /// First stabilizer row anticommuting with Z_a, or kNoPivot.
  std::size_t find_pivot(std::uint32_t a) const {
    const std::size_t n = num_qubits();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = tableau_.shape().stab_row(i);
      if (tableau_.x_bit(row, a)) {
        return row;
      }
    }
    return kNoPivot;
  }

  /// A-G random-measurement update around stabilizer row `pivot`:
  /// multiplies every other X-hit row by the pivot, moves the pivot to
  /// its destabilizer slot, and replaces it with +Z_a.
  void collapse_on_pivot(std::uint32_t a, std::size_t pivot) {
    const std::size_t n = num_qubits();
    const std::size_t paired_destab = pivot - n;
    for (std::size_t i = 0; i < 2 * n; ++i) {
      // The paired destabilizer is overwritten below; multiplying it
      // first would also transiently break the real-phase invariant.
      if (i == pivot || i == paired_destab) {
        continue;
      }
      if (tableau_.x_bit(i, a)) {
        tableau_.row_mult(i, pivot);
      }
    }
    tableau_.row_copy(paired_destab, pivot);
    tableau_.row_set_plus_z(pivot, a);
  }

  /// Applies an X gate without leaving row mode (flips the constant
  /// phase of every row with a Z component on `a`). Used for the
  /// conditional flip in resets so MR bursts do not thrash the layout
  /// between row and column mode.
  void apply_x_in_row_mode(std::uint32_t a) {
    const std::size_t rows = 2 * num_qubits();
    for (std::size_t i = 0; i < rows; ++i) {
      if (tableau_.z_bit(i, a)) {
        tableau_.row_phase_xor_bit(i, 0);
      }
    }
  }

  void apply_noise1(GateType type, std::uint32_t q, double p) {
    if (type == GateType::DEPOLARIZE1) {
      if (rng_.next_double() < p) {
        switch (rng_.next_below(3)) {
          case 0:
            apply_unitary(GateType::X, q);
            break;
          case 1:
            apply_unitary(GateType::Y, q);
            break;
          default:
            apply_unitary(GateType::Z, q);
            break;
        }
      }
      return;
    }
    if (rng_.next_double() < p) {
      switch (type) {
        case GateType::X_ERROR:
          apply_unitary(GateType::X, q);
          break;
        case GateType::Y_ERROR:
          apply_unitary(GateType::Y, q);
          break;
        case GateType::Z_ERROR:
          apply_unitary(GateType::Z, q);
          break;
        default:
          SYMPHASE_CHECK_MSG(false, "not a single-qubit noise channel");
      }
    }
  }

  void apply_noise2(double p, std::uint32_t a, std::uint32_t b) {
    if (rng_.next_double() >= p) {
      return;
    }
    const std::uint64_t pattern = rng_.next_below(15) + 1;
    const auto apply_code = [&](std::uint32_t q, std::uint64_t code) {
      switch (code) {
        case 1:
          apply_unitary(GateType::X, q);
          break;
        case 2:
          apply_unitary(GateType::Z, q);
          break;
        case 3:
          apply_unitary(GateType::Y, q);
          break;
        default:
          break;
      }
    };
    apply_code(a, pattern & 3);
    apply_code(b, (pattern >> 2) & 3);
  }

  PauliString extract_row(std::size_t row) const {
    PauliString p(num_qubits());
    for (std::size_t q = 0; q < num_qubits(); ++q) {
      p.x_bits().set(q, tableau_.x_bit(row, q));
      p.z_bits().set(q, tableau_.z_bit(row, q));
    }
    p.set_sign(tableau_.row_phase_bit(row, 0));
    return p;
  }

  Layout tableau_;
  Rng rng_;
  std::vector<bool> record_;
};

}  // namespace symphase
