#pragma once

/// \file row_kernels.hpp
/// Word-parallel kernels shared by the tableau layouts' row operations.
///
/// Row multiplication (A-G "rowsum") needs the power of i picked up by
/// the Pauli product. Each qubit contributes i^g with g in {0,+1,-1}; the
/// kernel counts +1s and -1s via bit masks, exactly like
/// pauli_mul_i_exponent but on raw word spans so every layout can call
/// it on its own storage.

#include <cstddef>
#include <cstdint>

#include "common/bits.hpp"

namespace symphase {

/// Running (#+1, #-1) tally of per-qubit i exponents.
struct PhaseTally {
  long long plus = 0;
  long long minus = 0;

  /// Accumulates one word of (x1, z1) × (x2, z2) Pauli pairings, where
  /// (x1, z1) is the row being multiplied into (dst) and (x2, z2) the
  /// source row.
  inline void accumulate(Word x1, Word z1, Word x2, Word z2) {
    // dst qubit × src qubit products contributing +i: (Y,Z),(X,Y),(Z,X);
    // contributing -i: (Y,X),(X,Z),(Z,Y). Note operand order: result is
    // dst·src, so "1" = dst bits, "2" = src bits.
    const Word plus_mask =
        (x1 & z1 & ~x2 & z2) | (x1 & ~z1 & x2 & z2) | (~x1 & z1 & x2 & ~z2);
    const Word minus_mask =
        (x1 & z1 & x2 & ~z2) | (x1 & ~z1 & ~x2 & z2) | (~x1 & z1 & x2 & z2);
    plus += popcount(plus_mask);
    minus += popcount(minus_mask);
  }

  /// Total i exponent mod 4. Must be even for products of commuting
  /// (real-phased) rows; the caller asserts that.
  int i_exponent_mod4() const {
    return static_cast<int>((((plus - minus) % 4) + 4) % 4);
  }
};

/// XORs `count` words of src into dst.
inline void xor_words(Word* dst, const Word* src, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] ^= src[i];
  }
}

}  // namespace symphase
