#pragma once

/// \file row_kernels.hpp
/// Word-parallel kernels shared by the tableau layouts' row operations.
///
/// Row multiplication (A-G "rowsum") needs the power of i picked up by
/// the Pauli product. Each qubit contributes i^g with g in {0,+1,-1}; the
/// kernel counts +1s and -1s via bit masks, exactly like
/// pauli_mul_i_exponent but on raw word spans so every layout can call
/// it on its own storage. All kernels run at WideWord (512-bit lane)
/// width with scalar tails.

#include <cstddef>
#include <cstdint>

#include "common/bits.hpp"
#include "common/simd_word.hpp"

namespace symphase {

/// Running (#+1, #-1) tally of per-qubit i exponents.
struct PhaseTally {
  long long plus = 0;
  long long minus = 0;

  /// Accumulates one word of (x1, z1) × (x2, z2) Pauli pairings, where
  /// (x1, z1) is the row being multiplied into (dst) and (x2, z2) the
  /// source row.
  inline void accumulate(Word x1, Word z1, Word x2, Word z2) {
    // dst qubit × src qubit products contributing +i: (Y,Z),(X,Y),(Z,X);
    // contributing -i: (Y,X),(X,Z),(Z,Y). Note operand order: result is
    // dst·src, so "1" = dst bits, "2" = src bits.
    const Word plus_mask =
        (x1 & z1 & ~x2 & z2) | (x1 & ~z1 & x2 & z2) | (~x1 & z1 & x2 & ~z2);
    const Word minus_mask =
        (x1 & z1 & x2 & ~z2) | (x1 & ~z1 & ~x2 & z2) | (~x1 & z1 & x2 & z2);
    plus += popcount(plus_mask);
    minus += popcount(minus_mask);
  }

  /// Full-lane variant of accumulate: same masks over a 512-bit lane.
  inline void accumulate(WideWord x1, WideWord z1, WideWord x2, WideWord z2) {
    const WideWord plus_mask = (x1 & z1 & andnot(x2, z2)) |
                               (andnot(z1, x1) & x2 & z2) |
                               (andnot(x1, z1) & andnot(z2, x2));
    const WideWord minus_mask = (x1 & z1 & andnot(z2, x2)) |
                                (andnot(z1, x1) & andnot(x2, z2)) |
                                (andnot(x1, z1) & x2 & z2);
    plus += static_cast<long long>(plus_mask.popcount());
    minus += static_cast<long long>(minus_mask.popcount());
  }

  /// Total i exponent mod 4. Must be even for products of commuting
  /// (real-phased) rows; the caller asserts that.
  int i_exponent_mod4() const {
    return static_cast<int>((((plus - minus) % 4) + 4) % 4);
  }
};

/// Fused A-G rowsum inner loop over paired X/Z word spans: tallies the
/// i-exponent masks of row(dst) · row(src) while XORing the src bands
/// into the dst bands. Shared by the dense row-major image and the
/// blocked layout so the rowsum semantics live in exactly one place.
inline void rowsum_xor_accumulate(Word* dst_x, Word* dst_z, const Word* src_x,
                                  const Word* src_z, std::size_t count,
                                  PhaseTally& tally) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    const WideWord dx = WideWord::load(dst_x + i);
    const WideWord dz = WideWord::load(dst_z + i);
    const WideWord sx = WideWord::load(src_x + i);
    const WideWord sz = WideWord::load(src_z + i);
    tally.accumulate(dx, dz, sx, sz);
    (dx ^ sx).store(dst_x + i);
    (dz ^ sz).store(dst_z + i);
  }
  for (; i < count; ++i) {
    tally.accumulate(dst_x[i], dst_z[i], src_x[i], src_z[i]);
    dst_x[i] ^= src_x[i];
    dst_z[i] ^= src_z[i];
  }
}

}  // namespace symphase
