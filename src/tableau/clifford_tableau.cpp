#include "tableau/clifford_tableau.hpp"

#include <algorithm>

namespace symphase {

namespace {

/// Single-qubit conjugation table entry: (x, z) bit pair -> new pair +
/// sign flip. Mirrors the tableau-layout gate kernels (the same rules,
/// one row at a time).
struct BitUpdate {
  bool x;
  bool z;
  bool flip;
};

BitUpdate conjugate_bits(GateType type, bool x, bool z) {
  switch (type) {
    case GateType::I:
      return {x, z, false};
    case GateType::X:
      return {x, z, z};
    case GateType::Y:
      return {x, z, x != z};
    case GateType::Z:
      return {x, z, x};
    case GateType::H:
      return {z, x, x && z};
    case GateType::S:
      return {x, z != x, x && z};
    case GateType::S_DAG:
      return {x, z != x, x && !z};
    case GateType::SQRT_X:
      return {x != z, z, !x && z};
    case GateType::SQRT_X_DAG:
      return {x != z, z, x && z};
    case GateType::H_YZ:
      return {x != z, z, x && !z};
    default:
      SYMPHASE_CHECK_MSG(false, "not a single-qubit Clifford: "
                                    << gate_name(type));
  }
  return {};
}

}  // namespace

void conjugate_by_gate(PauliString& pauli, GateType type, std::uint32_t a,
                       std::uint32_t b) {
  const GateKind kind = gate_info(type).kind;
  if (kind == GateKind::kUnitary1) {
    const BitUpdate u =
        conjugate_bits(type, pauli.x_bit(a), pauli.z_bit(a));
    pauli.x_bits().set(a, u.x);
    pauli.z_bits().set(a, u.z);
    if (u.flip) {
      pauli.set_phase_exponent(pauli.phase_exponent() + 2);
    }
    return;
  }
  SYMPHASE_CHECK(kind == GateKind::kUnitary2);
  const bool xa = pauli.x_bit(a);
  const bool za = pauli.z_bit(a);
  const bool xb = pauli.x_bit(b);
  const bool zb = pauli.z_bit(b);
  switch (type) {
    case GateType::CNOT: {
      // a = control, b = target.
      if (xa && zb && (xb == za)) {
        pauli.set_phase_exponent(pauli.phase_exponent() + 2);
      }
      pauli.x_bits().set(b, xb != xa);
      pauli.z_bits().set(a, za != zb);
      return;
    }
    case GateType::CZ: {
      if (xa && xb && (za != zb)) {
        pauli.set_phase_exponent(pauli.phase_exponent() + 2);
      }
      pauli.z_bits().set(a, za != xb);
      pauli.z_bits().set(b, zb != xa);
      return;
    }
    case GateType::SWAP: {
      pauli.x_bits().set(a, xb);
      pauli.x_bits().set(b, xa);
      pauli.z_bits().set(a, zb);
      pauli.z_bits().set(b, za);
      return;
    }
    default:
      SYMPHASE_CHECK_MSG(false, "not a two-qubit Clifford: "
                                    << gate_name(type));
  }
}

CliffordTableau::CliffordTableau(std::size_t num_qubits) : n_(num_qubits) {
  SYMPHASE_CHECK(num_qubits >= 1);
  x_images_.reserve(n_);
  z_images_.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    x_images_.push_back(PauliString::single(n_, j, SinglePauli::X));
    z_images_.push_back(PauliString::single(n_, j, SinglePauli::Z));
  }
}

CliffordTableau CliffordTableau::from_circuit(const Circuit& circuit) {
  CliffordTableau t(std::max<std::size_t>(circuit.num_qubits(), 1));
  for (const Instruction& inst : circuit.instructions()) {
    if (gate_info(inst.type).kind == GateKind::kAnnotation) {
      continue;
    }
    SYMPHASE_CHECK_MSG(is_unitary(inst.type),
                       "from_circuit requires a unitary circuit; found "
                           << gate_name(inst.type));
    for (std::size_t i = 0; i < inst.targets.size();
         i += gate_arity(inst.type)) {
      t.then_gate(inst.type, inst.targets[i],
                  gate_arity(inst.type) == 2 ? inst.targets[i + 1] : 0);
    }
  }
  return t;
}

CliffordTableau CliffordTableau::random(std::size_t num_qubits, Rng& rng) {
  CliffordTableau t(num_qubits);
  static constexpr GateType kOneQubit[] = {
      GateType::H,      GateType::S,          GateType::S_DAG,
      GateType::SQRT_X, GateType::SQRT_X_DAG, GateType::H_YZ,
      GateType::X,      GateType::Z};
  // Deep scramble: ~10 n two-qubit layers interleaved with single-qubit
  // gates mixes far beyond any observable test statistic.
  const std::size_t steps = 10 * num_qubits + 20;
  for (std::size_t step = 0; step < steps; ++step) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(num_qubits));
    t.then_gate(kOneQubit[rng.next_below(std::size(kOneQubit))], a);
    if (num_qubits >= 2) {
      auto b = static_cast<std::uint32_t>(rng.next_below(num_qubits - 1));
      if (b >= a) {
        ++b;
      }
      t.then_gate(rng.next_below(2) == 0 ? GateType::CNOT : GateType::CZ, a,
                  b);
    }
  }
  return t;
}

void CliffordTableau::then_gate(GateType type, std::uint32_t a,
                                std::uint32_t b) {
  for (std::size_t j = 0; j < n_; ++j) {
    conjugate_by_gate(x_images_[j], type, a, b);
    conjugate_by_gate(z_images_[j], type, a, b);
  }
}

CliffordTableau CliffordTableau::then(const CliffordTableau& other) const {
  SYMPHASE_CHECK(n_ == other.n_);
  CliffordTableau out(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    out.x_images_[j] = other.conjugate(x_images_[j]);
    out.z_images_[j] = other.conjugate(z_images_[j]);
  }
  return out;
}

PauliString CliffordTableau::conjugate(const PauliString& pauli) const {
  SYMPHASE_CHECK(pauli.num_qubits() == n_);
  // Write P = i^(e + #Y) · Πj X_j^{x_j} · Πj Z_j^{z_j} and push U through
  // the homomorphism: U P U† has the same scalar with each factor
  // replaced by its image.
  PauliString result(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    if (pauli.x_bit(j)) {
      result *= x_images_[j];
    }
  }
  for (std::size_t j = 0; j < n_; ++j) {
    if (pauli.z_bit(j)) {
      result *= z_images_[j];
    }
  }
  int num_y = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    num_y += pauli.x_bit(j) && pauli.z_bit(j);
  }
  result.set_phase_exponent(result.phase_exponent() +
                            pauli.phase_exponent() + num_y);
  return result;
}

CliffordTableau CliffordTableau::inverse() const {
  // Binary-symplectic inverse: with M the 2n x 2n bit matrix of image
  // supports (rows: x-images then z-images, columns: x-bits then
  // z-bits), M⁻¹ = Ω Mᵀ Ω with Ω the x/z block swap. Writing that out
  // element-wise: the inverse's x_image(j) has x-bit k = z-bit j of
  // z_image(k), z-bit k = z-bit j of x_image(k); its z_image(j) has
  // x-bit k = x-bit j of z_image(k), z-bit k = x-bit j of x_image(k).
  CliffordTableau out(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    PauliString xj(n_);
    PauliString zj(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      xj.x_bits().set(k, z_images_[k].z_bit(j));
      xj.z_bits().set(k, x_images_[k].z_bit(j));
      zj.x_bits().set(k, z_images_[k].x_bit(j));
      zj.z_bits().set(k, x_images_[k].x_bit(j));
    }
    out.x_images_[j] = std::move(xj);
    out.z_images_[j] = std::move(zj);
  }
  // Fix signs: U (U† P U) U† must equal P exactly.
  for (std::size_t j = 0; j < n_; ++j) {
    if (conjugate(out.x_images_[j]).sign()) {
      out.x_images_[j].set_sign(!out.x_images_[j].sign());
    }
    if (conjugate(out.z_images_[j]).sign()) {
      out.z_images_[j].set_sign(!out.z_images_[j].sign());
    }
  }
  return out;
}

bool CliffordTableau::is_identity() const {
  for (std::size_t j = 0; j < n_; ++j) {
    if (x_images_[j] != PauliString::single(n_, j, SinglePauli::X) ||
        z_images_[j] != PauliString::single(n_, j, SinglePauli::Z)) {
      return false;
    }
  }
  return true;
}

bool CliffordTableau::is_valid() const {
  for (std::size_t j = 0; j < n_; ++j) {
    if (!x_images_[j].phase_is_real() || !z_images_[j].phase_is_real()) {
      return false;
    }
    for (std::size_t k = 0; k < n_; ++k) {
      const bool xx = x_images_[j].commutes_with(x_images_[k]);
      const bool zz = z_images_[j].commutes_with(z_images_[k]);
      const bool xz = x_images_[j].commutes_with(z_images_[k]);
      if (!xx || !zz || xz != (j != k)) {
        return false;
      }
    }
  }
  return true;
}

Circuit CliffordTableau::to_circuit() const {
  // Sweep a working copy down to the identity with elementary gates;
  // the realizing circuit is the inverses in reverse order.
  CliffordTableau work = *this;
  std::vector<Instruction> applied;
  const auto emit = [&](GateType type, std::uint32_t a,
                        std::uint32_t b = 0) {
    work.then_gate(type, a, b);
    Instruction inst;
    inst.type = type;
    inst.targets = {a};
    if (gate_arity(type) == 2) {
      inst.targets.push_back(b);
    }
    applied.push_back(std::move(inst));
  };

  for (std::uint32_t k = 0; k < n_; ++k) {
    // --- Stage 1: make x_image(k) = +X_k. ---------------------------
    PauliString* p = &work.x_images_[k];
    // Find support (guaranteed nonempty on qubits >= k: previous sweeps
    // confine earlier images to earlier qubits, and the image must
    // anticommute with z_image(k)).
    std::uint32_t pivot = static_cast<std::uint32_t>(n_);
    for (std::uint32_t j = k; j < n_; ++j) {
      if (p->pauli_at(j) != SinglePauli::I) {
        pivot = j;
        break;
      }
    }
    SYMPHASE_ASSERT(pivot < n_);
    if (pivot != k) {
      emit(GateType::SWAP, k, pivot);
    }
    // Rotate the k entry to X.
    if (p->pauli_at(k) == SinglePauli::Z) {
      emit(GateType::H, k);
    } else if (p->pauli_at(k) == SinglePauli::Y) {
      emit(GateType::S_DAG, k);  // S† Y S = X? S†YS: Y -> X under S_DAG
    }
    SYMPHASE_ASSERT(p->pauli_at(k) == SinglePauli::X);
    // Clear the tail.
    for (std::uint32_t j = k + 1; j < n_; ++j) {
      switch (p->pauli_at(j)) {
        case SinglePauli::I:
          break;
        case SinglePauli::Z:
          emit(GateType::H, j);
          emit(GateType::CNOT, k, j);
          break;
        case SinglePauli::Y:
          emit(GateType::S_DAG, j);
          emit(GateType::CNOT, k, j);
          break;
        case SinglePauli::X:
          emit(GateType::CNOT, k, j);
          break;
      }
      SYMPHASE_ASSERT(p->pauli_at(j) == SinglePauli::I);
    }
    if (p->sign()) {
      emit(GateType::Z, k);  // Z X Z = -X
    }
    SYMPHASE_ASSERT(*p == PauliString::single(n_, k, SinglePauli::X));

    // --- Stage 2: make z_image(k) = +Z_k without disturbing X_k. ----
    PauliString* q = &work.z_images_[k];
    // q anticommutes with X_k, so its k entry is Z or Y.
    SYMPHASE_ASSERT(q->pauli_at(k) == SinglePauli::Z ||
                    q->pauli_at(k) == SinglePauli::Y);
    if (q->pauli_at(k) == SinglePauli::Y) {
      emit(GateType::SQRT_X, k);  // X fixed, Y -> Z
    }
    for (std::uint32_t j = k + 1; j < n_; ++j) {
      switch (q->pauli_at(j)) {
        case SinglePauli::I:
          break;
        case SinglePauli::X:
          emit(GateType::H, j);
          emit(GateType::CNOT, j, k);
          break;
        case SinglePauli::Y:
          emit(GateType::H_YZ, j);  // Y -> Z, X_k image has I at j
          emit(GateType::CNOT, j, k);
          break;
        case SinglePauli::Z:
          emit(GateType::CNOT, j, k);
          break;
      }
      SYMPHASE_ASSERT(q->pauli_at(j) == SinglePauli::I);
    }
    if (q->sign()) {
      emit(GateType::X, k);  // X Z X = -Z
    }
    SYMPHASE_ASSERT(*q == PauliString::single(n_, k, SinglePauli::Z));
  }
  SYMPHASE_ASSERT(work.is_identity());

  // Invert the applied sequence.
  const auto inverse_of = [](GateType type) {
    switch (type) {
      case GateType::S:
        return GateType::S_DAG;
      case GateType::S_DAG:
        return GateType::S;
      case GateType::SQRT_X:
        return GateType::SQRT_X_DAG;
      case GateType::SQRT_X_DAG:
        return GateType::SQRT_X;
      default:
        return type;  // H, CNOT, SWAP, X, Z, H_YZ are involutions
    }
  };
  Circuit circuit(n_);
  for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
    circuit.append(inverse_of(it->type), it->targets);
  }
  return circuit;
}

}  // namespace symphase
