#pragma once

/// \file clifford_tableau.hpp
/// Clifford unitaries as stabilizer tableaux (maps, not states).
///
/// Where StabilizerSimulator tracks a *state*'s generators, a
/// CliffordTableau represents a Clifford *unitary* U by the images of the
/// single-qubit Pauli generators:
///
///     x_image(j) = U X_j U†,    z_image(j) = U Z_j U†
///
/// with exact ±1 signs. This is the algebraic object behind everything
/// in the paper's §2.2, packaged as a reusable value type: compose maps,
/// invert them (symplectic transpose + sign fix), conjugate arbitrary
/// Pauli strings, build from circuits, and synthesize an H/S/CNOT-family
/// circuit realizing the map (Aaronson–Gottesman-style sweeping).
///
/// Intended for construction, analysis, and testing (dense PauliString
/// rows, O(n) per gate, O(n²)–O(n³) for inverse/synthesis) rather than
/// the bit-packed hot paths of the simulators.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "pauli/pauli_string.hpp"

namespace symphase {

class CliffordTableau {
 public:
  /// Identity map on n qubits.
  explicit CliffordTableau(std::size_t num_qubits);

  /// Accumulates all (unitary) gates of a circuit. Throws if the circuit
  /// contains non-unitary instructions.
  static CliffordTableau from_circuit(const Circuit& circuit);

  /// Pseudo-random Clifford: the map of a deep random H/S/CNOT/...
  /// circuit. Well-scrambled for testing purposes; not exactly uniform
  /// over the Clifford group.
  static CliffordTableau random(std::size_t num_qubits, Rng& rng);

  std::size_t num_qubits() const { return n_; }

  const PauliString& x_image(std::size_t j) const { return x_images_[j]; }
  const PauliString& z_image(std::size_t j) const { return z_images_[j]; }

  /// Post-composes a gate: *this becomes gate ∘ *this.
  void then_gate(GateType type, std::uint32_t a, std::uint32_t b = 0);

  /// Returns other ∘ *this (apply *this first).
  CliffordTableau then(const CliffordTableau& other) const;

  /// U P U† for an arbitrary Pauli string (phase tracked exactly).
  PauliString conjugate(const PauliString& pauli) const;

  /// U† as a tableau.
  CliffordTableau inverse() const;

  /// Synthesizes a circuit of {H, S, S_DAG, SQRT_X, SQRT_X_DAG, H_YZ,
  /// CNOT, SWAP, X, Z} gates realizing exactly this map (signs
  /// included). Length O(n²).
  Circuit to_circuit() const;

  bool is_identity() const;

  bool operator==(const CliffordTableau& other) const {
    return x_images_ == other.x_images_ && z_images_ == other.z_images_;
  }

  /// Validity invariant: images preserve the Pauli commutation relations
  /// (x_image(j) anticommutes with z_image(j), everything else
  /// commutes) and carry real phases. O(n²); used by tests/debugging.
  bool is_valid() const;

 private:
  std::size_t n_;
  std::vector<PauliString> x_images_;
  std::vector<PauliString> z_images_;
};

/// Conjugates a Pauli string in place by a single named gate:
/// p := G p G†. The primitive CliffordTableau::then_gate builds on.
void conjugate_by_gate(PauliString& pauli, GateType type, std::uint32_t a,
                       std::uint32_t b = 0);

}  // namespace symphase
