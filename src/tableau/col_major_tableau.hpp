#pragma once

/// \file col_major_tableau.hpp
/// Column-major tableau layout with whole-matrix transposition
/// (the Stim-style layout of paper Fig. 2b).
///
/// In column mode the storage holds the transposed tableau: one
/// contiguous bit-row per logical column, so gate updates are streaming
/// word operations over 2n-bit column arrays. Measurements need row
/// operations, so prepare_row_mode() transposes the whole matrix into a
/// row-major image (and prepare_column_mode() transposes back). That
/// global transpose is precisely the cost the paper's blocked layout
/// (Fig. 2d) is designed to avoid.
///
/// Stim proper packs 8×8-bit tiles inside words; we realize the same
/// design point (column-major + full transposition at mode switches)
/// with 64×64-bit tile transposes, which is the natural choice on
/// 64-bit words. DESIGN.md documents the substitution.

#include <cstdint>
#include <span>

#include "bitvec/bit_matrix.hpp"
#include "tableau/shape.hpp"

namespace symphase {

class ColMajorTableau {
 public:
  ColMajorTableau(std::size_t n, std::size_t phase_capacity = 1);

  static constexpr const char* layout_name() { return "col_major"; }

  const TableauShape& shape() const { return shape_; }
  std::size_t num_qubits() const { return shape_.n; }

  std::size_t phase_used() const { return phase_used_; }
  std::size_t phase_words_used() const { return words_for_bits(phase_used_); }
  std::size_t allocate_phase_column();

  void prepare_column_mode();
  void prepare_row_mode();
  bool in_column_mode() const { return column_mode_; }

  // --- Column-mode operations ---------------------------------------
  void gate_h(std::size_t a);
  void gate_s(std::size_t a);
  void gate_s_dag(std::size_t a);
  void gate_sqrt_x(std::size_t a);
  void gate_sqrt_x_dag(std::size_t a);
  void gate_h_yz(std::size_t a);
  void gate_x(std::size_t a);
  void gate_y(std::size_t a);
  void gate_z(std::size_t a);
  void gate_cnot(std::size_t c, std::size_t t);
  void gate_cz(std::size_t a, std::size_t b);
  void gate_swap(std::size_t a, std::size_t b);
  void phase_xor_cols_where_z(std::size_t a,
                              std::span<const std::uint32_t> phase_cols);
  void phase_xor_cols_where_x(std::size_t a,
                              std::span<const std::uint32_t> phase_cols);

  // --- Row-mode operations -------------------------------------------
  bool x_bit(std::size_t row, std::size_t q) const;
  bool z_bit(std::size_t row, std::size_t q) const;
  void row_mult(std::size_t dst, std::size_t src);
  void row_copy(std::size_t dst, std::size_t src);
  void row_set_plus_z(std::size_t row, std::size_t q);
  void row_clear(std::size_t row);
  void row_phase_read(std::size_t row, Word* out) const;
  void row_phase_clear(std::size_t row);
  void row_phase_xor_bit(std::size_t row, std::size_t phase_col);
  bool row_phase_bit(std::size_t row, std::size_t phase_col) const;

  /// Number of mode-switch transposes performed (benchmark diagnostics).
  std::size_t transpose_count() const { return transpose_count_; }

 private:
  std::size_t x_col(std::size_t q) const { return q; }
  std::size_t z_col(std::size_t q) const { return shape_.z_col_base() + q; }
  std::size_t phase_col(std::size_t b) const {
    return shape_.phase_col_base() + b;
  }
  /// Columns that actually carry data (XZ bands + used phase prefix);
  /// the transpose is limited to this prefix.
  std::size_t live_cols() const {
    return shape_.phase_col_base() + round_up_pow2(phase_used_, kWordBits);
  }

  Word* col(std::size_t c) { return cols_.row(c); }
  const Word* col(std::size_t c) const { return cols_.row(c); }

  TableauShape shape_;
  std::size_t phase_used_ = 1;
  bool column_mode_ = true;
  std::size_t transpose_count_ = 0;
  std::size_t col_words_;  // words per column array (covers num_rows bits)
  BitMatrix cols_;  // column mode: num_cols x num_rows bits
  BitMatrix rows_;  // row mode: num_rows x num_cols bits
};

}  // namespace symphase
