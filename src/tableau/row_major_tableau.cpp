#include "tableau/row_major_tableau.hpp"

#include "tableau/dense_row_ops.hpp"
#include "tableau/row_kernels.hpp"

namespace symphase {

RowMajorTableau::RowMajorTableau(std::size_t n, std::size_t phase_capacity)
    : shape_(n, /*col_align=*/64, phase_capacity),
      bits_(shape_.num_rows(), shape_.num_cols()) {
  for (std::size_t i = 0; i < n; ++i) {
    bits_.set(shape_.destab_row(i), x_col(i), true);
    bits_.set(shape_.stab_row(i), z_col(i), true);
  }
}

std::size_t RowMajorTableau::allocate_phase_column() {
  SYMPHASE_CHECK_MSG(phase_used_ < shape_.phase_capacity,
                     "phase capacity " << shape_.phase_capacity
                                       << " exhausted");
  return phase_used_++;
}

// Gates iterate the 2n generator rows and update the qubit-a bit pair and
// the constant phase bit. One strided row visit per generator: the
// deliberate cost profile of this layout.

void RowMajorTableau::gate_h(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  const std::size_t zc = z_col(a);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool x = get_bit(row, xc);
    const bool z = get_bit(row, zc);
    if (x && z) {
      flip_bit(row, rc);
    }
    if (x != z) {
      set_bit(row, xc, z);
      set_bit(row, zc, x);
    }
  }
}

void RowMajorTableau::gate_s(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  const std::size_t zc = z_col(a);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool x = get_bit(row, xc);
    const bool z = get_bit(row, zc);
    if (x && z) {
      flip_bit(row, rc);
    }
    if (x) {
      set_bit(row, zc, !z);
    }
  }
}

void RowMajorTableau::gate_s_dag(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  const std::size_t zc = z_col(a);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool x = get_bit(row, xc);
    const bool z = get_bit(row, zc);
    if (x && !z) {
      flip_bit(row, rc);
    }
    if (x) {
      set_bit(row, zc, !z);
    }
  }
}

void RowMajorTableau::gate_sqrt_x(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  const std::size_t zc = z_col(a);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool x = get_bit(row, xc);
    const bool z = get_bit(row, zc);
    if (!x && z) {
      flip_bit(row, rc);
    }
    if (z) {
      set_bit(row, xc, !x);
    }
  }
}

void RowMajorTableau::gate_sqrt_x_dag(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  const std::size_t zc = z_col(a);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool x = get_bit(row, xc);
    const bool z = get_bit(row, zc);
    if (x && z) {
      flip_bit(row, rc);
    }
    if (z) {
      set_bit(row, xc, !x);
    }
  }
}

void RowMajorTableau::gate_h_yz(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  const std::size_t zc = z_col(a);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool x = get_bit(row, xc);
    const bool z = get_bit(row, zc);
    if (x && !z) {
      flip_bit(row, rc);
    }
    if (z) {
      set_bit(row, xc, !x);
    }
  }
}

void RowMajorTableau::gate_x(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_z(a, cols);
}

void RowMajorTableau::gate_z(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_x(a, cols);
}

void RowMajorTableau::gate_y(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  const std::size_t zc = z_col(a);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    if (get_bit(row, xc) != get_bit(row, zc)) {
      flip_bit(row, rc);
    }
  }
}

void RowMajorTableau::gate_cnot(std::size_t c, std::size_t t) {
  SYMPHASE_CHECK(c < shape_.n && t < shape_.n && c != t);
  const std::size_t xcc = x_col(c);
  const std::size_t zcc = z_col(c);
  const std::size_t xct = x_col(t);
  const std::size_t zct = z_col(t);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool xc = get_bit(row, xcc);
    const bool zc = get_bit(row, zcc);
    const bool xt = get_bit(row, xct);
    const bool zt = get_bit(row, zct);
    if (xc && zt && (xt == zc)) {
      flip_bit(row, rc);
    }
    set_bit(row, xct, xt != xc);
    set_bit(row, zcc, zc != zt);
  }
}

void RowMajorTableau::gate_cz(std::size_t a, std::size_t b) {
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  const std::size_t xca = x_col(a);
  const std::size_t zca = z_col(a);
  const std::size_t xcb = x_col(b);
  const std::size_t zcb = z_col(b);
  const std::size_t rc = phase_col(0);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool xa = get_bit(row, xca);
    const bool za = get_bit(row, zca);
    const bool xb = get_bit(row, xcb);
    const bool zb = get_bit(row, zcb);
    if (xa && xb && (za != zb)) {
      flip_bit(row, rc);
    }
    set_bit(row, zca, za != xb);
    set_bit(row, zcb, zb != xa);
  }
}

void RowMajorTableau::gate_swap(std::size_t a, std::size_t b) {
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  const std::size_t cols[4] = {x_col(a), x_col(b), z_col(a), z_col(b)};
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    const bool xa = get_bit(row, cols[0]);
    const bool xb = get_bit(row, cols[1]);
    const bool za = get_bit(row, cols[2]);
    const bool zb = get_bit(row, cols[3]);
    set_bit(row, cols[0], xb);
    set_bit(row, cols[1], xa);
    set_bit(row, cols[2], zb);
    set_bit(row, cols[3], za);
  }
}

void RowMajorTableau::phase_xor_cols_where_z(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t zc = z_col(a);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    if (get_bit(row, zc)) {
      for (const std::uint32_t col : phase_cols) {
        SYMPHASE_ASSERT(col < phase_used_);
        flip_bit(row, phase_col(col));
      }
    }
  }
}

void RowMajorTableau::phase_xor_cols_where_x(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_CHECK(a < shape_.n);
  const std::size_t xc = x_col(a);
  for (std::size_t i = 0; i < 2 * shape_.n; ++i) {
    Word* row = bits_.row(i);
    if (get_bit(row, xc)) {
      for (const std::uint32_t col : phase_cols) {
        SYMPHASE_ASSERT(col < phase_used_);
        flip_bit(row, phase_col(col));
      }
    }
  }
}

bool RowMajorTableau::x_bit(std::size_t row, std::size_t q) const {
  return bits_.get(row, x_col(q));
}

bool RowMajorTableau::z_bit(std::size_t row, std::size_t q) const {
  return bits_.get(row, z_col(q));
}

void RowMajorTableau::row_mult(std::size_t dst, std::size_t src) {
  dense_rows::row_mult(bits_, shape_, phase_words_used(), dst, src);
}

void RowMajorTableau::row_copy(std::size_t dst, std::size_t src) {
  dense_rows::row_copy(bits_, dst, src);
}

void RowMajorTableau::row_clear(std::size_t row) { bits_.clear_row(row); }

void RowMajorTableau::row_set_plus_z(std::size_t row, std::size_t q) {
  dense_rows::row_set_plus_z(bits_, shape_, row, q);
}

void RowMajorTableau::row_phase_read(std::size_t row, Word* out) const {
  dense_rows::row_phase_read(bits_, shape_, phase_used_, row, out);
}

void RowMajorTableau::row_phase_clear(std::size_t row) {
  dense_rows::row_phase_clear(bits_, shape_, row);
}

void RowMajorTableau::row_phase_xor_bit(std::size_t row,
                                        std::size_t phase_col_index) {
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  bits_.flip(row, phase_col(phase_col_index));
}

bool RowMajorTableau::row_phase_bit(std::size_t row,
                                    std::size_t phase_col_index) const {
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  return bits_.get(row, phase_col(phase_col_index));
}

}  // namespace symphase
