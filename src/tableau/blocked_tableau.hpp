#pragma once

/// \file blocked_tableau.hpp
/// Blocked tableau layout (paper Fig. 2d): the SymPhase data layout.
///
/// The tableau is tiled into 512×512-bit blocks (4 KiB each). Each
/// *tile-column* (all blocks covering the same 512 logical columns)
/// carries its own orientation:
///   - column-oriented: the tile stores its transpose row-major, so a
///     logical column is 8 contiguous 64-bit words per tile-row — gates
///     stream aligned cache lines;
///   - row-oriented: a logical row is 8 contiguous words per tile-column
///     — measurements stream rows.
/// Orientation flips are *local* 512×512 in-place bit transposes
/// (Fig. 2c) and lazy: a gate touches at most three tile-columns (X_a,
/// Z_a, constant phase) and flips only those; a measurement burst flips
/// back whatever the preceding gate burst touched. Phase tile-columns
/// outside the active frontier are never transposed at all — this is
/// what makes the layout cheaper than the Stim-style whole-matrix
/// transposition when the symbolic phase region grows large.
///
/// All-zero tiles are orientation-invariant, so lazy phase-column growth
/// composes safely with the orientation machinery.

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "tableau/shape.hpp"

namespace symphase {

class BlockedTableau {
 public:
  BlockedTableau(std::size_t n, std::size_t phase_capacity = 1);

  static constexpr const char* layout_name() { return "blocked512"; }
  static constexpr std::size_t kTileBits = 512;
  static constexpr std::size_t kTileWordsPerLine = kTileBits / kWordBits;  // 8
  static constexpr std::size_t kTileWords = kTileBits * kTileWordsPerLine;

  const TableauShape& shape() const { return shape_; }
  std::size_t num_qubits() const { return shape_.n; }

  std::size_t phase_used() const { return phase_used_; }
  std::size_t phase_words_used() const { return words_for_bits(phase_used_); }
  std::size_t allocate_phase_column();

  /// Lazy: gates flip the tile-columns they touch on demand.
  void prepare_column_mode() {}
  /// Ensures every live tile-column is row-oriented (measurement mode).
  void prepare_row_mode();

  // --- Column operations (gates / faults) ------------------------------
  void gate_h(std::size_t a);
  void gate_s(std::size_t a);
  void gate_s_dag(std::size_t a);
  void gate_sqrt_x(std::size_t a);
  void gate_sqrt_x_dag(std::size_t a);
  void gate_h_yz(std::size_t a);
  void gate_x(std::size_t a);
  void gate_y(std::size_t a);
  void gate_z(std::size_t a);
  void gate_cnot(std::size_t c, std::size_t t);
  void gate_cz(std::size_t a, std::size_t b);
  void gate_swap(std::size_t a, std::size_t b);
  void phase_xor_cols_where_z(std::size_t a,
                              std::span<const std::uint32_t> phase_cols);
  void phase_xor_cols_where_x(std::size_t a,
                              std::span<const std::uint32_t> phase_cols);

  // --- Row operations (measurements; require prepare_row_mode) ---------
  bool x_bit(std::size_t row, std::size_t q) const;
  bool z_bit(std::size_t row, std::size_t q) const;
  void row_mult(std::size_t dst, std::size_t src);
  void row_copy(std::size_t dst, std::size_t src);
  void row_set_plus_z(std::size_t row, std::size_t q);
  void row_clear(std::size_t row);
  void row_phase_read(std::size_t row, Word* out) const;
  void row_phase_clear(std::size_t row);
  void row_phase_xor_bit(std::size_t row, std::size_t phase_col);
  bool row_phase_bit(std::size_t row, std::size_t phase_col) const;

  /// Total number of 512x512 tile transposes performed (diagnostics for
  /// the layout benchmarks).
  std::size_t tile_transpose_count() const { return tile_transpose_count_; }

 private:
  std::size_t x_col(std::size_t q) const { return q; }
  std::size_t z_col(std::size_t q) const { return shape_.z_col_base() + q; }
  std::size_t phase_col(std::size_t b) const {
    return shape_.phase_col_base() + b;
  }

  Word* tile(std::size_t tr, std::size_t tc) {
    return tiles_.data() + (tr * tile_cols_ + tc) * kTileWords;
  }
  const Word* tile(std::size_t tr, std::size_t tc) const {
    return tiles_.data() + (tr * tile_cols_ + tc) * kTileWords;
  }

  /// Column-oriented access: 8-word line of logical column c in tile-row
  /// tr. Tile-column of c must be column-oriented.
  Word* col_line(std::size_t tr, std::size_t c) {
    SYMPHASE_ASSERT(col_oriented_[c / kTileBits]);
    return tile(tr, c / kTileBits) + (c % kTileBits) * kTileWordsPerLine;
  }
  const Word* col_line(std::size_t tr, std::size_t c) const {
    SYMPHASE_ASSERT(col_oriented_[c / kTileBits]);
    return tile(tr, c / kTileBits) + (c % kTileBits) * kTileWordsPerLine;
  }

  /// Row-oriented access: 8-word line of logical row r in tile-column tc.
  Word* row_line(std::size_t r, std::size_t tc) {
    SYMPHASE_ASSERT(!col_oriented_[tc]);
    return tile(r / kTileBits, tc) + (r % kTileBits) * kTileWordsPerLine;
  }
  const Word* row_line(std::size_t r, std::size_t tc) const {
    SYMPHASE_ASSERT(!col_oriented_[tc]);
    return tile(r / kTileBits, tc) + (r % kTileBits) * kTileWordsPerLine;
  }

  /// Tile-columns carrying live data (XZ bands + used phase prefix).
  std::size_t live_tile_cols() const {
    return (shape_.phase_col_base() + round_up_pow2(phase_used_, kTileBits)) /
           kTileBits;
  }

  void set_orientation(std::size_t tc, bool column_oriented);
  void ensure_col_oriented(std::size_t logical_col) {
    const std::size_t tc = logical_col / kTileBits;
    if (!col_oriented_[tc]) {
      set_orientation(tc, true);
    }
  }
  /// True when every live tile-column is row-oriented.
  bool all_rows_ready() const { return col_oriented_count_ == 0; }

  bool bit_at(std::size_t row, std::size_t col) const;

  TableauShape shape_;
  std::size_t phase_used_ = 1;
  std::size_t tile_rows_ = 0;
  std::size_t tile_cols_ = 0;
  std::size_t tile_transpose_count_ = 0;
  std::size_t col_oriented_count_ = 0;
  std::vector<std::uint8_t> col_oriented_;  // per tile-column
  AlignedWordVec tiles_;
};

}  // namespace symphase
