#pragma once

/// \file row_major_tableau.hpp
/// Row-major tableau layout (paper Fig. 2a, the chp.c layout).
///
/// Each tableau row (destabilizer/stabilizer/scratch) is one contiguous
/// packed bit-row: [X band | Z band | phase band]. Row operations
/// (measurements) stream whole cache lines; column operations (gates)
/// touch one bit per row across strided rows, which is exactly the
/// weakness the paper's §4 attributes to this layout.
///
/// All layouts expose the same duck-typed interface consumed by
/// StabilizerSimulator<Layout> and SymPhaseCompiler<Layout>; see
/// shape.hpp for the logical geometry.

#include <cstdint>
#include <span>

#include "bitvec/bit_matrix.hpp"
#include "tableau/shape.hpp"

namespace symphase {

class RowMajorTableau {
 public:
  /// Identity tableau on n qubits: destabilizer i = +X_i, stabilizer
  /// i = +Z_i, all phases zero. `phase_capacity` counts phase columns
  /// including the constant column 0.
  RowMajorTableau(std::size_t n, std::size_t phase_capacity = 1);

  static constexpr const char* layout_name() { return "row_major"; }

  const TableauShape& shape() const { return shape_; }
  std::size_t num_qubits() const { return shape_.n; }

  // --- Phase-column allocation -------------------------------------
  std::size_t phase_used() const { return phase_used_; }
  std::size_t phase_words_used() const { return words_for_bits(phase_used_); }
  std::size_t allocate_phase_column();

  // --- Mode switching (no-ops for this layout) ----------------------
  void prepare_column_mode() {}
  void prepare_row_mode() {}

  // --- Column-mode operations (gates / faults) ----------------------
  void gate_h(std::size_t a);
  void gate_s(std::size_t a);
  void gate_s_dag(std::size_t a);
  void gate_sqrt_x(std::size_t a);
  void gate_sqrt_x_dag(std::size_t a);
  void gate_h_yz(std::size_t a);
  void gate_x(std::size_t a);
  void gate_y(std::size_t a);
  void gate_z(std::size_t a);
  void gate_cnot(std::size_t c, std::size_t t);
  void gate_cz(std::size_t a, std::size_t b);
  void gate_swap(std::size_t a, std::size_t b);

  /// X^e fault at qubit a: rows with a Z component on `a` get the phase
  /// columns in `phase_cols` flipped (paper Init-P).
  void phase_xor_cols_where_z(std::size_t a,
                              std::span<const std::uint32_t> phase_cols);
  /// Z^e fault at qubit a: same, for rows with an X component.
  void phase_xor_cols_where_x(std::size_t a,
                              std::span<const std::uint32_t> phase_cols);

  // --- Row-mode operations (measurements) ---------------------------
  bool x_bit(std::size_t row, std::size_t q) const;
  bool z_bit(std::size_t row, std::size_t q) const;

  /// row(dst) := row(dst) · row(src) with exact phase tracking. The
  /// accumulated i exponent must be even (commuting-product invariant).
  void row_mult(std::size_t dst, std::size_t src);
  void row_copy(std::size_t dst, std::size_t src);
  /// row := +Z_q (X/Z bands and all phase columns cleared).
  void row_set_plus_z(std::size_t row, std::size_t q);
  /// row := identity with zero phase.
  void row_clear(std::size_t row);

  void row_phase_read(std::size_t row, Word* out) const;
  void row_phase_clear(std::size_t row);
  void row_phase_xor_bit(std::size_t row, std::size_t phase_col);
  bool row_phase_bit(std::size_t row, std::size_t phase_col) const;

 private:
  std::size_t x_col(std::size_t q) const { return q; }
  std::size_t z_col(std::size_t q) const { return shape_.z_col_base() + q; }
  std::size_t phase_col(std::size_t b) const {
    return shape_.phase_col_base() + b;
  }

  TableauShape shape_;
  std::size_t phase_used_ = 1;
  BitMatrix bits_;  // shape_.num_rows() x shape_.num_cols()
};

}  // namespace symphase
