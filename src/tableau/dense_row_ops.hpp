#pragma once

/// \file dense_row_ops.hpp
/// Row operations over a dense row-major tableau image.
///
/// RowMajorTableau stores its tableau this way permanently; ColMajorTableau
/// materializes the same image in row mode. Both delegate their row-mode
/// operations here so the A-G semantics live in exactly one place.

#include "bitvec/bit_matrix.hpp"
#include "tableau/row_kernels.hpp"
#include "tableau/shape.hpp"

namespace symphase::dense_rows {

/// row(dst) := row(dst) · row(src): XOR of X/Z bands, XOR of the used
/// phase prefix, and the constant-column adjustment from the mod-4
/// i-exponent of the Pauli product (which must come out even).
inline void row_mult(BitMatrix& bits, const TableauShape& shape,
                     std::size_t phase_words_used, std::size_t dst,
                     std::size_t src) {
  SYMPHASE_ASSERT(dst != src);
  Word* d = bits.row(dst);
  const Word* s = bits.row(src);
  const std::size_t wx = shape.xz_words();
  PhaseTally tally;
  rowsum_xor_accumulate(d, d + wx, s, s + wx, wx, tally);
  const int exponent = tally.i_exponent_mod4();
  SYMPHASE_ASSERT(exponent % 2 == 0);

  const std::size_t pw = shape.phase_col_base() / kWordBits;
  wide::xor_words(d + pw, s + pw, phase_words_used);
  if (exponent == 2) {
    d[pw] ^= Word{1};
  }
}

inline void row_copy(BitMatrix& bits, std::size_t dst, std::size_t src) {
  if (dst == src) {
    return;
  }
  wide::copy_words(bits.row(dst), bits.row(src), bits.words_per_row());
}

inline void row_set_plus_z(BitMatrix& bits, const TableauShape& shape,
                           std::size_t row, std::size_t q) {
  bits.clear_row(row);
  bits.set(row, shape.z_col_base() + q, true);
}

inline void row_phase_read(const BitMatrix& bits, const TableauShape& shape,
                           std::size_t phase_used, std::size_t row,
                           Word* out) {
  const Word* r = bits.row(row) + shape.phase_col_base() / kWordBits;
  const std::size_t pwords = words_for_bits(phase_used);
  wide::copy_words(out, r, pwords);
  if (phase_used % kWordBits != 0) {
    out[pwords - 1] &= tail_mask(phase_used);
  }
}

inline void row_phase_clear(BitMatrix& bits, const TableauShape& shape,
                            std::size_t row) {
  Word* r = bits.row(row) + shape.phase_col_base() / kWordBits;
  const std::size_t total =
      (bits.words_per_row() * kWordBits - shape.phase_col_base()) / kWordBits;
  wide::clear_words(r, total);
}

}  // namespace symphase::dense_rows
