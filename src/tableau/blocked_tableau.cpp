#include "tableau/blocked_tableau.hpp"

#include "bitvec/transpose.hpp"
#include "common/simd_word.hpp"
#include "tableau/row_kernels.hpp"

namespace symphase {

namespace {

constexpr std::size_t kLine = BlockedTableau::kTileWordsPerLine;

// Every tile line is exactly one SIMD lane: the gate kernels below load a
// full logical column (or row) segment as one WideWord per tile-row.
static_assert(kLine == WideWord::kWords);

}  // namespace

BlockedTableau::BlockedTableau(std::size_t n, std::size_t phase_capacity)
    : shape_(n, /*col_align=*/kTileBits, phase_capacity),
      tile_rows_(ceil_div(shape_.num_rows(), kTileBits)),
      tile_cols_(shape_.num_cols() / kTileBits),
      col_oriented_(tile_cols_, 0),
      tiles_(tile_rows_ * tile_cols_ * kTileWords, 0) {
  // Fresh tiles are all-zero, hence orientation-invariant; start
  // row-oriented and write the identity generators through row lines:
  // row-oriented bit (r, c) is bit (c % 512) of the row line.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t dr = shape_.destab_row(i);
    Word* dline = row_line(dr, x_col(i) / kTileBits);
    set_bit(dline, x_col(i) % kTileBits, true);
    const std::size_t sr = shape_.stab_row(i);
    Word* sline = row_line(sr, z_col(i) / kTileBits);
    set_bit(sline, z_col(i) % kTileBits, true);
  }
}

std::size_t BlockedTableau::allocate_phase_column() {
  SYMPHASE_CHECK_MSG(phase_used_ < shape_.phase_capacity,
                     "phase capacity " << shape_.phase_capacity
                                       << " exhausted");
  return phase_used_++;
}

void BlockedTableau::set_orientation(std::size_t tc, bool column_oriented) {
  SYMPHASE_ASSERT(col_oriented_[tc] != (column_oriented ? 1 : 0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    transpose_tile512_inplace(tile(tr, tc));
    ++tile_transpose_count_;
  }
  col_oriented_[tc] = column_oriented ? 1 : 0;
  col_oriented_count_ += column_oriented ? 1 : std::size_t(-1);
}

void BlockedTableau::prepare_row_mode() {
  if (all_rows_ready()) {
    return;
  }
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = 0; tc < live && !all_rows_ready(); ++tc) {
    if (col_oriented_[tc]) {
      set_orientation(tc, false);
    }
  }
  SYMPHASE_ASSERT(all_rows_ready());
}

// Gate kernels: each logical column is kLine contiguous words per
// tile-row once its tile-column is column-oriented. Padding rows (beyond
// 2n+1) hold zeros and transform to zeros.

void BlockedTableau::gate_h(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xp = col_line(tr, x_col(a));
    Word* zp = col_line(tr, z_col(a));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord x = WideWord::load(xp);
    const WideWord z = WideWord::load(zp);
    (WideWord::load(rp) ^ (x & z)).store(rp);
    z.store(xp);
    x.store(zp);
  }
}

void BlockedTableau::gate_s(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xp = col_line(tr, x_col(a));
    Word* zp = col_line(tr, z_col(a));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord x = WideWord::load(xp);
    const WideWord z = WideWord::load(zp);
    (WideWord::load(rp) ^ (x & z)).store(rp);
    (z ^ x).store(zp);
  }
}

void BlockedTableau::gate_s_dag(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xp = col_line(tr, x_col(a));
    Word* zp = col_line(tr, z_col(a));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord x = WideWord::load(xp);
    const WideWord z = WideWord::load(zp);
    (WideWord::load(rp) ^ andnot(z, x)).store(rp);
    (z ^ x).store(zp);
  }
}

void BlockedTableau::gate_sqrt_x(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xp = col_line(tr, x_col(a));
    Word* zp = col_line(tr, z_col(a));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord x = WideWord::load(xp);
    const WideWord z = WideWord::load(zp);
    (WideWord::load(rp) ^ andnot(x, z)).store(rp);
    (x ^ z).store(xp);
  }
}

void BlockedTableau::gate_sqrt_x_dag(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xp = col_line(tr, x_col(a));
    Word* zp = col_line(tr, z_col(a));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord x = WideWord::load(xp);
    const WideWord z = WideWord::load(zp);
    (WideWord::load(rp) ^ (x & z)).store(rp);
    (x ^ z).store(xp);
  }
}

void BlockedTableau::gate_h_yz(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xp = col_line(tr, x_col(a));
    Word* zp = col_line(tr, z_col(a));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord x = WideWord::load(xp);
    const WideWord z = WideWord::load(zp);
    (WideWord::load(rp) ^ andnot(z, x)).store(rp);
    (x ^ z).store(xp);
  }
}

void BlockedTableau::gate_x(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_z(a, cols);
}

void BlockedTableau::gate_z(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_x(a, cols);
}

void BlockedTableau::gate_y(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    const WideWord x = WideWord::load(col_line(tr, x_col(a)));
    const WideWord z = WideWord::load(col_line(tr, z_col(a)));
    Word* rp = col_line(tr, phase_col(0));
    (WideWord::load(rp) ^ x ^ z).store(rp);
  }
}

void BlockedTableau::gate_cnot(std::size_t c, std::size_t t) {
  SYMPHASE_CHECK(c < shape_.n && t < shape_.n && c != t);
  ensure_col_oriented(x_col(c));
  ensure_col_oriented(z_col(c));
  ensure_col_oriented(x_col(t));
  ensure_col_oriented(z_col(t));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xcp = col_line(tr, x_col(c));
    Word* zcp = col_line(tr, z_col(c));
    Word* xtp = col_line(tr, x_col(t));
    Word* ztp = col_line(tr, z_col(t));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord xc = WideWord::load(xcp);
    const WideWord zc = WideWord::load(zcp);
    const WideWord xt = WideWord::load(xtp);
    const WideWord zt = WideWord::load(ztp);
    (WideWord::load(rp) ^ andnot(xt ^ zc, xc & zt)).store(rp);
    (xt ^ xc).store(xtp);
    (zc ^ zt).store(zcp);
  }
}

void BlockedTableau::gate_cz(std::size_t a, std::size_t b) {
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(x_col(b));
  ensure_col_oriented(z_col(b));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xap = col_line(tr, x_col(a));
    Word* zap = col_line(tr, z_col(a));
    Word* xbp = col_line(tr, x_col(b));
    Word* zbp = col_line(tr, z_col(b));
    Word* rp = col_line(tr, phase_col(0));
    const WideWord xa = WideWord::load(xap);
    const WideWord za = WideWord::load(zap);
    const WideWord xb = WideWord::load(xbp);
    const WideWord zb = WideWord::load(zbp);
    (WideWord::load(rp) ^ (xa & xb & (za ^ zb))).store(rp);
    (za ^ xb).store(zap);
    (zb ^ xa).store(zbp);
  }
}

void BlockedTableau::gate_swap(std::size_t a, std::size_t b) {
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(x_col(b));
  ensure_col_oriented(z_col(b));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    wide::swap_words(col_line(tr, x_col(a)), col_line(tr, x_col(b)), kLine);
    wide::swap_words(col_line(tr, z_col(a)), col_line(tr, z_col(b)), kLine);
  }
}

void BlockedTableau::phase_xor_cols_where_z(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(z_col(a));
  for (const std::uint32_t pc : phase_cols) {
    SYMPHASE_ASSERT(pc < phase_used_);
    ensure_col_oriented(phase_col(pc));
  }
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    const WideWord z = WideWord::load(col_line(tr, z_col(a)));
    for (const std::uint32_t pc : phase_cols) {
      Word* p = col_line(tr, phase_col(pc));
      (WideWord::load(p) ^ z).store(p);
    }
  }
}

void BlockedTableau::phase_xor_cols_where_x(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  for (const std::uint32_t pc : phase_cols) {
    SYMPHASE_ASSERT(pc < phase_used_);
    ensure_col_oriented(phase_col(pc));
  }
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    const WideWord x = WideWord::load(col_line(tr, x_col(a)));
    for (const std::uint32_t pc : phase_cols) {
      Word* p = col_line(tr, phase_col(pc));
      (WideWord::load(p) ^ x).store(p);
    }
  }
}

bool BlockedTableau::bit_at(std::size_t row, std::size_t col) const {
  const std::size_t tc = col / kTileBits;
  if (col_oriented_[tc]) {
    const Word* line =
        tile(row / kTileBits, tc) + (col % kTileBits) * kTileWordsPerLine;
    return get_bit(line, row % kTileBits);
  }
  const Word* line =
      tile(row / kTileBits, tc) + (row % kTileBits) * kTileWordsPerLine;
  return get_bit(line, col % kTileBits);
}

bool BlockedTableau::x_bit(std::size_t row, std::size_t q) const {
  return bit_at(row, x_col(q));
}

bool BlockedTableau::z_bit(std::size_t row, std::size_t q) const {
  return bit_at(row, z_col(q));
}

void BlockedTableau::row_mult(std::size_t dst, std::size_t src) {
  SYMPHASE_ASSERT(all_rows_ready());
  SYMPHASE_ASSERT(dst != src);
  const std::size_t xz_tiles = shape_.x_stride() / kTileBits;

  PhaseTally tally;
  for (std::size_t tc = 0; tc < xz_tiles; ++tc) {
    rowsum_xor_accumulate(row_line(dst, tc), row_line(dst, tc + xz_tiles),
                          row_line(src, tc), row_line(src, tc + xz_tiles),
                          kLine, tally);
  }
  const int exponent = tally.i_exponent_mod4();
  SYMPHASE_ASSERT(exponent % 2 == 0);

  const std::size_t phase_tile_base = shape_.phase_col_base() / kTileBits;
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = phase_tile_base; tc < live; ++tc) {
    wide::xor_words(row_line(dst, tc), row_line(src, tc), kLine);
  }
  if (exponent == 2) {
    row_line(dst, phase_tile_base)[0] ^= Word{1};
  }
}

void BlockedTableau::row_copy(std::size_t dst, std::size_t src) {
  SYMPHASE_ASSERT(all_rows_ready());
  if (dst == src) {
    return;
  }
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = 0; tc < live; ++tc) {
    wide::copy_words(row_line(dst, tc), row_line(src, tc), kLine);
  }
}

void BlockedTableau::row_clear(std::size_t row) {
  SYMPHASE_ASSERT(all_rows_ready());
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = 0; tc < live; ++tc) {
    wide::clear_words(row_line(row, tc), kLine);
  }
}

void BlockedTableau::row_set_plus_z(std::size_t row, std::size_t q) {
  row_clear(row);
  Word* line = row_line(row, z_col(q) / kTileBits);
  set_bit(line, z_col(q) % kTileBits, true);
}

void BlockedTableau::row_phase_read(std::size_t row, Word* out) const {
  SYMPHASE_ASSERT(all_rows_ready());
  const std::size_t phase_tile_base = shape_.phase_col_base() / kTileBits;
  const std::size_t pwords = phase_words_used();
  std::size_t written = 0;
  for (std::size_t tc = phase_tile_base; written < pwords; ++tc) {
    const Word* line = row_line(row, tc);
    for (std::size_t w = 0; w < kLine && written < pwords; ++w) {
      out[written++] = line[w];
    }
  }
  if (phase_used_ % kWordBits != 0) {
    out[pwords - 1] &= tail_mask(phase_used_);
  }
}

void BlockedTableau::row_phase_clear(std::size_t row) {
  SYMPHASE_ASSERT(all_rows_ready());
  const std::size_t phase_tile_base = shape_.phase_col_base() / kTileBits;
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = phase_tile_base; tc < live; ++tc) {
    wide::clear_words(row_line(row, tc), kLine);
  }
}

void BlockedTableau::row_phase_xor_bit(std::size_t row,
                                       std::size_t phase_col_index) {
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  const std::size_t c = phase_col(phase_col_index);
  SYMPHASE_ASSERT(!col_oriented_[c / kTileBits]);
  Word* line = row_line(row, c / kTileBits);
  flip_bit(line, c % kTileBits);
}

bool BlockedTableau::row_phase_bit(std::size_t row,
                                   std::size_t phase_col_index) const {
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  return bit_at(row, phase_col(phase_col_index));
}

}  // namespace symphase
