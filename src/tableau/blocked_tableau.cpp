#include "tableau/blocked_tableau.hpp"

#include "bitvec/transpose.hpp"
#include "tableau/row_kernels.hpp"

namespace symphase {

namespace {
constexpr std::size_t kLine = BlockedTableau::kTileWordsPerLine;
}

BlockedTableau::BlockedTableau(std::size_t n, std::size_t phase_capacity)
    : shape_(n, /*col_align=*/kTileBits, phase_capacity),
      tile_rows_(ceil_div(shape_.num_rows(), kTileBits)),
      tile_cols_(shape_.num_cols() / kTileBits),
      col_oriented_(tile_cols_, 0),
      tiles_(tile_rows_ * tile_cols_ * kTileWords, 0) {
  // Fresh tiles are all-zero, hence orientation-invariant; start
  // row-oriented and write the identity generators through row lines:
  // row-oriented bit (r, c) is bit (c % 512) of the row line.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t dr = shape_.destab_row(i);
    Word* dline = row_line(dr, x_col(i) / kTileBits);
    set_bit(dline, x_col(i) % kTileBits, true);
    const std::size_t sr = shape_.stab_row(i);
    Word* sline = row_line(sr, z_col(i) / kTileBits);
    set_bit(sline, z_col(i) % kTileBits, true);
  }
}

std::size_t BlockedTableau::allocate_phase_column() {
  SYMPHASE_CHECK_MSG(phase_used_ < shape_.phase_capacity,
                     "phase capacity " << shape_.phase_capacity
                                       << " exhausted");
  return phase_used_++;
}

void BlockedTableau::set_orientation(std::size_t tc, bool column_oriented) {
  SYMPHASE_ASSERT(col_oriented_[tc] != (column_oriented ? 1 : 0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    transpose_tile512_inplace(tile(tr, tc));
    ++tile_transpose_count_;
  }
  col_oriented_[tc] = column_oriented ? 1 : 0;
  col_oriented_count_ += column_oriented ? 1 : std::size_t(-1);
}

void BlockedTableau::prepare_row_mode() {
  if (all_rows_ready()) {
    return;
  }
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = 0; tc < live && !all_rows_ready(); ++tc) {
    if (col_oriented_[tc]) {
      set_orientation(tc, false);
    }
  }
  SYMPHASE_ASSERT(all_rows_ready());
}

// Gate kernels: each logical column is kLine contiguous words per
// tile-row once its tile-column is column-oriented. Padding rows (beyond
// 2n+1) hold zeros and transform to zeros.

void BlockedTableau::gate_h(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* x = col_line(tr, x_col(a));
    Word* z = col_line(tr, z_col(a));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= x[w] & z[w];
      std::swap(x[w], z[w]);
    }
  }
}

void BlockedTableau::gate_s(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* x = col_line(tr, x_col(a));
    Word* z = col_line(tr, z_col(a));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= x[w] & z[w];
      z[w] ^= x[w];
    }
  }
}

void BlockedTableau::gate_s_dag(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* x = col_line(tr, x_col(a));
    Word* z = col_line(tr, z_col(a));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= x[w] & ~z[w];
      z[w] ^= x[w];
    }
  }
}

void BlockedTableau::gate_sqrt_x(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* x = col_line(tr, x_col(a));
    Word* z = col_line(tr, z_col(a));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= ~x[w] & z[w];
      x[w] ^= z[w];
    }
  }
}

void BlockedTableau::gate_sqrt_x_dag(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* x = col_line(tr, x_col(a));
    Word* z = col_line(tr, z_col(a));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= x[w] & z[w];
      x[w] ^= z[w];
    }
  }
}

void BlockedTableau::gate_h_yz(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* x = col_line(tr, x_col(a));
    Word* z = col_line(tr, z_col(a));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= x[w] & ~z[w];
      x[w] ^= z[w];
    }
  }
}

void BlockedTableau::gate_x(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_z(a, cols);
}

void BlockedTableau::gate_z(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_x(a, cols);
}

void BlockedTableau::gate_y(std::size_t a) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    const Word* x = col_line(tr, x_col(a));
    const Word* z = col_line(tr, z_col(a));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= x[w] ^ z[w];
    }
  }
}

void BlockedTableau::gate_cnot(std::size_t c, std::size_t t) {
  SYMPHASE_CHECK(c < shape_.n && t < shape_.n && c != t);
  ensure_col_oriented(x_col(c));
  ensure_col_oriented(z_col(c));
  ensure_col_oriented(x_col(t));
  ensure_col_oriented(z_col(t));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xc = col_line(tr, x_col(c));
    Word* zc = col_line(tr, z_col(c));
    Word* xt = col_line(tr, x_col(t));
    Word* zt = col_line(tr, z_col(t));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= xc[w] & zt[w] & ~(xt[w] ^ zc[w]);
      xt[w] ^= xc[w];
      zc[w] ^= zt[w];
    }
  }
}

void BlockedTableau::gate_cz(std::size_t a, std::size_t b) {
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(x_col(b));
  ensure_col_oriented(z_col(b));
  ensure_col_oriented(phase_col(0));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xa = col_line(tr, x_col(a));
    Word* za = col_line(tr, z_col(a));
    Word* xb = col_line(tr, x_col(b));
    Word* zb = col_line(tr, z_col(b));
    Word* r = col_line(tr, phase_col(0));
    for (std::size_t w = 0; w < kLine; ++w) {
      r[w] ^= xa[w] & xb[w] & (za[w] ^ zb[w]);
      za[w] ^= xb[w];
      zb[w] ^= xa[w];
    }
  }
}

void BlockedTableau::gate_swap(std::size_t a, std::size_t b) {
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  ensure_col_oriented(x_col(a));
  ensure_col_oriented(z_col(a));
  ensure_col_oriented(x_col(b));
  ensure_col_oriented(z_col(b));
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    Word* xa = col_line(tr, x_col(a));
    Word* xb = col_line(tr, x_col(b));
    Word* za = col_line(tr, z_col(a));
    Word* zb = col_line(tr, z_col(b));
    for (std::size_t w = 0; w < kLine; ++w) {
      std::swap(xa[w], xb[w]);
      std::swap(za[w], zb[w]);
    }
  }
}

void BlockedTableau::phase_xor_cols_where_z(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(z_col(a));
  for (const std::uint32_t pc : phase_cols) {
    SYMPHASE_ASSERT(pc < phase_used_);
    ensure_col_oriented(phase_col(pc));
  }
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    const Word* z = col_line(tr, z_col(a));
    for (const std::uint32_t pc : phase_cols) {
      Word* p = col_line(tr, phase_col(pc));
      for (std::size_t w = 0; w < kLine; ++w) {
        p[w] ^= z[w];
      }
    }
  }
}

void BlockedTableau::phase_xor_cols_where_x(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_CHECK(a < shape_.n);
  ensure_col_oriented(x_col(a));
  for (const std::uint32_t pc : phase_cols) {
    SYMPHASE_ASSERT(pc < phase_used_);
    ensure_col_oriented(phase_col(pc));
  }
  for (std::size_t tr = 0; tr < tile_rows_; ++tr) {
    const Word* x = col_line(tr, x_col(a));
    for (const std::uint32_t pc : phase_cols) {
      Word* p = col_line(tr, phase_col(pc));
      for (std::size_t w = 0; w < kLine; ++w) {
        p[w] ^= x[w];
      }
    }
  }
}

bool BlockedTableau::bit_at(std::size_t row, std::size_t col) const {
  const std::size_t tc = col / kTileBits;
  if (col_oriented_[tc]) {
    const Word* line =
        tile(row / kTileBits, tc) + (col % kTileBits) * kTileWordsPerLine;
    return get_bit(line, row % kTileBits);
  }
  const Word* line =
      tile(row / kTileBits, tc) + (row % kTileBits) * kTileWordsPerLine;
  return get_bit(line, col % kTileBits);
}

bool BlockedTableau::x_bit(std::size_t row, std::size_t q) const {
  return bit_at(row, x_col(q));
}

bool BlockedTableau::z_bit(std::size_t row, std::size_t q) const {
  return bit_at(row, z_col(q));
}

void BlockedTableau::row_mult(std::size_t dst, std::size_t src) {
  SYMPHASE_ASSERT(all_rows_ready());
  SYMPHASE_ASSERT(dst != src);
  const std::size_t xz_tiles = shape_.x_stride() / kTileBits;

  PhaseTally tally;
  for (std::size_t tc = 0; tc < xz_tiles; ++tc) {
    Word* dx = row_line(dst, tc);
    Word* dz = row_line(dst, tc + xz_tiles);
    const Word* sx = row_line(src, tc);
    const Word* sz = row_line(src, tc + xz_tiles);
    for (std::size_t w = 0; w < kLine; ++w) {
      tally.accumulate(dx[w], dz[w], sx[w], sz[w]);
      dx[w] ^= sx[w];
      dz[w] ^= sz[w];
    }
  }
  const int exponent = tally.i_exponent_mod4();
  SYMPHASE_ASSERT(exponent % 2 == 0);

  const std::size_t phase_tile_base = shape_.phase_col_base() / kTileBits;
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = phase_tile_base; tc < live; ++tc) {
    Word* dp = row_line(dst, tc);
    const Word* sp = row_line(src, tc);
    xor_words(dp, sp, kLine);
  }
  if (exponent == 2) {
    row_line(dst, phase_tile_base)[0] ^= Word{1};
  }
}

void BlockedTableau::row_copy(std::size_t dst, std::size_t src) {
  SYMPHASE_ASSERT(all_rows_ready());
  if (dst == src) {
    return;
  }
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = 0; tc < live; ++tc) {
    Word* d = row_line(dst, tc);
    const Word* s = row_line(src, tc);
    for (std::size_t w = 0; w < kLine; ++w) {
      d[w] = s[w];
    }
  }
}

void BlockedTableau::row_clear(std::size_t row) {
  SYMPHASE_ASSERT(all_rows_ready());
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = 0; tc < live; ++tc) {
    Word* d = row_line(row, tc);
    for (std::size_t w = 0; w < kLine; ++w) {
      d[w] = 0;
    }
  }
}

void BlockedTableau::row_set_plus_z(std::size_t row, std::size_t q) {
  row_clear(row);
  Word* line = row_line(row, z_col(q) / kTileBits);
  set_bit(line, z_col(q) % kTileBits, true);
}

void BlockedTableau::row_phase_read(std::size_t row, Word* out) const {
  SYMPHASE_ASSERT(all_rows_ready());
  const std::size_t phase_tile_base = shape_.phase_col_base() / kTileBits;
  const std::size_t pwords = phase_words_used();
  std::size_t written = 0;
  for (std::size_t tc = phase_tile_base; written < pwords; ++tc) {
    const Word* line = row_line(row, tc);
    for (std::size_t w = 0; w < kLine && written < pwords; ++w) {
      out[written++] = line[w];
    }
  }
  if (phase_used_ % kWordBits != 0) {
    out[pwords - 1] &= tail_mask(phase_used_);
  }
}

void BlockedTableau::row_phase_clear(std::size_t row) {
  SYMPHASE_ASSERT(all_rows_ready());
  const std::size_t phase_tile_base = shape_.phase_col_base() / kTileBits;
  const std::size_t live = live_tile_cols();
  for (std::size_t tc = phase_tile_base; tc < live; ++tc) {
    Word* line = row_line(row, tc);
    for (std::size_t w = 0; w < kLine; ++w) {
      line[w] = 0;
    }
  }
}

void BlockedTableau::row_phase_xor_bit(std::size_t row,
                                       std::size_t phase_col_index) {
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  const std::size_t c = phase_col(phase_col_index);
  SYMPHASE_ASSERT(!col_oriented_[c / kTileBits]);
  Word* line = row_line(row, c / kTileBits);
  flip_bit(line, c % kTileBits);
}

bool BlockedTableau::row_phase_bit(std::size_t row,
                                   std::size_t phase_col_index) const {
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  return bit_at(row, phase_col(phase_col_index));
}

}  // namespace symphase
