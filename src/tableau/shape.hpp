#pragma once

/// \file shape.hpp
/// Logical geometry shared by all tableau data layouts.
///
/// Every layout stores the same logical bit-matrix (the extended tableau
/// of paper Eq. (3) plus one scratch row):
///
///   rows:    [0, n)        destabilizer generators
///            [n, 2n)       stabilizer generators
///            2n            scratch row for deterministic measurements
///   columns: [0, n)        X bits        (padded to x_stride)
///            [P, P+n)      Z bits        (P = x_stride = padded n)
///            [2P, 2P+W)    phase columns (column 0 is the constant s_0;
///                          further columns are allocated per symbol)
///
/// X and Z columns are padded to the same stride so that word k of a
/// row's X part lines up with word k of its Z part; the row-product
/// phase kernel relies on that pairing.

#include <cstddef>

#include "common/bits.hpp"
#include "common/check.hpp"

namespace symphase {

struct TableauShape {
  std::size_t n = 0;                  // qubit count
  std::size_t col_align = 64;         // column padding unit (64 or 512)
  std::size_t phase_capacity = 1;     // max phase columns (incl. constant)

  TableauShape() = default;
  TableauShape(std::size_t n_in, std::size_t col_align_in,
               std::size_t phase_capacity_in)
      : n(n_in), col_align(col_align_in), phase_capacity(phase_capacity_in) {
    SYMPHASE_CHECK(n >= 1);
    SYMPHASE_CHECK(phase_capacity >= 1);
    SYMPHASE_CHECK(col_align % 64 == 0);
  }

  /// Padded width of the X (equally, Z) column band.
  std::size_t x_stride() const { return round_up_pow2(n, col_align); }

  std::size_t z_col_base() const { return x_stride(); }
  std::size_t phase_col_base() const { return 2 * x_stride(); }

  /// Total logical columns.
  std::size_t num_cols() const {
    return 2 * x_stride() + round_up_pow2(phase_capacity, col_align);
  }

  /// Total logical rows (2n generators + 1 scratch).
  std::size_t num_rows() const { return 2 * n + 1; }

  std::size_t destab_row(std::size_t i) const { return i; }
  std::size_t stab_row(std::size_t i) const { return n + i; }
  std::size_t scratch_row() const { return 2 * n; }

  /// Words per row in the X band (== Z band).
  std::size_t xz_words() const { return x_stride() / kWordBits; }
};

}  // namespace symphase
