#include "tableau/col_major_tableau.hpp"

#include "tableau/dense_row_ops.hpp"

namespace symphase {

ColMajorTableau::ColMajorTableau(std::size_t n, std::size_t phase_capacity)
    : shape_(n, /*col_align=*/64, phase_capacity),
      col_words_(words_for_bits(shape_.num_rows())),
      cols_(shape_.num_cols(), shape_.num_rows()) {
  for (std::size_t i = 0; i < n; ++i) {
    cols_.set(x_col(i), shape_.destab_row(i), true);
    cols_.set(z_col(i), shape_.stab_row(i), true);
  }
}

std::size_t ColMajorTableau::allocate_phase_column() {
  SYMPHASE_CHECK_MSG(phase_used_ < shape_.phase_capacity,
                     "phase capacity " << shape_.phase_capacity
                                       << " exhausted");
  return phase_used_++;
}

void ColMajorTableau::prepare_column_mode() {
  if (column_mode_) {
    return;
  }
  transpose_region(rows_, shape_.num_rows(), live_cols(), cols_);
  ++transpose_count_;
  column_mode_ = true;
}

void ColMajorTableau::prepare_row_mode() {
  if (!column_mode_) {
    return;
  }
  if (rows_.rows() == 0) {
    rows_ = BitMatrix(shape_.num_rows(), shape_.num_cols());
  }
  transpose_region(cols_, live_cols(), shape_.num_rows(), rows_);
  ++transpose_count_;
  column_mode_ = false;
}

// Gate updates stream whole 2n-bit column arrays: the strength of this
// layout. The scratch row's bit rides along harmlessly (it is cleared
// before every use).

void ColMajorTableau::gate_h(std::size_t a) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  Word* x = col(x_col(a));
  Word* z = col(z_col(a));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= x[w] & z[w];
    std::swap(x[w], z[w]);
  }
}

void ColMajorTableau::gate_s(std::size_t a) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  Word* x = col(x_col(a));
  Word* z = col(z_col(a));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= x[w] & z[w];
    z[w] ^= x[w];
  }
}

void ColMajorTableau::gate_s_dag(std::size_t a) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  Word* x = col(x_col(a));
  Word* z = col(z_col(a));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= x[w] & ~z[w];
    z[w] ^= x[w];
  }
}

void ColMajorTableau::gate_sqrt_x(std::size_t a) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  Word* x = col(x_col(a));
  Word* z = col(z_col(a));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= ~x[w] & z[w];
    x[w] ^= z[w];
  }
}

void ColMajorTableau::gate_sqrt_x_dag(std::size_t a) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  Word* x = col(x_col(a));
  Word* z = col(z_col(a));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= x[w] & z[w];
    x[w] ^= z[w];
  }
}

void ColMajorTableau::gate_h_yz(std::size_t a) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  Word* x = col(x_col(a));
  Word* z = col(z_col(a));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= x[w] & ~z[w];
    x[w] ^= z[w];
  }
}

void ColMajorTableau::gate_x(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_z(a, cols);
}

void ColMajorTableau::gate_z(std::size_t a) {
  const std::uint32_t cols[1] = {0};
  phase_xor_cols_where_x(a, cols);
}

void ColMajorTableau::gate_y(std::size_t a) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  const Word* x = col(x_col(a));
  const Word* z = col(z_col(a));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= x[w] ^ z[w];
  }
}

void ColMajorTableau::gate_cnot(std::size_t c, std::size_t t) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(c < shape_.n && t < shape_.n && c != t);
  Word* xc = col(x_col(c));
  Word* zc = col(z_col(c));
  Word* xt = col(x_col(t));
  Word* zt = col(z_col(t));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= xc[w] & zt[w] & ~(xt[w] ^ zc[w]);
    xt[w] ^= xc[w];
    zc[w] ^= zt[w];
  }
}

void ColMajorTableau::gate_cz(std::size_t a, std::size_t b) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  Word* xa = col(x_col(a));
  Word* za = col(z_col(a));
  Word* xb = col(x_col(b));
  Word* zb = col(z_col(b));
  Word* r = col(phase_col(0));
  for (std::size_t w = 0; w < col_words_; ++w) {
    r[w] ^= xa[w] & xb[w] & (za[w] ^ zb[w]);
    za[w] ^= xb[w];
    zb[w] ^= xa[w];
  }
}

void ColMajorTableau::gate_swap(std::size_t a, std::size_t b) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n && b < shape_.n && a != b);
  cols_.swap_rows(x_col(a), x_col(b));
  cols_.swap_rows(z_col(a), z_col(b));
}

void ColMajorTableau::phase_xor_cols_where_z(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  const Word* z = col(z_col(a));
  for (const std::uint32_t pc : phase_cols) {
    SYMPHASE_ASSERT(pc < phase_used_);
    Word* p = col(phase_col(pc));
    for (std::size_t w = 0; w < col_words_; ++w) {
      p[w] ^= z[w];
    }
  }
}

void ColMajorTableau::phase_xor_cols_where_x(
    std::size_t a, std::span<const std::uint32_t> phase_cols) {
  SYMPHASE_ASSERT(column_mode_);
  SYMPHASE_CHECK(a < shape_.n);
  const Word* x = col(x_col(a));
  for (const std::uint32_t pc : phase_cols) {
    SYMPHASE_ASSERT(pc < phase_used_);
    Word* p = col(phase_col(pc));
    for (std::size_t w = 0; w < col_words_; ++w) {
      p[w] ^= x[w];
    }
  }
}

bool ColMajorTableau::x_bit(std::size_t row, std::size_t q) const {
  return column_mode_ ? cols_.get(x_col(q), row) : rows_.get(row, x_col(q));
}

bool ColMajorTableau::z_bit(std::size_t row, std::size_t q) const {
  return column_mode_ ? cols_.get(z_col(q), row) : rows_.get(row, z_col(q));
}

void ColMajorTableau::row_mult(std::size_t dst, std::size_t src) {
  SYMPHASE_ASSERT(!column_mode_);
  dense_rows::row_mult(rows_, shape_, phase_words_used(), dst, src);
}

void ColMajorTableau::row_copy(std::size_t dst, std::size_t src) {
  SYMPHASE_ASSERT(!column_mode_);
  dense_rows::row_copy(rows_, dst, src);
}

void ColMajorTableau::row_set_plus_z(std::size_t row, std::size_t q) {
  SYMPHASE_ASSERT(!column_mode_);
  dense_rows::row_set_plus_z(rows_, shape_, row, q);
}

void ColMajorTableau::row_clear(std::size_t row) {
  SYMPHASE_ASSERT(!column_mode_);
  rows_.clear_row(row);
}

void ColMajorTableau::row_phase_read(std::size_t row, Word* out) const {
  SYMPHASE_ASSERT(!column_mode_);
  dense_rows::row_phase_read(rows_, shape_, phase_used_, row, out);
}

void ColMajorTableau::row_phase_clear(std::size_t row) {
  SYMPHASE_ASSERT(!column_mode_);
  dense_rows::row_phase_clear(rows_, shape_, row);
}

void ColMajorTableau::row_phase_xor_bit(std::size_t row,
                                        std::size_t phase_col_index) {
  SYMPHASE_ASSERT(!column_mode_);
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  rows_.flip(row, phase_col(phase_col_index));
}

bool ColMajorTableau::row_phase_bit(std::size_t row,
                                    std::size_t phase_col_index) const {
  SYMPHASE_ASSERT(phase_col_index < phase_used_);
  return column_mode_ ? cols_.get(phase_col(phase_col_index), row)
                      : rows_.get(row, phase_col(phase_col_index));
}

}  // namespace symphase
