#pragma once

/// \file single_pauli.hpp
/// Single-qubit Pauli algebra in the (x, z) bit encoding.
///
/// A literal Pauli P in {I, X, Y, Z} maps to bits (x, z):
///   I=(0,0)  X=(1,0)  Y=(1,1)  Z=(0,1)
/// Products of literal Paulis pick up powers of i; `pauli_product_i_exp`
/// is the g-function of Aaronson & Gottesman (2004), the only place in
/// the whole simulator where imaginary phases enter.

#include <cstdint>

#include "common/check.hpp"

namespace symphase {

enum class SinglePauli : std::uint8_t { I = 0, X = 1, Z = 2, Y = 3 };

constexpr bool pauli_x_bit(SinglePauli p) {
  return (static_cast<std::uint8_t>(p) & 1) != 0;
}
constexpr bool pauli_z_bit(SinglePauli p) {
  return (static_cast<std::uint8_t>(p) & 2) != 0;
}

constexpr SinglePauli pauli_from_xz(bool x, bool z) {
  return static_cast<SinglePauli>((x ? 1 : 0) | (z ? 2 : 0));
}

constexpr char pauli_char(SinglePauli p) {
  switch (p) {
    case SinglePauli::I:
      return 'I';
    case SinglePauli::X:
      return 'X';
    case SinglePauli::Y:
      return 'Y';
    case SinglePauli::Z:
      return 'Z';
  }
  return '?';
}

/// Exponent g in P1·P2 = i^g · P3 (mod 4), for literal Paulis given by
/// bit-pairs (x1,z1), (x2,z2). Matches A-G Eq. for the rowsum phase
/// function; always in {0, 1, 3} represented mod 4 here as {0,1,3}.
constexpr int pauli_product_i_exp(bool x1, bool z1, bool x2, bool z2) {
  const int ix2 = x2 ? 1 : 0;
  const int iz2 = z2 ? 1 : 0;
  int g = 0;
  if (!x1 && !z1) {
    g = 0;  // I · P = P
  } else if (x1 && z1) {
    g = iz2 - ix2;  // Y·X = -i Z, Y·Z = i X
  } else if (x1 && !z1) {
    g = iz2 * (2 * ix2 - 1);  // X·Y = i Z, X·Z = -i Y
  } else {
    g = ix2 * (1 - 2 * iz2);  // Z·X = i Y, Z·Y = -i X
  }
  return (g % 4 + 4) % 4;
}

/// True when the two single-qubit Paulis anticommute.
constexpr bool pauli_anticommutes(bool x1, bool z1, bool x2, bool z2) {
  return ((x1 && z2) != (z1 && x2));
}

/// Parses 'I','X','Y','Z' (throws std::invalid_argument otherwise).
inline SinglePauli pauli_from_char(char c) {
  switch (c) {
    case 'I':
    case '_':
      return SinglePauli::I;
    case 'X':
      return SinglePauli::X;
    case 'Y':
      return SinglePauli::Y;
    case 'Z':
      return SinglePauli::Z;
    default:
      SYMPHASE_CHECK_MSG(false, "invalid Pauli character '" << c << "'");
  }
  return SinglePauli::I;  // unreachable
}

}  // namespace symphase
