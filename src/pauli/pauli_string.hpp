#pragma once

/// \file pauli_string.hpp
/// Dense n-qubit Pauli strings with i^k phase tracking.
///
/// A PauliString is  i^phase · ⊗_j P_j  with literal P_j in {I,X,Y,Z}
/// encoded as packed x/z bit-vectors. This is the algebra layer beneath
/// the stabilizer tableau: tableau rows are PauliStrings with real phase
/// (phase ∈ {0, 2}), and row multiplication is PauliString multiplication.

#include <cstdint>
#include <string>
#include <string_view>

#include "bitvec/bit_vector.hpp"
#include "common/rng.hpp"
#include "pauli/single_pauli.hpp"

namespace symphase {

class PauliString {
 public:
  PauliString() = default;

  /// Identity string on `n` qubits.
  explicit PauliString(std::size_t n) : x_(n), z_(n) {}

  /// Parses "+XYZ_I", "-ZZ", "iY", "-iXX" (leading sign/i optional; '_'
  /// and 'I' both mean identity).
  static PauliString from_string(std::string_view text);

  /// Single-qubit Pauli `p` on `qubit` of an `n`-qubit string.
  static PauliString single(std::size_t n, std::size_t qubit, SinglePauli p);

  /// Uniformly random Pauli string (phase left +1).
  static PauliString random(std::size_t n, Rng& rng);

  std::size_t num_qubits() const { return x_.size(); }

  /// Phase exponent k of i^k, in {0,1,2,3}.
  int phase_exponent() const { return phase_; }
  void set_phase_exponent(int k) { phase_ = ((k % 4) + 4) % 4; }

  /// True when the phase is ±1 (required of stabilizer generators).
  bool phase_is_real() const { return (phase_ & 1) == 0; }

  /// Sign bit for real phases: 0 for +1, 1 for -1.
  bool sign() const {
    SYMPHASE_ASSERT(phase_is_real());
    return phase_ == 2;
  }
  void set_sign(bool negative) { phase_ = negative ? 2 : 0; }

  bool x_bit(std::size_t q) const { return x_.get(q); }
  bool z_bit(std::size_t q) const { return z_.get(q); }

  SinglePauli pauli_at(std::size_t q) const {
    return pauli_from_xz(x_.get(q), z_.get(q));
  }

  void set_pauli(std::size_t q, SinglePauli p) {
    x_.set(q, pauli_x_bit(p));
    z_.set(q, pauli_z_bit(p));
  }

  const BitVector& x_bits() const { return x_; }
  const BitVector& z_bits() const { return z_; }
  BitVector& x_bits() { return x_; }
  BitVector& z_bits() { return z_; }

  bool is_identity() const { return !x_.any() && !z_.any() && phase_ == 0; }

  /// Number of non-identity tensor factors.
  std::size_t weight() const;

  /// True when the strings commute (phases ignored).
  bool commutes_with(const PauliString& other) const;

  /// In-place product: *this = *this · rhs, with exact i^k phase.
  PauliString& operator*=(const PauliString& rhs);

  friend PauliString operator*(PauliString lhs, const PauliString& rhs) {
    lhs *= rhs;
    return lhs;
  }

  bool operator==(const PauliString& other) const {
    return phase_ == other.phase_ && x_ == other.x_ && z_ == other.z_;
  }

  /// "+XYZ_" style rendering; phase prefix is one of "+", "-", "+i", "-i".
  std::string to_string() const;

 private:
  int phase_ = 0;  // exponent of i, mod 4
  BitVector x_;
  BitVector z_;
};

/// Exponent of i picked up when multiplying lhs·rhs, considering only the
/// tensor factors (not the stored phases). Mod 4.
int pauli_mul_i_exponent(const PauliString& lhs, const PauliString& rhs);

}  // namespace symphase
