#include "pauli/pauli_string.hpp"

#include <sstream>

namespace symphase {

PauliString PauliString::from_string(std::string_view text) {
  int phase = 0;
  std::size_t pos = 0;
  if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
    if (text[pos] == '-') {
      phase = 2;
    }
    ++pos;
  }
  if (pos < text.size() && text[pos] == 'i') {
    phase = (phase + 1) % 4;
    ++pos;
  }
  PauliString result(text.size() - pos);
  for (std::size_t q = 0; pos < text.size(); ++pos, ++q) {
    result.set_pauli(q, pauli_from_char(text[pos]));
  }
  result.set_phase_exponent(phase);
  return result;
}

PauliString PauliString::single(std::size_t n, std::size_t qubit,
                                SinglePauli p) {
  SYMPHASE_CHECK(qubit < n);
  PauliString result(n);
  result.set_pauli(qubit, p);
  return result;
}

PauliString PauliString::random(std::size_t n, Rng& rng) {
  PauliString result(n);
  for (std::size_t w = 0; w < result.x_.word_count(); ++w) {
    result.x_.words()[w] = rng.next_word();
    result.z_.words()[w] = rng.next_word();
  }
  if (result.x_.word_count() > 0) {
    const Word tail = tail_mask(n);
    result.x_.words()[result.x_.word_count() - 1] &= tail;
    result.z_.words()[result.z_.word_count() - 1] &= tail;
  }
  return result;
}

std::size_t PauliString::weight() const {
  std::size_t total = 0;
  for (std::size_t w = 0; w < x_.word_count(); ++w) {
    total += static_cast<std::size_t>(
        popcount(x_.words()[w] | z_.words()[w]));
  }
  return total;
}

bool PauliString::commutes_with(const PauliString& other) const {
  SYMPHASE_CHECK(num_qubits() == other.num_qubits());
  // Symplectic form: anticommute iff parity(x1·z2 ^ z1·x2) is odd.
  Word acc = 0;
  for (std::size_t w = 0; w < x_.word_count(); ++w) {
    acc ^= (x_.words()[w] & other.z_.words()[w]) ^
           (z_.words()[w] & other.x_.words()[w]);
  }
  return !parity(acc);
}

int pauli_mul_i_exponent(const PauliString& lhs, const PauliString& rhs) {
  SYMPHASE_CHECK(lhs.num_qubits() == rhs.num_qubits());
  // Each tensor factor contributes i^g with g in {0, +1, -1}; the total is
  // (#(+1) − #(−1)) mod 4. The +1/−1 positions are word-parallel masks.
  long long plus = 0;
  long long minus = 0;
  const Word* x1 = lhs.x_bits().words();
  const Word* z1 = lhs.z_bits().words();
  const Word* x2 = rhs.x_bits().words();
  const Word* z2 = rhs.z_bits().words();
  for (std::size_t w = 0; w < lhs.x_bits().word_count(); ++w) {
    const Word a = x1[w];
    const Word b = z1[w];
    const Word c = x2[w];
    const Word d = z2[w];
    // g = +1 for (Y,Z), (X,Y), (Z,X); g = −1 for (Y,X), (X,Z), (Z,Y).
    const Word plus_mask =
        (a & b & ~c & d) | (a & ~b & c & d) | (~a & b & c & ~d);
    const Word minus_mask =
        (a & b & c & ~d) | (a & ~b & ~c & d) | (~a & b & c & d);
    plus += popcount(plus_mask);
    minus += popcount(minus_mask);
  }
  return static_cast<int>((((plus - minus) % 4) + 4) % 4);
}

PauliString& PauliString::operator*=(const PauliString& rhs) {
  SYMPHASE_CHECK(num_qubits() == rhs.num_qubits());
  const int extra = pauli_mul_i_exponent(*this, rhs);
  phase_ = (phase_ + rhs.phase_ + extra) % 4;
  x_ ^= rhs.x_;
  z_ ^= rhs.z_;
  return *this;
}

std::string PauliString::to_string() const {
  std::ostringstream oss;
  switch (phase_) {
    case 0:
      oss << '+';
      break;
    case 1:
      oss << "+i";
      break;
    case 2:
      oss << '-';
      break;
    case 3:
      oss << "-i";
      break;
    default:
      break;
  }
  for (std::size_t q = 0; q < num_qubits(); ++q) {
    const SinglePauli p = pauli_at(q);
    oss << (p == SinglePauli::I ? '_' : pauli_char(p));
  }
  return oss.str();
}

}  // namespace symphase
