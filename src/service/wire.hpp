#pragma once

/// \file wire.hpp
/// Chunked, length-prefixed frame protocol of the sampling service.
///
/// Every message on the wire — a request going in, a streamed result
/// coming back — is a sequence of frames sharing one request_id:
///
///   frame := FrameHeader (17 bytes, little-endian) + payload
///
///   offset  size  field
///        0     8  request_id     caller-chosen (nonzero; 0 is reserved
///                                for session-level error frames)
///        8     4  chunk_index    0,1,2,... contiguous per request
///       12     4  payload_bytes  length of the payload that follows
///       16     1  flags          bit 0 kFrameLast, bit 1 kFrameError,
///                                bit 2 kFrameTiming
///
/// A message is the concatenation of its frames' payloads up to and
/// including the frame carrying kFrameLast. kFrameError (only valid
/// together with kFrameLast) marks a failed message: the final payload
/// is human-readable error text instead of data, and any data payloads
/// that preceded it must be discarded. kFrameTiming (only valid with
/// kFrameLast, never with kFrameError) marks the final payload as a
/// stage-timing summary in Server-Timing syntax rather than data; the
/// service attaches it only when the request opted in with `timing=1`,
/// so pre-timing peers never see the bit.
///
/// Decoding is split into two layers so each can be hardened and fuzzed
/// on its own:
///  - FrameDecoder: bytes -> frames. Incremental (feed arbitrary byte
///    slices), rejects oversized payload_bytes, unknown flag bits, and
///    error-without-last before buffering a payload; finish() turns a
///    trailing partial frame into a truncation error. A malformed stream
///    poisons the decoder (failed()/error()) — it never throws, crashes,
///    or reads past its buffer, which the fuzz tests run under
///    ASan/UBSan to enforce.
///  - MessageAssembler: frames -> messages. Enforces per-request
///    contiguous chunk_index from 0 and bounded total message size.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

namespace symphase {

inline constexpr std::size_t kFrameHeaderBytes = 17;

/// Frame flag bits. Any other bit set is a protocol violation.
enum FrameFlags : std::uint8_t {
  kFrameLast = 1u << 0,
  kFrameError = 1u << 1,
  kFrameTiming = 1u << 2,
};

/// Per-frame cap enforced by FrameDecoder (and respected by every
/// encoder in this repo): large results are split across frames instead.
inline constexpr std::size_t kDefaultMaxFramePayload = 16u << 20;  // 16 MiB

/// Per-message cap enforced by MessageAssembler.
inline constexpr std::size_t kDefaultMaxMessageBytes = 256u << 20;  // 256 MiB

/// Cap on concurrently open (partially assembled) messages — bounds the
/// assembler's per-request state against request_id spray.
inline constexpr std::size_t kDefaultMaxOpenMessages = 1024;

struct FrameHeader {
  std::uint64_t request_id = 0;
  std::uint32_t chunk_index = 0;
  std::uint32_t payload_bytes = 0;
  std::uint8_t flags = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Serializes the header little-endian into exactly kFrameHeaderBytes.
void encode_frame_header(const FrameHeader& header,
                         char out[kFrameHeaderBytes]);

/// header + payload as one byte string; header.payload_bytes is taken
/// from payload.size() (the field in `header` is ignored).
std::string encode_frame(FrameHeader header, std::string_view payload);

/// Writes encode_frame() straight to a stream (binary).
void write_frame(std::ostream& out, FrameHeader header,
                 std::string_view payload);

/// Incremental bytes->frames decoder. See file comment for the
/// rejection rules. Usage:
///
///   FrameDecoder decoder;
///   decoder.feed(bytes);
///   Frame frame;
///   while (decoder.next(frame)) { ... }
///   if (decoder.failed()) { ... }          // poisoned, stop reading
///   ... at EOF: if (!decoder.finish()) ... // trailing partial frame
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw stream bytes. No-op once failed().
  void feed(std::string_view bytes);

  /// Pops the next complete frame into `out`. Returns false when no
  /// complete frame is buffered (or the decoder is poisoned).
  bool next(Frame& out);

  /// Declares end-of-stream: any buffered partial frame becomes a
  /// truncation error. Returns true iff the stream ended cleanly.
  bool finish();

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Bytes currently buffered (undecoded). Bounded by
  /// kFrameHeaderBytes + max_payload + the largest single feed() slice.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void fail(std::string message);

  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already decoded
  bool failed_ = false;
  std::string error_;
};

/// Reassembles frames into per-request messages, enforcing contiguous
/// chunk_index (starting at 0), the per-message size cap, and the
/// open-message cap. Requests may interleave arbitrarily; a request_id
/// can be reused once its previous message completed — but never while
/// it is still in flight (the serve loop enforces that side).
class MessageAssembler {
 public:
  struct Message {
    std::uint64_t request_id = 0;
    /// Concatenated data payloads (empty for failed messages).
    std::string payload;
    /// True when the final frame carried kFrameError.
    bool error = false;
    /// Error text from the final frame (failed messages only).
    std::string error_text;
    /// Stage-timing summary from a kFrameTiming final frame (empty
    /// unless the request opted in with `timing=1`).
    std::string timing;
  };

  explicit MessageAssembler(
      std::size_t max_message_bytes = kDefaultMaxMessageBytes,
      std::size_t max_open_messages = kDefaultMaxOpenMessages)
      : max_message_bytes_(max_message_bytes),
        max_open_messages_(max_open_messages) {}

  /// Folds one frame in; returns the completed message when `frame` is
  /// its last. A chunk_index gap/repeat or an oversized message poisons
  /// the assembler instead (failed()/error()).
  std::optional<Message> accept(const Frame& frame);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Requests with buffered partial messages (for EOF diagnostics).
  std::size_t open_messages() const { return partial_.size(); }

 private:
  struct Partial {
    std::uint32_t next_chunk = 0;
    std::string payload;
  };

  void fail(std::string message);

  std::size_t max_message_bytes_;
  std::size_t max_open_messages_;
  std::unordered_map<std::uint64_t, Partial> partial_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace symphase
