#pragma once

/// \file request.hpp
/// The text payload carried by request frames, and its codec.
///
/// A request message's payload is one directive line followed (for
/// circuit-carrying verbs) by the circuit text:
///
///   sample shots=100000 seed=7 format=b8 backend=symphase threads=4
///   H 0
///   CNOT 0 1
///   M 0 1
///
/// Verbs:
///   sample   stream measurement shots back           (circuit or digest=)
///   detect   stream detection events back            (circuit or digest=)
///   register parse + register the circuit, reply "digest=<hex>\n"
///   stats    reply one line of service counters (the stdio loop drains
///            first so the counters reflect every previously submitted
///            request; the socket server snapshots — see docs/service.md)
///   cancel   id=N: cancel the in-flight/queued request N on this
///            transport session; reply "cancelled\n", or an error frame
///            when N is unknown or already finished
///   health   reply one line of readiness state
///            ("state=accepting|draining queue_depth=..."), never
///            blocking on queued work — the probe verb for load
///            balancers and drain tests
///
/// Options (all optional): shots=N seed=N threads=N
///   format=01|hex|b8|ptb64|dets   backend=symphase|frames
///   rows=i,j,k   sorted record-row subset (SampleTask::bit_selection)
///   digest=<32 hex>   reference a previously registered circuit
///     instead of carrying its text inline.
///   priority=high|normal|low   scheduler class (default normal)
///   deadline_ms=N   relative deadline budget: if the request has not
///     *started* sampling N ms after the service accepted it, it is
///     rejected with an error frame instead of executed (0 = none).
///   json=1   (stats/health only) reply with the JSON rendering
///     instead of the key=value line — `symphase stats --json`.
///   timing=1   (sample/detect only) attach a stage-timing summary
///     (Server-Timing syntax) to the final frame, marked with the
///     kFrameTiming flag — see docs/observability.md. Off by default
///     so the byte stream is unchanged for peers that never ask.
///
/// The response to sample/detect is the chosen format's byte stream,
/// chunked across data frames — reassembled, it is bit-identical to
/// running the same SampleTask on a SimulatorSession directly
/// (tests/service_differential_test.cpp pins this per circuit, backend,
/// format, and thread count).

#include <cstdint>
#include <string>
#include <string_view>

#include "api/sample_task.hpp"
#include "sampler/sample_writer.hpp"
#include "service/scheduler.hpp"

namespace symphase {

enum class RequestVerb { kSample, kDetect, kRegister, kStats, kCancel, kHealth };

/// One parsed request payload. `task.shots` defaults to 1024 like the
/// CLI; `format` defaults to 01 for sample and dets for detect.
struct SampleRequest {
  RequestVerb verb = RequestVerb::kSample;
  /// Inline circuit text (sample/detect/register). Empty when `digest`
  /// names a registered circuit instead.
  std::string circuit_text;
  /// Handle to a registered circuit (sample/detect only).
  std::string digest;
  SampleTask task;
  SampleFormat format = SampleFormat::k01;
  /// Scheduler class (sample/detect only).
  RequestPriority priority = RequestPriority::kNormal;
  /// Relative deadline budget in milliseconds from service acceptance;
  /// 0 = no deadline. See the verb table above for the semantics.
  std::uint64_t deadline_ms = 0;
  /// kCancel only: the transport-session request id to cancel.
  std::uint64_t cancel_id = 0;
  /// kStats/kHealth only: reply with the JSON rendering (to_json())
  /// instead of the key=value line. Wire option `json=1`.
  bool stats_json = false;
  /// kSample/kDetect only: attach the stage-timing summary to the
  /// final frame (kFrameTiming). Wire option `timing=1`.
  bool want_timing = false;

  static SampleRequest sample(std::string circuit, std::size_t shots);
  static SampleRequest detect(std::string circuit, std::size_t shots);
};

/// Parses a request payload. Throws std::invalid_argument with a
/// descriptive message on any malformed directive (unknown verb/option,
/// bad number, rows not sorted, digest malformed, circuit both inline
/// and by digest, ...). Circuit text itself is *not* parsed here — the
/// service does that (and reports parse errors through the error frame).
SampleRequest parse_request_payload(std::string_view payload);

/// Renders `request` into the payload text parse_request_payload
/// accepts; round-trips every field.
std::string encode_request_payload(const SampleRequest& request);

}  // namespace symphase
