#include "service/scheduler.hpp"

namespace symphase {

std::string_view priority_name(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kHigh:
      return "high";
    case RequestPriority::kNormal:
      return "normal";
    case RequestPriority::kLow:
      return "low";
  }
  return "normal";
}

RequestPriority priority_from_name(std::string_view name) {
  if (name == "high") {
    return RequestPriority::kHigh;
  }
  if (name == "normal") {
    return RequestPriority::kNormal;
  }
  if (name == "low") {
    return RequestPriority::kLow;
  }
  SYMPHASE_CHECK_MSG(false,
                     "unknown priority '" << name << "' (high|normal|low)");
  return RequestPriority::kNormal;
}

}  // namespace symphase
