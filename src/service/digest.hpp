#pragma once

/// \file digest.hpp
/// Canonical circuit digests — the cache/batching key of the service.
///
/// Two requests should share one compiled SimulatorSession exactly when
/// they describe the same circuit, regardless of how the text was
/// formatted. The digest therefore hashes the *parsed* circuit rendered
/// back through Circuit::to_text(): comments, blank lines, indentation,
/// and target spacing all vanish in the parse, so "the same circuit,
/// reformatted" maps to the same digest, while any semantic difference
/// (an extra gate, a changed probability) changes it.
///
/// The hash is 128-bit FNV-1a, rendered as 32 lowercase hex characters.
/// It is a cache key, not a cryptographic commitment: collisions are
/// astronomically unlikely for honest inputs but the service never
/// treats digest equality as proof against an adversary.

#include <string>
#include <string_view>

#include "circuit/circuit.hpp"

namespace symphase {

/// 128-bit FNV-1a over raw bytes, as 32 lowercase hex chars.
std::string fnv128_hex(std::string_view bytes);

/// Digest of an already parsed circuit (hashes its canonical text).
std::string circuit_digest(const Circuit& circuit);

/// Parses `text` and digests the result. Throws std::invalid_argument on
/// parse errors, like parse_circuit. Whitespace/comment-only differences
/// in `text` do not change the digest.
std::string circuit_text_digest(std::string_view text);

/// True if `s` has the shape of a digest (32 lowercase hex chars).
bool is_digest_string(std::string_view s);

}  // namespace symphase
