#include "service/request.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "service/digest.hpp"

namespace symphase {

namespace {

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  SYMPHASE_CHECK_MSG(ec == std::errc() && ptr == value.data() + value.size(),
                     "invalid integer for " << key << ": '" << value << "'");
  return out;
}

std::vector<std::size_t> parse_rows(std::string_view value) {
  std::vector<std::size_t> rows;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string_view item =
        value.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                            : comma - start);
    SYMPHASE_CHECK_MSG(!item.empty(), "empty entry in rows list");
    rows.push_back(parse_u64("rows", item));
    SYMPHASE_CHECK_MSG(rows.size() < 2 || rows[rows.size() - 2] < rows.back(),
                       "rows list must be sorted and duplicate-free");
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return rows;
}

SampleBackend parse_backend(std::string_view value) {
  if (value == "symphase") {
    return SampleBackend::kSymPhase;
  }
  if (value == "frames") {
    return SampleBackend::kFrameSimulator;
  }
  SYMPHASE_CHECK_MSG(false,
                     "unknown backend '" << value << "' (symphase|frames)");
  return SampleBackend::kSymPhase;
}

std::string_view backend_name(SampleBackend backend) {
  return backend == SampleBackend::kSymPhase ? "symphase" : "frames";
}

std::string_view format_name(SampleFormat format) {
  switch (format) {
    case SampleFormat::k01:
      return "01";
    case SampleFormat::kHex:
      return "hex";
    case SampleFormat::kB8:
      return "b8";
    case SampleFormat::kPtb64:
      return "ptb64";
    case SampleFormat::kDets:
      return "dets";
  }
  return "01";
}

}  // namespace

SampleRequest SampleRequest::sample(std::string circuit, std::size_t shots) {
  SampleRequest request;
  request.verb = RequestVerb::kSample;
  request.circuit_text = std::move(circuit);
  request.task = SampleTask::measurements(shots);
  return request;
}

SampleRequest SampleRequest::detect(std::string circuit, std::size_t shots) {
  SampleRequest request;
  request.verb = RequestVerb::kDetect;
  request.circuit_text = std::move(circuit);
  request.task = SampleTask::detection_events(shots);
  request.format = SampleFormat::kDets;
  return request;
}

SampleRequest parse_request_payload(std::string_view payload) {
  const std::size_t eol = payload.find('\n');
  const std::string_view directive =
      payload.substr(0, eol == std::string_view::npos ? payload.size() : eol);
  std::string_view rest =
      eol == std::string_view::npos ? std::string_view{} : payload.substr(eol + 1);

  std::istringstream line{std::string(directive)};
  std::string verb;
  line >> verb;
  SampleRequest request;
  if (verb == "sample") {
    request.verb = RequestVerb::kSample;
    request.task.target = SampleTarget::kMeasurements;
  } else if (verb == "detect") {
    request.verb = RequestVerb::kDetect;
    request.task.target = SampleTarget::kDetectionEvents;
    request.format = SampleFormat::kDets;
  } else if (verb == "register") {
    request.verb = RequestVerb::kRegister;
  } else if (verb == "stats") {
    request.verb = RequestVerb::kStats;
  } else if (verb == "cancel") {
    request.verb = RequestVerb::kCancel;
  } else if (verb == "health") {
    request.verb = RequestVerb::kHealth;
  } else {
    SYMPHASE_CHECK_MSG(
        false, "unknown request verb '"
                   << verb << "' (sample|detect|register|stats|cancel|health)");
  }
  request.task.shots = 1024;

  std::string option;
  while (line >> option) {
    const std::size_t eq = option.find('=');
    SYMPHASE_CHECK_MSG(eq != std::string::npos,
                       "malformed option '" << option << "' (expected key=value)");
    const std::string key = option.substr(0, eq);
    const std::string value = option.substr(eq + 1);
    if (request.verb == RequestVerb::kCancel) {
      SYMPHASE_CHECK_MSG(key == "id", "unknown cancel option '" << key << "'");
      request.cancel_id = parse_u64(key, value);
      continue;
    }
    if (request.verb == RequestVerb::kStats ||
        request.verb == RequestVerb::kHealth) {
      SYMPHASE_CHECK_MSG(key == "json",
                         "option '" << key << "' not valid for '" << verb
                                    << "' requests");
      SYMPHASE_CHECK_MSG(value == "0" || value == "1",
                         "json= takes 0 or 1, got '" << value << "'");
      request.stats_json = value == "1";
      continue;
    }
    const bool sampling = request.verb == RequestVerb::kSample ||
                          request.verb == RequestVerb::kDetect;
    SYMPHASE_CHECK_MSG(sampling, "option '" << key << "' not valid for '"
                                            << verb << "' requests");
    if (key == "shots") {
      request.task.shots = parse_u64(key, value);
    } else if (key == "seed") {
      request.task.seed = parse_u64(key, value);
    } else if (key == "threads") {
      request.task.num_threads = parse_u64(key, value);
    } else if (key == "format") {
      request.format = sample_format_from_name(value);
    } else if (key == "backend") {
      request.task.backend = parse_backend(value);
    } else if (key == "rows") {
      request.task.bit_selection = parse_rows(value);
    } else if (key == "priority") {
      request.priority = priority_from_name(value);
    } else if (key == "deadline_ms") {
      request.deadline_ms = parse_u64(key, value);
    } else if (key == "timing") {
      SYMPHASE_CHECK_MSG(value == "0" || value == "1",
                         "timing= takes 0 or 1, got '" << value << "'");
      request.want_timing = value == "1";
    } else if (key == "digest") {
      SYMPHASE_CHECK_MSG(is_digest_string(value),
                         "malformed digest '" << value
                                              << "' (32 lowercase hex chars)");
      request.digest = value;
    } else {
      SYMPHASE_CHECK_MSG(false, "unknown request option '" << key << "'");
    }
  }

  if (request.verb == RequestVerb::kSample ||
      request.verb == RequestVerb::kDetect ||
      request.verb == RequestVerb::kRegister) {
    // Trailing text is the circuit. Strip nothing: the parser tolerates
    // blank lines and comments, and the digest canonicalizes them away.
    request.circuit_text = std::string(rest);
    const bool has_text =
        request.circuit_text.find_first_not_of(" \t\r\n") != std::string::npos;
    if (request.verb == RequestVerb::kRegister) {
      SYMPHASE_CHECK_MSG(has_text, "register request carries no circuit text");
      SYMPHASE_CHECK_MSG(request.digest.empty(),
                         "register request cannot use digest=");
    } else {
      SYMPHASE_CHECK_MSG(has_text || !request.digest.empty(),
                         "request carries neither circuit text nor digest=");
      SYMPHASE_CHECK_MSG(!(has_text && !request.digest.empty()),
                         "request carries both circuit text and digest=");
    }
    if (!has_text) {
      request.circuit_text.clear();
    }
  } else {
    SYMPHASE_CHECK_MSG(
        rest.find_first_not_of(" \t\r\n") == std::string_view::npos,
        verb << " request carries unexpected trailing text");
    if (request.verb == RequestVerb::kCancel) {
      SYMPHASE_CHECK_MSG(request.cancel_id != 0,
                         "cancel request needs id=<nonzero request id>");
    }
  }
  if (request.verb == RequestVerb::kSample) {
    SYMPHASE_CHECK_MSG(request.format != SampleFormat::kDets,
                       "dets format is for detect requests");
  }
  return request;
}

std::string encode_request_payload(const SampleRequest& request) {
  std::ostringstream oss;
  switch (request.verb) {
    case RequestVerb::kSample:
      oss << "sample";
      break;
    case RequestVerb::kDetect:
      oss << "detect";
      break;
    case RequestVerb::kRegister:
      oss << "register";
      break;
    case RequestVerb::kStats:
      oss << "stats";
      break;
    case RequestVerb::kCancel:
      oss << "cancel id=" << request.cancel_id;
      break;
    case RequestVerb::kHealth:
      oss << "health";
      break;
  }
  if ((request.verb == RequestVerb::kStats ||
       request.verb == RequestVerb::kHealth) &&
      request.stats_json) {
    oss << " json=1";
  }
  if (request.verb == RequestVerb::kSample ||
      request.verb == RequestVerb::kDetect) {
    oss << " shots=" << request.task.shots << " seed=" << request.task.seed
        << " format=" << format_name(request.format)
        << " backend=" << backend_name(request.task.backend);
    if (request.task.num_threads != 0) {
      oss << " threads=" << request.task.num_threads;
    }
    if (request.priority != RequestPriority::kNormal) {
      oss << " priority=" << priority_name(request.priority);
    }
    if (request.deadline_ms != 0) {
      oss << " deadline_ms=" << request.deadline_ms;
    }
    if (request.want_timing) {
      oss << " timing=1";
    }
    if (!request.task.bit_selection.empty()) {
      oss << " rows=";
      for (std::size_t i = 0; i < request.task.bit_selection.size(); ++i) {
        oss << (i ? "," : "") << request.task.bit_selection[i];
      }
    }
    if (!request.digest.empty()) {
      oss << " digest=" << request.digest;
    }
  }
  oss << '\n';
  if (!request.circuit_text.empty()) {
    oss << request.circuit_text;
    if (request.circuit_text.back() != '\n') {
      oss << '\n';
    }
  }
  return oss.str();
}

}  // namespace symphase
