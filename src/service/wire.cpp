#include "service/wire.hpp"

#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace symphase {

namespace {

void put_le(char* out, std::uint64_t value, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

std::uint64_t get_le(const char* in, std::size_t bytes) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

constexpr std::uint8_t kKnownFlags = kFrameLast | kFrameError | kFrameTiming;

}  // namespace

void encode_frame_header(const FrameHeader& header,
                         char out[kFrameHeaderBytes]) {
  put_le(out, header.request_id, 8);
  put_le(out + 8, header.chunk_index, 4);
  put_le(out + 12, header.payload_bytes, 4);
  out[16] = static_cast<char>(header.flags);
}

std::string encode_frame(FrameHeader header, std::string_view payload) {
  SYMPHASE_CHECK_MSG(payload.size() <= 0xffffffffu,
                     "frame payload exceeds the u32 length field");
  header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  std::string frame(kFrameHeaderBytes + payload.size(), '\0');
  encode_frame_header(header, frame.data());
  if (!payload.empty()) {  // empty status frames carry a null data()
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

void write_frame(std::ostream& out, FrameHeader header,
                 std::string_view payload) {
  const std::string frame = encode_frame(header, payload);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
}

void FrameDecoder::fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  buffer_.clear();
  consumed_ = 0;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (failed_) {
    return;
  }
  // Drop the already-decoded prefix before growing, so the buffer stays
  // bounded by one frame plus the unread tail of the feed.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

bool FrameDecoder::next(Frame& out) {
  if (failed_) {
    return false;
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) {
    return false;
  }
  const char* head = buffer_.data() + consumed_;
  FrameHeader header;
  header.request_id = get_le(head, 8);
  header.chunk_index = static_cast<std::uint32_t>(get_le(head + 8, 4));
  header.payload_bytes = static_cast<std::uint32_t>(get_le(head + 12, 4));
  header.flags = static_cast<std::uint8_t>(head[16]);

  // Validate the header before waiting for (or allocating) the payload:
  // a hostile length field must not make us buffer gigabytes.
  if (header.payload_bytes > max_payload_) {
    std::ostringstream oss;
    oss << "frame payload_bytes " << header.payload_bytes
        << " exceeds limit " << max_payload_;
    fail(oss.str());
    return false;
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    std::ostringstream oss;
    oss << "unknown frame flag bits 0x" << std::hex
        << static_cast<unsigned>(header.flags & ~kKnownFlags);
    fail(oss.str());
    return false;
  }
  if ((header.flags & kFrameError) != 0 && (header.flags & kFrameLast) == 0) {
    fail("error frame without last flag");
    return false;
  }
  if ((header.flags & kFrameTiming) != 0 &&
      ((header.flags & kFrameLast) == 0 ||
       (header.flags & kFrameError) != 0)) {
    fail("timing frame must be last and cannot be an error");
    return false;
  }
  if (available < kFrameHeaderBytes + header.payload_bytes) {
    return false;
  }
  out.header = header;
  out.payload.assign(head + kFrameHeaderBytes, header.payload_bytes);
  consumed_ += kFrameHeaderBytes + header.payload_bytes;
  return true;
}

bool FrameDecoder::finish() {
  if (failed_) {
    return false;
  }
  if (buffer_.size() != consumed_) {
    std::ostringstream oss;
    oss << "stream truncated inside a frame (" << buffer_.size() - consumed_
        << " trailing bytes)";
    fail(oss.str());
    return false;
  }
  return true;
}

void MessageAssembler::fail(std::string message) {
  failed_ = true;
  error_ = std::move(message);
  partial_.clear();
}

std::optional<MessageAssembler::Message> MessageAssembler::accept(
    const Frame& frame) {
  if (failed_) {
    return std::nullopt;
  }
  // Cap the number of concurrently open messages before inserting: a
  // hostile peer spraying fresh request_ids with flags=0 frames must
  // not grow this map (and the server's memory) without bound.
  if (partial_.find(frame.header.request_id) == partial_.end() &&
      partial_.size() >= max_open_messages_) {
    std::ostringstream oss;
    oss << "more than " << max_open_messages_
        << " interleaved messages in flight";
    fail(oss.str());
    return std::nullopt;
  }
  Partial& partial = partial_[frame.header.request_id];
  if (frame.header.chunk_index != partial.next_chunk) {
    std::ostringstream oss;
    oss << "request " << frame.header.request_id
        << ": out-of-order chunk_index " << frame.header.chunk_index
        << " (expected " << partial.next_chunk << ")";
    fail(oss.str());
    return std::nullopt;
  }
  partial.next_chunk++;

  const bool is_error = (frame.header.flags & kFrameError) != 0;
  const bool is_timing = (frame.header.flags & kFrameTiming) != 0;
  if (!is_error && !is_timing) {
    if (partial.payload.size() + frame.payload.size() > max_message_bytes_) {
      std::ostringstream oss;
      oss << "request " << frame.header.request_id << ": message exceeds "
          << max_message_bytes_ << " bytes";
      fail(oss.str());
      return std::nullopt;
    }
    partial.payload += frame.payload;
  }

  if ((frame.header.flags & kFrameLast) == 0) {
    return std::nullopt;
  }
  Message message;
  message.request_id = frame.header.request_id;
  message.error = is_error;
  if (is_error) {
    message.error_text = frame.payload;
  } else {
    message.payload = std::move(partial.payload);
    if (is_timing) {
      message.timing = frame.payload;
    }
  }
  partial_.erase(frame.header.request_id);
  return message;
}

}  // namespace symphase
