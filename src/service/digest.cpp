#include "service/digest.hpp"

#include "circuit/parser.hpp"

namespace symphase {

std::string fnv128_hex(std::string_view bytes) {
  // FNV-1a with the standard 128-bit offset basis and prime
  // (0x6c62272e07bb014262b821756295c58d / 2^88 + 2^8 + 0x3b).
  using u128 = unsigned __int128;
  constexpr u128 kOffset =
      (static_cast<u128>(0x6c62272e07bb0142ULL) << 64) | 0x62b821756295c58dULL;
  constexpr u128 kPrime = (static_cast<u128>(1) << 88) | (1u << 8) | 0x3b;
  u128 h = kOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kPrime;
  }
  static const char kDigits[] = "0123456789abcdef";
  std::string hex(32, '0');
  for (int i = 31; i >= 0; --i) {
    hex[static_cast<std::size_t>(i)] = kDigits[static_cast<unsigned>(h & 0xf)];
    h >>= 4;
  }
  return hex;
}

std::string circuit_digest(const Circuit& circuit) {
  return fnv128_hex(circuit.to_text());
}

std::string circuit_text_digest(std::string_view text) {
  return circuit_digest(parse_circuit(text));
}

bool is_digest_string(std::string_view s) {
  if (s.size() != 32) {
    return false;
  }
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return false;
    }
  }
  return true;
}

}  // namespace symphase
