#include "service/errors.hpp"

#include <charconv>
#include <sstream>

namespace symphase {

namespace {

/// Parses a decimal run starting at `pos`; advances `pos` past it.
/// Returns false when no digit is present.
bool parse_decimal(std::string_view text, std::size_t& pos,
                   std::uint64_t& out) {
  const char* begin = text.data() + pos;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr == begin) {
    return false;
  }
  pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

/// Consumes `expected` at `pos`, advancing past it on match.
bool consume(std::string_view text, std::size_t& pos,
             std::string_view expected) {
  if (text.substr(pos, expected.size()) != expected) {
    return false;
  }
  pos += expected.size();
  return true;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kQueueFull:
      return "queue_full";
    case ErrorCode::kRateLimited:
      return "rate_limited";
    case ErrorCode::kDraining:
      return "draining";
    case ErrorCode::kDeadlineExpired:
      return "deadline_expired";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kBadCircuit:
      return "bad_circuit";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kTimeout:
      return "timeout";
  }
  return "internal";
}

bool error_code_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kQueueFull:
    case ErrorCode::kRateLimited:
    case ErrorCode::kDraining:
    // An idle-timeout close says nothing about the request itself — a
    // reconnecting client starts clean.
    case ErrorCode::kTimeout:
      return true;
    case ErrorCode::kDeadlineExpired:
    case ErrorCode::kCancelled:
    case ErrorCode::kBadCircuit:
    case ErrorCode::kInternal:
      return false;
  }
  return false;
}

ServiceError make_error(ErrorCode code, std::string message,
                        std::uint64_t retry_after_ms) {
  ServiceError error;
  error.code = code;
  error.retryable = error_code_retryable(code);
  error.retry_after_ms = retry_after_ms;
  error.message = std::move(message);
  return error;
}

std::string encode_error_payload(const ServiceError& error) {
  std::ostringstream oss;
  oss << 'E' << static_cast<std::uint32_t>(error.code) << ' '
      << error_code_name(error.code)
      << " retryable=" << (error.retryable ? 1 : 0)
      << " retry_after_ms=" << error.retry_after_ms << ": " << error.message;
  return oss.str();
}

ServiceError parse_error_payload(std::string_view payload) {
  // Anything that fails to parse is an opaque legacy/foreign error.
  ServiceError legacy;
  legacy.code = ErrorCode::kInternal;
  legacy.retryable = false;
  legacy.message = std::string(payload);

  std::size_t pos = 0;
  std::uint64_t code = 0;
  std::uint64_t retryable = 0;
  std::uint64_t retry_after_ms = 0;
  if (!consume(payload, pos, "E") || !parse_decimal(payload, pos, code) ||
      !consume(payload, pos, " ")) {
    return legacy;
  }
  // Skip the name: it is redundant with the code (carried for humans),
  // and tolerating unknown names lets servers add codes first.
  const std::size_t name_end = payload.find(' ', pos);
  if (name_end == std::string_view::npos) {
    return legacy;
  }
  pos = name_end;
  if (!consume(payload, pos, " retryable=") ||
      !parse_decimal(payload, pos, retryable) || retryable > 1 ||
      !consume(payload, pos, " retry_after_ms=") ||
      !parse_decimal(payload, pos, retry_after_ms) ||
      !consume(payload, pos, ": ")) {
    return legacy;
  }
  ServiceError error;
  error.code = static_cast<ErrorCode>(code);
  error.retryable = retryable != 0;
  error.retry_after_ms = retry_after_ms;
  error.message = std::string(payload.substr(pos));
  return error;
}

}  // namespace symphase
