#include "service/admission.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace symphase {

namespace {

/// Backoff hint for queue-pressure rejections: grows with how deep the
/// queue is relative to capacity, so clients spread their retries
/// instead of hammering a saturated server in lockstep.
std::uint64_t queue_retry_hint(std::size_t queue_depth,
                               std::size_t queue_capacity) {
  const std::size_t capacity = std::max<std::size_t>(queue_capacity, 1);
  return 10 + (static_cast<std::uint64_t>(queue_depth) * 100) / capacity;
}

/// Backoff hint for shot-capacity rejections. Queue depth is the wrong
/// signal here: one 2M-shot job saturates the cap with an empty queue,
/// and the depth-based hint would tell clients to retry in 10 ms —
/// hammering a server that will stay saturated for seconds. Scale by
/// how oversubscribed the shot budget is instead (100 ms per fully
/// consumed cap, plus the pending request's own share).
std::uint64_t shots_retry_hint(std::uint64_t shots_in_flight,
                               std::uint64_t requested_shots,
                               std::uint64_t max_shots_in_flight) {
  const std::uint64_t cap = std::max<std::uint64_t>(max_shots_in_flight, 1);
  return 10 + ((shots_in_flight + requested_shots) * 100) / cap;
}

}  // namespace

TokenBucket::TokenBucket(double rate_per_second, double capacity,
                         SchedulerClock::time_point now)
    : rate_(rate_per_second),
      capacity_(capacity),
      tokens_(capacity),  // a new client starts with a full burst
      last_(now) {}

double TokenBucket::tokens(SchedulerClock::time_point now) const {
  const double elapsed =
      std::chrono::duration<double>(now - last_).count();
  return std::min(capacity_, tokens_ + std::max(0.0, elapsed) * rate_);
}

bool TokenBucket::try_take(double cost, SchedulerClock::time_point now) {
  const double clamped = std::min(cost, capacity_);
  const double available = tokens(now);
  if (available < clamped) {
    return false;
  }
  tokens_ = available - clamped;
  last_ = now;
  return true;
}

std::uint64_t TokenBucket::retry_after_ms(
    double cost, SchedulerClock::time_point now) const {
  const double clamped = std::min(cost, capacity_);
  const double deficit = clamped - tokens(now);
  if (deficit <= 0.0) {
    return 0;
  }
  if (rate_ <= 0.0) {
    return 0;  // never refills; there is no honest hint
  }
  return static_cast<std::uint64_t>(std::ceil(deficit / rate_ * 1000.0));
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  SYMPHASE_CHECK(options_.max_tracked_clients >= 1);
  SYMPHASE_CHECK(options_.shed_low_above > 0.0 &&
                 options_.shed_low_above <= 1.0);
  SYMPHASE_CHECK(options_.shed_normal_above > 0.0 &&
                 options_.shed_normal_above <= 1.0);
  if (options_.client_burst_shots == 0) {
    options_.client_burst_shots = options_.client_shots_per_second;
  }
}

TokenBucket& AdmissionController::bucket_for(std::uint64_t client_id,
                                             SchedulerClock::time_point now) {
  const auto hit = clients_.find(client_id);
  if (hit != clients_.end()) {
    lru_.splice(lru_.begin(), lru_, hit->second.lru_position);
    return hit->second.bucket;
  }
  lru_.push_front(client_id);
  auto& entry = clients_[client_id];
  entry.bucket = TokenBucket(
      static_cast<double>(options_.client_shots_per_second),
      static_cast<double>(options_.client_burst_shots), now);
  entry.lru_position = lru_.begin();
  while (clients_.size() > options_.max_tracked_clients) {
    clients_.erase(lru_.back());
    lru_.pop_back();
  }
  return entry.bucket;
}

std::size_t AdmissionController::depth_limit(
    RequestPriority priority, std::size_t queue_capacity) const {
  double fraction = 1.0;
  switch (priority) {
    case RequestPriority::kHigh:
      fraction = 1.0;
      break;
    case RequestPriority::kNormal:
      fraction = options_.shed_normal_above;
      break;
    case RequestPriority::kLow:
      fraction = options_.shed_low_above;
      break;
  }
  const auto limit = static_cast<std::size_t>(
      std::floor(static_cast<double>(queue_capacity) * fraction));
  // Every class can always use at least one slot of an empty queue.
  return std::max<std::size_t>(limit, 1);
}

bool AdmissionController::fits_in_flight(std::uint64_t shots) const {
  if (options_.max_shots_in_flight == 0) {
    return true;
  }
  if (shots_in_flight_ + shots <= options_.max_shots_in_flight) {
    return true;
  }
  // An oversized request (alone bigger than the cap) must still be
  // runnable: admit it only against an otherwise idle server.
  return shots > options_.max_shots_in_flight && shots_in_flight_ == 0;
}

AdmissionDecision AdmissionController::admit(
    std::uint64_t client_id, std::uint64_t shots, RequestPriority priority,
    std::size_t queue_depth, std::size_t queue_capacity,
    bool enforce_queue_limits, SchedulerClock::time_point now) {
  AdmissionDecision decision;
  // The bucket is only charged once every gate passed — a rejected
  // request must not also burn the client's budget.
  TokenBucket* bucket = nullptr;
  const auto cost = static_cast<double>(shots);
  if (options_.client_shots_per_second != 0) {
    bucket = &bucket_for(client_id, now);
    if (bucket->retry_after_ms(cost, now) != 0) {
      std::ostringstream oss;
      oss << "client shot budget exhausted ("
          << options_.client_shots_per_second << " shots/s, burst "
          << options_.client_burst_shots << "); retry later";
      decision.admitted = false;
      decision.error = make_error(ErrorCode::kRateLimited, oss.str(),
                                  bucket->retry_after_ms(cost, now));
      return decision;
    }
  }
  if (!fits_in_flight(shots)) {
    std::ostringstream oss;
    oss << "server shot capacity saturated (" << shots_in_flight_ << " of "
        << options_.max_shots_in_flight << " shots in flight); retry later";
    decision.admitted = false;
    decision.error =
        make_error(ErrorCode::kQueueFull, oss.str(),
                   shots_retry_hint(shots_in_flight_, shots,
                                    options_.max_shots_in_flight));
    return decision;
  }
  if (enforce_queue_limits) {
    const std::size_t limit = depth_limit(priority, queue_capacity);
    if (queue_depth >= limit) {
      std::ostringstream oss;
      if (limit < queue_capacity) {
        oss << "server request queue is full for " << priority_name(priority)
            << "-priority requests; retry later";
      } else {
        oss << "server request queue is full; retry later";
      }
      decision.admitted = false;
      decision.error =
          make_error(ErrorCode::kQueueFull, oss.str(),
                     queue_retry_hint(queue_depth, queue_capacity));
      return decision;
    }
  }
  if (bucket != nullptr) {
    (void)bucket->try_take(cost, now);
  }
  shots_in_flight_ += shots;
  return decision;
}

void AdmissionController::release(std::uint64_t shots) {
  shots_in_flight_ -= std::min(shots_in_flight_, shots);
}

}  // namespace symphase
