#pragma once

/// \file scheduler.hpp
/// The deadline/priority-aware request queue of the sampling service.
///
/// PR 3's service queued requests FIFO; under saturation that lets a
/// batch of bulk jobs starve an urgent one, and a request whose client
/// stopped caring still costs a full compile+sample. This queue replaces
/// the deque with an indexed min-heap ordered by
///
///   (priority class, absolute deadline, arrival ticket)
///
/// so the pool always runs the most urgent class first, earliest
/// deadline first within a class, and FIFO among equals (no-deadline
/// requests sort after every deadline-carrying one in their class).
/// The index (ticket -> heap slot) makes cancellation of a *queued*
/// request O(log n) instead of a scan — the service's cancel() uses it,
/// and the serve loops map client request ids onto tickets.
///
/// Deadlines are scheduling hints AND admission gates: the queue itself
/// never drops anything, but the service checks `deadline` when a
/// worker takes the item and rejects expired requests with an error
/// frame before any compilation or sampling starts. In-flight requests
/// past their deadline are cut too, by the service's watchdog thread
/// riding the cooperative-cancel path (api/sample_stream.hpp) — the
/// queue plays no part in that; see service.hpp.
///
/// Not thread-safe: the owner (SamplingService) holds its queue mutex
/// around every call, exactly like the deque it replaces.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace symphase {

/// Request priority classes, most urgent first. Three classes keep the
/// wire text human-readable and the per-class stats bounded; the heap
/// order would take any integer key if finer grading is ever needed.
enum class RequestPriority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

inline constexpr std::size_t kNumPriorities = 3;

std::string_view priority_name(RequestPriority priority);

/// Parses "high" | "normal" | "low"; throws std::invalid_argument.
RequestPriority priority_from_name(std::string_view name);

/// The service's scheduling clock. steady_clock: deadlines are relative
/// budgets ("finish within 50ms"), never wall-clock timestamps, so they
/// survive clock adjustments.
using SchedulerClock = std::chrono::steady_clock;

/// Sentinel for "no deadline": sorts after every real deadline.
inline constexpr SchedulerClock::time_point kNoDeadline =
    SchedulerClock::time_point::max();

/// Indexed binary min-heap of pending jobs. Payload is the owner's job
/// type; the queue only looks at the scheduling key.
template <typename Payload>
class DeadlineQueue {
 public:
  struct Item {
    std::uint64_t ticket = 0;  ///< Unique, monotonically assigned by owner.
    RequestPriority priority = RequestPriority::kNormal;
    SchedulerClock::time_point deadline = kNoDeadline;
    Payload payload{};
    /// Fusion-group tag (the service uses circuit digest + backend +
    /// target). Items sharing a non-empty tag are claimable together via
    /// claim_group(); "" means not fusable. Scheduling order ignores it.
    std::string group;
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void push(Item item) {
    SYMPHASE_CHECK_MSG(!position_.contains(item.ticket),
                       "duplicate scheduler ticket " << item.ticket);
    if (!item.group.empty()) {
      groups_[item.group].insert(item.ticket);
    }
    heap_.push_back(std::move(item));
    position_[heap_.back().ticket] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the most urgent item. Queue must be non-empty.
  Item pop() {
    SYMPHASE_CHECK(!heap_.empty());
    return extract(0);
  }

  /// Removes the item with `ticket` if it is still queued, moving it
  /// into `out` (when non-null). Returns false when unknown — already
  /// popped, or never pushed.
  bool remove(std::uint64_t ticket, Item* out = nullptr) {
    const auto it = position_.find(ticket);
    if (it == position_.end()) {
      return false;
    }
    Item item = extract(it->second);
    if (out != nullptr) {
      *out = std::move(item);
    }
    return true;
  }

  /// The most urgent item without removing it. Queue must be non-empty.
  const Item& peek() const {
    SYMPHASE_CHECK(!heap_.empty());
    return heap_.front();
  }

  /// Removes up to `max_items` queued items tagged with `group`,
  /// most-urgent first (the same (priority, deadline, ticket) key pop()
  /// uses — NOT arrival order, so a fused batch preserves the
  /// scheduler's observable completion order), appending them to `out`.
  /// Returns the number claimed; 0 for an empty/unknown tag.
  std::size_t claim_group(const std::string& group, std::size_t max_items,
                          std::vector<Item>& out) {
    if (group.empty() || max_items == 0) {
      return 0;
    }
    const auto it = groups_.find(group);
    if (it == groups_.end()) {
      return 0;
    }
    std::vector<std::uint64_t> tickets(it->second.begin(), it->second.end());
    std::sort(tickets.begin(), tickets.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                return before(heap_[position_.at(a)], heap_[position_.at(b)]);
              });
    const std::size_t take = std::min(max_items, tickets.size());
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(extract(position_.at(tickets[i])));
    }
    return take;
  }

 private:
  static bool before(const Item& a, const Item& b) {
    if (a.priority != b.priority) {
      return a.priority < b.priority;
    }
    if (a.deadline != b.deadline) {
      return a.deadline < b.deadline;
    }
    return a.ticket < b.ticket;
  }

  Item extract(std::size_t index) {
    Item item = std::move(heap_[index]);
    position_.erase(item.ticket);
    if (!item.group.empty()) {
      const auto git = groups_.find(item.group);
      if (git != groups_.end()) {
        git->second.erase(item.ticket);
        if (git->second.empty()) {
          groups_.erase(git);
        }
      }
    }
    const std::size_t last = heap_.size() - 1;
    if (index != last) {
      heap_[index] = std::move(heap_[last]);
      position_[heap_[index].ticket] = index;
    }
    heap_.pop_back();
    if (index < heap_.size()) {
      // The moved-in tail can be too urgent or too lazy for this slot.
      sift_down(index);
      sift_up(index);
    }
    return item;
  }

  void sift_up(std::size_t index) {
    while (index > 0) {
      const std::size_t parent = (index - 1) / 2;
      if (!before(heap_[index], heap_[parent])) {
        return;
      }
      swap_slots(index, parent);
      index = parent;
    }
  }

  void sift_down(std::size_t index) {
    for (;;) {
      std::size_t smallest = index;
      const std::size_t left = 2 * index + 1;
      const std::size_t right = 2 * index + 2;
      if (left < heap_.size() && before(heap_[left], heap_[smallest])) {
        smallest = left;
      }
      if (right < heap_.size() && before(heap_[right], heap_[smallest])) {
        smallest = right;
      }
      if (smallest == index) {
        return;
      }
      swap_slots(index, smallest);
      index = smallest;
    }
  }

  void swap_slots(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    position_[heap_[a].ticket] = a;
    position_[heap_[b].ticket] = b;
  }

  std::vector<Item> heap_;
  std::unordered_map<std::uint64_t, std::size_t> position_;
  /// Fusion-group tag -> queued tickets carrying it. Maintained by
  /// push/extract so claim_group() never scans the heap.
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>> groups_;
};

}  // namespace symphase
