#pragma once

/// \file errors.hpp
/// Structured error taxonomy for the sampling service's wire protocol.
///
/// Error frames (kFrameError) used to carry free-form text. Overload
/// handling needs machine-readable failures: a client must distinguish
/// a retryable rejection (queue full, rate limited, draining) from a
/// permanent one (bad circuit) without matching strings. The error
/// payload is therefore a structured prefix followed by the human
/// message:
///
///   E<code> <name> retryable=<0|1> retry_after_ms=<N>: <message>
///
/// e.g.
///
///   E1 queue_full retryable=1 retry_after_ms=120: server request
///   queue is full; retry later
///
/// The frame format itself is untouched — the taxonomy lives entirely
/// in the error frame's payload bytes, so old clients still read a
/// plain descriptive line and the stdio/TCP transports stay
/// frame-compatible. parse_error_payload() accepts legacy plain-text
/// payloads too (mapped to kInternal, non-retryable), so new clients
/// interoperate with old servers.

#include <cstdint>
#include <string>
#include <string_view>

namespace symphase {

/// Numbered wire error codes. The values are part of the protocol:
/// append new codes, never renumber existing ones.
enum class ErrorCode : std::uint32_t {
  kQueueFull = 1,        ///< Queue at capacity or priority class shed.
  kRateLimited = 2,      ///< Client exceeded its shots/second budget.
  kDraining = 3,         ///< Server is draining for shutdown.
  kDeadlineExpired = 4,  ///< deadline_ms passed before sampling started.
  kCancelled = 5,        ///< Cancelled by the client (or its disconnect).
  kBadCircuit = 6,       ///< Invalid request/circuit; retrying cannot help.
  kInternal = 7,         ///< Unexpected server-side failure.
  kTimeout = 8,          ///< Transport idle timeout: the server closed a
                         ///< connection that sent nothing for too long.
};

/// The code's wire name ("queue_full", ...). Unknown values render as
/// "internal".
std::string_view error_code_name(ErrorCode code);

/// Whether retrying the identical request later can succeed. True only
/// for the transient overload conditions (queue_full, rate_limited,
/// draining); per-request seeds make such replays bit-identical, so
/// clients resubmit safely.
bool error_code_retryable(ErrorCode code);

/// One structured service error, as carried in an error frame payload.
struct ServiceError {
  ErrorCode code = ErrorCode::kInternal;
  bool retryable = false;
  /// Server backoff hint in milliseconds (0 = none): the earliest time
  /// a retry has a realistic chance of being admitted.
  std::uint64_t retry_after_ms = 0;
  /// Human-readable detail; follows the structured prefix verbatim.
  std::string message;
};

/// Builds a ServiceError carrying the code's default retryable bit.
ServiceError make_error(ErrorCode code, std::string message,
                        std::uint64_t retry_after_ms = 0);

/// Renders the error-frame payload shown in the file comment.
std::string encode_error_payload(const ServiceError& error);

/// Parses an error-frame payload. Never throws: payloads without a
/// well-formed "E<num> <name> retryable=<0|1> retry_after_ms=<N>: "
/// prefix (legacy servers, foreign text) map to kInternal,
/// non-retryable, with the whole payload as the message.
ServiceError parse_error_payload(std::string_view payload);

}  // namespace symphase
