#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <utility>

#include "api/sample_stream.hpp"
#include "circuit/parser.hpp"
#include "common/check.hpp"
#include "common/trace.hpp"
#include "service/digest.hpp"

namespace symphase {

namespace {

/// One request's stage partition, in steady-clock ns. queue + compile +
/// execute + emit == total up to clamping (each stage is clamped at 0
/// individually, so a degenerate clock never produces underflowed
/// giants).
struct StageBreakdown {
  std::uint64_t queue_ns = 0;
  std::uint64_t compile_ns = 0;
  std::uint64_t execute_ns = 0;
  std::uint64_t emit_ns = 0;
  std::uint64_t total_ns = 0;
};

/// Derives the partition from the lifecycle marks. Marks a request
/// never reached are zero and collapse their stage to zero: a request
/// cancelled in the queue has only queue time, a cache-hit compile is
/// near-zero, an errored run keeps whatever it accrued. `emit_ns` is
/// the sink-accumulated serialize+ship time; execute is the rest of
/// the post-compile window.
StageBreakdown stage_breakdown(std::uint64_t accept_ns, std::uint64_t claim_ns,
                               std::uint64_t compile_done_ns,
                               std::uint64_t emit_ns, std::uint64_t end_ns) {
  const auto delta = [](std::uint64_t from, std::uint64_t to) {
    return to > from ? to - from : 0;
  };
  if (claim_ns == 0) {
    claim_ns = end_ns;
  }
  if (compile_done_ns == 0) {
    compile_done_ns = claim_ns;
  }
  StageBreakdown s;
  s.queue_ns = delta(accept_ns, claim_ns);
  s.compile_ns = delta(claim_ns, compile_done_ns);
  s.emit_ns = emit_ns;
  const std::uint64_t run_ns = delta(compile_done_ns, end_ns);
  s.execute_ns = run_ns > emit_ns ? run_ns - emit_ns : 0;
  s.total_ns = delta(accept_ns, end_ns);
  return s;
}

/// Renders ns as fixed-point milliseconds with microsecond precision
/// ("12.345") — locale-independent, no scientific notation.
void append_ms(std::ostringstream& oss, std::uint64_t ns) {
  const std::uint64_t us = ns / 1000;
  oss << us / 1000 << '.' << std::setw(3) << std::setfill('0') << us % 1000
      << std::setfill(' ');
}

/// The Server-Timing value (RFC draft syntax: `name;dur=ms, ...`) the
/// gateway forwards verbatim as an HTTP trailer and the frame protocol
/// carries in its kFrameTiming final frame.
std::string render_server_timing(const StageBreakdown& s) {
  std::ostringstream oss;
  const auto stage = [&oss](const char* name, std::uint64_t ns, bool first) {
    if (!first) {
      oss << ", ";
    }
    oss << name << ";dur=";
    append_ms(oss, ns);
  };
  stage("queue", s.queue_ns, true);
  stage("compile", s.compile_ns, false);
  stage("execute", s.execute_ns, false);
  stage("emit", s.emit_ns, false);
  stage("total", s.total_ns, false);
  return oss.str();
}

/// SampleSink that serializes chunks through WriterSink (so format
/// bytes, flushing discipline, and ptb64 alignment checks are exactly
/// the streaming CLI's) and ships the bytes as wire data frames, split
/// at the payload cap. end() appends the final status frame.
class FrameSink final : public SampleSink {
 public:
  FrameSink(std::uint64_t request_id, SampleFormat format,
            std::size_t max_payload, const FrameFn& emit,
            std::atomic<std::uint64_t>* progress, std::uint64_t ticket,
            std::uint64_t group, bool want_timing)
      : request_id_(request_id),
        max_payload_(max_payload),
        emit_(emit),
        progress_(progress),
        ticket_(ticket),
        group_(group),
        want_timing_(want_timing),
        writer_(buffer_, format) {}

  /// Installs the pre-execution clock marks the final timing frame
  /// needs. Called once the compile stage has finished, before any
  /// chunk flows; all marks are steady-clock ns (common/trace.hpp).
  void set_timing_marks(std::uint64_t accept_ns, std::uint64_t claim_ns,
                        std::uint64_t compile_done_ns) {
    accept_ns_ = accept_ns;
    claim_ns_ = claim_ns;
    compile_done_ns_ = compile_done_ns;
  }

  void begin(const SampleStreamInfo& info) override { writer_.begin(info); }

  void consume(const SampleChunk& chunk) override {
    const std::uint64_t t0 = trace::now_ns();
    writer_.consume(chunk);
    ship_buffer();
    const std::uint64_t t1 = trace::now_ns();
    emit_ns_ += t1 - t0;
    trace::span("emit", t0, t1, request_id_, ticket_, group_, next_chunk_);
    // The heartbeat the watchdog's stall detector reads: one tick per
    // shard chunk delivered, bumped after the bytes shipped (a sink
    // blocked on a slow reader is a stall too).
    if (progress_ != nullptr) {
      progress_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  void end() override {
    const std::uint64_t t0 = trace::now_ns();
    writer_.end();
    ship_buffer();
    const std::uint64_t t1 = trace::now_ns();
    emit_ns_ += t1 - t0;
    end_ns_ = t1;
    FrameHeader header;
    header.request_id = request_id_;
    header.chunk_index = next_chunk_++;
    header.flags = kFrameLast;
    std::string payload;
    if (want_timing_) {
      // The client asked for the stage summary (`timing=1`): the final
      // frame carries it as a kFrameTiming payload instead of the
      // classic empty body. Clients that did not opt in never see the
      // flag, so their byte streams are unchanged.
      header.flags |= kFrameTiming;
      payload = render_server_timing(stage_breakdown(
          accept_ns_, claim_ns_, compile_done_ns_, emit_ns_, end_ns_));
      header.payload_bytes = static_cast<std::uint32_t>(payload.size());
    }
    emit_(header, payload);
  }

  /// The chunk index an error frame should carry to stay contiguous.
  std::uint32_t next_chunk_index() const { return next_chunk_; }

  /// Accumulated serialize+ship time across every chunk (ns).
  std::uint64_t emit_ns() const { return emit_ns_; }
  /// When the final frame shipped (steady ns); 0 if end() never ran
  /// (errored/cancelled streams are abandoned without end()).
  std::uint64_t end_ns() const { return end_ns_; }

 private:
  void ship_buffer() {
    const std::string bytes = buffer_.str();
    buffer_.str({});
    for (std::size_t offset = 0; offset < bytes.size();
         offset += max_payload_) {
      FrameHeader header;
      header.request_id = request_id_;
      header.chunk_index = next_chunk_++;
      const std::string_view slice =
          std::string_view(bytes).substr(offset, max_payload_);
      header.payload_bytes = static_cast<std::uint32_t>(slice.size());
      emit_(header, slice);
    }
  }

  std::uint64_t request_id_;
  std::size_t max_payload_;
  const FrameFn& emit_;
  std::atomic<std::uint64_t>* progress_;
  std::uint64_t ticket_;
  std::uint64_t group_;
  bool want_timing_;
  std::uint64_t accept_ns_ = 0;
  std::uint64_t claim_ns_ = 0;
  std::uint64_t compile_done_ns_ = 0;
  std::uint64_t emit_ns_ = 0;
  std::uint64_t end_ns_ = 0;
  std::ostringstream buffer_;
  WriterSink writer_;
  std::uint32_t next_chunk_ = 0;
};

std::uint64_t ms_between(SchedulerClock::time_point from,
                         SchedulerClock::time_point to) {
  if (to <= from) {
    return 0;
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
          .count());
}

}  // namespace

std::string ServiceStats::to_line() const {
  std::ostringstream oss;
  oss << "hits=" << hits << " misses=" << misses << " evictions=" << evictions
      << " compiles=" << compiles << " frame_builds=" << frame_builds
      << " completed=" << completed << " failed=" << failed
      << " queue_depth=" << queue_depth << " queue_peak=" << queue_peak
      << " rejected_expired=" << rejected_expired
      << " cancelled=" << cancelled
      << " rejected_queue_full=" << rejected_queue_full
      << " rejected_rate_limited=" << rejected_rate_limited
      << " rejected_draining=" << rejected_draining
      << " shots_in_flight=" << shots_in_flight
      << " fused_requests=" << fused_requests
      << " fusion_groups=" << fusion_groups
      << " expired_running=" << expired_running
      << " exec_timeouts=" << exec_timeouts << " stalled=" << stalled
      << " worker_restarts=" << worker_restarts
      << " error_emit_failures=" << error_emit_failures
      << " longest_running_ms=" << longest_running_ms
      << " workers_alive=" << workers_alive;
  for (std::size_t i = 0; i < kNumPriorities; ++i) {
    oss << " served_" << priority_name(static_cast<RequestPriority>(i)) << '='
        << served[i];
  }
  oss << '\n';
  return oss.str();
}

std::string ServiceStats::to_json() const {
  std::ostringstream oss;
  oss << "{\"hits\":" << hits << ",\"misses\":" << misses
      << ",\"evictions\":" << evictions << ",\"compiles\":" << compiles
      << ",\"frame_builds\":" << frame_builds << ",\"completed\":" << completed
      << ",\"failed\":" << failed << ",\"queue_depth\":" << queue_depth
      << ",\"queue_peak\":" << queue_peak
      << ",\"rejected_expired\":" << rejected_expired
      << ",\"cancelled\":" << cancelled
      << ",\"rejected_queue_full\":" << rejected_queue_full
      << ",\"rejected_rate_limited\":" << rejected_rate_limited
      << ",\"rejected_draining\":" << rejected_draining
      << ",\"shots_in_flight\":" << shots_in_flight
      << ",\"fused_requests\":" << fused_requests
      << ",\"fusion_groups\":" << fusion_groups
      << ",\"expired_running\":" << expired_running
      << ",\"exec_timeouts\":" << exec_timeouts << ",\"stalled\":" << stalled
      << ",\"worker_restarts\":" << worker_restarts
      << ",\"error_emit_failures\":" << error_emit_failures
      << ",\"longest_running_ms\":" << longest_running_ms
      << ",\"workers_alive\":" << workers_alive << ",\"served\":{";
  for (std::size_t i = 0; i < kNumPriorities; ++i) {
    oss << (i == 0 ? "\"" : ",\"")
        << priority_name(static_cast<RequestPriority>(i)) << "\":"
        << served[i];
  }
  oss << "}}\n";
  return oss.str();
}

std::string ServiceHealth::to_line() const {
  std::ostringstream oss;
  oss << "state=" << (accepting ? "accepting" : "draining")
      << " queue_depth=" << queue_depth
      << " queue_capacity=" << queue_capacity
      << " active_jobs=" << active_jobs
      << " shots_in_flight=" << shots_in_flight
      << " max_shots_in_flight=" << max_shots_in_flight
      << " longest_running_ms=" << longest_running_ms
      << " workers_alive=" << workers_alive << '\n';
  return oss.str();
}

std::string ServiceHealth::to_json() const {
  std::ostringstream oss;
  oss << "{\"state\":\"" << (accepting ? "accepting" : "draining")
      << "\",\"accepting\":" << (accepting ? "true" : "false")
      << ",\"queue_depth\":" << queue_depth
      << ",\"queue_capacity\":" << queue_capacity
      << ",\"active_jobs\":" << active_jobs
      << ",\"shots_in_flight\":" << shots_in_flight
      << ",\"max_shots_in_flight\":" << max_shots_in_flight
      << ",\"longest_running_ms\":" << longest_running_ms
      << ",\"workers_alive\":" << workers_alive << "}\n";
  return oss.str();
}

SamplingService::SamplingService(ServiceOptions options)
    : options_(std::move(options)), admission_(options_.admission) {
  SYMPHASE_CHECK(options_.num_workers >= 1);
  SYMPHASE_CHECK(options_.queue_capacity >= 1);
  SYMPHASE_CHECK(options_.session_cache_capacity >= 1);
  SYMPHASE_CHECK(options_.max_frame_payload >= 1);
  // The header's length field is u32; a larger per-frame cap would let
  // ship_buffer() cut slices encode_frame() cannot represent.
  SYMPHASE_CHECK(options_.max_frame_payload <= 0xffffffffu);
  SYMPHASE_CHECK(options_.registry_capacity >= 1);
  watchdog_ = std::thread([this] { watchdog_loop(); });
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

SamplingService::~SamplingService() { stop(); }

std::string SamplingService::register_circuit(std::string_view circuit_text) {
  Circuit circuit = parse_circuit(circuit_text);
  std::string digest = circuit_digest(circuit);
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  register_locked(digest, std::move(circuit));
  return digest;
}

void SamplingService::register_locked(const std::string& digest,
                                      Circuit circuit) {
  const auto existing = registry_.find(digest);
  if (existing != registry_.end()) {
    registry_lru_.splice(registry_lru_.begin(), registry_lru_,
                         existing->second.lru_position);
    return;
  }
  registry_lru_.push_front(digest);
  registry_.emplace(digest,
                    RegistryEntry{std::move(circuit), registry_lru_.begin()});
  while (registry_.size() > options_.registry_capacity) {
    registry_.erase(registry_lru_.back());
    registry_lru_.pop_back();
  }
}

std::uint64_t SamplingService::submit(std::uint64_t request_id,
                                      SampleRequest request, FrameFn emit,
                                      std::uint64_t client_id,
                                      ServiceError* rejection,
                                      const char* transport) {
  return submit_impl(request_id, std::move(request), std::move(emit),
                     client_id, rejection, transport, /*blocking=*/true);
}

std::uint64_t SamplingService::try_submit(std::uint64_t request_id,
                                          SampleRequest request, FrameFn emit,
                                          std::uint64_t client_id,
                                          ServiceError* rejection,
                                          const char* transport) {
  return submit_impl(request_id, std::move(request), std::move(emit),
                     client_id, rejection, transport, /*blocking=*/false);
}

std::uint64_t SamplingService::submit_impl(std::uint64_t request_id,
                                           SampleRequest request, FrameFn emit,
                                           std::uint64_t client_id,
                                           ServiceError* rejection,
                                           const char* transport,
                                           bool blocking) {
  SYMPHASE_CHECK_MSG(request.verb == RequestVerb::kSample ||
                         request.verb == RequestVerb::kDetect,
                     "submit() only takes sample/detect requests");
  SYMPHASE_CHECK(emit != nullptr);
  Job job;
  job.request_id = request_id;
  // The deadline budget starts at acceptance, before any queue wait —
  // time spent blocked on a full queue counts against it.
  if (request.deadline_ms != 0) {
    job.deadline = SchedulerClock::now() +
                   std::chrono::milliseconds(request.deadline_ms);
  }
  job.cancel_flag = std::make_shared<std::atomic<bool>>(false);
  job.abort_reason = std::make_shared<std::atomic<std::uint32_t>>(kAbortNone);
  job.progress = std::make_shared<std::atomic<std::uint64_t>>(0);
  job.shots = request.task.shots;
  job.transport = transport;
  job.request = std::move(request);
  job.emit = std::move(emit);
  if (options_.fusion_cap > 1) {
    // Circuit identity for fusion: the canonical digest when the client
    // sent one, otherwise a hash of the raw inline text (two inline
    // requests fuse only when their text is byte-identical — a
    // reformatted copy of the same circuit still shares the session,
    // just not the engine pass). Backend and target must match too:
    // fused members share one set of compiled artifacts and one record
    // layout.
    std::ostringstream key;
    if (!job.request.digest.empty()) {
      key << "d:" << job.request.digest;
    } else {
      key << "t:" << fnv128_hex(job.request.circuit_text);
    }
    key << '|' << static_cast<int>(job.request.task.backend) << '|'
        << static_cast<int>(job.request.task.target);
    job.fuse_key = key.str();
  }

  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (blocking) {
    // Queue capacity and the shots cap are backpressure for blocking
    // submitters; draining wakes them so they learn they were turned
    // away instead of waiting on a server that will never accept.
    queue_space_.wait(lock, [this, &job] {
      return stopping_ || draining_ ||
             (queue_.size() < options_.queue_capacity &&
              admission_.fits_in_flight(job.shots));
    });
  }
  SYMPHASE_CHECK_MSG(!stopping_, "service is stopped");
  ServiceError error;
  bool rejected = false;
  if (draining_) {
    error = make_error(ErrorCode::kDraining,
                       "service is draining; no new requests accepted");
    rejected = true;
  } else {
    AdmissionDecision decision = admission_.admit(
        client_id, job.shots, job.request.priority, queue_.size(),
        options_.queue_capacity,
        /*enforce_queue_limits=*/!blocking, SchedulerClock::now());
    if (!decision.admitted) {
      error = std::move(decision.error);
      rejected = true;
    }
  }
  if (rejected) {
    lock.unlock();
    account_rejection(error.code);
    if (rejection != nullptr) {
      *rejection = std::move(error);
    }
    return 0;
  }
  const std::uint64_t ticket = next_ticket_++;
  job.ticket = ticket;
  // Acceptance mark: the queue stage (and the request's total) starts
  // here, after admission said yes and a ticket exists to correlate on.
  job.accept_ns = trace::now_ns();
  trace::instant("accept", job.request_id, ticket);
  cancel_flags_.emplace(ticket, job.cancel_flag);
  DeadlineQueue<Job>::Item item;
  item.ticket = ticket;
  item.priority = job.request.priority;
  item.deadline = job.deadline;
  item.group = job.fuse_key;
  item.payload = std::move(job);
  queue_.push(std::move(item));
  queue_peak_ = std::max<std::uint64_t>(queue_peak_, queue_.size());
  queue_work_.notify_one();
  return ticket;
}

bool SamplingService::cancel(std::uint64_t ticket) {
  DeadlineQueue<Job>::Item item;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    const auto flag = cancel_flags_.find(ticket);
    if (flag == cancel_flags_.end()) {
      return false;
    }
    if (!queue_.remove(ticket, &item)) {
      // In flight: flip the flag, the worker finishes the bookkeeping.
      // A second cancel of the same ticket reports false — the first
      // one already claimed it.
      return !flag->second->exchange(true);
    }
    cancel_flags_.erase(flag);
    admission_.release(item.payload.shots);
    // The request leaves the queue but stays *active* until its error
    // frame has shipped: signaling quiescence from inside the lock and
    // emitting afterwards let a concurrent begin_drain(); drain();
    // stop() sequence tear the transport down mid-emit. drain() only
    // observes idle after the frame is out.
    ++active_jobs_;
    queue_space_.notify_all();
  }
  // Dequeued before it ever ran: answer it here, from the canceller's
  // thread (FrameFn implementations are thread-safe by contract).
  finish_without_running(item.payload, Outcome::kCancelled,
                         make_error(ErrorCode::kCancelled, "request cancelled"));
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    --active_jobs_;
    if (queue_.empty() && active_jobs_ == 0) {
      queue_idle_.notify_all();
    }
  }
  return true;
}

void SamplingService::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_idle_.wait(lock,
                   [this] { return queue_.empty() && active_jobs_ == 0; });
}

void SamplingService::begin_drain() {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  draining_ = true;
  // Blocking submitters parked on backpressure must wake to learn the
  // service stopped accepting — their space will never come.
  queue_space_.notify_all();
}

bool SamplingService::draining() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return draining_ || stopping_;
}

ServiceHealth SamplingService::health() const {
  ServiceHealth h;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    h.accepting = !draining_ && !stopping_;
    h.queue_depth = queue_.size();
    h.queue_capacity = options_.queue_capacity;
    h.active_jobs = active_jobs_;
    h.shots_in_flight = admission_.shots_in_flight();
    h.max_shots_in_flight = options_.admission.max_shots_in_flight;
  }
  h.longest_running_ms = longest_running_ms();
  h.workers_alive = workers_alive_.load(std::memory_order_relaxed);
  return h;
}

void SamplingService::stop() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && workers_.empty()) {
      return;
    }
    stopping_ = true;
    queue_work_.notify_all();
    queue_space_.notify_all();
  }
  // Join in batches under the lock: a crashed worker may still be
  // swapping its replacement into workers_ while we drain the vector.
  // stopping_ stops further respawns, so this converges.
  std::vector<std::thread> to_join;
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (workers_.empty()) {
        break;
      }
      to_join.swap(workers_);
    }
    for (std::thread& worker : to_join) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    to_join.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    watch_stop_ = true;
    ++watch_epoch_;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

void SamplingService::clear_sessions() {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  for (const auto& [digest, entry] : cache_) {
    retire_artifacts(*entry.session);
    ++evictions_;
  }
  cache_.clear();
  lru_.clear();
}

ServiceStats SamplingService::stats() const {
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.compiles = retired_compiles_;
    s.frame_builds = retired_frame_builds_;
    for (const auto& [digest, entry] : cache_) {
      const SessionArtifacts artifacts = entry.session->artifacts();
      s.compiles += artifacts.compiled;
      s.frame_builds += artifacts.frames;
    }
    s.completed = completed_;
    s.failed = failed_;
    s.rejected_expired = rejected_expired_;
    s.cancelled = cancelled_;
    s.expired_running = expired_running_;
    s.rejected_queue_full = rejected_queue_full_;
    s.rejected_rate_limited = rejected_rate_limited_;
    s.rejected_draining = rejected_draining_;
    for (std::size_t i = 0; i < kNumPriorities; ++i) {
      s.served[i] = served_[i];
    }
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    s.queue_depth = queue_.size();
    s.queue_peak = queue_peak_;
    s.shots_in_flight = admission_.shots_in_flight();
    s.fused_requests = fused_requests_;
    s.fusion_groups = fusion_groups_;
  }
  s.exec_timeouts = exec_timeouts_.load(std::memory_order_relaxed);
  s.stalled = stalled_.load(std::memory_order_relaxed);
  s.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  s.error_emit_failures =
      error_emit_failures_.load(std::memory_order_relaxed);
  s.longest_running_ms = longest_running_ms();
  s.workers_alive = workers_alive_.load(std::memory_order_relaxed);
  return s;
}

void SamplingService::retire_artifacts(const SimulatorSession& session) {
  // Snapshot at retirement: a request still holding the evicted session
  // and compiling concurrently is counted a frame late (or not at all if
  // the service is destroyed first) — an accounting race accepted for
  // not keeping evicted sessions alive.
  const SessionArtifacts artifacts = session.artifacts();
  retired_compiles_ += artifacts.compiled;
  retired_frame_builds_ += artifacts.frames;
}

std::shared_ptr<SimulatorSession> SamplingService::session_for(
    const std::string& digest) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto hit = cache_.find(digest);
  if (hit != cache_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, hit->second.lru_position);
    return hit->second.session;
  }
  const auto registered = registry_.find(digest);
  SYMPHASE_CHECK_MSG(registered != registry_.end(),
                     "unknown circuit digest " << digest);
  registry_lru_.splice(registry_lru_.begin(), registry_lru_,
                       registered->second.lru_position);
  ++misses_;
  // Construction is cheap — compilation stays deferred until the worker
  // actually samples, outside the cache lock, guarded by the session's
  // own build mutex (so same-digest racers still compile once).
  auto session =
      std::make_shared<SimulatorSession>(registered->second.circuit);
  lru_.push_front(digest);
  cache_.emplace(digest, CacheEntry{session, lru_.begin()});
  while (cache_.size() > options_.session_cache_capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = cache_.find(victim);
    retire_artifacts(*it->second.session);
    cache_.erase(it);
    ++evictions_;
  }
  return session;
}

void SamplingService::worker_loop(std::size_t worker_index) {
  workers_alive_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Job> group;
  std::vector<DeadlineQueue<Job>::Item> mates;
  for (;;) {
    group.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        workers_alive_.fetch_sub(1, std::memory_order_relaxed);
        return;  // stopping_ and drained
      }
      group.push_back(std::move(queue_.pop().payload));
      // Cross-request shot fusion: the most urgent request leads; every
      // queued request with the same circuit/backend/target rides along
      // (up to the cap), claimed in scheduler-urgency order so the
      // group's observable completion order matches what the scheduler
      // would have produced running them back to back.
      if (options_.fusion_cap > 1 && !group.front().fuse_key.empty()) {
        mates.clear();
        queue_.claim_group(group.front().fuse_key, options_.fusion_cap - 1,
                           mates);
        for (DeadlineQueue<Job>::Item& mate : mates) {
          group.push_back(std::move(mate.payload));
        }
        if (group.size() > 1) {
          ++fusion_groups_;
          fused_requests_ += group.size();
        }
      }
      active_jobs_ += group.size();
      // A fused claim can free several queue slots at once.
      queue_space_.notify_all();
    }
    // Claim marks: the queue stage ends for every member now, group id
    // (the leader's ticket) fixed for the rest of the lifecycle.
    const std::uint64_t claim_ns = trace::now_ns();
    const std::uint64_t group_id = group.front().ticket;
    for (Job& job : group) {
      job.claim_ns = claim_ns;
      job.group = group_id;
      trace::span("queue", job.accept_ns, claim_ns, job.request_id, job.ticket,
                  group_id);
    }
    register_running(group, worker_index);
    // Supervision: process_group() handles every per-job failure, so an
    // exception reaching this frame means the worker itself broke (in
    // practice: the injected worker_fault_hook). Fail the whole claimed
    // group with `internal` — no member has streamed yet when the hook
    // throws — then fall through to the normal cleanup and respawn.
    bool crashed = false;
    std::string crash_reason;
    try {
      if (options_.worker_fault_hook) {
        options_.worker_fault_hook(worker_index);
      }
      process_group(group);
    } catch (const std::exception& e) {
      crashed = true;
      crash_reason = e.what();
    } catch (...) {
      crashed = true;
      crash_reason = "unknown exception";
    }
    if (crashed) {
      for (Job& job : group) {
        emit_error_frame(job, /*chunk_index=*/0,
                         make_error(ErrorCode::kInternal,
                                    "worker crashed: " + crash_reason));
        account(Outcome::kFailed, job.request.priority);
        finish_timing(job, /*compile_done_ns=*/0, /*emit_ns=*/0,
                      /*end_ns=*/0, /*ok=*/false);
      }
    }
    unregister_running(group);
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      for (const Job& job : group) {
        cancel_flags_.erase(job.ticket);
        admission_.release(job.shots);
      }
      active_jobs_ -= group.size();
      // Finished work frees shot budget too, not just a queue slot —
      // submitters may be waiting on either.
      queue_space_.notify_all();
      if (queue_.empty() && active_jobs_ == 0) {
        queue_idle_.notify_all();
      }
    }
    if (crashed) {
      worker_restarts_.fetch_add(1, std::memory_order_relaxed);
      {
        std::ostringstream oss;
        oss << "{\"event\":\"worker_restart\",\"worker\":" << worker_index
            << ",\"reason\":\"" << crash_reason << "\"}";
        watchdog_emit(oss.str());
      }
      // Respawn: swap this thread's own handle in workers_ for the
      // replacement (detaching self — this frame returns immediately),
      // so stop() joins exactly the live threads and the vector never
      // grows. Under stopping_ the pool is winding down anyway.
      {
        const std::lock_guard<std::mutex> lock(queue_mutex_);
        if (!stopping_) {
          const std::thread::id self = std::this_thread::get_id();
          for (std::thread& worker : workers_) {
            if (worker.get_id() == self) {
              worker.detach();
              try {
                worker = std::thread(
                    [this, worker_index] { worker_loop(worker_index); });
              } catch (...) {
                // Thread creation failed; the pool runs one short.
              }
              break;
            }
          }
        }
        // Decremented under the lock: once detached, this thread must
        // not touch members after unlocking — stop() serializes on the
        // same mutex before the service is destroyed.
        workers_alive_.fetch_sub(1, std::memory_order_relaxed);
      }
      return;
    }
  }
}

void SamplingService::register_running(const std::vector<Job>& group,
                                       std::size_t worker_index) {
  const SchedulerClock::time_point now = SchedulerClock::now();
  SchedulerClock::time_point exec_deadline = kNoDeadline;
  if (options_.exec_timeout_ms != 0) {
    exec_deadline = now + std::chrono::milliseconds(options_.exec_timeout_ms);
  }
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    for (const Job& job : group) {
      RunWatch watch;
      watch.request_id = job.request_id;
      watch.worker = worker_index;
      watch.start = now;
      watch.deadline = job.deadline;
      watch.exec_deadline = exec_deadline;
      watch.cancel_flag = job.cancel_flag;
      watch.abort_reason = job.abort_reason;
      watch.progress = job.progress;
      watch.progress_time = now;
      running_.emplace(job.ticket, std::move(watch));
    }
    ++watch_epoch_;
  }
  watch_cv_.notify_all();
}

void SamplingService::unregister_running(const std::vector<Job>& group) {
  const std::lock_guard<std::mutex> lock(watch_mutex_);
  for (const Job& job : group) {
    running_.erase(job.ticket);
  }
  ++watch_epoch_;
}

std::uint64_t SamplingService::longest_running_ms() const {
  const SchedulerClock::time_point now = SchedulerClock::now();
  const std::lock_guard<std::mutex> lock(watch_mutex_);
  std::uint64_t longest = 0;
  for (const auto& [ticket, watch] : running_) {
    longest = std::max(longest, ms_between(watch.start, now));
  }
  return longest;
}

void SamplingService::watchdog_emit(const std::string& line) const {
  if (options_.watchdog_log) {
    options_.watchdog_log(line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

void SamplingService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watch_mutex_);
  while (!watch_stop_) {
    const SchedulerClock::time_point now = SchedulerClock::now();
    SchedulerClock::time_point next_event = kNoDeadline;
    std::vector<std::string> events;
    for (auto& [ticket, watch] : running_) {
      // Observe the heartbeat first: a chunk that landed since the last
      // sweep resets the stall clock (and clears a standing flag, so a
      // run that stalls repeatedly is counted each time).
      const std::uint64_t chunks =
          watch.progress->load(std::memory_order_relaxed);
      if (chunks != watch.seen_progress) {
        watch.seen_progress = chunks;
        watch.progress_time = now;
        watch.stall_flagged = false;
      }
      if (!watch.aborted) {
        // Enforcement: the earlier of the request's own deadline and
        // the service-wide exec cap. The reason is stored before the
        // cancel flag flips, so the worker that unwinds on the flag
        // reads why. If a client cancel claimed the flag first, the
        // reason still wins the outcome — the deadline genuinely
        // passed, and both are terminal error frames.
        SchedulerClock::time_point cut = watch.deadline;
        std::uint32_t reason = kAbortDeadline;
        if (watch.exec_deadline < cut) {
          cut = watch.exec_deadline;
          reason = kAbortExecTimeout;
        }
        if (cut != kNoDeadline) {
          if (cut <= now) {
            watch.abort_reason->store(reason, std::memory_order_release);
            watch.cancel_flag->exchange(true);
            watch.aborted = true;
            if (reason == kAbortExecTimeout) {
              exec_timeouts_.fetch_add(1, std::memory_order_relaxed);
            }
            const char* event = reason == kAbortExecTimeout
                                    ? "exec_timeout"
                                    : "deadline_expired";
            trace::instant(event, watch.request_id, ticket);
            std::ostringstream oss;
            oss << "{\"event\":\"" << event << "\",\"id\":" << watch.request_id
                << ",\"ticket\":" << ticket << ",\"worker\":" << watch.worker
                << ",\"running_ms\":" << ms_between(watch.start, now) << "}";
            events.push_back(oss.str());
          } else {
            next_event = std::min(next_event, cut);
          }
        }
      }
      if (options_.stall_warn_ms != 0 && !watch.aborted &&
          !watch.stall_flagged) {
        const SchedulerClock::time_point stall_at =
            watch.progress_time +
            std::chrono::milliseconds(options_.stall_warn_ms);
        if (stall_at <= now) {
          watch.stall_flagged = true;
          stalled_.fetch_add(1, std::memory_order_relaxed);
          trace::instant("stall", watch.request_id, ticket, /*group=*/0,
                         /*aux=*/chunks);
          std::ostringstream oss;
          oss << "{\"event\":\"stall\",\"id\":" << watch.request_id
              << ",\"ticket\":" << ticket << ",\"worker\":" << watch.worker
              << ",\"running_ms\":" << ms_between(watch.start, now)
              << ",\"no_progress_ms\":" << ms_between(watch.progress_time, now)
              << ",\"chunks\":" << chunks << "}";
          events.push_back(oss.str());
        } else {
          next_event = std::min(next_event, stall_at);
        }
      }
    }
    if (!events.empty()) {
      // Log sinks run unlocked (they may call back into stats()).
      lock.unlock();
      for (const std::string& line : events) {
        watchdog_emit(line);
      }
      lock.lock();
      continue;  // running_ may have changed while unlocked
    }
    // Sleep until the next enforcement moment, or until the registry
    // changes — the epoch predicate makes a notify between scan and
    // wait impossible to miss.
    const std::uint64_t epoch = watch_epoch_;
    const auto changed = [this, epoch] {
      return watch_stop_ || watch_epoch_ != epoch;
    };
    if (next_event == kNoDeadline) {
      watch_cv_.wait(lock, changed);
    } else {
      watch_cv_.wait_until(lock, next_event, changed);
    }
  }
}

void SamplingService::account(Outcome outcome, RequestPriority priority) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  switch (outcome) {
    case Outcome::kCompleted:
      ++completed_;
      ++served_[static_cast<std::size_t>(priority)];
      break;
    case Outcome::kFailed:
      ++failed_;
      break;
    case Outcome::kExpired:
      ++rejected_expired_;
      break;
    case Outcome::kCancelled:
      ++cancelled_;
      break;
    case Outcome::kExpiredRunning:
      ++expired_running_;
      break;
  }
}

void SamplingService::account_rejection(ErrorCode code) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  switch (code) {
    case ErrorCode::kRateLimited:
      ++rejected_rate_limited_;
      break;
    case ErrorCode::kDraining:
      ++rejected_draining_;
      break;
    default:
      ++rejected_queue_full_;
      break;
  }
}

void SamplingService::emit_error_frame(const Job& job,
                                       std::uint32_t chunk_index,
                                       const ServiceError& error) {
  try {
    const std::string payload = encode_error_payload(error);
    FrameHeader header;
    header.request_id = job.request_id;
    header.chunk_index = chunk_index;
    header.flags = kFrameLast | kFrameError;
    header.payload_bytes = static_cast<std::uint32_t>(payload.size());
    job.emit(header, payload);
  } catch (...) {
    // The emitter itself failed (e.g. a closed client stream); the
    // request is still accounted, there is nobody left to tell — but
    // the drop is observable (stats + Prometheus) instead of silent.
    error_emit_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SamplingService::finish_without_running(Job& job, Outcome outcome,
                                             const ServiceError& error) {
  emit_error_frame(job, /*chunk_index=*/0, error);
  account(outcome, job.request.priority);
  finish_timing(job, /*compile_done_ns=*/0, /*emit_ns=*/0, /*end_ns=*/0,
                /*ok=*/false);
}

void SamplingService::finish_timing(const Job& job,
                                    std::uint64_t compile_done_ns,
                                    std::uint64_t emit_ns,
                                    std::uint64_t end_ns, bool ok) const {
  if (end_ns == 0) {
    // The stream never shipped a final frame (pre-run rejection,
    // error, cancellation): the request still ends now.
    end_ns = trace::now_ns();
  }
  const StageBreakdown s = stage_breakdown(job.accept_ns, job.claim_ns,
                                           compile_done_ns, emit_ns, end_ns);
  if (compile_done_ns != 0) {
    // The post-compile window as one span; per-chunk emit spans overlay
    // it on the same thread track.
    trace::span("execute", compile_done_ns, end_ns, job.request_id, job.ticket,
                job.group);
  }
  trace::instant(ok ? "done" : "aborted", job.request_id, job.ticket,
                 job.group);
  if (options_.timing_observer) {
    RequestTiming t;
    t.request_id = job.request_id;
    t.ticket = job.ticket;
    t.transport = job.transport;
    t.queue_s = static_cast<double>(s.queue_ns) * 1e-9;
    t.compile_s = static_cast<double>(s.compile_ns) * 1e-9;
    t.execute_s = static_cast<double>(s.execute_ns) * 1e-9;
    t.emit_s = static_cast<double>(s.emit_ns) * 1e-9;
    t.total_s = static_cast<double>(s.total_ns) * 1e-9;
    t.ok = ok;
    options_.timing_observer(t);
  }
  if (options_.slow_request_ms != 0 &&
      s.total_ns >= options_.slow_request_ms * 1'000'000ull) {
    std::ostringstream oss;
    oss << "{\"event\":\"slow_request\",\"id\":" << job.request_id
        << ",\"ticket\":" << job.ticket << ",\"transport\":\"" << job.transport
        << "\",\"ok\":" << (ok ? "true" : "false") << ",\"queue_ms\":";
    append_ms(oss, s.queue_ns);
    oss << ",\"compile_ms\":";
    append_ms(oss, s.compile_ns);
    oss << ",\"execute_ms\":";
    append_ms(oss, s.execute_ns);
    oss << ",\"emit_ms\":";
    append_ms(oss, s.emit_ns);
    oss << ",\"total_ms\":";
    append_ms(oss, s.total_ns);
    oss << "}";
    watchdog_emit(oss.str());
  }
}

void SamplingService::process_group(std::vector<Job>& jobs) {
  // Per-member admission gates, in claim (urgency) order. The deadline
  // is checked when a worker takes the request — whether it expired
  // while queued or in the instant after the pop, it is rejected before
  // any compilation or sampling. A member that falls out here never
  // affects its groupmates.
  std::vector<std::size_t> live;
  std::vector<std::unique_ptr<FrameSink>> sinks(jobs.size());
  std::string digest;
  live.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Job& job = jobs[i];
    if (job.deadline != kNoDeadline && SchedulerClock::now() > job.deadline) {
      finish_without_running(
          job, Outcome::kExpired,
          make_error(ErrorCode::kDeadlineExpired,
                     "deadline expired before sampling started"));
      continue;
    }
    if (job.cancel_flag->load(std::memory_order_relaxed)) {
      // The flag is usually a client cancel, but the watchdog can have
      // cut the run already (an exec cap shorter than the gate-to-run
      // window); its stored reason, written before the flag, decides.
      const std::uint32_t abort =
          job.abort_reason->load(std::memory_order_acquire);
      if (abort != kAbortNone) {
        finish_without_running(
            job, Outcome::kExpiredRunning,
            make_error(ErrorCode::kDeadlineExpired,
                       abort == kAbortExecTimeout
                           ? "execution wall-clock cap exceeded"
                           : "deadline expired during execution"));
      } else {
        finish_without_running(job, Outcome::kCancelled,
                               make_error(ErrorCode::kCancelled,
                                          "request cancelled"));
      }
      continue;
    }
    sinks[i] = std::make_unique<FrameSink>(
        job.request_id, job.request.format, options_.max_frame_payload,
        job.emit, job.progress.get(), job.ticket, job.group,
        job.request.want_timing);
    try {
      if (options_.fault_hook) {
        options_.fault_hook(
            fault_sequence_.fetch_add(1, std::memory_order_relaxed) + 1,
            job.request);
      }
      std::string member_digest = job.request.digest;
      if (member_digest.empty()) {
        member_digest = register_circuit(job.request.circuit_text);
      }
      // Groupmates share a fuse key, so every member resolves to the
      // same digest; keep the last one for the group's session lookup.
      digest = std::move(member_digest);
      live.push_back(i);
    } catch (const std::invalid_argument& e) {
      // Caller-data failures (circuit parse errors, unknown digests,
      // malformed tasks — everything SYMPHASE_CHECK rejects): the same
      // request will fail the same way forever, so it must not read as
      // a server-side problem to a retrying client.
      emit_error_frame(job, sinks[i]->next_chunk_index(),
                       make_error(ErrorCode::kBadCircuit, e.what()));
      account(Outcome::kFailed, job.request.priority);
      finish_timing(job, /*compile_done_ns=*/0, /*emit_ns=*/0, /*end_ns=*/0,
                    /*ok=*/false);
    } catch (const std::exception& e) {
      emit_error_frame(job, sinks[i]->next_chunk_index(),
                       make_error(ErrorCode::kInternal, e.what()));
      account(Outcome::kFailed, job.request.priority);
      finish_timing(job, /*compile_done_ns=*/0, /*emit_ns=*/0, /*end_ns=*/0,
                    /*ok=*/false);
    }
  }
  if (live.empty()) {
    return;
  }

  std::vector<std::exception_ptr> errors(live.size());
  // When the compile stage finished (steady ns); stays 0 when session
  // lookup or artifact construction threw — the members' timing then
  // reports zero compile/execute and the error path supplies end-now.
  std::uint64_t compile_done_ns = 0;
  try {
    const std::shared_ptr<SimulatorSession> session = session_for(digest);
    if (live.size() > 1) {
      // One cache lookup serves the whole group; solo execution would
      // have scored one hit per extra member (the leader's lookup
      // either missed or hit, every follower would have hit the session
      // it left behind). Keep the counters batching-invariant.
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      hits_ += live.size() - 1;
    }
    // Compile bracket: force the artifacts the group's task needs here,
    // so the stage is measured apart from execution. A cache-hit
    // session makes this a mutex acquire + pointer checks (the span's
    // aux=1 marks it warm). One bracket covers the whole group — fused
    // members share the artifacts, so each is billed the group's
    // compile wait, which is also what each would have paid solo.
    const std::uint64_t compile_t0 = trace::now_ns();
    const SessionArtifacts pre = session->artifacts();
    const bool warm = pre.compiled || pre.frames;
    session->prepare(jobs[live.front()].request.task);
    compile_done_ns = trace::now_ns();
    std::vector<SessionRunMember> members(live.size());
    for (std::size_t k = 0; k < live.size(); ++k) {
      const Job& job = jobs[live[k]];
      trace::span("compile", compile_t0, compile_done_ns, job.request_id,
                  job.ticket, job.group, /*aux=*/warm ? 1 : 0);
      sinks[live[k]]->set_timing_marks(job.accept_ns, job.claim_ns,
                                       compile_done_ns);
      members[k].task = &job.request.task;
      members[k].sink = sinks[live[k]].get();
      members[k].cancel = job.cancel_flag.get();
      members[k].trace_id = job.request_id;
      members[k].trace_ticket = job.ticket;
      members[k].trace_group = job.group;
    }
    errors = session->run_fused(members);
  } catch (...) {
    // Failures before any member streamed — session lookup, artifact
    // compilation, fused-run preconditions — hit every member alike.
    errors.assign(live.size(), std::current_exception());
  }

  for (std::size_t k = 0; k < live.size(); ++k) {
    Job& job = jobs[live[k]];
    FrameSink& sink = *sinks[live[k]];
    Outcome outcome = Outcome::kCompleted;
    if (errors[k]) {
      try {
        std::rethrow_exception(errors[k]);
      } catch (const TaskCancelled& e) {
        // The abandoned stream's session stays cached and reusable; only
        // this request's frames stop (with the error flag, like any
        // other non-success). When the watchdog flipped the flag — not
        // a client — the request ends as a mid-run deadline_expired.
        const std::uint32_t abort =
            job.abort_reason->load(std::memory_order_acquire);
        if (abort != kAbortNone) {
          outcome = Outcome::kExpiredRunning;
          emit_error_frame(
              job, sink.next_chunk_index(),
              make_error(ErrorCode::kDeadlineExpired,
                         abort == kAbortExecTimeout
                             ? "execution wall-clock cap exceeded mid-run"
                             : "deadline expired mid-run"));
        } else {
          outcome = Outcome::kCancelled;
          emit_error_frame(job, sink.next_chunk_index(),
                           make_error(ErrorCode::kCancelled, e.what()));
        }
      } catch (const std::invalid_argument& e) {
        outcome = Outcome::kFailed;
        emit_error_frame(job, sink.next_chunk_index(),
                         make_error(ErrorCode::kBadCircuit, e.what()));
      } catch (const std::exception& e) {
        outcome = Outcome::kFailed;
        emit_error_frame(job, sink.next_chunk_index(),
                         make_error(ErrorCode::kInternal, e.what()));
      }
    }
    account(outcome, job.request.priority);
    finish_timing(job, compile_done_ns, sink.emit_ns(), sink.end_ns(),
                  outcome == Outcome::kCompleted);
  }
}

}  // namespace symphase
