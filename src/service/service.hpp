#pragma once

/// \file service.hpp
/// SamplingService — the serving front-end over the task/session API.
///
/// The paper's compile-once/sample-many split only pays off under load
/// if concurrent requests for the same circuit actually share one
/// compiled artifact. The service makes that sharing structural:
///
///   submit() --> bounded queue --> worker pool --> LRU session cache
///                                        |              keyed by the
///                                        v              canonical
///                               SimulatorSession        circuit digest
///                                        |
///                                        v
///                    FrameSink: chunked wire frames (wire.hpp)
///
/// Requests carrying the same circuit — whether as inline text (any
/// formatting) or as a registered digest handle — map to the same
/// digest (digest.hpp) and are batched onto one cached
/// SimulatorSession, so N concurrent requests cost one symbolic
/// compilation, observable via stats().  Each request's shots stream
/// through the existing SampleSink machinery and leave as
/// length-prefixed frames: data frames whose concatenation is
/// bit-identical to the direct SimulatorSession output in the chosen
/// writer format, then one final status frame (kFrameLast, plus
/// kFrameError with error text when the request failed).
///
/// The queue is not FIFO: requests carry a priority class and an
/// optional deadline, and workers always take the most urgent pending
/// request (scheduler.hpp). A request whose deadline passed before a
/// worker reached it is rejected with an error frame instead of
/// executed; an accepted request can be cancelled cooperatively — from
/// the queue (never runs) or mid-stream (the engine stops at the next
/// shard-chunk boundary) — via the ticket submit() returns.
///
/// A watchdog thread supervises execution itself: deadlines and the
/// optional per-request wall-clock cap (ServiceOptions::exec_timeout_ms)
/// are enforced mid-run through the same cooperative-cancel path,
/// no-progress runs are flagged after stall_warn_ms, and a worker
/// thread that dies on an escaped exception fails only its in-flight
/// requests and is respawned (see docs/service.md, "Watchdog &
/// execution limits").
///
/// The in-process API is below; `symphase serve --stdio` (framed
/// stdin/stdout) and `symphase serve --listen` (the TCP server in
/// src/net/) wrap it — same frames, byte-compatible streams (see
/// docs/service.md).
///
///   SamplingService service;
///   const std::string digest = service.register_circuit(circuit_text);
///   SampleRequest request = SampleRequest::sample("", 100000);
///   request.digest = digest;
///   const std::uint64_t ticket = service.submit(7, request, emit_frame);
///   // ... service.cancel(ticket) to abandon it ...
///   service.drain();

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/session.hpp"
#include "service/admission.hpp"
#include "service/errors.hpp"
#include "service/request.hpp"
#include "service/scheduler.hpp"
#include "service/wire.hpp"

namespace symphase {

/// Per-request stage breakdown, delivered once per finished request
/// (any terminal outcome) to ServiceOptions::timing_observer. Stages
/// partition the request's wall-clock life: queue (acceptance to
/// worker claim), compile (claim to artifacts ready — near zero on a
/// session-cache hit), emit (serializing + shipping chunks), execute
/// (everything else between artifacts-ready and the final frame).
/// Stages that never ran (a request rejected at the gate) are zero.
struct RequestTiming {
  std::uint64_t request_id = 0;
  std::uint64_t ticket = 0;
  /// Transport tag the submitter passed ("frame", "http", "local").
  const char* transport = "local";
  double queue_s = 0;
  double compile_s = 0;
  double execute_s = 0;
  double emit_s = 0;
  double total_s = 0;  ///< Acceptance to final frame; == sum of stages.
  bool ok = false;     ///< True when the request completed successfully.
};

/// Called on worker threads, once per finished request, with no
/// service locks held. Must be thread-safe and cheap (it sits on the
/// completion path of every request).
using TimingObserver = std::function<void(const RequestTiming&)>;

struct ServiceOptions {
  /// Worker threads executing requests (>= 1). Distinct requests run
  /// concurrently; each request additionally parallelizes its own shots
  /// via SampleTask::num_threads.
  std::size_t num_workers = 2;
  /// Bounded queue depth; submit() blocks once this many requests wait.
  std::size_t queue_capacity = 64;
  /// Compiled-session LRU capacity (>= 1). Evicting a session in use is
  /// safe — running requests hold shared ownership — but a re-request of
  /// its digest recompiles.
  std::size_t session_cache_capacity = 8;
  /// Response frames carry at most this many payload bytes; larger
  /// serialized chunks are split across frames.
  std::size_t max_frame_payload = 1u << 20;
  /// Registered-circuit capacity (>= 1, LRU). Like every other bound
  /// here this keeps a hostile or long-running stream of distinct
  /// circuits from growing server memory without limit; an evicted
  /// registration makes its digest handle unknown again (re-register,
  /// or send the circuit inline — inline requests re-register
  /// automatically).
  std::size_t registry_capacity = 256;
  /// Cross-request shot fusion: when a worker takes a sample/detect
  /// request, it also claims up to `fusion_cap - 1` queued requests
  /// sharing the same circuit (digest or identical inline text), backend,
  /// and target, and runs the whole group through one engine pass
  /// (SimulatorSession::run_fused). Per-request output is bit-identical
  /// to solo execution — each member keeps its own seed and RNG streams —
  /// and per-request deadline/cancel/priority semantics are preserved
  /// (members are claimed and finished in scheduler-urgency order).
  /// <= 1 disables fusion.
  std::size_t fusion_cap = 16;
  /// Admission control: per-client rate limits, shots-in-flight cap,
  /// and priority shedding thresholds (admission.hpp). Rate limiting
  /// is off by default; the shedding thresholds always apply to
  /// try_submit() callers.
  AdmissionOptions admission;
  /// Per-request execution wall-clock cap in milliseconds (0 = off).
  /// The budget starts when a worker picks the request up; the watchdog
  /// thread cuts an over-budget run at the next shard-chunk boundary
  /// via the cooperative-cancel path and the request ends with a
  /// `deadline_expired` error frame (counted in `exec_timeouts` and
  /// `expired_running`). In a fused group only the over-budget member
  /// stops. Orthogonal to `deadline_ms`, which the watchdog now also
  /// enforces mid-run (see docs/service.md, "Watchdog & execution
  /// limits").
  std::uint64_t exec_timeout_ms = 0;
  /// Flag an in-flight request that made no shard-chunk progress for
  /// this long (0 = off): a structured log line through `watchdog_log`
  /// plus the `stalled` counter. Detection only — a stalled request is
  /// not aborted unless a deadline or `exec_timeout_ms` fires.
  std::uint64_t stall_warn_ms = 0;
  /// Sink for the watchdog's structured one-line JSON events (stalls,
  /// mid-run timeout cuts, worker restarts). Unset writes to stderr.
  /// Called without service locks held; must be thread-safe.
  std::function<void(std::string_view line)> watchdog_log;
  /// Test-only fault injection. When set, called on the worker thread
  /// immediately before a request executes, with the 1-based execution
  /// sequence number (the order workers picked requests up) and the
  /// request. Throwing fails exactly that request with an error frame,
  /// the same way a real compile/worker exception would
  /// (std::invalid_argument maps to bad_circuit, anything else to
  /// internal); other requests and the session cache are unaffected —
  /// which is precisely what tests/chaos_test.cpp pins. A hook that
  /// *blocks* wedges the worker mid-claim — the chaos suite drives
  /// stall detection and timeout recovery that way.
  std::function<void(std::uint64_t sequence, const SampleRequest& request)>
      fault_hook;
  /// Per-request stage breakdown sink — the shared instrument path
  /// behind `symphase_stage_duration_seconds` and
  /// `symphase_request_duration_seconds` on every transport (the
  /// socket server wires it into the gateway's MetricsRegistry).
  TimingObserver timing_observer;
  /// Log one structured JSON line (`"event":"slow_request"`, full
  /// stage breakdown) through `watchdog_log` for every request whose
  /// end-to-end time exceeds this many milliseconds (0 = off).
  std::uint64_t slow_request_ms = 0;
  /// Test-only worker-crash injection: called once per claimed group,
  /// on the worker thread, *outside* the per-job exception handlers.
  /// A throw escapes to the supervision wrapper, which fails the
  /// in-flight group with `internal` error frames and respawns the
  /// worker thread (`worker_restarts` counts it) — the
  /// exception-escaped-the-handlers path that would otherwise call
  /// std::terminate.
  std::function<void(std::size_t worker_index)> worker_fault_hook;
};

/// Monotonic service counters. Cache counters pin the batching contract
/// (tests/service_test.cpp): `compiles` counts actual symbolic
/// compilations across all sessions ever cached, so same-digest requests
/// leave it at 1 while `hits` grows.
struct ServiceStats {
  std::uint64_t hits = 0;        ///< Requests served by a cached session.
  std::uint64_t misses = 0;      ///< Requests that created a session.
  std::uint64_t evictions = 0;   ///< Sessions dropped by LRU pressure.
  std::uint64_t compiles = 0;    ///< CompiledSampler builds (kSymPhase).
  std::uint64_t frame_builds = 0;  ///< FrameSimulator builds (kFrameSimulator).
  std::uint64_t completed = 0;   ///< Requests finished successfully.
  std::uint64_t failed = 0;      ///< Requests that ended in an error frame
                                 ///< (excluding expired/cancelled below).
  // Scheduler counters (the queue-metrics contract of
  // tests/scheduler_test.cpp):
  std::uint64_t queue_depth = 0;  ///< Requests waiting right now.
  std::uint64_t queue_peak = 0;   ///< Highest queue_depth ever observed.
  std::uint64_t rejected_expired = 0;  ///< Deadline passed before start.
  std::uint64_t cancelled = 0;         ///< Cancelled (queued or mid-stream).
  // Watchdog counters (mid-run enforcement — distinct from the pre-run
  // rejected_expired above):
  std::uint64_t expired_running = 0;  ///< Cut mid-run (deadline or exec cap).
  std::uint64_t exec_timeouts = 0;    ///< exec_timeout_ms enforcements.
  std::uint64_t stalled = 0;          ///< Stall warnings (no-progress runs).
  std::uint64_t worker_restarts = 0;  ///< Workers respawned after a crash.
  std::uint64_t error_emit_failures = 0;  ///< Error frames the emitter
                                          ///< itself failed to deliver.
  // Admission counters (requests turned away before entering the
  // queue, by structured error code):
  std::uint64_t rejected_queue_full = 0;     ///< Full or priority-shed.
  std::uint64_t rejected_rate_limited = 0;   ///< Client over budget.
  std::uint64_t rejected_draining = 0;       ///< Arrived during drain.
  std::uint64_t shots_in_flight = 0;  ///< Gauge: shots queued + running.
  // Cross-request shot fusion counters (groups of >= 2 only — solo
  // executions never count):
  std::uint64_t fused_requests = 0;  ///< Requests run as fusion-group members.
  std::uint64_t fusion_groups = 0;   ///< Fused engine passes executed.
  /// Gauge: age in ms of the oldest in-flight run (0 when idle) — a
  /// wedged worker shows up here long before any timeout fires.
  std::uint64_t longest_running_ms = 0;
  std::uint64_t workers_alive = 0;  ///< Gauge: live worker threads.
  /// Successfully completed requests by priority class, indexed by
  /// RequestPriority (high, normal, low).
  std::uint64_t served[kNumPriorities] = {0, 0, 0};

  /// One-line "hits=... misses=..." rendering (the stats verb's reply).
  std::string to_line() const;

  /// Machine-readable one-object JSON rendering (the stats verb with
  /// json=1, `symphase stats --json`, and GET /v1/stats). Same fields
  /// as to_line(), plus served counts keyed by priority name.
  std::string to_json() const;
};

/// Snapshot of the service's readiness, for the `health` verb: load
/// balancers poll it to stop routing to a draining instance, and the
/// drain tests observe state transitions through it.
struct ServiceHealth {
  bool accepting = true;  ///< False once draining or stopped.
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t active_jobs = 0;  ///< Requests currently executing.
  std::uint64_t shots_in_flight = 0;
  std::uint64_t max_shots_in_flight = 0;  ///< 0 = uncapped.
  /// Age in ms of the oldest in-flight run (0 when idle): readiness
  /// probes use it to spot a wedged-but-accepting server.
  std::uint64_t longest_running_ms = 0;
  std::uint64_t workers_alive = 0;  ///< Live worker threads.

  /// One-line "state=accepting|draining queue_depth=..." rendering.
  std::string to_line() const;

  /// JSON rendering (health verb with json=1 and GET /healthz).
  std::string to_json() const;
};

/// Emits one response frame. `header.payload_bytes` is already set to
/// `payload.size()`. Called from worker threads — possibly several
/// concurrently for *different* requests — so sharing one output stream
/// requires external serialization (the stdio loop holds a write mutex).
/// Frames of a single request arrive in order from one worker.
using FrameFn =
    std::function<void(const FrameHeader& header, std::string_view payload)>;

class SamplingService {
 public:
  explicit SamplingService(ServiceOptions options = {});
  /// Stops accepting work, finishes queued requests, joins workers.
  ~SamplingService();

  SamplingService(const SamplingService&) = delete;
  SamplingService& operator=(const SamplingService&) = delete;

  /// Parses and registers `circuit_text`, returning its canonical
  /// digest for use as a SampleRequest::digest handle. Registration is
  /// idempotent and survives session eviction. Throws on parse errors.
  std::string register_circuit(std::string_view circuit_text);

  /// Enqueues a sample/detect request (scheduled by its priority/
  /// deadline_ms fields). Blocks while the queue is full or the
  /// shots-in-flight cap is reached (backpressure); throws
  /// std::invalid_argument for non-sampling verbs or a stopped
  /// service. All outcomes after acceptance — including unknown
  /// digests, circuit parse errors, expired deadlines, and cancellation
  /// — are reported through `emit` as wire frames, never thrown.
  ///
  /// Returns the request's scheduler ticket, valid until the final
  /// status frame is emitted — pass it to cancel(). Tickets are unique
  /// across the service's lifetime (request_id is only stamped into
  /// frames, so transports can scope ids per client).
  ///
  /// Admission control can still turn a blocking submit away without
  /// queueing it (the service is draining, or `client_id`'s rate
  /// budget is exhausted): submit returns 0, no frame is emitted, and
  /// `*rejection` (when non-null) carries the structured error for the
  /// transport to ship. `client_id` scopes the per-client rate bucket;
  /// transports pass a stable id per connection (0 = one shared
  /// bucket).
  /// `transport` tags the request's timing observations and slow-log
  /// lines; pass a string literal ("frame", "http") — the pointer is
  /// kept for the request's lifetime.
  std::uint64_t submit(std::uint64_t request_id, SampleRequest request,
                       FrameFn emit, std::uint64_t client_id = 0,
                       ServiceError* rejection = nullptr,
                       const char* transport = "local");

  /// Non-blocking submit: where submit() would wait, try_submit
  /// rejects. For callers that must never park on queue capacity — the
  /// socket server's event-loop thread drains the very client sockets
  /// the workers may be blocked on, so blocking it on queue space
  /// could deadlock the transport.
  ///
  /// Returns 0 (never a valid ticket) when admission turns the request
  /// away: queue full, priority class shed under pressure, shot
  /// capacity saturated, client rate-limited, or draining. `*rejection`
  /// (when non-null) carries the structured error — including the
  /// retryable bit and a retry_after_ms backoff hint.
  std::uint64_t try_submit(std::uint64_t request_id, SampleRequest request,
                           FrameFn emit, std::uint64_t client_id = 0,
                           ServiceError* rejection = nullptr,
                           const char* transport = "local");

  /// Installs/replaces the timing observer after construction. The
  /// socket server uses this to wire the gateway's metrics registry in
  /// (the gateway is built after the service). Not synchronized with
  /// in-flight completions: call before the transport starts accepting
  /// requests.
  void set_timing_observer(TimingObserver observer) {
    options_.timing_observer = std::move(observer);
  }

  /// Cancels the request behind `ticket`. A still-queued request is
  /// removed and answered with an error frame immediately (it never
  /// compiles or samples); an in-flight one stops at the next
  /// shard-chunk boundary and ends with an error frame. Returns false
  /// when the ticket is unknown or the request already finished —
  /// including when its cancellation was already requested.
  ///
  /// Cancellation is cooperative, so `true` means the cancellation was
  /// *claimed*, not that work was necessarily prevented: a request past
  /// its last boundary check completes normally (success frames, served
  /// counters) despite the claim. Treat the request's own final frame
  /// as the source of truth for how it ended.
  bool cancel(std::uint64_t ticket);

  /// Blocks until every submitted request has finished (its final
  /// status frame emitted).
  void drain();

  /// Flips the service to draining: every subsequent submit/try_submit
  /// is rejected with a `draining` error while already-accepted work
  /// keeps running to completion. Does not block (pair with drain() to
  /// wait) and does not stop workers — the graceful-shutdown sequence
  /// is begin_drain(); drain(); stop(). Idempotent, thread-safe, and
  /// safe from signal-handling contexts that already defer to a normal
  /// thread (the CLI forwards SIGTERM through the socket server's
  /// self-pipe, which calls this from the event loop).
  void begin_drain();

  /// Whether begin_drain() was called (or the service stopped).
  bool draining() const;

  /// Readiness snapshot for the `health` verb. Never blocks on work.
  ServiceHealth health() const;

  /// drain() + reject future submissions + join workers. Idempotent.
  void stop();

  /// Drops every cached session (stats keep counting their compiles;
  /// each drop counts as an eviction). Registered circuits remain.
  void clear_sessions();

  ServiceStats stats() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    std::uint64_t request_id = 0;
    std::uint64_t ticket = 0;
    SampleRequest request;
    FrameFn emit;
    SchedulerClock::time_point deadline = kNoDeadline;
    /// Shots charged against admission at acceptance; released exactly
    /// once when the job leaves (finished or cancelled out of queue).
    std::uint64_t shots = 0;
    /// Set by cancel(); polled by the streaming engine at shard-chunk
    /// boundaries. Shared so cancel() can reach a job a worker owns.
    std::shared_ptr<std::atomic<bool>> cancel_flag;
    /// Why the watchdog flipped cancel_flag (kAbortNone when it did
    /// not): lets the worker map the resulting TaskCancelled to
    /// `deadline_expired` instead of `cancelled`. The watchdog stores
    /// the reason *before* the flag, so a worker that observed the flag
    /// sees the reason too.
    std::shared_ptr<std::atomic<std::uint32_t>> abort_reason;
    /// Shard-chunk heartbeat: bumped by the frame sink on every chunk
    /// delivered, read by the watchdog for stall detection.
    std::shared_ptr<std::atomic<std::uint64_t>> progress;
    /// Fusion-group tag: circuit identity (digest, or a hash of the raw
    /// inline text) + backend + target. Empty when fusion is disabled.
    std::string fuse_key;
    /// Transport tag from submit() — a string literal ("frame", "http",
    /// "local"), stamped on timing observations and slow-request logs.
    const char* transport = "local";
    /// Lifecycle clock marks (common/trace.hpp steady ns): acceptance
    /// (ticket assignment) and worker claim. Zero until stamped.
    std::uint64_t accept_ns = 0;
    std::uint64_t claim_ns = 0;
    /// Trace-span fusion-group id: the claimed group leader's ticket
    /// (== ticket for a solo run). Zero until claimed.
    std::uint64_t group = 0;
  };

  /// Job::abort_reason values.
  static constexpr std::uint32_t kAbortNone = 0;
  static constexpr std::uint32_t kAbortDeadline = 1;
  static constexpr std::uint32_t kAbortExecTimeout = 2;

  /// How a processed request ended (drives which counter it lands in
  /// and the final frame's error text). kExpired is the pre-run
  /// rejection (rejected_expired); kExpiredRunning is a mid-run
  /// watchdog cut (expired_running).
  enum class Outcome {
    kCompleted,
    kFailed,
    kExpired,
    kCancelled,
    kExpiredRunning
  };

  struct CacheEntry {
    std::shared_ptr<SimulatorSession> session;
    std::list<std::string>::iterator lru_position;
  };

  struct RegistryEntry {
    Circuit circuit;
    std::list<std::string>::iterator lru_position;
  };

  /// One in-flight job as the watchdog sees it, keyed by ticket in
  /// running_. Watchdog-side fields (seen_progress, progress_time,
  /// aborted, stall_flagged) are only touched under watch_mutex_; the
  /// shared_ptrs reach into the job a worker owns.
  struct RunWatch {
    std::uint64_t request_id = 0;
    std::size_t worker = 0;
    SchedulerClock::time_point start;
    SchedulerClock::time_point deadline = kNoDeadline;
    SchedulerClock::time_point exec_deadline = kNoDeadline;
    std::shared_ptr<std::atomic<bool>> cancel_flag;
    std::shared_ptr<std::atomic<std::uint32_t>> abort_reason;
    std::shared_ptr<std::atomic<std::uint64_t>> progress;
    std::uint64_t seen_progress = 0;
    SchedulerClock::time_point progress_time;
    bool aborted = false;
    bool stall_flagged = false;
  };

  /// Inserts/refreshes a registration (cache_mutex_ must be held).
  void register_locked(const std::string& digest, Circuit circuit);

  void worker_loop(std::size_t worker_index);
  /// The watchdog thread: sweeps running_, enforces deadlines and the
  /// exec-timeout cap through the cooperative-cancel path, and flags
  /// stalls. Sleeps until the next enforcement moment (no fixed tick).
  void watchdog_loop();
  /// Publishes/retracts a claimed group in the watchdog's registry.
  void register_running(const std::vector<Job>& group,
                        std::size_t worker_index);
  void unregister_running(const std::vector<Job>& group);
  /// Age in ms of the oldest registered run; 0 when idle.
  std::uint64_t longest_running_ms() const;
  /// Ships one structured event line to watchdog_log (or stderr).
  void watchdog_emit(const std::string& line) const;
  /// Shared submit path; `blocking` selects wait-for-space vs reject.
  std::uint64_t submit_impl(std::uint64_t request_id, SampleRequest request,
                            FrameFn emit, std::uint64_t client_id,
                            ServiceError* rejection, const char* transport,
                            bool blocking);
  /// Terminal-path timing fan-out: derives the request's stage
  /// breakdown (queue/compile/execute/emit) from the job's clock marks,
  /// records the trace "execute" span, fires timing_observer, and logs
  /// a slow_request line when the total crosses slow_request_ms.
  /// Called exactly once per finished request, no service locks held;
  /// stages that never ran arrive as zeros.
  void finish_timing(const Job& job, std::uint64_t compile_done_ns,
                     std::uint64_t emit_ns, std::uint64_t end_ns,
                     bool ok) const;
  /// Executes one claimed group (size 1 = the classic solo path) on the
  /// calling worker thread: per-member deadline/cancel gates and fault
  /// hooks, one session lookup for the group, one fused engine pass,
  /// per-member outcome accounting. Members must already be in
  /// scheduler-urgency order (worker_loop claims them that way).
  void process_group(std::vector<Job>& jobs);
  /// Folds one finished request into the stats counters.
  void account(Outcome outcome, RequestPriority priority);
  /// Counts one admission rejection under its error code.
  void account_rejection(ErrorCode code);
  /// Ships the final error-flagged frame (structured payload,
  /// errors.hpp); swallows emitter failures.
  void emit_error_frame(const Job& job, std::uint32_t chunk_index,
                        const ServiceError& error);
  /// Error frame + accounting for a request that never started
  /// (deadline-expired or cancelled while queued).
  void finish_without_running(Job& job, Outcome outcome,
                              const ServiceError& error);
  /// Cache lookup/insert; `digest` must already be registered.
  std::shared_ptr<SimulatorSession> session_for(const std::string& digest);
  /// Folds a leaving session's built artifacts into the retired tally
  /// (cache_mutex_ must be held).
  void retire_artifacts(const SimulatorSession& session);

  ServiceOptions options_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_space_;  // submit() waits for room
  std::condition_variable queue_work_;   // workers wait for jobs
  std::condition_variable queue_idle_;   // drain() waits for quiescence
  DeadlineQueue<Job> queue_;
  /// Cancel flags of accepted-but-unfinished requests, keyed by ticket.
  /// An entry exists from submit() until the final status frame.
  std::unordered_map<std::uint64_t, std::shared_ptr<std::atomic<bool>>>
      cancel_flags_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t queue_peak_ = 0;
  /// Fusion counters (queue_mutex_ — bumped at claim time).
  std::uint64_t fused_requests_ = 0;
  std::uint64_t fusion_groups_ = 0;
  std::size_t active_jobs_ = 0;
  bool stopping_ = false;
  bool draining_ = false;
  /// Admission state (buckets, shots in flight); queue_mutex_ guards it
  /// so queue depth and admission decisions move atomically together.
  AdmissionController admission_;
  /// 1-based counter behind ServiceOptions::fault_hook sequences.
  std::atomic<std::uint64_t> fault_sequence_{0};
  /// Worker thread handles (queue_mutex_: a crashed worker swaps its
  /// own slot for its replacement while stop() may be joining).
  std::vector<std::thread> workers_;

  // Watchdog state. watch_mutex_ is leaf-level: nothing is locked
  // under it, and it is never held while calling out (log sinks run
  // unlocked).
  mutable std::mutex watch_mutex_;
  std::condition_variable watch_cv_;
  /// In-flight runs by ticket, published at claim time.
  std::unordered_map<std::uint64_t, RunWatch> running_;
  /// Bumped (under watch_mutex_) whenever running_ changes, so the
  /// watchdog's wait predicate never misses a registration.
  std::uint64_t watch_epoch_ = 0;
  bool watch_stop_ = false;
  std::thread watchdog_;
  std::atomic<std::uint64_t> exec_timeouts_{0};
  std::atomic<std::uint64_t> stalled_{0};
  std::atomic<std::uint64_t> worker_restarts_{0};
  std::atomic<std::uint64_t> error_emit_failures_{0};
  std::atomic<std::uint64_t> workers_alive_{0};

  mutable std::mutex cache_mutex_;
  std::unordered_map<std::string, RegistryEntry> registry_;
  std::list<std::string> registry_lru_;  // front = most recently used
  std::unordered_map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  // front = most recently used digest
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  /// Compiles/builds of sessions no longer in the cache.
  std::uint64_t retired_compiles_ = 0;
  std::uint64_t retired_frame_builds_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_expired_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t expired_running_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_rate_limited_ = 0;
  std::uint64_t rejected_draining_ = 0;
  std::uint64_t served_[kNumPriorities] = {0, 0, 0};
};

}  // namespace symphase
