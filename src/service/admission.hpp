#pragma once

/// \file admission.hpp
/// Admission control for the sampling service: decides, before a
/// request touches the scheduler queue, whether the server can afford
/// it — and if not, with which structured error and backoff hint to
/// turn it away.
///
/// The cost unit is *shots*, not requests: one request for 10M shots
/// is 10,000x the work of a 1k-shot request, so counting requests
/// would let a single client saturate the server within any request
/// rate. Three independent gates, checked in order:
///
///  1. Per-client token bucket (shots/second with a burst allowance) —
///     fairness across clients. Rejected: kRateLimited, with
///     retry_after_ms = when the bucket can afford the request.
///  2. Shots-in-flight cap — bounds total queued + executing work.
///     Rejected: kQueueFull (it is an overload condition, not a
///     per-client one).
///  3. Priority-aware queue shedding — low-priority requests are
///     rejected once the queue passes shed_low_above of capacity,
///     normal past shed_normal_above, high only when genuinely full.
///     Under pressure the server degrades by priority class instead of
///     failing everyone at once. Rejected: kQueueFull.
///
/// The controller is intentionally not thread-safe: SamplingService
/// owns one instance under its queue mutex, where queue depth and the
/// admission state change atomically together.

#include <cstdint>
#include <list>
#include <unordered_map>

#include "service/errors.hpp"
#include "service/scheduler.hpp"

namespace symphase {

struct AdmissionOptions {
  /// Steady-state per-client budget in shots per second. 0 disables
  /// rate limiting entirely (the default — in-process and single-user
  /// deployments should not pay for fairness they do not need).
  std::uint64_t client_shots_per_second = 0;
  /// Token-bucket capacity: the burst an idle client accumulates.
  /// 0 = one second's worth of refill. A single request costing more
  /// than the capacity is charged the full bucket instead of being
  /// unadmittable forever.
  std::uint64_t client_burst_shots = 0;
  /// Cap on the total shots queued + executing across all clients
  /// (0 = unlimited). A request larger than the cap is only admitted
  /// when nothing else is in flight — it must be runnable somehow.
  std::uint64_t max_shots_in_flight = 0;
  /// Distinct client buckets tracked; least-recently-seen clients are
  /// evicted beyond this (an evicted client restarts with a full
  /// bucket — cheap, and hostile client-id churn cannot grow memory).
  std::size_t max_tracked_clients = 1024;
  /// Queue-depth fractions above which low/normal-priority submissions
  /// are shed. High priority only fails on a genuinely full queue.
  double shed_low_above = 0.50;
  double shed_normal_above = 0.75;
};

/// Token bucket denominated in shots. Refill is computed lazily from
/// elapsed SchedulerClock time — no timer thread.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_second, double capacity,
              SchedulerClock::time_point now);

  /// Takes `cost` tokens if available (cost above the capacity is
  /// clamped to it — see AdmissionOptions::client_burst_shots).
  bool try_take(double cost, SchedulerClock::time_point now);

  /// Milliseconds until `cost` tokens will be available (0 = now).
  std::uint64_t retry_after_ms(double cost,
                               SchedulerClock::time_point now) const;

  double tokens(SchedulerClock::time_point now) const;

 private:
  double rate_ = 0.0;
  double capacity_ = 0.0;
  double tokens_ = 0.0;
  SchedulerClock::time_point last_{};
};

/// The verdict for one submission. When `admitted` is false, `error`
/// carries the structured rejection to put in the error frame.
struct AdmissionDecision {
  bool admitted = true;
  ServiceError error;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Admission check for one request. On success the request's shots
  /// are charged against the bucket and the in-flight total — call
  /// release() exactly once when the request leaves the service
  /// (finished, failed, or cancelled out of the queue).
  ///
  /// `enforce_queue_limits` selects whether gate 3 (shed/full) applies;
  /// blocking submitters wait for queue space instead of being shed,
  /// so they pass false. Requires external synchronization (the
  /// service's queue mutex).
  AdmissionDecision admit(std::uint64_t client_id, std::uint64_t shots,
                          RequestPriority priority, std::size_t queue_depth,
                          std::size_t queue_capacity,
                          bool enforce_queue_limits,
                          SchedulerClock::time_point now);

  /// Returns a previously admitted request's shots to the in-flight
  /// budget (bucket tokens are spent for good — that is the rate).
  void release(std::uint64_t shots);

  std::uint64_t shots_in_flight() const { return shots_in_flight_; }

  /// Whether the shots-in-flight gate would pass for `shots` right
  /// now — the predicate blocking submitters wait on.
  bool fits_in_flight(std::uint64_t shots) const;

  /// The queue-depth limit for `priority` under `queue_capacity`.
  std::size_t depth_limit(RequestPriority priority,
                          std::size_t queue_capacity) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct ClientEntry {
    TokenBucket bucket;
    std::list<std::uint64_t>::iterator lru_position;
  };

  TokenBucket& bucket_for(std::uint64_t client_id,
                          SchedulerClock::time_point now);

  AdmissionOptions options_;
  std::unordered_map<std::uint64_t, ClientEntry> clients_;
  std::list<std::uint64_t> lru_;  // front = most recently seen client
  std::uint64_t shots_in_flight_ = 0;
};

}  // namespace symphase
