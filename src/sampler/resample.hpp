#pragma once

/// \file resample.hpp
/// Naive sampling baseline: one full stabilizer re-simulation per shot.
///
/// This is what using a plain tableau simulator for fault sampling looks
/// like (cost O(n_smp · n · n_g + n_smp · n² · n_m)); it anchors the
/// comparisons in the tests and gives Table 1 a "no frame, no symbols"
/// reference point. Only practical for small circuits.

#include <cstdint>

#include "bitvec/bit_matrix.hpp"
#include "circuit/circuit.hpp"

namespace symphase {

/// Samples `num_samples` measurement records by re-running the concrete
/// A-G simulator per shot. Output shape matches SymPhaseSampler::sample:
/// num_measurements x num_samples.
BitMatrix sample_by_resimulation(const Circuit& circuit,
                                 std::size_t num_samples, std::uint64_t seed);

}  // namespace symphase
