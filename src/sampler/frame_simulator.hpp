#pragma once

/// \file frame_simulator.hpp
/// Batched Pauli-frame propagation — the baseline algorithm (Rall et al.
/// 2019) used by Stim, reproduced here for the paper's comparisons.
///
/// One noiseless A-G pass produces a reference measurement record; each
/// sample then propagates only the Pauli *difference* (frame) between the
/// noisy run and the reference through the circuit. Frames for 64 shots
/// are packed per word, so the per-gate cost is O(n_smp/64) words and the
/// total sampling cost is O(n_smp · (n_g + n_m + n_p)) — the "Stim's"
/// row of the paper's Table 1. Unlike SymPhase, every batch of samples
/// re-traverses the whole circuit.
///
/// Frame semantics: X-frame bits flip Z-measurement outcomes; after a
/// measurement or reset the Z-frame of the touched qubit is randomized
/// (measurement collapse makes the relative phase a fresh gauge), which
/// matters if the qubit later re-enters coherent dynamics.
///
/// Sampling is shot-sharded: the shot axis is cut into fixed-size,
/// word-aligned shards (kShardWords words = kShardWords*64 shots each),
/// every shard propagates its own frames with an independent
/// counter-based RNG stream (Rng::stream(shard)), and shards write
/// disjoint word ranges of the output. The shard decomposition depends
/// only on num_samples, so results are bit-identical for any thread
/// count.

#include <cstdint>
#include <vector>

#include "bitvec/bit_matrix.hpp"
#include "circuit/circuit.hpp"
#include "common/noise.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace symphase {

/// Returns `circuit` with every noise channel removed (the reference
/// circuit of the frame method).
Circuit circuit_without_noise(const Circuit& circuit);

class FrameSimulator {
 public:
  /// Builds the sampler: runs the noiseless reference simulation once
  /// (this is the frame method's "initialize a sampler" cost in Fig. 3).
  explicit FrameSimulator(const Circuit& circuit, std::uint64_t seed = 0);

  std::size_t num_measurements() const { return reference_.size(); }
  const std::vector<bool>& reference_record() const { return reference_; }

  /// Shots per shard (library-wide constant; see common/parallel.hpp).
  static constexpr std::size_t kShardWords = kSampleShardWords;

  /// Generates `num_samples` joint samples of all measurements by
  /// propagating that many frames through the circuit (one traversal per
  /// shard per call). Output: num_measurements x num_samples, same
  /// convention as SymPhaseSampler::sample. Deterministic in `seed` and
  /// independent of `num_threads` (0 = hardware concurrency).
  BitMatrix sample(std::size_t num_samples, std::uint64_t seed,
                   std::size_t num_threads = 0) const;

  /// Streaming building block: propagates only the frames of global shard
  /// `shard` of a `num_samples`-shot run, writing the leading words of
  /// `block` (num_measurements() x kSampleShardBits scratch). Word w of
  /// each block row is bit-identical to word shard*kSampleShardWords + w
  /// of sample(num_samples, seed), including the masked final-shard tail.
  /// Thread-safe for distinct `block`s.
  void sample_shard_block(std::size_t shard, std::size_t num_samples,
                          std::uint64_t seed, BitMatrix& block) const;

  struct DetectionEvents {
    BitMatrix detectors;
    BitMatrix observables;
  };
  /// Samples measurements, then folds them through the circuit's
  /// DETECTOR / OBSERVABLE_INCLUDE annotations (XOR of record rows).
  DetectionEvents sample_detection_events(std::size_t num_samples,
                                          std::uint64_t seed,
                                          std::size_t num_threads = 0) const;

 private:
  /// Propagates frames for the shard covering output words
  /// [word0, word0 + words) of every measurement row. `rng` is the
  /// shard's private stream.
  void sample_shard(BitMatrix& out, std::size_t word0, std::size_t words,
                    Rng rng) const;

  Circuit circuit_;  // owned copy: the sampler re-traverses it per batch
  std::vector<bool> reference_;
  /// One compiled noise-generation plan per instruction (identity plan
  /// for non-noise instructions), so the strategy choice and log1p /
  /// binary-expansion setup happen once per circuit, not per shard call.
  std::vector<BiasedBitPlan> noise_plans_;
  /// Cap on fill units (error targets, or pairs for DEPOLARIZE2) per
  /// batched plan call: enough to amortize the engine's batch setup,
  /// small enough that the event scratch (64 x 128 words = 64 KiB)
  /// stays cache-resident however wide one instruction is.
  static constexpr std::size_t kNoiseUnitBatch = 64;
  /// Max fill units of any single noise instruction; sizes the
  /// per-shard noise scratch (capped at kNoiseUnitBatch).
  std::size_t max_noise_units_ = 0;
};

}  // namespace symphase
