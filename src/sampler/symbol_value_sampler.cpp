#include "sampler/symbol_value_sampler.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/simd_word.hpp"

namespace symphase {

SymbolValueSampler::SymbolValueSampler(const SymbolTable& table,
                                       std::vector<std::uint32_t> used_symbols)
    : table_(table), used_symbols_(std::move(used_symbols)) {
  SYMPHASE_CHECK(std::is_sorted(used_symbols_.begin(), used_symbols_.end()));
  SYMPHASE_CHECK(std::adjacent_find(used_symbols_.begin(),
                                    used_symbols_.end()) ==
                 used_symbols_.end());
  if (!used_symbols_.empty()) {
    SYMPHASE_CHECK(used_symbols_.back() < table_.num_symbols());
    row_lookup_.assign(used_symbols_.back() + 1, 0);
  }
  for (std::size_t r = 0; r < used_symbols_.size(); ++r) {
    row_lookup_[used_symbols_[r]] = static_cast<std::uint32_t>(r) + 1;
  }
  std::uint32_t last_group = UINT32_MAX;
  for (const std::uint32_t s : used_symbols_) {
    const std::uint32_t g = table_.group_index_of(s);
    if (g != last_group) {
      active_groups_.push_back(g);
      last_group = g;
    }
  }
  // Compile the per-group noise plans once (strategy choice + cached
  // constants); only active random groups ever consult theirs.
  group_plans_.resize(table_.groups().size());
  for (const std::uint32_t gi : active_groups_) {
    const SymbolGroup& group = table_.groups()[gi];
    if (group.kind == SymbolGroupKind::kBernoulli ||
        group.kind == SymbolGroupKind::kDepolarize1 ||
        group.kind == SymbolGroupKind::kDepolarize2) {
      group_plans_[gi] = BiasedBitPlan(group.probability);
    }
  }
}

std::uint32_t SymbolValueSampler::row_of(std::uint32_t symbol) const {
  SYMPHASE_CHECK(symbol < row_lookup_.size() && row_lookup_[symbol] != 0);
  return row_lookup_[symbol] - 1;
}

void SymbolValueSampler::generate_shard(BitMatrix& b, std::size_t word0,
                                        std::size_t words, Rng rng) const {
  // Event-bit scratch shared by the depolarizing groups of this shard.
  std::vector<Word> events(words);
  // Row pointer for a group member (offset to this shard's word range),
  // or nullptr if that member is unused.
  const auto member_row = [&](std::uint32_t symbol) -> Word* {
    if (symbol >= row_lookup_.size() || row_lookup_[symbol] == 0) {
      return nullptr;
    }
    return b.row(row_lookup_[symbol] - 1) + word0;
  };

  for (const std::uint32_t gi : active_groups_) {
    const SymbolGroup& group = table_.groups()[gi];
    switch (group.kind) {
      case SymbolGroupKind::kConstant: {
        Word* row = member_row(group.first_symbol);
        SYMPHASE_ASSERT(row != nullptr);
        wide::fill_words(row, ~Word{0}, words);
        break;
      }
      case SymbolGroupKind::kCoin: {
        Word* row = member_row(group.first_symbol);
        SYMPHASE_ASSERT(row != nullptr);
        fill_random_words(rng, row, words);
        break;
      }
      case SymbolGroupKind::kBernoulli: {
        Word* row = member_row(group.first_symbol);
        SYMPHASE_ASSERT(row != nullptr);
        group_plans_[gi].fill(rng, row, words);
        break;
      }
      case SymbolGroupKind::kDepolarize1:
      case SymbolGroupKind::kDepolarize2: {
        // Joint sampling: an "event" Bernoulli(p) per shot; on event, a
        // uniform non-identity pattern over the member bits. The engine
        // deposits pattern bits straight into the (pre-zeroed) member
        // rows; unused members still consume their pattern randomness
        // but are not materialized.
        const std::uint32_t member_count = group.num_symbols;
        Word* rows[4] = {nullptr, nullptr, nullptr, nullptr};
        for (std::uint32_t k = 0; k < member_count; ++k) {
          rows[k] = member_row(group.first_symbol + k);
        }
        group_plans_[gi].fill(rng, events.data(), words);
        fill_pauli_patterns(rng, events.data(), words, member_count, rows,
                            group.probability);
        break;
      }
    }
  }
}

void SymbolValueSampler::generate_shard_block(std::size_t shard,
                                              std::size_t num_samples,
                                              std::uint64_t seed,
                                              BitMatrix& block) const {
  const ShardExtent e = sample_shard_extent(shard, num_samples);
  SYMPHASE_CHECK(shard < num_sample_shards(num_samples));
  SYMPHASE_CHECK(block.rows() == num_rows());
  SYMPHASE_CHECK(block.words_per_row() >= e.words);
  // generate() starts from a zero matrix and the depolarize path only
  // XORs fresh pattern bits in; a reused scratch block must be cleared
  // to match.
  block.clear_all();
  generate_shard(block, 0, e.words, Rng(seed).stream(shard));
  if (e.shots % kWordBits != 0) {
    const Word mask = tail_mask(e.shots);
    for (std::size_t r = 0; r < block.rows(); ++r) {
      block.row(r)[e.words - 1] &= mask;
    }
  }
}

BitMatrix SymbolValueSampler::generate(std::size_t num_samples,
                                       std::uint64_t seed,
                                       std::size_t num_threads) const {
  BitMatrix b(num_rows(), num_samples);
  if (num_samples == 0 || num_rows() == 0) {
    return b;
  }
  const std::size_t shot_words = words_for_bits(num_samples);
  const std::size_t num_shards = ceil_div(shot_words, kShardWords);
  const Rng root(seed);

  parallel_for(num_shards, resolve_thread_count(num_threads),
               [&](std::size_t shard) {
                 const std::size_t word0 = shard * kShardWords;
                 const std::size_t words =
                     std::min(kShardWords, shot_words - word0);
                 generate_shard(b, word0, words, root.stream(shard));
               });

  // Mask tail bits beyond num_samples so downstream popcounts are exact.
  if (num_samples % kWordBits != 0) {
    const Word mask = tail_mask(num_samples);
    for (std::size_t r = 0; r < b.rows(); ++r) {
      b.row(r)[shot_words - 1] &= mask;
    }
  }
  return b;
}

}  // namespace symphase
