#include "sampler/symbol_value_sampler.hpp"

#include <algorithm>

namespace symphase {

SymbolValueSampler::SymbolValueSampler(const SymbolTable& table,
                                       std::vector<std::uint32_t> used_symbols)
    : table_(table), used_symbols_(std::move(used_symbols)) {
  SYMPHASE_CHECK(std::is_sorted(used_symbols_.begin(), used_symbols_.end()));
  SYMPHASE_CHECK(std::adjacent_find(used_symbols_.begin(),
                                    used_symbols_.end()) ==
                 used_symbols_.end());
  if (!used_symbols_.empty()) {
    SYMPHASE_CHECK(used_symbols_.back() < table_.num_symbols());
    row_lookup_.assign(used_symbols_.back() + 1, 0);
  }
  for (std::size_t r = 0; r < used_symbols_.size(); ++r) {
    row_lookup_[used_symbols_[r]] = static_cast<std::uint32_t>(r) + 1;
  }
  std::uint32_t last_group = UINT32_MAX;
  for (const std::uint32_t s : used_symbols_) {
    const std::uint32_t g = table_.group_index_of(s);
    if (g != last_group) {
      active_groups_.push_back(g);
      last_group = g;
    }
  }
}

std::uint32_t SymbolValueSampler::row_of(std::uint32_t symbol) const {
  SYMPHASE_CHECK(symbol < row_lookup_.size() && row_lookup_[symbol] != 0);
  return row_lookup_[symbol] - 1;
}

BitMatrix SymbolValueSampler::generate(std::size_t num_samples,
                                       std::uint64_t seed) const {
  BitMatrix b(num_rows(), num_samples);
  Rng rng(seed);
  const std::size_t shot_words = words_for_bits(num_samples);

  // Row pointer for a group member, or nullptr if that member is unused.
  const auto member_row = [&](std::uint32_t symbol) -> Word* {
    if (symbol >= row_lookup_.size() || row_lookup_[symbol] == 0) {
      return nullptr;
    }
    return b.row(row_lookup_[symbol] - 1);
  };

  for (const std::uint32_t gi : active_groups_) {
    const SymbolGroup& group = table_.groups()[gi];
    switch (group.kind) {
      case SymbolGroupKind::kConstant: {
        Word* row = member_row(group.first_symbol);
        SYMPHASE_ASSERT(row != nullptr);
        for (std::size_t w = 0; w < shot_words; ++w) {
          row[w] = ~Word{0};
        }
        break;
      }
      case SymbolGroupKind::kCoin: {
        Word* row = member_row(group.first_symbol);
        SYMPHASE_ASSERT(row != nullptr);
        fill_random_words(rng, row, shot_words);
        break;
      }
      case SymbolGroupKind::kBernoulli: {
        Word* row = member_row(group.first_symbol);
        SYMPHASE_ASSERT(row != nullptr);
        fill_biased_words(rng, row, shot_words, group.probability);
        break;
      }
      case SymbolGroupKind::kDepolarize1:
      case SymbolGroupKind::kDepolarize2: {
        // Joint sampling: an "event" Bernoulli(p) per shot; on event, a
        // uniform non-identity pattern over the member bits. Event bits
        // are typically sparse, so we walk only set bits.
        const std::uint32_t member_count = group.num_symbols;
        const std::uint64_t pattern_count =
            (std::uint64_t{1} << member_count) - 1;  // non-identity patterns
        Word* rows[4] = {nullptr, nullptr, nullptr, nullptr};
        for (std::uint32_t k = 0; k < member_count; ++k) {
          rows[k] = member_row(group.first_symbol + k);
        }
        std::vector<Word> events(shot_words);
        fill_biased_words(rng, events.data(), shot_words, group.probability);
        for (std::size_t w = 0; w < shot_words; ++w) {
          Word bits = events[w];
          while (bits != 0) {
            const auto k = static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::uint64_t pattern = rng.next_below(pattern_count) + 1;
            for (std::uint32_t m = 0; m < member_count; ++m) {
              if (((pattern >> m) & 1) != 0 && rows[m] != nullptr) {
                rows[m][w] |= Word{1} << k;
              }
            }
          }
        }
        break;
      }
    }
  }

  // Mask tail bits beyond num_samples so downstream popcounts are exact.
  if (num_samples % kWordBits != 0 && shot_words > 0) {
    const Word mask = tail_mask(num_samples);
    for (std::size_t r = 0; r < b.rows(); ++r) {
      b.row(r)[shot_words - 1] &= mask;
    }
  }
  return b;
}

}  // namespace symphase
