#include "sampler/frame_simulator.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/simd_word.hpp"
#include "tableau/stabilizer_simulator.hpp"

namespace symphase {

Circuit circuit_without_noise(const Circuit& circuit) {
  Circuit clean(circuit.num_qubits());
  for (const Instruction& inst : circuit.instructions()) {
    if (!is_noise(inst.type)) {
      clean.append(inst.type, inst.targets, 0.0);
    }
  }
  return clean;
}

FrameSimulator::FrameSimulator(const Circuit& circuit, std::uint64_t seed)
    : circuit_(circuit) {
  StabilizerSimulator<BlockedTableau> reference_sim(
      std::max<std::size_t>(circuit.num_qubits(), 1), seed);
  const Circuit clean = circuit_without_noise(circuit);
  reference_sim.run_circuit(clean);
  reference_ = reference_sim.record();

  // Compile one noise plan per instruction so every shard reuses the
  // strategy choice and cached constants.
  const auto& instructions = circuit_.instructions();
  noise_plans_.resize(instructions.size());
  for (std::size_t i = 0; i < instructions.size(); ++i) {
    const Instruction& inst = instructions[i];
    if (!is_noise(inst.type)) {
      continue;
    }
    noise_plans_[i] = BiasedBitPlan(inst.probability);
    const std::size_t units = inst.type == GateType::DEPOLARIZE2
                                  ? inst.targets.size() / 2
                                  : inst.targets.size();
    max_noise_units_ = std::max(max_noise_units_, units);
  }
}

void FrameSimulator::sample_shard(BitMatrix& out, std::size_t word0,
                                  std::size_t words, Rng rng) const {
  const std::size_t n = std::max<std::size_t>(circuit_.num_qubits(), 1);
  BitMatrix xf(n, words * kWordBits);
  BitMatrix zf(n, words * kWordBits);
  std::vector<Word> scratch(words);
  // One batched event fill covers up to kNoiseUnitBatch targets (pairs
  // for DEPOLARIZE2) of a noise instruction at a time: unit u of the
  // chunk owns words [u*words, (u+1)*words). The cap keeps the scratch
  // L2-resident no matter how wide a single instruction is.
  std::vector<Word> noise_scratch(
      std::min(max_noise_units_, kNoiseUnitBatch) * words);

  // Z-gauge initialization (as in Stim): each |0>-initialized qubit gets a
  // random Z frame. Z on |0> is a stabilizer, so this changes nothing
  // physically, but once coherent dynamics map Z frames onto X frames it
  // supplies exactly the per-shot randomness that "random" measurements
  // require.
  for (std::size_t q = 0; q < n; ++q) {
    fill_random_words(rng, zf.row(q), words);
  }

  std::size_t measure_index = 0;

  const auto record_measurement = [&](std::uint32_t q) {
    SYMPHASE_ASSERT(measure_index < reference_.size());
    const Word* x = xf.row(q);
    Word* dst = out.row(measure_index) + word0;
    // Tail columns beyond num_samples may pick up garbage here; the
    // single masking pass at the end of sample() clears them.
    if (reference_[measure_index]) {
      wide::not_copy_words(dst, x, words);
    } else {
      wide::copy_words(dst, x, words);
    }
    ++measure_index;
    // Collapse gauge: the measured qubit's Z frame is re-randomized.
    fill_random_words(rng, scratch.data(), words);
    wide::xor_words(zf.row(q), scratch.data(), words);
  };

  const auto reset_frames = [&](std::uint32_t q) {
    // Reset clears the X frame; the Z frame is re-randomized (fresh
    // |0>-state gauge, same reasoning as at initialization).
    xf.clear_row(q);
    fill_random_words(rng, zf.row(q), words);
  };

  // Batched Pauli error: one plan fill spans a whole chunk of targets
  // (so sparse probabilities run a single geometric-skip pass across
  // them), then each target's slice XORs into its frame rows.
  const auto apply_pauli_errors = [&](const BiasedBitPlan& plan,
                                      std::span<const std::uint32_t> qubits,
                                      bool flip_x, bool flip_z) {
    Word* events = noise_scratch.data();
    for (std::size_t base = 0; base < qubits.size();
         base += kNoiseUnitBatch) {
      const std::size_t nt =
          std::min(kNoiseUnitBatch, qubits.size() - base);
      plan.fill(rng, events, nt * words);
      for (std::size_t qi = 0; qi < nt; ++qi) {
        Word* slice = events + qi * words;
        if (flip_x) {
          wide::xor_words(xf.row(qubits[base + qi]), slice, words);
        }
        if (flip_z) {
          wide::xor_words(zf.row(qubits[base + qi]), slice, words);
        }
      }
    }
  };

  const auto& instructions = circuit_.instructions();
  for (std::size_t inst_index = 0; inst_index < instructions.size();
       ++inst_index) {
    const Instruction& inst = instructions[inst_index];
    switch (inst.type) {
      case GateType::I:
      case GateType::TICK:
      case GateType::DETECTOR:
      case GateType::OBSERVABLE_INCLUDE:
        break;
      // Pauli gates commute trivially through the frame (they are part
      // of the reference dynamics, not a frame change).
      case GateType::X:
      case GateType::Y:
      case GateType::Z:
        break;
      case GateType::H:
        for (const std::uint32_t q : inst.targets) {
          wide::swap_words(xf.row(q), zf.row(q), words);
        }
        break;
      case GateType::S:
      case GateType::S_DAG:
        // Frames ignore signs: X -> ±Y means z ^= x.
        for (const std::uint32_t q : inst.targets) {
          wide::xor_words(zf.row(q), xf.row(q), words);
        }
        break;
      case GateType::SQRT_X:
      case GateType::SQRT_X_DAG:
      case GateType::H_YZ:
        for (const std::uint32_t q : inst.targets) {
          wide::xor_words(xf.row(q), zf.row(q), words);
        }
        break;
      case GateType::CNOT:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          wide::xor_words(xf.row(inst.targets[i + 1]),
                          xf.row(inst.targets[i]), words);
          wide::xor_words(zf.row(inst.targets[i]),
                          zf.row(inst.targets[i + 1]), words);
        }
        break;
      case GateType::CZ:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          Word* za = zf.row(inst.targets[i]);
          Word* zb = zf.row(inst.targets[i + 1]);
          const Word* xa = xf.row(inst.targets[i]);
          const Word* xb = xf.row(inst.targets[i + 1]);
          wide::xor_words(za, xb, words);
          wide::xor_words(zb, xa, words);
        }
        break;
      case GateType::SWAP:
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          xf.swap_rows(inst.targets[i], inst.targets[i + 1]);
          zf.swap_rows(inst.targets[i], inst.targets[i + 1]);
        }
        break;
      case GateType::M:
        for (const std::uint32_t q : inst.targets) {
          record_measurement(q);
        }
        break;
      case GateType::COND_X:
      case GateType::COND_Y:
      case GateType::COND_Z:
        // The reference run already applied the Pauli conditioned on the
        // reference outcome; per shot, the applied power differs by the
        // recorded *frame* bit f = out_row ^ reference, so the frame of
        // the target qubit absorbs P^f.
        for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
          const std::uint32_t lookback = rec_lookback(inst.targets[i]);
          SYMPHASE_CHECK_MSG(lookback >= 1 && lookback <= measure_index,
                             gate_name(inst.type)
                                 << " record lookback " << lookback
                                 << " exceeds the measurement record");
          const std::size_t idx = measure_index - lookback;
          const std::uint32_t q = inst.targets[i + 1];
          const Word* recorded = out.row(idx) + word0;
          const bool ref = reference_[idx];
          const bool flip_x = inst.type != GateType::COND_Z;
          const bool flip_z = inst.type != GateType::COND_X;
          if (flip_x) {
            (ref ? wide::xor_not_words : wide::xor_words)(xf.row(q), recorded,
                                                          words);
          }
          if (flip_z) {
            (ref ? wide::xor_not_words : wide::xor_words)(zf.row(q), recorded,
                                                          words);
          }
        }
        break;
      case GateType::MR:
        for (const std::uint32_t q : inst.targets) {
          record_measurement(q);
          reset_frames(q);
        }
        break;
      case GateType::R:
        for (const std::uint32_t q : inst.targets) {
          reset_frames(q);
        }
        break;
      case GateType::X_ERROR:
        apply_pauli_errors(noise_plans_[inst_index], inst.targets, true,
                           false);
        break;
      case GateType::Z_ERROR:
        apply_pauli_errors(noise_plans_[inst_index], inst.targets, false,
                           true);
        break;
      case GateType::Y_ERROR:
        apply_pauli_errors(noise_plans_[inst_index], inst.targets, true,
                           true);
        break;
      case GateType::DEPOLARIZE1:
        // Event bits per shot; on event, a uniform non-identity pattern
        // over (X, Z) of the qubit (matches SymbolValueSampler's
        // channels). Events for all targets come from one batched fill;
        // the engine XORs the pattern masks straight into the frame rows
        // (whole-word for dense blocks, per-event for sparse ones).
        {
          Word* events = noise_scratch.data();
          for (std::size_t base = 0; base < inst.targets.size();
               base += kNoiseUnitBatch) {
            const std::size_t nt =
                std::min(kNoiseUnitBatch, inst.targets.size() - base);
            noise_plans_[inst_index].fill(rng, events, nt * words);
            for (std::size_t qi = 0; qi < nt; ++qi) {
              Word* masks[2] = {xf.row(inst.targets[base + qi]),
                                zf.row(inst.targets[base + qi])};
              fill_pauli_patterns(rng, events + qi * words, words, 2, masks,
                                  inst.probability);
            }
          }
        }
        break;
      case GateType::DEPOLARIZE2:
        // Same, with a uniform non-identity pattern over
        // (X_a, Z_a, X_b, Z_b) per event.
        {
          Word* events = noise_scratch.data();
          const std::size_t pairs = inst.targets.size() / 2;
          for (std::size_t base = 0; base < pairs;
               base += kNoiseUnitBatch) {
            const std::size_t np = std::min(kNoiseUnitBatch, pairs - base);
            noise_plans_[inst_index].fill(rng, events, np * words);
            for (std::size_t pi = 0; pi < np; ++pi) {
              const std::uint32_t qa = inst.targets[2 * (base + pi)];
              const std::uint32_t qb = inst.targets[2 * (base + pi) + 1];
              Word* masks[4] = {xf.row(qa), zf.row(qa), xf.row(qb),
                                zf.row(qb)};
              fill_pauli_patterns(rng, events + pi * words, words, 4, masks,
                                  inst.probability);
            }
          }
        }
        break;
    }
  }
  SYMPHASE_ASSERT(measure_index == reference_.size());
}

void FrameSimulator::sample_shard_block(std::size_t shard,
                                        std::size_t num_samples,
                                        std::uint64_t seed,
                                        BitMatrix& block) const {
  const ShardExtent e = sample_shard_extent(shard, num_samples);
  SYMPHASE_CHECK(shard < num_sample_shards(num_samples));
  SYMPHASE_CHECK(block.rows() == num_measurements());
  SYMPHASE_CHECK(block.words_per_row() >= e.words);
  sample_shard(block, 0, e.words, Rng(seed).stream(shard));
  // Same tail semantics as sample(): columns beyond the run's last shot
  // pick up frame garbage during record_measurement and are masked here.
  if (e.shots % kWordBits != 0) {
    const Word mask = tail_mask(e.shots);
    for (std::size_t r = 0; r < block.rows(); ++r) {
      block.row(r)[e.words - 1] &= mask;
    }
  }
}

BitMatrix FrameSimulator::sample(std::size_t num_samples, std::uint64_t seed,
                                 std::size_t num_threads) const {
  BitMatrix out(num_measurements(), num_samples);
  if (num_samples == 0) {
    return out;
  }
  const std::size_t shot_words = words_for_bits(num_samples);
  const std::size_t num_shards = ceil_div(shot_words, kShardWords);
  const Rng root(seed);

  parallel_for(num_shards, resolve_thread_count(num_threads),
               [&](std::size_t shard) {
                 const std::size_t word0 = shard * kShardWords;
                 const std::size_t words =
                     std::min(kShardWords, shot_words - word0);
                 sample_shard(out, word0, words, root.stream(shard));
               });

  // Single masking pass: clears both the tail columns beyond num_samples
  // and whatever record_measurement left in them, so popcount-based
  // consumers see exact counts.
  if (num_samples % kWordBits != 0) {
    const Word mask = tail_mask(num_samples);
    for (std::size_t r = 0; r < out.rows(); ++r) {
      out.row(r)[shot_words - 1] &= mask;
    }
  }
  return out;
}

FrameSimulator::DetectionEvents FrameSimulator::sample_detection_events(
    std::size_t num_samples, std::uint64_t seed,
    std::size_t num_threads) const {
  const BitMatrix measurements = sample(num_samples, seed, num_threads);
  const DetectorLayout layout = resolve_detectors(circuit_);
  DetectionEvents events{
      BitMatrix(layout.detectors.size(), num_samples),
      BitMatrix(layout.observables.size(), num_samples),
  };
  const auto fold = [&](const std::vector<std::vector<std::size_t>>& defs,
                        BitMatrix& out) {
    for (std::size_t d = 0; d < defs.size(); ++d) {
      for (const std::size_t m : defs[d]) {
        out.xor_words_into_row(
            {measurements.row(m), measurements.words_per_row()}, d);
      }
    }
  };
  fold(layout.detectors, events.detectors);
  fold(layout.observables, events.observables);
  return events;
}

}  // namespace symphase
