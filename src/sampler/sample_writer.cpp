#include "sampler/sample_writer.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace symphase {

SampleFormat sample_format_from_name(std::string_view name) {
  if (name == "01") {
    return SampleFormat::k01;
  }
  if (name == "hex") {
    return SampleFormat::kHex;
  }
  if (name == "b8") {
    return SampleFormat::kB8;
  }
  if (name == "ptb64") {
    return SampleFormat::kPtb64;
  }
  if (name == "dets") {
    return SampleFormat::kDets;
  }
  SYMPHASE_CHECK_MSG(false, "unknown sample format '"
                                << name << "' (01|hex|b8|ptb64|dets)");
  return SampleFormat::k01;
}

void write_samples(const BitMatrix& samples, SampleFormat format,
                   std::ostream& out, std::size_t num_detectors,
                   std::size_t num_shots) {
  const std::size_t bits = samples.rows();
  const std::size_t shots = std::min(num_shots, samples.cols());
  if (num_detectors == SIZE_MAX) {
    num_detectors = bits;
  }
  SYMPHASE_CHECK(num_detectors <= bits);

  switch (format) {
    case SampleFormat::k01: {
      std::string line(bits, '0');
      for (std::size_t shot = 0; shot < shots; ++shot) {
        for (std::size_t k = 0; k < bits; ++k) {
          line[k] = samples.get(k, shot) ? '1' : '0';
        }
        out << line << '\n';
      }
      return;
    }
    case SampleFormat::kHex: {
      static const char kDigits[] = "0123456789abcdef";
      std::string line(ceil_div(bits, 4), '0');
      for (std::size_t shot = 0; shot < shots; ++shot) {
        // LSB-first nibbles: bit k lands in nibble k/4 at value bit k%4.
        for (std::size_t nib = 0; nib < line.size(); ++nib) {
          int value = 0;
          for (std::size_t b = 0; b < 4; ++b) {
            const std::size_t k = nib * 4 + b;
            if (k < bits && samples.get(k, shot)) {
              value |= 1 << b;
            }
          }
          line[nib] = kDigits[value];
        }
        out << line << '\n';
      }
      return;
    }
    case SampleFormat::kB8: {
      const std::size_t bytes = ceil_div(bits, 8);
      std::vector<char> record(bytes);
      for (std::size_t shot = 0; shot < shots; ++shot) {
        std::fill(record.begin(), record.end(), 0);
        for (std::size_t k = 0; k < bits; ++k) {
          if (samples.get(k, shot)) {
            record[k / 8] = static_cast<char>(
                static_cast<unsigned char>(record[k / 8]) | (1u << (k % 8)));
          }
        }
        out.write(record.data(),
                  static_cast<std::streamsize>(record.size()));
      }
      return;
    }
    case SampleFormat::kPtb64: {
      // One u64 per record bit per 64-shot group — exactly the matrix's
      // own word layout, so each word copies straight out of the row.
      // The matrix may carry stale bits beyond `shots` (streaming shard
      // scratch is reused), so the final partial group is masked.
      const std::size_t groups = ceil_div(shots, kWordBits);
      char word_bytes[8];
      for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t valid = std::min<std::size_t>(shots - g * kWordBits,
                                                        kWordBits);
        const std::uint64_t mask =
            valid == kWordBits ? ~0ull : (1ull << valid) - 1;
        for (std::size_t k = 0; k < bits; ++k) {
          const std::uint64_t word = samples.row(k)[g] & mask;
          for (std::size_t b = 0; b < 8; ++b) {
            word_bytes[b] = static_cast<char>((word >> (8 * b)) & 0xff);
          }
          out.write(word_bytes, 8);
        }
      }
      return;
    }
    case SampleFormat::kDets: {
      for (std::size_t shot = 0; shot < shots; ++shot) {
        out << "shot";
        for (std::size_t k = 0; k < bits; ++k) {
          if (samples.get(k, shot)) {
            if (k < num_detectors) {
              out << " D" << k;
            } else {
              out << " L" << k - num_detectors;
            }
          }
        }
        out << '\n';
      }
      return;
    }
  }
}

std::string samples_to_string(const BitMatrix& samples, SampleFormat format,
                              std::size_t num_detectors,
                              std::size_t num_shots) {
  std::ostringstream oss;
  write_samples(samples, format, oss, num_detectors, num_shots);
  return oss.str();
}

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  SYMPHASE_CHECK_MSG(false, "invalid hex digit '" << c << "'");
  return 0;
}

}  // namespace

BitMatrix read_samples(std::istream& in, SampleFormat format,
                       std::size_t bits_per_shot) {
  std::vector<std::vector<bool>> shots;
  switch (format) {
    case SampleFormat::k01: {
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) {
          continue;
        }
        SYMPHASE_CHECK_MSG(line.size() == bits_per_shot,
                           "01 record length " << line.size() << " != "
                                               << bits_per_shot);
        std::vector<bool> shot(bits_per_shot);
        for (std::size_t k = 0; k < bits_per_shot; ++k) {
          SYMPHASE_CHECK_MSG(line[k] == '0' || line[k] == '1',
                             "invalid 01 character");
          shot[k] = line[k] == '1';
        }
        shots.push_back(std::move(shot));
      }
      break;
    }
    case SampleFormat::kHex: {
      const std::size_t nibbles = ceil_div(bits_per_shot, 4);
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) {
          continue;
        }
        SYMPHASE_CHECK_MSG(line.size() == nibbles,
                           "hex record length mismatch");
        std::vector<bool> shot(bits_per_shot);
        for (std::size_t k = 0; k < bits_per_shot; ++k) {
          shot[k] = (hex_value(line[k / 4]) >> (k % 4)) & 1;
        }
        shots.push_back(std::move(shot));
      }
      break;
    }
    case SampleFormat::kB8: {
      const std::size_t bytes = ceil_div(bits_per_shot, 8);
      std::vector<char> record(bytes);
      while (in.read(record.data(),
                     static_cast<std::streamsize>(record.size()))) {
        std::vector<bool> shot(bits_per_shot);
        for (std::size_t k = 0; k < bits_per_shot; ++k) {
          shot[k] = (static_cast<unsigned char>(record[k / 8]) >> (k % 8)) & 1;
        }
        shots.push_back(std::move(shot));
      }
      SYMPHASE_CHECK_MSG(in.gcount() == 0, "trailing partial b8 record");
      break;
    }
    case SampleFormat::kPtb64: {
      SYMPHASE_CHECK_MSG(bits_per_shot > 0,
                         "ptb64 needs at least one bit per shot");
      std::vector<char> group(bits_per_shot * 8);
      while (in.read(group.data(),
                     static_cast<std::streamsize>(group.size()))) {
        const std::size_t shot0 = shots.size();
        shots.resize(shot0 + kWordBits,
                     std::vector<bool>(bits_per_shot, false));
        for (std::size_t k = 0; k < bits_per_shot; ++k) {
          std::uint64_t word = 0;
          for (std::size_t b = 0; b < 8; ++b) {
            word |= static_cast<std::uint64_t>(
                        static_cast<unsigned char>(group[k * 8 + b]))
                    << (8 * b);
          }
          for (std::size_t j = 0; j < kWordBits; ++j) {
            shots[shot0 + j][k] = (word >> j) & 1;
          }
        }
      }
      SYMPHASE_CHECK_MSG(in.gcount() == 0, "trailing partial ptb64 group");
      break;
    }
    case SampleFormat::kDets:
      SYMPHASE_CHECK_MSG(false, "dets format is write-only");
      break;
  }

  BitMatrix out(bits_per_shot, shots.size());
  for (std::size_t shot = 0; shot < shots.size(); ++shot) {
    for (std::size_t k = 0; k < bits_per_shot; ++k) {
      if (shots[shot][k]) {
        out.set(k, shot, true);
      }
    }
  }
  return out;
}

}  // namespace symphase
