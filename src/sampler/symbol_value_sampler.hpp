#pragma once

/// \file symbol_value_sampler.hpp
/// Batched generation of the symbol-sample matrix B of Algorithm 1.
///
/// Column j of the paper's B is one joint sample b_j of all symbols;
/// we store B row-per-symbol with shots packed 64 per word, so XORing
/// expression rows (the sparse M·B product) runs word-parallel across
/// shots.
///
/// Only symbols that actually appear in some measurement expression get
/// a row: symbols that no expression reads cannot affect any outcome, so
/// skipping them leaves the product M·B unchanged while keeping B's
/// footprint proportional to the useful work. Correlated groups
/// (depolarize) are sampled jointly; unused members of a used group are
/// simply not materialized.
///
/// Generation is shot-sharded like FrameSimulator::sample: fixed
/// word-aligned shards of the shot axis, one counter-based RNG stream per
/// shard, so the matrix is bit-identical for any thread count.

#include <cstdint>
#include <vector>

#include "bitvec/bit_matrix.hpp"
#include "common/noise.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "symbolic/symbol_table.hpp"

namespace symphase {

class SymbolValueSampler {
 public:
  /// `used_symbols` must be sorted and duplicate-free (symbol ids,
  /// including 0 if any expression has a constant term).
  SymbolValueSampler(const SymbolTable& table,
                     std::vector<std::uint32_t> used_symbols);

  /// Number of materialized B rows.
  std::size_t num_rows() const { return used_symbols_.size(); }

  /// Row index of `symbol` in the generated matrix;
  /// fails if the symbol is not in the used set.
  std::uint32_t row_of(std::uint32_t symbol) const;

  /// Shots per shard (library-wide constant; see common/parallel.hpp).
  static constexpr std::size_t kShardWords = kSampleShardWords;

  /// Generates B: one row per used symbol, `num_samples` columns.
  /// Deterministic in `seed` and independent of `num_threads`
  /// (0 = hardware concurrency).
  BitMatrix generate(std::size_t num_samples, std::uint64_t seed,
                     std::size_t num_threads = 0) const;

  /// Streaming building block: regenerates global shard `shard` of a
  /// `num_samples`-shot run into the leading words of `block` (a
  /// num_rows() x kSampleShardBits scratch matrix, fully overwritten).
  /// Word w of each block row is bit-identical to word
  /// shard*kSampleShardWords + w of generate(num_samples, seed), including
  /// the masked tail of the final shard.
  void generate_shard_block(std::size_t shard, std::size_t num_samples,
                            std::uint64_t seed, BitMatrix& block) const;

  const std::vector<std::uint32_t>& used_symbols() const {
    return used_symbols_;
  }

 private:
  /// Fills columns [word0*64, word0*64 + words*64) of every used row from
  /// the shard's private stream.
  void generate_shard(BitMatrix& b, std::size_t word0, std::size_t words,
                      Rng rng) const;

  const SymbolTable& table_;
  std::vector<std::uint32_t> used_symbols_;
  // symbol id -> row index + 1 (0 = unused). Sized to max used + 1.
  std::vector<std::uint32_t> row_lookup_;
  // Group indices that contain at least one used symbol, ascending.
  std::vector<std::uint32_t> active_groups_;
  // Noise-generation plan per group index (identity for non-random
  // groups); compiled once so shard fills skip the per-call strategy and
  // log1p setup.
  std::vector<BiasedBitPlan> group_plans_;
};

}  // namespace symphase
