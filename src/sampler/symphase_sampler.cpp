#include "sampler/symphase_sampler.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/simd_word.hpp"

namespace symphase {

std::vector<std::uint32_t> SymPhaseSampler::collect_used_symbols(
    const std::vector<MeasurementExpression>& expressions) {
  std::vector<std::uint32_t> used;
  for (const auto& e : expressions) {
    used.insert(used.end(), e.symbols.begin(), e.symbols.end());
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used;
}

SymPhaseSampler::SymPhaseSampler(
    const SymbolTable& symbols,
    const std::vector<MeasurementExpression>& expressions,
    MultiplyStrategy strategy)
    : strategy_(strategy),
      values_(symbols, collect_used_symbols(expressions)),
      expr_matrix_(expressions.size(), values_.num_rows()),
      symbols_(symbols) {
  raw_expressions_.reserve(expressions.size());
  for (std::size_t k = 0; k < expressions.size(); ++k) {
    std::vector<std::uint32_t> remapped;
    remapped.reserve(expressions[k].symbols.size());
    for (const std::uint32_t s : expressions[k].symbols) {
      remapped.push_back(values_.row_of(s));
    }
    // row_of preserves order (used_symbols sorted), so remapped is sorted.
    expr_matrix_.set_row(k, std::move(remapped));
    raw_expressions_.push_back(expressions[k].symbols);
  }
  if (strategy_ == MultiplyStrategy::kDense) {
    dense_matrix_ = expr_matrix_.to_dense();
  }
}

BitMatrix SymPhaseSampler::sample(std::size_t num_samples, std::uint64_t seed,
                                  std::size_t num_threads) const {
  const std::size_t threads = resolve_thread_count(num_threads);
  const BitMatrix b = values_.generate(num_samples, seed, threads);
  if (strategy_ == MultiplyStrategy::kDense) {
    return dense_matrix_.multiply(b);
  }
  // Sparse M·B, shot-sharded: shards own disjoint word ranges of every
  // output row, so the product parallelizes without contention (and is
  // trivially independent of the thread count — no RNG involved).
  BitMatrix out(expr_matrix_.rows(), num_samples);
  const std::size_t shot_words = words_for_bits(num_samples);
  const std::size_t num_shards = ceil_div(shot_words, kSampleShardWords);
  parallel_for(num_shards, threads, [&](std::size_t shard) {
    const std::size_t word0 = shard * kSampleShardWords;
    const std::size_t words = std::min(kSampleShardWords, shot_words - word0);
    expr_matrix_.multiply_word_range(b, out, word0, words);
  });
  return out;
}

void SymPhaseSampler::sample_shard_block(std::size_t shard,
                                         std::size_t num_samples,
                                         std::uint64_t seed,
                                         BitMatrix& block) const {
  const ShardExtent e = sample_shard_extent(shard, num_samples);
  SYMPHASE_CHECK(block.rows() == num_measurements());
  SYMPHASE_CHECK(block.words_per_row() >= e.words);
  BitMatrix b(values_.num_rows(), kSampleShardBits);
  values_.generate_shard_block(shard, num_samples, seed, b);
  if (strategy_ == MultiplyStrategy::kDense) {
    // The dense product is column-separable, so multiplying the shard's
    // B-block alone yields exactly this word range of the full product.
    const BitMatrix prod = dense_matrix_.multiply(b);
    for (std::size_t r = 0; r < block.rows(); ++r) {
      wide::copy_words(block.row(r), prod.row(r), e.words);
    }
    return;
  }
  // multiply_word_range leaves rows with no expression entries untouched;
  // a reused scratch block must be cleared so those rows read zero.
  block.clear_all();
  expr_matrix_.multiply_word_range(b, block, 0, e.words);
}

double SymPhaseSampler::outcome_probability(std::size_t k) const {
  SYMPHASE_CHECK(k < raw_expressions_.size());
  const std::vector<std::uint32_t>& expr = raw_expressions_[k];
  // E[(-1)^m] = prod over groups of E[(-1)^{parity of included members}];
  // groups are mutually independent.
  double bias = 1.0;
  bool constant = false;
  std::size_t i = 0;
  while (i < expr.size()) {
    const SymbolGroup& group = symbols_.group_of(expr[i]);
    // Collect the membership mask of this group's symbols in the expr.
    std::uint32_t mask = 0;
    while (i < expr.size() &&
           expr[i] < group.first_symbol + group.num_symbols) {
      SYMPHASE_ASSERT(expr[i] >= group.first_symbol);
      mask |= 1u << (expr[i] - group.first_symbol);
      ++i;
    }
    switch (group.kind) {
      case SymbolGroupKind::kConstant:
        constant = !constant;
        break;
      case SymbolGroupKind::kCoin:
        bias *= 0.0;
        break;
      case SymbolGroupKind::kBernoulli:
        bias *= 1.0 - 2.0 * group.probability;
        break;
      case SymbolGroupKind::kDepolarize1:
      case SymbolGroupKind::kDepolarize2: {
        const std::uint32_t members = group.num_symbols;
        const std::uint32_t patterns = 1u << members;
        const double p_each =
            group.probability / static_cast<double>(patterns - 1);
        double g_bias = 1.0 - group.probability;  // identity pattern
        for (std::uint32_t pat = 1; pat < patterns; ++pat) {
          g_bias += (std::popcount(pat & mask) % 2 == 0) ? p_each : -p_each;
        }
        bias *= g_bias;
        break;
      }
    }
  }
  const double p_one = (1.0 - bias) / 2.0;
  return constant ? 1.0 - p_one : p_one;
}

}  // namespace symphase
