#include "sampler/resample.hpp"

#include "tableau/row_major_tableau.hpp"
#include "tableau/stabilizer_simulator.hpp"

namespace symphase {

BitMatrix sample_by_resimulation(const Circuit& circuit,
                                 std::size_t num_samples,
                                 std::uint64_t seed) {
  const std::size_t nm = circuit.num_measurements();
  BitMatrix out(nm, num_samples);
  Rng seeder(seed);
  for (std::size_t shot = 0; shot < num_samples; ++shot) {
    StabilizerSimulator<RowMajorTableau> sim(
        std::max<std::size_t>(circuit.num_qubits(), 1), seeder.next_word());
    sim.run_circuit(circuit);
    SYMPHASE_ASSERT(sim.record().size() == nm);
    for (std::size_t k = 0; k < nm; ++k) {
      if (sim.record()[k]) {
        out.set(k, shot, true);
      }
    }
  }
  return out;
}

}  // namespace symphase
