#pragma once

/// \file sample_writer.hpp
/// Serialization of sample matrices to the common interchange formats.
///
/// Sample matrices everywhere in this library are measurement-major
/// (row = one measurement/detector across shots). Files are shot-major
/// (one record per shot), matching what decoders and analysis scripts
/// consume; the writer performs the transposition.
///
/// Formats:
///   k01  — ASCII '0'/'1' per bit, one line per shot.
///   kHex — lowercase hex per shot (4 bits/char, LSB-first nibbles),
///          one line per shot.
///   kB8  — raw binary: ceil(bits/8) bytes per shot, bit i of the record
///          at byte i/8, bit position i%8 (Stim's b8 layout).
///   kDets— sparse ASCII: "shot D1 D5 L0" event lists, one line per
///          shot (detector sampling only; pass num_detectors so indices
///          beyond it print as logical observables).

#include <cstdint>
#include <ostream>
#include <string>

#include "bitvec/bit_matrix.hpp"

namespace symphase {

enum class SampleFormat { k01, kHex, kB8, kDets };

/// Parses "01", "hex", "b8", "dets"; throws on anything else.
SampleFormat sample_format_from_name(std::string_view name);

/// Writes `samples` (measurement-major) to `out` shot-major in `format`.
/// For kDets, rows with index >= num_detectors are rendered as
/// "L<index - num_detectors>"; pass num_detectors == rows for pure
/// detector output. `num_shots` caps how many leading columns are
/// written (default: all) — the streaming WriterSink uses this to emit
/// only the valid shots of a fixed-width shard block.
void write_samples(const BitMatrix& samples, SampleFormat format,
                   std::ostream& out,
                   std::size_t num_detectors = SIZE_MAX,
                   std::size_t num_shots = SIZE_MAX);

/// Convenience: serialize to a string.
std::string samples_to_string(const BitMatrix& samples, SampleFormat format,
                              std::size_t num_detectors = SIZE_MAX,
                              std::size_t num_shots = SIZE_MAX);

/// Reads back a shot-major k01/kHex/kB8 stream into a measurement-major
/// matrix with `bits_per_shot` columns-per-record. Round-trips
/// write_samples exactly. Throws on malformed input.
BitMatrix read_samples(std::istream& in, SampleFormat format,
                       std::size_t bits_per_shot);

}  // namespace symphase
