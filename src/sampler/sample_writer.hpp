#pragma once

/// \file sample_writer.hpp
/// Serialization of sample matrices to the common interchange formats.
///
/// Sample matrices everywhere in this library are measurement-major
/// (row = one measurement/detector across shots). Files are shot-major
/// (one record per shot), matching what decoders and analysis scripts
/// consume; the writer performs the transposition.
///
/// Formats:
///   k01  — ASCII '0'/'1' per bit, one line per shot.
///   kHex — lowercase hex per shot (4 bits/char, LSB-first nibbles),
///          one line per shot.
///   kB8  — raw binary: ceil(bits/8) bytes per shot, bit i of the record
///          at byte i/8, bit position i%8 (Stim's b8 layout).
///   kPtb64— raw binary, transposed in 64-shot groups (Stim's ptb64):
///          for each group of 64 shots, one little-endian u64 per record
///          bit, bit j of the word = that record bit in shot 64g+j. The
///          final group is zero-padded when shots % 64 != 0, so readers
///          need the true shot count out of band.
///   kDets— sparse ASCII: "shot D1 D5 L0" event lists, one line per
///          shot (detector sampling only; pass num_detectors so indices
///          beyond it print as logical observables).
///
/// Record boundaries vs. streaming: k01/kHex/kB8/kDets records are
/// per-shot, so any shot-aligned chunking concatenates cleanly. kPtb64
/// records span 64 shots, so a streamed writer may only flush on
/// 64-shot-aligned boundaries (WriterSink enforces this; the engine's
/// word-aligned shard chunks always satisfy it).

#include <cstdint>
#include <ostream>
#include <string>

#include "bitvec/bit_matrix.hpp"

namespace symphase {

enum class SampleFormat { k01, kHex, kB8, kPtb64, kDets };

/// Parses "01", "hex", "b8", "ptb64", "dets"; throws on anything else.
SampleFormat sample_format_from_name(std::string_view name);

/// Writes `samples` (measurement-major) to `out` shot-major in `format`.
/// For kDets, rows with index >= num_detectors are rendered as
/// "L<index - num_detectors>"; pass num_detectors == rows for pure
/// detector output. `num_shots` caps how many leading columns are
/// written (default: all) — the streaming WriterSink uses this to emit
/// only the valid shots of a fixed-width shard block.
void write_samples(const BitMatrix& samples, SampleFormat format,
                   std::ostream& out,
                   std::size_t num_detectors = SIZE_MAX,
                   std::size_t num_shots = SIZE_MAX);

/// Convenience: serialize to a string.
std::string samples_to_string(const BitMatrix& samples, SampleFormat format,
                              std::size_t num_detectors = SIZE_MAX,
                              std::size_t num_shots = SIZE_MAX);

/// Reads back a k01/kHex/kB8/kPtb64 stream into a measurement-major
/// matrix with `bits_per_shot` columns-per-record. Round-trips
/// write_samples exactly, except that kPtb64's zero-padded final group
/// makes the returned shot count a multiple of 64. Throws on malformed
/// input.
BitMatrix read_samples(std::istream& in, SampleFormat format,
                       std::size_t bits_per_shot);

}  // namespace symphase
