#pragma once

/// \file symphase_sampler.hpp
/// Algorithm 1's Sampling step: measurement samples as an F2 matrix
/// product M_samples = M · B (paper Eq. (4)).
///
/// Built from a compiled circuit's measurement expressions. Two multiply
/// strategies are provided:
///   - kSparse (default, what SymPhase.jl ships): XOR-accumulate the B
///     rows named by each expression — O(nnz · n_smp / 64);
///   - kDense: materialize M densely and use the dense F2 product — the
///     §3.2.3 ablation point.
/// Results come back measurement-major: row k of the output is
/// measurement k across all shots, matching Eq. (4)'s column-per-sample
/// convention (transposed storage).

#include <cstdint>
#include <vector>

#include "bitvec/bit_matrix.hpp"
#include "bitvec/sparse_bit_matrix.hpp"
#include "sampler/symbol_value_sampler.hpp"
#include "symbolic/symphase_compiler.hpp"

namespace symphase {

enum class MultiplyStrategy { kSparse, kDense };

class SymPhaseSampler {
 public:
  /// Consumes a compiled circuit's expressions and symbol table. The
  /// SymbolTable reference must outlive the sampler (the facade in
  /// core/symphase.hpp owns both).
  SymPhaseSampler(const SymbolTable& symbols,
                  const std::vector<MeasurementExpression>& expressions,
                  MultiplyStrategy strategy = MultiplyStrategy::kSparse);

  std::size_t num_measurements() const { return expr_matrix_.rows(); }
  std::size_t num_used_symbols() const { return values_.num_rows(); }
  MultiplyStrategy strategy() const { return strategy_; }

  /// Generates `num_samples` joint samples of all measurements.
  /// Output: num_measurements x num_samples bit-matrix (row = one
  /// measurement across shots). Both the B generation and the sparse
  /// M·B product are shot-sharded across worker threads; the result is
  /// deterministic in `seed` and independent of `num_threads`
  /// (0 = hardware concurrency).
  BitMatrix sample(std::size_t num_samples, std::uint64_t seed,
                   std::size_t num_threads = 0) const;

  /// Streaming building block: computes global shard `shard` of the
  /// sample(num_samples, seed, ·) matrix into the leading words of
  /// `block` (num_measurements() x kSampleShardBits scratch, fully
  /// overwritten). Concatenating the blocks for shards 0..num_sample_shards
  /// reproduces sample() bit-for-bit; see docs/api.md. Thread-safe for
  /// distinct `block`s.
  void sample_shard_block(std::size_t shard, std::size_t num_samples,
                          std::uint64_t seed, BitMatrix& block) const;

  /// Exact probability that measurement k reads 1, computed from the
  /// symbolic expression (independent groups combined exactly).
  /// O(expression length); used by tests and the examples.
  double outcome_probability(std::size_t k) const;

 private:
  static std::vector<std::uint32_t> collect_used_symbols(
      const std::vector<MeasurementExpression>& expressions);

  MultiplyStrategy strategy_;
  SymbolValueSampler values_;
  /// Expressions with symbol ids remapped to B-row indices.
  SparseBitMatrix expr_matrix_;
  /// Dense M (kDense strategy only): materialized once instead of per
  /// sample() call so the shard-streamed path can reuse it.
  BitMatrix dense_matrix_;
  const SymbolTable& symbols_;
  /// Original symbol ids per expression (for probability queries).
  std::vector<std::vector<std::uint32_t>> raw_expressions_;
};

}  // namespace symphase
