#include "core/symphase.hpp"

#include <sstream>

#include "api/sample_sink.hpp"
#include "api/sample_stream.hpp"
#include "common/simd_word.hpp"
#include "tableau/col_major_tableau.hpp"
#include "tableau/row_major_tableau.hpp"

namespace symphase {

namespace {

template <typename Layout>
void compile_with_layout(const Circuit& circuit,
                         std::unique_ptr<SymbolTable>& symbols,
                         std::unique_ptr<std::vector<MeasurementExpression>>&
                             expressions) {
  SymPhaseCompiler<Layout> compiler(circuit);
  symbols = std::make_unique<SymbolTable>(compiler.symbols());
  expressions = std::make_unique<std::vector<MeasurementExpression>>(
      compiler.expressions());
}

}  // namespace

std::vector<std::uint32_t> xor_symbol_lists(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      ++i;  // equal symbols cancel over F2
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + static_cast<std::ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(j), b.end());
  return out;
}

namespace {

/// Detector/observable expressions: XOR of the referenced measurements'
/// symbolic expressions.
std::vector<MeasurementExpression> combine_expressions(
    const std::vector<std::vector<std::size_t>>& index_lists,
    const std::vector<MeasurementExpression>& measurements,
    const SymbolTable& symbols, const char* what) {
  std::vector<MeasurementExpression> out;
  out.reserve(index_lists.size());
  for (const auto& indices : index_lists) {
    MeasurementExpression combined;
    for (const std::size_t m : indices) {
      SYMPHASE_CHECK(m < measurements.size());
      combined.symbols =
          xor_symbol_lists(combined.symbols, measurements[m].symbols);
    }
    // A detector/observable must be deterministic in the absence of
    // faults: a surviving measurement coin means the declared parity is
    // not actually fixed by the circuit.
    for (const std::uint32_t sym : combined.symbols) {
      SYMPHASE_CHECK_MSG(
          symbols.group_of(sym).kind != SymbolGroupKind::kCoin,
          what << " " << out.size()
               << " is not deterministic: its parity depends on the random "
                  "measurement coin s"
               << sym);
    }
    out.push_back(std::move(combined));
  }
  return out;
}

}  // namespace

CompiledSampler CompiledSampler::compile(const Circuit& circuit,
                                         const CompileOptions& options) {
  CompiledSampler result;
  switch (options.layout) {
    case CompileOptions::Layout::kBlocked512:
      compile_with_layout<BlockedTableau>(circuit, result.symbols_,
                                          result.expressions_);
      break;
    case CompileOptions::Layout::kRowMajor:
      compile_with_layout<RowMajorTableau>(circuit, result.symbols_,
                                           result.expressions_);
      break;
    case CompileOptions::Layout::kColMajor:
      compile_with_layout<ColMajorTableau>(circuit, result.symbols_,
                                           result.expressions_);
      break;
  }
  result.sampler_ = std::make_unique<SymPhaseSampler>(
      *result.symbols_, *result.expressions_, options.multiply);

  const DetectorLayout layout = resolve_detectors(circuit);
  result.detector_expressions_ =
      std::make_unique<std::vector<MeasurementExpression>>(
          combine_expressions(layout.detectors, *result.expressions_,
                              *result.symbols_, "DETECTOR"));
  result.observable_expressions_ =
      std::make_unique<std::vector<MeasurementExpression>>(
          combine_expressions(layout.observables, *result.expressions_,
                              *result.symbols_, "OBSERVABLE"));
  std::vector<MeasurementExpression> joint = *result.detector_expressions_;
  joint.insert(joint.end(), result.observable_expressions_->begin(),
               result.observable_expressions_->end());
  result.detector_sampler_ = std::make_unique<SymPhaseSampler>(
      *result.symbols_, joint, options.multiply);
  return result;
}

void CompiledSampler::sample_shard_block(std::size_t shard,
                                         std::size_t num_samples,
                                         std::uint64_t seed,
                                         BitMatrix& block) const {
  sampler_->sample_shard_block(shard, num_samples, seed, block);
}

void CompiledSampler::sample_detection_shard_block(std::size_t shard,
                                                   std::size_t num_samples,
                                                   std::uint64_t seed,
                                                   BitMatrix& block) const {
  detector_sampler_->sample_shard_block(shard, num_samples, seed, block);
}

CompiledSampler::DetectionEvents CompiledSampler::sample_detection_events(
    std::size_t num_samples, std::uint64_t seed,
    std::size_t num_threads) const {
  // Thin wrapper over the streaming engine: materialize the joint task
  // into a BitMatrixSink, then split the detector/observable bands.
  StreamSpec spec;
  spec.bits_per_shot = num_detectors() + num_observables();
  spec.num_detectors = num_detectors();
  spec.num_shots = num_samples;
  spec.num_threads = num_threads;
  BitMatrixSink sink;
  stream_sample_blocks(
      spec,
      [&](std::size_t, std::size_t shard, BitMatrix& block) {
        sample_detection_shard_block(shard, num_samples, seed, block);
      },
      sink);
  const BitMatrix joint = sink.take();
  DetectionEvents events{
      BitMatrix(num_detectors(), num_samples),
      BitMatrix(num_observables(), num_samples),
  };
  for (std::size_t d = 0; d < num_detectors(); ++d) {
    wide::copy_words(events.detectors.row(d), joint.row(d),
                     joint.words_per_row());
  }
  for (std::size_t k = 0; k < num_observables(); ++k) {
    wide::copy_words(events.observables.row(k), joint.row(num_detectors() + k),
                     joint.words_per_row());
  }
  return events;
}

double CompiledSampler::detector_probability(std::size_t d) const {
  SYMPHASE_CHECK(d < num_detectors());
  return detector_sampler_->outcome_probability(d);
}

double CompiledSampler::observable_probability(std::size_t k) const {
  SYMPHASE_CHECK(k < num_observables());
  return detector_sampler_->outcome_probability(num_detectors() + k);
}

std::size_t CompiledSampler::num_measurements() const {
  return expressions_->size();
}

std::size_t CompiledSampler::num_symbols() const {
  return symbols_->num_symbols();
}

std::size_t CompiledSampler::expression_nnz() const {
  std::size_t total = 0;
  for (const auto& e : *expressions_) {
    total += e.symbols.size();
  }
  return total;
}

BitMatrix CompiledSampler::sample(std::size_t num_samples, std::uint64_t seed,
                                  std::size_t num_threads) const {
  // Thin wrapper over the streaming engine with a materializing sink;
  // the shard/RNG contract makes this bit-identical to the historical
  // full-matrix path (tests/streaming_session_test.cpp pins it).
  StreamSpec spec;
  spec.bits_per_shot = num_measurements();
  spec.num_shots = num_samples;
  spec.num_threads = num_threads;
  BitMatrixSink sink;
  stream_sample_blocks(
      spec,
      [&](std::size_t, std::size_t shard, BitMatrix& block) {
        sample_shard_block(shard, num_samples, seed, block);
      },
      sink);
  return sink.take();
}

double CompiledSampler::outcome_probability(std::size_t k) const {
  return sampler_->outcome_probability(k);
}

BitMatrix sample_circuit(const Circuit& circuit, std::size_t num_samples,
                         std::uint64_t seed, const CompileOptions& options) {
  return CompiledSampler::compile(circuit, options)
      .sample(num_samples, seed);
}

std::string expression_to_string(const MeasurementExpression& expr) {
  if (expr.symbols.empty()) {
    return "0";
  }
  std::ostringstream oss;
  bool first = true;
  for (const std::uint32_t s : expr.symbols) {
    if (!first) {
      oss << " ^ ";
    }
    first = false;
    if (s == 0) {
      oss << "1";
    } else {
      oss << "s" << s;
    }
  }
  return oss.str();
}

}  // namespace symphase
