#pragma once

/// \file symphase.hpp
/// Public API of the SymPhase library.
///
/// The typical workflow mirrors the paper's Algorithm 1:
///
///   symphase::Circuit circuit = symphase::parse_circuit(text);
///   symphase::CompiledSampler sampler =
///       symphase::CompiledSampler::compile(circuit);      // Initialization
///   symphase::BitMatrix samples = sampler.sample(10000, seed);  // Sampling
///
/// `samples` is measurement-major: row k holds measurement k across all
/// shots, bit j of row k being shot j's outcome.
///
/// For request-shaped workloads — many tasks against one circuit, huge
/// shot counts, streaming output — prefer the session layer in
/// src/api/ (SimulatorSession + SampleTask + SampleSink; see
/// docs/api.md). The matrix-returning methods below are thin wrappers
/// over the same shard-streaming engine, kept for the small-batch
/// workflow above and for backward compatibility.
///
/// Everything else (tableau layouts, the frame-simulation baseline, the
/// state-vector oracle) is available through the per-module headers under
/// src/; this header pulls in the pieces a downstream sampling user needs.

#include <cstdint>
#include <memory>

#include "bitvec/bit_matrix.hpp"
#include "circuit/circuit.hpp"
#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "sampler/frame_simulator.hpp"
#include "sampler/symphase_sampler.hpp"
#include "symbolic/error_model.hpp"
#include "symbolic/symphase_compiler.hpp"

namespace symphase {

/// Options for CompiledSampler::compile.
struct CompileOptions {
  /// Data layout for the symbolic tableau pass (paper §4). The blocked
  /// layout is the paper's; the others exist for the layout study.
  enum class Layout { kBlocked512, kRowMajor, kColMajor };
  Layout layout = Layout::kBlocked512;
  MultiplyStrategy multiply = MultiplyStrategy::kSparse;
};

/// A circuit compiled once (Algorithm 1 Initialization) and sampled many
/// times (Algorithm 1 Sampling). Cheap to sample repeatedly; the circuit
/// is never traversed again after construction.
class CompiledSampler {
 public:
  static CompiledSampler compile(const Circuit& circuit,
                                 const CompileOptions& options = {});

  std::size_t num_measurements() const;
  std::size_t num_symbols() const;
  /// Total expression non-zeros (drives per-shot sampling cost).
  std::size_t expression_nnz() const;

  const SymbolTable& symbols() const { return *symbols_; }
  const std::vector<MeasurementExpression>& expressions() const {
    return *expressions_;
  }

  /// num_measurements() x num_samples outcome matrix; deterministic in
  /// `seed` and independent of `num_threads` (0 = hardware concurrency).
  /// Materializing wrapper over the shard-streaming engine (src/api/).
  BitMatrix sample(std::size_t num_samples, std::uint64_t seed,
                   std::size_t num_threads = 0) const;

  /// Streaming building block: computes global shard `shard` of the
  /// sample(num_samples, seed, ·) matrix into `block`
  /// (num_measurements() x kSampleShardBits scratch, leading words
  /// overwritten). Drives SimulatorSession's kSymPhase measurement
  /// streams; thread-safe for distinct blocks.
  void sample_shard_block(std::size_t shard, std::size_t num_samples,
                          std::uint64_t seed, BitMatrix& block) const;

  /// Exact marginal P(measurement k == 1).
  double outcome_probability(std::size_t k) const;

  // --- Detector / observable sampling (QEC workflows) -----------------
  std::size_t num_detectors() const { return detector_expressions_->size(); }
  std::size_t num_observables() const {
    return observable_expressions_->size();
  }
  const std::vector<MeasurementExpression>& detector_expressions() const {
    return *detector_expressions_;
  }
  const std::vector<MeasurementExpression>& observable_expressions() const {
    return *observable_expressions_;
  }

  struct DetectionEvents {
    BitMatrix detectors;    // num_detectors x num_samples
    BitMatrix observables;  // num_observables x num_samples
  };
  /// Joint samples of all detectors and logical observables (same shot
  /// j in both matrices comes from one symbol assignment b_j).
  /// Materializing wrapper over the shard-streaming engine (src/api/).
  DetectionEvents sample_detection_events(std::size_t num_samples,
                                          std::uint64_t seed,
                                          std::size_t num_threads = 0) const;

  /// Streaming building block for the joint detection record: shard
  /// `shard` of a (num_detectors + num_observables)-row stream, detector
  /// rows first. Same contract as sample_shard_block.
  void sample_detection_shard_block(std::size_t shard,
                                    std::size_t num_samples,
                                    std::uint64_t seed,
                                    BitMatrix& block) const;

  /// Exact marginal P(detector d fires).
  double detector_probability(std::size_t d) const;
  /// Exact marginal P(logical observable k flips).
  double observable_probability(std::size_t k) const;

  /// Extracts the detector error model (decoder input): one independent
  /// mechanism per fault pattern that flips at least one detector or
  /// observable. See symbolic/error_model.hpp.
  DetectorErrorModel error_model() const {
    return build_error_model(*symbols_, *detector_expressions_,
                             *observable_expressions_);
  }

 private:
  CompiledSampler() = default;

  // Compilation artifacts. The tableau itself is discarded after
  // compilation; only the symbol table and expressions are kept.
  std::unique_ptr<SymbolTable> symbols_;
  std::unique_ptr<std::vector<MeasurementExpression>> expressions_;
  std::unique_ptr<SymPhaseSampler> sampler_;
  // Detector/observable expressions (XORs of measurement expressions)
  // and their joint sampler (detectors first, observables after).
  std::unique_ptr<std::vector<MeasurementExpression>> detector_expressions_;
  std::unique_ptr<std::vector<MeasurementExpression>> observable_expressions_;
  std::unique_ptr<SymPhaseSampler> detector_sampler_;
};

/// XOR (symmetric difference) of sorted symbol-id expressions.
std::vector<std::uint32_t> xor_symbol_lists(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);

/// One-call convenience: compile + sample.
BitMatrix sample_circuit(const Circuit& circuit, std::size_t num_samples,
                         std::uint64_t seed,
                         const CompileOptions& options = {});

/// Renders a measurement expression like "s3 ^ s7 ^ 1" (symbol 0 prints
/// as the constant 1). Used by the fault-analysis tooling and examples.
std::string expression_to_string(const MeasurementExpression& expr);

}  // namespace symphase
