#pragma once

/// \file symphase_compiler.hpp
/// Algorithm 1's Initialization: one forward pass that turns a noisy
/// stabilizer circuit into symbolic measurement-outcome expressions.
///
/// The compiler runs the A-G tableau algorithm with phase columns
/// widened to bit-vectors over symbols (paper Eq. (3)), applying
///   Init-C  — Clifford gates update X/Z bands and the constant column,
///   Init-P  — Pauli faults flip one symbol column on the rows whose
///             generators anticommute with the fault Pauli,
///   Init-M  — measurements either mint a fresh coin symbol (random) or
///             accumulate a symbolic expression in the scratch row
///             (deterministic).
/// The output is one F2 expression (sorted symbol-id list; id 0 is the
/// constant 1) per measurement, consumed by sampler::SymPhaseSampler as
/// the sparse matrix M of Eq. (4).

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/aligned.hpp"
#include "symbolic/symbol_table.hpp"
#include "tableau/blocked_tableau.hpp"
#include "tableau/col_major_tableau.hpp"
#include "tableau/row_major_tableau.hpp"

namespace symphase {

/// One measurement's compiled outcome.
struct MeasurementExpression {
  /// Sorted, duplicate-free symbol ids whose XOR (under a sampled
  /// assignment, with symbol 0 fixed to 1) gives the outcome bit.
  std::vector<std::uint32_t> symbols;
  bool was_random = false;

  bool operator==(const MeasurementExpression&) const = default;
};

template <typename Layout>
class SymPhaseCompiler {
 public:
  /// Runs the full Initialization pass over `circuit`.
  explicit SymPhaseCompiler(const Circuit& circuit);

  std::size_t num_qubits() const { return tableau_.num_qubits(); }
  const SymbolTable& symbols() const { return symbols_; }
  const std::vector<MeasurementExpression>& expressions() const {
    return expressions_;
  }
  std::size_t num_measurements() const { return expressions_.size(); }

  /// Total non-zeros across all expressions (sampling cost driver).
  std::size_t expression_nnz() const {
    std::size_t total = 0;
    for (const auto& e : expressions_) {
      total += e.symbols.size();
    }
    return total;
  }

  const Layout& tableau() const { return tableau_; }

 private:
  /// Upper bound on phase columns: 1 + every measurement/reset (each may
  /// mint a coin) + every fault bit.
  static std::size_t phase_capacity_for(const Circuit& circuit);

  void apply_instruction(const Instruction& inst);
  void apply_unitary(GateType type, std::uint32_t a, std::uint32_t b);
  void apply_noise1(GateType type, std::uint32_t q, double p);
  void apply_noise2(double p, std::uint32_t a, std::uint32_t b);

  /// Init-M for one qubit; returns the outcome expression.
  MeasurementExpression measure(std::uint32_t a);
  /// Applies X^expr (resp. Z^expr) at qubit a without leaving row mode.
  /// Used for conditional reset flips and for the record-controlled
  /// Pauli gates COND_X/COND_Y/COND_Z (the paper's §6 conditional-Pauli
  /// extension for dynamic circuits).
  void conditional_x_in_row_mode(std::uint32_t a,
                                 const std::vector<std::uint32_t>& expr);
  void conditional_z_in_row_mode(std::uint32_t a,
                                 const std::vector<std::uint32_t>& expr);
  void apply_controlled(GateType type, std::uint32_t rec_target,
                        std::uint32_t qubit);

  /// Allocates tableau phase columns for symbols [first, first+count),
  /// asserting SymbolTable ids stay aligned with phase-column indices.
  void mint_symbol_columns(std::uint32_t first, std::uint32_t count);

  std::vector<std::uint32_t> read_scratch_expression();

  SymbolTable symbols_;
  Layout tableau_;
  std::vector<MeasurementExpression> expressions_;
  AlignedWordVec phase_buffer_;
};

// Explicitly instantiated for the three layouts (see symphase_compiler.cpp).
extern template class SymPhaseCompiler<RowMajorTableau>;
extern template class SymPhaseCompiler<ColMajorTableau>;
extern template class SymPhaseCompiler<BlockedTableau>;

/// The default (paper) configuration.
using DefaultSymPhaseCompiler = SymPhaseCompiler<BlockedTableau>;

}  // namespace symphase
