#include "symbolic/error_model.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace symphase {

namespace {

/// Symptoms (flipped detectors + observables) of a single symbol.
struct Symptoms {
  std::vector<std::uint32_t> detectors;
  std::vector<std::uint32_t> observables;

  bool empty() const { return detectors.empty() && observables.empty(); }

  bool operator<(const Symptoms& other) const {
    return std::tie(detectors, observables) <
           std::tie(other.detectors, other.observables);
  }

  /// XOR-merge (symmetric difference of sorted index lists).
  static std::vector<std::uint32_t> merge(
      const std::vector<std::uint32_t>& a,
      const std::vector<std::uint32_t>& b) {
    std::vector<std::uint32_t> out;
    std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                  std::back_inserter(out));
    return out;
  }

  Symptoms operator^(const Symptoms& other) const {
    return {merge(detectors, other.detectors),
            merge(observables, other.observables)};
  }
};

}  // namespace

DetectorErrorModel build_error_model(
    const SymbolTable& symbols,
    const std::vector<MeasurementExpression>& detector_expressions,
    const std::vector<MeasurementExpression>& observable_expressions) {
  // Invert: symbol -> symptoms.
  std::vector<Symptoms> symbol_symptoms(symbols.num_symbols());
  const auto scan = [&](const std::vector<MeasurementExpression>& exprs,
                        bool is_observable) {
    for (std::size_t k = 0; k < exprs.size(); ++k) {
      for (const std::uint32_t sym : exprs[k].symbols) {
        SYMPHASE_CHECK_MSG(
            symbols.group_of(sym).kind != SymbolGroupKind::kCoin,
            "detector error model requires deterministic detectors, but "
            "symbol s"
                << sym << " is a measurement coin");
        if (sym == 0) {
          continue;  // the constant shifts parity but is not a fault
        }
        auto& s = symbol_symptoms[sym];
        auto& list = is_observable ? s.observables : s.detectors;
        list.push_back(static_cast<std::uint32_t>(k));
      }
    }
  };
  scan(detector_expressions, false);
  scan(observable_expressions, true);

  DetectorErrorModel model;
  model.num_detectors = detector_expressions.size();
  model.num_observables = observable_expressions.size();

  for (const SymbolGroup& group : symbols.groups()) {
    switch (group.kind) {
      case SymbolGroupKind::kConstant:
      case SymbolGroupKind::kCoin:
        break;
      case SymbolGroupKind::kBernoulli: {
        const Symptoms& s = symbol_symptoms[group.first_symbol];
        if (!s.empty() && group.probability > 0.0) {
          model.mechanisms.push_back(
              {group.probability, s.detectors, s.observables});
        }
        break;
      }
      case SymbolGroupKind::kDepolarize1:
      case SymbolGroupKind::kDepolarize2: {
        if (group.probability <= 0.0) {
          break;
        }
        const std::uint32_t members = group.num_symbols;
        const std::uint32_t patterns = 1u << members;
        const double p_each =
            group.probability / static_cast<double>(patterns - 1);
        // Merge patterns with identical symptoms.
        std::map<Symptoms, double> merged;
        for (std::uint32_t pattern = 1; pattern < patterns; ++pattern) {
          Symptoms s;
          for (std::uint32_t m = 0; m < members; ++m) {
            if ((pattern >> m) & 1) {
              s = s ^ symbol_symptoms[group.first_symbol + m];
            }
          }
          if (!s.empty()) {
            merged[s] += p_each;
          }
        }
        for (const auto& [symptoms, probability] : merged) {
          model.mechanisms.push_back(
              {probability, symptoms.detectors, symptoms.observables});
        }
        break;
      }
    }
  }
  return model;
}

std::string DetectorErrorModel::to_text() const {
  std::ostringstream oss;
  for (const ErrorMechanism& mech : mechanisms) {
    oss << "error(" << mech.probability << ")";
    for (const std::uint32_t d : mech.detectors) {
      oss << " D" << d;
    }
    for (const std::uint32_t k : mech.observables) {
      oss << " L" << k;
    }
    oss << '\n';
  }
  return oss.str();
}

DetectorErrorModel DetectorErrorModel::canonicalized() const {
  std::map<std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>,
           double>
      merged;
  for (const ErrorMechanism& mech : mechanisms) {
    double& p = merged[{mech.detectors, mech.observables}];
    // Two independent triggers of the same symptoms act like one
    // mechanism that fires when exactly one of them does.
    p = p * (1.0 - mech.probability) + mech.probability * (1.0 - p);
  }
  DetectorErrorModel out;
  out.num_detectors = num_detectors;
  out.num_observables = num_observables;
  for (const auto& [symptoms, probability] : merged) {
    out.mechanisms.push_back({probability, symptoms.first, symptoms.second});
  }
  return out;
}

double DetectorErrorModel::detector_probability(std::size_t d) const {
  // Independent mechanisms: P(odd # of flips) via bias product.
  double bias = 1.0;
  for (const ErrorMechanism& mech : mechanisms) {
    if (std::binary_search(mech.detectors.begin(), mech.detectors.end(),
                           static_cast<std::uint32_t>(d))) {
      bias *= 1.0 - 2.0 * mech.probability;
    }
  }
  return (1.0 - bias) / 2.0;
}

}  // namespace symphase
