#pragma once

/// \file error_model.hpp
/// Detector-error-model (DEM) extraction from symbolic expressions.
///
/// Phase symbolization makes the fault → measurement map explicit: every
/// detector/observable expression lists exactly the fault symbols that
/// flip it. Inverting that map per noise *group* (one Bernoulli site, or
/// one correlated depolarize channel) yields the independent error
/// mechanisms a matching/BP decoder consumes:
///
///     error(0.002) D3 D7 L0
///
/// — "with probability 0.002, detectors 3 and 7 fire and logical 0
/// flips". Correlated channels contribute one mechanism per non-identity
/// Pauli pattern, with symptoms equal to the XOR of the pattern's member
/// symbols' symptoms; patterns with identical symptoms are merged by
/// summing probabilities (mod-2 on simultaneous occurrence is a second-
/// order effect ignored here, as is standard for DEMs).
///
/// The related-work algorithms the paper compares against (Delfosse &
/// Paetznick's ABC simulation) compute exactly this relation by a
/// backward pass; here it falls out of Algorithm 1's forward pass.

#include <cstdint>
#include <string>
#include <vector>

#include "symbolic/symbol_table.hpp"
#include "symbolic/symphase_compiler.hpp"

namespace symphase {

struct ErrorMechanism {
  double probability = 0.0;
  std::vector<std::uint32_t> detectors;    // sorted detector indices
  std::vector<std::uint32_t> observables;  // sorted logical indices

  bool operator==(const ErrorMechanism&) const = default;
};

struct DetectorErrorModel {
  std::size_t num_detectors = 0;
  std::size_t num_observables = 0;
  std::vector<ErrorMechanism> mechanisms;

  /// Stim-DEM-style rendering: one "error(p) D.. L.." line per
  /// mechanism.
  std::string to_text() const;

  /// Marginal P(detector d fires) treating mechanisms as independent.
  /// Exact for Bernoulli fault sites; for correlated channels whose
  /// patterns were split into several mechanisms this is the standard
  /// DEM independence approximation (error O(p^2)).
  double detector_probability(std::size_t d) const;

  /// Merges mechanisms with identical symptom sets across the whole
  /// model (p = p1(1-p2) + p2(1-p1), the XOR of independent triggers)
  /// and sorts mechanisms by symptoms. Decoder-friendly canonical form.
  DetectorErrorModel canonicalized() const;
};

/// Builds the DEM from compiled detector/observable expressions.
/// Mechanisms with empty symptom sets (faults no detector sees) are
/// dropped; mechanisms within one correlated group are merged by
/// symptom. Throws if any expression references a measurement coin
/// (non-deterministic detector).
DetectorErrorModel build_error_model(
    const SymbolTable& symbols,
    const std::vector<MeasurementExpression>& detector_expressions,
    const std::vector<MeasurementExpression>& observable_expressions);

}  // namespace symphase
