#pragma once

/// \file symbol_table.hpp
/// Bit-symbols and their sampling distributions (paper §3.1).
///
/// Phase symbolization introduces one F2 symbol per independent random
/// bit in the circuit:
///   - a fair coin per *random* computational-basis measurement,
///   - one Bernoulli(p) bit per X/Y/Z_ERROR site,
///   - correlated groups for depolarization: DEPOLARIZE1(p) is X^{s1}Z^{s2}
///     with (s1 s2) ~ {00:1-p, 10:p/3, 01:p/3, 11:p/3}; DEPOLARIZE2(p) is
///     X^{s1}Z^{s2} ⊗ X^{s3}Z^{s4} with the 15 non-identity patterns at
///     p/15 each.
/// Symbol 0 is the constant 1 (the paper's s_0) and always samples to 1.
///
/// Symbol ids coincide with the phase-column indices of the symbolic
/// tableau; SymPhaseCompiler keeps the two allocators in lockstep.

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace symphase {

enum class SymbolGroupKind : std::uint8_t {
  kConstant,     // symbol 0; always 1
  kCoin,         // fair coin from a random measurement
  kBernoulli,    // independent Bernoulli(p) fault bit
  kDepolarize1,  // 2 correlated bits
  kDepolarize2,  // 4 correlated bits
};

struct SymbolGroup {
  SymbolGroupKind kind = SymbolGroupKind::kConstant;
  double probability = 0.0;       // channel parameter p (unused for coins)
  std::uint32_t first_symbol = 0; // id of the group's first symbol
  std::uint32_t num_symbols = 1;
};

class SymbolTable {
 public:
  SymbolTable() {
    groups_.push_back({SymbolGroupKind::kConstant, 0.0, 0, 1});
    symbol_group_.push_back(0);
  }

  /// Total symbol count including the constant symbol 0.
  std::size_t num_symbols() const { return symbol_group_.size(); }

  const std::vector<SymbolGroup>& groups() const { return groups_; }

  const SymbolGroup& group_of(std::uint32_t symbol) const {
    SYMPHASE_ASSERT(symbol < symbol_group_.size());
    return groups_[symbol_group_[symbol]];
  }

  std::uint32_t group_index_of(std::uint32_t symbol) const {
    SYMPHASE_ASSERT(symbol < symbol_group_.size());
    return symbol_group_[symbol];
  }

  std::uint32_t add_coin() {
    return add_group(SymbolGroupKind::kCoin, 0.5, 1);
  }

  std::uint32_t add_bernoulli(double p) {
    return add_group(SymbolGroupKind::kBernoulli, p, 1);
  }

  /// Returns the first of 2 consecutive symbols (X component, Z component).
  std::uint32_t add_depolarize1(double p) {
    return add_group(SymbolGroupKind::kDepolarize1, p, 2);
  }

  /// Returns the first of 4 consecutive symbols
  /// (X_a, Z_a, X_b, Z_b components).
  std::uint32_t add_depolarize2(double p) {
    return add_group(SymbolGroupKind::kDepolarize2, p, 4);
  }

 private:
  std::uint32_t add_group(SymbolGroupKind kind, double p,
                          std::uint32_t count) {
    const auto first = static_cast<std::uint32_t>(symbol_group_.size());
    groups_.push_back({kind, p, first, count});
    const auto gi = static_cast<std::uint32_t>(groups_.size() - 1);
    for (std::uint32_t k = 0; k < count; ++k) {
      symbol_group_.push_back(gi);
    }
    return first;
  }

  std::vector<SymbolGroup> groups_;
  std::vector<std::uint32_t> symbol_group_;  // symbol id -> group index
};

}  // namespace symphase
