#include "symbolic/symphase_compiler.hpp"

#include "tableau/col_major_tableau.hpp"
#include "tableau/row_major_tableau.hpp"

namespace symphase {

template <typename Layout>
std::size_t SymPhaseCompiler<Layout>::phase_capacity_for(
    const Circuit& circuit) {
  std::size_t capacity = 1;  // constant column s_0
  for (const Instruction& inst : circuit.instructions()) {
    switch (inst.type) {
      case GateType::M:
      case GateType::MR:
      case GateType::R:
        capacity += inst.targets.size();
        break;
      case GateType::X_ERROR:
      case GateType::Y_ERROR:
      case GateType::Z_ERROR:
        capacity += inst.targets.size();
        break;
      case GateType::DEPOLARIZE1:
        capacity += 2 * inst.targets.size();
        break;
      case GateType::DEPOLARIZE2:
        capacity += 2 * inst.targets.size();  // 4 per pair = 2 per target
        break;
      default:
        break;
    }
  }
  return capacity;
}

template <typename Layout>
SymPhaseCompiler<Layout>::SymPhaseCompiler(const Circuit& circuit)
    : tableau_(std::max<std::size_t>(circuit.num_qubits(), 1),
               phase_capacity_for(circuit)) {
  expressions_.reserve(circuit.num_measurements());
  for (const Instruction& inst : circuit.instructions()) {
    apply_instruction(inst);
  }
}

template <typename Layout>
void SymPhaseCompiler<Layout>::mint_symbol_columns(std::uint32_t first,
                                                   std::uint32_t count) {
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::size_t col = tableau_.allocate_phase_column();
    SYMPHASE_ASSERT(col == first + k);
    (void)col;
    (void)first;
  }
}

template <typename Layout>
void SymPhaseCompiler<Layout>::apply_instruction(const Instruction& inst) {
  const GateInfo& info = gate_info(inst.type);
  switch (info.kind) {
    case GateKind::kUnitary1:
      for (const std::uint32_t q : inst.targets) {
        apply_unitary(inst.type, q, 0);
      }
      break;
    case GateKind::kUnitary2:
      for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
        apply_unitary(inst.type, inst.targets[i], inst.targets[i + 1]);
      }
      break;
    case GateKind::kMeasure:
      for (const std::uint32_t q : inst.targets) {
        MeasurementExpression expr = measure(q);
        if (inst.type == GateType::MR) {
          conditional_x_in_row_mode(q, expr.symbols);
        }
        expressions_.push_back(std::move(expr));
      }
      break;
    case GateKind::kReset:
      for (const std::uint32_t q : inst.targets) {
        const MeasurementExpression expr = measure(q);
        conditional_x_in_row_mode(q, expr.symbols);
      }
      break;
    case GateKind::kNoise1:
      for (const std::uint32_t q : inst.targets) {
        apply_noise1(inst.type, q, inst.probability);
      }
      break;
    case GateKind::kNoise2:
      for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
        apply_noise2(inst.probability, inst.targets[i], inst.targets[i + 1]);
      }
      break;
    case GateKind::kControlled:
      for (std::size_t i = 0; i < inst.targets.size(); i += 2) {
        apply_controlled(inst.type, inst.targets[i], inst.targets[i + 1]);
      }
      break;
    case GateKind::kDetector:
    case GateKind::kAnnotation:
      break;  // detectors are aggregated separately via resolve_detectors
  }
}

template <typename Layout>
void SymPhaseCompiler<Layout>::apply_controlled(GateType type,
                                                std::uint32_t rec_target,
                                                std::uint32_t qubit) {
  const std::uint32_t lookback = rec_lookback(rec_target);
  SYMPHASE_CHECK_MSG(lookback >= 1 && lookback <= expressions_.size(),
                     gate_name(type) << " record lookback " << lookback
                                     << " exceeds the measurement record");
  // The controlling bit is itself a symbolic expression; conditioning a
  // Pauli on it is exactly the X^e / Z^e phase update of Init-P, with e
  // the recorded expression instead of a single symbol.
  const std::vector<std::uint32_t>& expr =
      expressions_[expressions_.size() - lookback].symbols;
  tableau_.prepare_row_mode();
  if (type == GateType::COND_X || type == GateType::COND_Y) {
    conditional_x_in_row_mode(qubit, expr);
  }
  if (type == GateType::COND_Z || type == GateType::COND_Y) {
    conditional_z_in_row_mode(qubit, expr);
  }
}

template <typename Layout>
void SymPhaseCompiler<Layout>::apply_unitary(GateType type, std::uint32_t a,
                                             std::uint32_t b) {
  tableau_.prepare_column_mode();
  switch (type) {
    case GateType::I:
      break;
    case GateType::X:
      tableau_.gate_x(a);
      break;
    case GateType::Y:
      tableau_.gate_y(a);
      break;
    case GateType::Z:
      tableau_.gate_z(a);
      break;
    case GateType::H:
      tableau_.gate_h(a);
      break;
    case GateType::S:
      tableau_.gate_s(a);
      break;
    case GateType::S_DAG:
      tableau_.gate_s_dag(a);
      break;
    case GateType::SQRT_X:
      tableau_.gate_sqrt_x(a);
      break;
    case GateType::SQRT_X_DAG:
      tableau_.gate_sqrt_x_dag(a);
      break;
    case GateType::H_YZ:
      tableau_.gate_h_yz(a);
      break;
    case GateType::CNOT:
      tableau_.gate_cnot(a, b);
      break;
    case GateType::CZ:
      tableau_.gate_cz(a, b);
      break;
    case GateType::SWAP:
      tableau_.gate_swap(a, b);
      break;
    default:
      SYMPHASE_CHECK_MSG(false, "not a unitary gate: " << gate_name(type));
  }
}

template <typename Layout>
void SymPhaseCompiler<Layout>::apply_noise1(GateType type, std::uint32_t q,
                                            double p) {
  tableau_.prepare_column_mode();
  switch (type) {
    case GateType::X_ERROR: {
      const std::uint32_t s = symbols_.add_bernoulli(p);
      mint_symbol_columns(s, 1);
      const std::uint32_t cols[1] = {s};
      tableau_.phase_xor_cols_where_z(q, cols);
      break;
    }
    case GateType::Z_ERROR: {
      const std::uint32_t s = symbols_.add_bernoulli(p);
      mint_symbol_columns(s, 1);
      const std::uint32_t cols[1] = {s};
      tableau_.phase_xor_cols_where_x(q, cols);
      break;
    }
    case GateType::Y_ERROR: {
      // Y^s = (up to global phase) X^s Z^s with a single shared symbol.
      const std::uint32_t s = symbols_.add_bernoulli(p);
      mint_symbol_columns(s, 1);
      const std::uint32_t cols[1] = {s};
      tableau_.phase_xor_cols_where_z(q, cols);
      tableau_.phase_xor_cols_where_x(q, cols);
      break;
    }
    case GateType::DEPOLARIZE1: {
      // X^{s} Z^{s+1} with (s, s+1) jointly categorical (paper §3.1).
      const std::uint32_t s = symbols_.add_depolarize1(p);
      mint_symbol_columns(s, 2);
      const std::uint32_t xcols[1] = {s};
      const std::uint32_t zcols[1] = {s + 1};
      tableau_.phase_xor_cols_where_z(q, xcols);
      tableau_.phase_xor_cols_where_x(q, zcols);
      break;
    }
    default:
      SYMPHASE_CHECK_MSG(false, "not 1q noise: " << gate_name(type));
  }
}

template <typename Layout>
void SymPhaseCompiler<Layout>::apply_noise2(double p, std::uint32_t a,
                                            std::uint32_t b) {
  tableau_.prepare_column_mode();
  const std::uint32_t s = symbols_.add_depolarize2(p);
  mint_symbol_columns(s, 4);
  const std::uint32_t xa[1] = {s};
  const std::uint32_t za[1] = {s + 1};
  const std::uint32_t xb[1] = {s + 2};
  const std::uint32_t zb[1] = {s + 3};
  tableau_.phase_xor_cols_where_z(a, xa);
  tableau_.phase_xor_cols_where_x(a, za);
  tableau_.phase_xor_cols_where_z(b, xb);
  tableau_.phase_xor_cols_where_x(b, zb);
}

template <typename Layout>
MeasurementExpression SymPhaseCompiler<Layout>::measure(std::uint32_t a) {
  tableau_.prepare_row_mode();
  const std::size_t n = tableau_.num_qubits();
  const TableauShape& shape = tableau_.shape();

  // Pivot: first stabilizer anticommuting with Z_a.
  std::size_t pivot = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < n; ++i) {
    if (tableau_.x_bit(shape.stab_row(i), a)) {
      pivot = shape.stab_row(i);
      break;
    }
  }

  if (pivot != static_cast<std::size_t>(-1)) {
    // Random outcome: A-G collapse, then a fresh coin symbol becomes both
    // the new row's phase and the recorded expression.
    const std::size_t paired_destab = pivot - n;
    for (std::size_t i = 0; i < 2 * n; ++i) {
      if (i == pivot || i == paired_destab) {
        continue;
      }
      if (tableau_.x_bit(i, a)) {
        tableau_.row_mult(i, pivot);
      }
    }
    tableau_.row_copy(paired_destab, pivot);
    tableau_.row_set_plus_z(pivot, a);
    const std::uint32_t s = symbols_.add_coin();
    mint_symbol_columns(s, 1);
    tableau_.row_phase_xor_bit(pivot, s);
    return {{s}, true};
  }

  // Deterministic outcome: accumulate the stabilizer product selected by
  // destabilizer X hits into the scratch row; its phase vector is the
  // outcome expression.
  const std::size_t scratch = shape.scratch_row();
  tableau_.row_clear(scratch);
  for (std::size_t i = 0; i < n; ++i) {
    if (tableau_.x_bit(shape.destab_row(i), a)) {
      tableau_.row_mult(scratch, shape.stab_row(i));
    }
  }
  return {read_scratch_expression(), false};
}

template <typename Layout>
std::vector<std::uint32_t> SymPhaseCompiler<Layout>::read_scratch_expression() {
  const std::size_t pwords = tableau_.phase_words_used();
  if (phase_buffer_.size() < pwords) {
    phase_buffer_.resize(pwords);
  }
  tableau_.row_phase_read(tableau_.shape().scratch_row(),
                          phase_buffer_.data());
  std::vector<std::uint32_t> support;
  for (std::size_t w = 0; w < pwords; ++w) {
    Word bits = phase_buffer_[w];
    while (bits != 0) {
      const auto k = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      support.push_back(static_cast<std::uint32_t>(w * kWordBits + k));
    }
  }
  return support;
}

template <typename Layout>
void SymPhaseCompiler<Layout>::conditional_x_in_row_mode(
    std::uint32_t a, const std::vector<std::uint32_t>& expr) {
  if (expr.empty()) {
    return;
  }
  const std::size_t rows = 2 * tableau_.num_qubits();
  for (std::size_t i = 0; i < rows; ++i) {
    if (tableau_.z_bit(i, a)) {
      for (const std::uint32_t col : expr) {
        tableau_.row_phase_xor_bit(i, col);
      }
    }
  }
}

template <typename Layout>
void SymPhaseCompiler<Layout>::conditional_z_in_row_mode(
    std::uint32_t a, const std::vector<std::uint32_t>& expr) {
  if (expr.empty()) {
    return;
  }
  const std::size_t rows = 2 * tableau_.num_qubits();
  for (std::size_t i = 0; i < rows; ++i) {
    if (tableau_.x_bit(i, a)) {
      for (const std::uint32_t col : expr) {
        tableau_.row_phase_xor_bit(i, col);
      }
    }
  }
}

template class SymPhaseCompiler<RowMajorTableau>;
template class SymPhaseCompiler<ColMajorTableau>;
template class SymPhaseCompiler<BlockedTableau>;

}  // namespace symphase
