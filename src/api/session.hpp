#pragma once

/// \file session.hpp
/// SimulatorSession — the long-lived half of the task/sink API.
///
/// A session owns one circuit and every compiled artifact derived from
/// it: the SymPhase symbolic compilation (CompiledSampler), the
/// Pauli-frame baseline (FrameSimulator), and the resolved
/// detector/observable layout. Each is built lazily on first use and
/// reused across every subsequent task, which is exactly Algorithm 1's
/// compile-once/sample-many split lifted to a serving shape: keep one
/// session per circuit, throw SampleTasks at it.
///
///   SimulatorSession session(parse_circuit_file("surface.stim"));
///   WriterSink sink(std::cout, SampleFormat::kB8);
///   session.run(SampleTask::measurements(10'000'000).with_seed(1), sink);
///
/// run() streams shard-by-shard (bounded memory, see sample_stream.hpp);
/// run_to_matrix() is the materializing convenience. Sampled bits depend
/// only on (task.seed, task.shots, backend) — never on thread count,
/// sink choice, or how previous tasks exercised the session.

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "api/sample_sink.hpp"
#include "api/sample_task.hpp"
#include "core/symphase.hpp"

namespace symphase {

/// Which of a session's lazily built artifacts currently exist. The
/// service's cache stats are summed from these snapshots: `compiled`
/// flips to true exactly once per SymPhase compilation, so "how many
/// compiles did N requests cost" is directly observable.
struct SessionArtifacts {
  bool compiled = false;  ///< CompiledSampler (symbolic compilation) built.
  bool frames = false;    ///< FrameSimulator baseline built.
  bool layout = false;    ///< Detector/observable layout resolved.
};

/// One member of a fused run (SimulatorSession::run_fused): its task,
/// its sink, and its own cancel flag. All pointers are borrowed and must
/// outlive the call.
struct SessionRunMember {
  const SampleTask* task = nullptr;
  SampleSink* sink = nullptr;
  const std::atomic<bool>* cancel = nullptr;
  /// Request identity forwarded to the stream engine's trace spans
  /// (StreamSpec::trace_*); zero outside the serving stack.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_ticket = 0;
  std::uint64_t trace_group = 0;
};

class SimulatorSession {
 public:
  /// Takes the circuit by value; compilation is deferred until a task
  /// needs the corresponding backend.
  explicit SimulatorSession(Circuit circuit, CompileOptions options = {});

  const Circuit& circuit() const { return circuit_; }

  /// The compiled symbolic sampler (kSymPhase backend). Built on first
  /// call, then cached for the session's lifetime.
  const CompiledSampler& compiled() const;

  /// The frame-propagation baseline (kFrameSimulator backend). The
  /// reference run uses a fixed internal seed; per-task seeds only drive
  /// the frame randomness, like every other sampler seed.
  const FrameSimulator& frames() const;

  /// Circuit-level record geometry (resolved once, no compilation).
  std::size_t num_detectors() const;
  std::size_t num_observables() const;
  /// Bits per shot the task's record carries before bit selection:
  /// measurements, or detectors + observables.
  std::size_t record_bits(const SampleTask& task) const;

  /// Executes the task, streaming shard-sized chunks into `sink` in shot
  /// order. Validates the task (selection bounds, detection targets on
  /// circuits without annotations produce a zero-row stream).
  ///
  /// `cancel`, when non-null, must outlive the call; setting it makes
  /// the stream raise TaskCancelled at the next shard-chunk boundary
  /// (see sample_stream.hpp). The session itself stays valid and
  /// reusable — cancellation abandons the one run, not the compiled
  /// artifacts.
  void run(const SampleTask& task, SampleSink& sink,
           const std::atomic<bool>* cancel = nullptr) const;

  /// Executes N tasks against this session's compiled artifacts in one
  /// shared engine pass (cross-request shot fusion). Every member must
  /// target the same (target, backend) pair; shots, seed, thread cap,
  /// bit selection, and cancel flag are per member. Each member's
  /// delivered bytes are bit-identical to calling run() with its task
  /// alone — fusion only shares the fill workers and scratch, never the
  /// RNG streams.
  ///
  /// Per-member failures (cancellation, sink errors) are isolated: entry
  /// i of the result is null on success or the member's exception
  /// (TaskCancelled, ...) — groupmates keep streaming. Only artifact
  /// construction failures and precondition violations (mismatched
  /// target/backend, null pointers) throw, before any sink is touched.
  std::vector<std::exception_ptr> run_fused(
      std::span<const SessionRunMember> members) const;

  /// Forces the artifacts `task` will need (compiled sampler, frame
  /// baseline, detector layout) to exist — exactly the lazy builds
  /// run() would trigger. Lets a caller bracket the compile stage
  /// (trace spans, stage histograms) separately from execution; a
  /// second call is a cheap mutex acquire + pointer checks.
  void prepare(const SampleTask& task) const;

  /// Convenience: run() into a BitMatrixSink and return the matrix
  /// (measurement-major, like CompiledSampler::sample).
  BitMatrix run_to_matrix(const SampleTask& task) const;

  /// Snapshot of which artifacts have been built so far. Never blocks —
  /// safe to call (for stats) while another thread is mid-compile.
  SessionArtifacts artifacts() const;

  /// Drops every built artifact; the next task rebuilds on demand.
  /// Frees a cached-but-idle session's memory without invalidating
  /// handles to it. Must not race a concurrently running task (the
  /// artifacts it borrowed would be destroyed under it) — the service
  /// only resets sessions it has quiesced.
  void reset();

 private:
  const DetectorLayout& detector_layout() const;

  Circuit circuit_;
  CompileOptions options_;
  /// Guards lazy construction only; built artifacts are immutable and
  /// read concurrently.
  mutable std::mutex build_mutex_;
  mutable std::unique_ptr<CompiledSampler> compiled_;
  mutable std::unique_ptr<FrameSimulator> frames_;
  mutable std::unique_ptr<DetectorLayout> layout_;
  /// Lock-free mirrors of the pointers above for artifacts(): stats and
  /// cache-eviction accounting must never block behind an in-progress
  /// compile holding build_mutex_.
  mutable std::atomic<bool> compiled_built_{false};
  mutable std::atomic<bool> frames_built_{false};
  mutable std::atomic<bool> layout_built_{false};
};

}  // namespace symphase
