#include "api/sample_sink.hpp"

#include "common/check.hpp"
#include "common/simd_word.hpp"

namespace symphase {

void BitMatrixSink::begin(const SampleStreamInfo& info) {
  matrix_ = BitMatrix(info.bits_per_shot, info.num_shots);
}

void BitMatrixSink::consume(const SampleChunk& chunk) {
  SYMPHASE_CHECK(chunk.bits != nullptr);
  SYMPHASE_CHECK(chunk.bits->rows() == matrix_.rows());
  SYMPHASE_CHECK(chunk.shot_offset % kWordBits == 0);
  SYMPHASE_CHECK(chunk.shot_offset + chunk.num_shots <= matrix_.cols());
  const std::size_t word0 = chunk.shot_offset / kWordBits;
  const std::size_t words = words_for_bits(chunk.num_shots);
  for (std::size_t r = 0; r < matrix_.rows(); ++r) {
    wide::copy_words(matrix_.row(r) + word0, chunk.bits->row(r), words);
  }
}

void WriterSink::consume(const SampleChunk& chunk) {
  SYMPHASE_CHECK(chunk.bits != nullptr);
  write_samples(*chunk.bits, format_, out_, info_.num_detectors,
                chunk.num_shots);
}

}  // namespace symphase
