#include "api/sample_sink.hpp"

#include "common/check.hpp"
#include "common/simd_word.hpp"

namespace symphase {

void BitMatrixSink::begin(const SampleStreamInfo& info) {
  matrix_ = BitMatrix(info.bits_per_shot, info.num_shots);
}

void BitMatrixSink::consume(const SampleChunk& chunk) {
  SYMPHASE_CHECK(chunk.bits != nullptr);
  SYMPHASE_CHECK(chunk.bits->rows() == matrix_.rows());
  SYMPHASE_CHECK(chunk.shot_offset % kWordBits == 0);
  SYMPHASE_CHECK(chunk.shot_offset + chunk.num_shots <= matrix_.cols());
  const std::size_t word0 = chunk.shot_offset / kWordBits;
  const std::size_t words = words_for_bits(chunk.num_shots);
  for (std::size_t r = 0; r < matrix_.rows(); ++r) {
    wide::copy_words(matrix_.row(r) + word0, chunk.bits->row(r), words);
  }
}

void WriterSink::consume(const SampleChunk& chunk) {
  SYMPHASE_CHECK(chunk.bits != nullptr);
  shots_seen_ += chunk.num_shots;
  // Packed ptb64 records cover 64 shots each: a ragged chunk is only
  // serializable as the very last one (its final group is zero-padded,
  // exactly like the materialized writer's tail).
  SYMPHASE_CHECK_MSG(format_ != SampleFormat::kPtb64 ||
                         chunk.num_shots % kWordBits == 0 ||
                         shots_seen_ == info_.num_shots,
                     "ptb64 stream flushed on a non-64-shot boundary mid-run");
  write_samples(*chunk.bits, format_, out_, info_.num_detectors,
                chunk.num_shots);
  out_.flush();
}

}  // namespace symphase
