#include "api/sample_stream.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/simd_word.hpp"

namespace symphase {

namespace {

/// Rows of `selection` copied out of `full` into `filtered`, word-wise
/// over the shard's valid words.
void select_rows(const BitMatrix& full, std::span<const std::size_t> selection,
                 std::size_t words, BitMatrix& filtered) {
  for (std::size_t i = 0; i < selection.size(); ++i) {
    wide::copy_words(filtered.row(i), full.row(selection[i]), words);
  }
}

}  // namespace

void stream_sample_blocks(const StreamSpec& spec, const ShardBlockFn& fill,
                          SampleSink& sink) {
  const std::size_t rows = spec.bits_per_shot;
  const std::span<const std::size_t> selection = spec.bit_selection;
  for (std::size_t i = 0; i < selection.size(); ++i) {
    SYMPHASE_CHECK_MSG(selection[i] < rows,
                       "bit selection index " << selection[i]
                                              << " out of range (record has "
                                              << rows << " bits)");
    SYMPHASE_CHECK_MSG(i == 0 || selection[i - 1] < selection[i],
                       "bit selection must be sorted and duplicate-free");
  }

  const std::size_t source_detectors =
      spec.num_detectors == SIZE_MAX ? rows : spec.num_detectors;
  SYMPHASE_CHECK(source_detectors <= rows);

  SampleStreamInfo info;
  info.num_shots = spec.num_shots;
  if (selection.empty()) {
    info.bits_per_shot = rows;
    info.num_detectors = source_detectors;
  } else {
    info.bits_per_shot = selection.size();
    // Selected rows keep their relative order, so the detector prefix of
    // the filtered record is just the selected indices below the split.
    info.num_detectors = static_cast<std::size_t>(
        std::lower_bound(selection.begin(), selection.end(),
                         source_detectors) -
        selection.begin());
  }

  const std::size_t num_shards = num_sample_shards(spec.num_shots);
  const std::size_t threads =
      std::min(resolve_thread_count(spec.num_threads),
               std::max<std::size_t>(num_shards, 1));
  // One in-flight block per worker: bounds memory at `threads` shards
  // while keeping every worker busy within a window; ordered delivery
  // happens at the window boundary.
  const std::size_t window = threads;

  std::vector<BitMatrix> blocks;
  std::vector<BitMatrix> filtered;
  if (num_shards > 0) {
    blocks.assign(window, BitMatrix(rows, kSampleShardBits));
    if (!selection.empty()) {
      filtered.assign(window, BitMatrix(selection.size(), kSampleShardBits));
    }
  }

  const auto check_cancel = [&] {
    if (spec.cancel != nullptr &&
        spec.cancel->load(std::memory_order_relaxed)) {
      throw TaskCancelled();
    }
  };

  sink.begin(info);
  for (std::size_t base = 0; base < num_shards; base += window) {
    check_cancel();
    const std::size_t count = std::min(window, num_shards - base);
    parallel_for(count, threads, [&](std::size_t slot) {
      const std::size_t shard = base + slot;
      fill(shard, blocks[slot]);
      if (!selection.empty()) {
        const ShardExtent e = sample_shard_extent(shard, spec.num_shots);
        select_rows(blocks[slot], selection, e.words, filtered[slot]);
      }
    });
    for (std::size_t slot = 0; slot < count; ++slot) {
      check_cancel();
      const ShardExtent e = sample_shard_extent(base + slot, spec.num_shots);
      SampleChunk chunk;
      chunk.bits = selection.empty() ? &blocks[slot] : &filtered[slot];
      chunk.shot_offset = e.shot0;
      chunk.num_shots = e.shots;
      sink.consume(chunk);
    }
  }
  sink.end();
}

}  // namespace symphase
