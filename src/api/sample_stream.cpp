#include "api/sample_stream.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/simd_word.hpp"
#include "common/trace.hpp"

namespace symphase {

namespace {

/// Rows of `selection` copied out of `full` into `filtered`, word-wise
/// over the shard's valid words.
void select_rows(const BitMatrix& full, std::span<const std::size_t> selection,
                 std::size_t words, BitMatrix& filtered) {
  for (std::size_t i = 0; i < selection.size(); ++i) {
    wide::copy_words(filtered.row(i), full.row(selection[i]), words);
  }
}

/// Validates a member's spec and derives the sink-facing stream info.
/// Throws (SYMPHASE_CHECK) on bad selection/geometry, exactly like the
/// historical single-stream entry point.
SampleStreamInfo validate_spec(const StreamSpec& spec) {
  const std::size_t rows = spec.bits_per_shot;
  const std::span<const std::size_t> selection = spec.bit_selection;
  for (std::size_t i = 0; i < selection.size(); ++i) {
    SYMPHASE_CHECK_MSG(selection[i] < rows,
                       "bit selection index " << selection[i]
                                              << " out of range (record has "
                                              << rows << " bits)");
    SYMPHASE_CHECK_MSG(i == 0 || selection[i - 1] < selection[i],
                       "bit selection must be sorted and duplicate-free");
  }

  const std::size_t source_detectors =
      spec.num_detectors == SIZE_MAX ? rows : spec.num_detectors;
  SYMPHASE_CHECK(source_detectors <= rows);

  SampleStreamInfo info;
  info.num_shots = spec.num_shots;
  if (selection.empty()) {
    info.bits_per_shot = rows;
    info.num_detectors = source_detectors;
  } else {
    info.bits_per_shot = selection.size();
    // Selected rows keep their relative order, so the detector prefix of
    // the filtered record is just the selected indices below the split.
    info.num_detectors = static_cast<std::size_t>(
        std::lower_bound(selection.begin(), selection.end(),
                         source_detectors) -
        selection.begin());
  }
  return info;
}

/// Book-keeping for one member of a fused pass.
struct MemberState {
  SampleStreamInfo info;
  std::size_t num_shards = 0;
  std::size_t units_done = 0;
  std::exception_ptr error;
  bool begun = false;
  bool ended = false;
};

/// One fill-work unit: shard `shard` of member `member`.
struct Unit {
  std::uint32_t member = 0;
  std::uint32_t shard = 0;
};

}  // namespace

std::size_t stream_fill_slots(const StreamSpec& spec) {
  return std::min(
      resolve_thread_count(spec.num_threads),
      std::max<std::size_t>(num_sample_shards(spec.num_shots), 1));
}

std::size_t fused_stream_fill_slots(std::span<const StreamSpec> specs) {
  std::size_t max_threads = 1;
  std::size_t total_shards = 0;
  for (const StreamSpec& spec : specs) {
    max_threads = std::max(max_threads, resolve_thread_count(spec.num_threads));
    total_shards += num_sample_shards(spec.num_shots);
  }
  return std::min(max_threads, std::max<std::size_t>(total_shards, 1));
}

std::vector<std::exception_ptr> stream_fused_sample_blocks(
    std::span<FusedStream> members) {
  const std::size_t n = members.size();
  std::vector<MemberState> state(n);

  // Validate every member up front; a bad spec retires that member alone
  // (its sink never sees begin()), matching the solo engine's
  // throw-before-begin behavior.
  std::size_t total_units = 0;
  std::size_t rows = 0;
  bool rows_set = false;
  std::size_t max_threads = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const StreamSpec& spec = members[i].spec;
    max_threads = std::max(max_threads, resolve_thread_count(spec.num_threads));
    MemberState& st = state[i];
    try {
      st.info = validate_spec(spec);
    } catch (...) {
      st.error = std::current_exception();
      continue;
    }
    // Shared fill blocks mean one record width per pass. Sinks size
    // themselves off chunk.bits->rows(), so handing a narrower member a
    // wider block would corrupt its output — callers fuse only
    // same-circuit, same-target streams (the service keys fusion groups
    // accordingly).
    SYMPHASE_CHECK_MSG(!rows_set || spec.bits_per_shot == rows,
                       "fused members must share bits_per_shot (got "
                           << spec.bits_per_shot << " vs " << rows << ")");
    rows = spec.bits_per_shot;
    rows_set = true;
    st.num_shards = num_sample_shards(spec.num_shots);
    total_units += st.num_shards;
  }

  const std::size_t threads =
      std::min(max_threads, std::max<std::size_t>(total_units, 1));
  // One in-flight block per worker: bounds memory at `threads` shards
  // while keeping every worker busy within a window; ordered delivery
  // happens at the window boundary. Blocks are shared across members
  // (sized for the widest record), so a fused pass costs the same
  // scratch as the widest member running alone.
  const std::size_t window = threads;

  std::vector<BitMatrix> blocks;
  // Bit selections are per-member (selection size = the member's
  // delivered record width), so filtered scratch cannot be shared the
  // way the raw blocks are.
  std::vector<std::vector<BitMatrix>> filtered(n);
  if (total_units > 0) {
    blocks.assign(window, BitMatrix(rows, kSampleShardBits));
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i].num_shards > 0 && !members[i].spec.bit_selection.empty()) {
        filtered[i].assign(
            window,
            BitMatrix(members[i].spec.bit_selection.size(), kSampleShardBits));
      }
    }
  }

  // Member-major unit order: all of member 0's shards, then member 1's,
  // ... Delivery walks units in order, so every member's chunks reach
  // its sink in ascending shot order — the per-sink contract is
  // identical to a solo run.
  std::vector<Unit> units;
  units.reserve(total_units);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < state[i].num_shards; ++s) {
      units.push_back(Unit{static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(s)});
    }
  }

  const auto cancelled = [&](std::size_t i) {
    const std::atomic<bool>* cancel = members[i].spec.cancel;
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  };
  const auto sweep_cancel = [&](std::size_t i) {
    MemberState& st = state[i];
    if (!st.error && cancelled(i)) {
      st.error = std::make_exception_ptr(TaskCancelled());
    }
  };
  // Called once per unit, after delivery or skip; fires end() exactly
  // when the member's last unit has passed (never for a retired member —
  // a cancelled/failed stream is abandoned without end(), like the solo
  // engine).
  const auto finish_unit = [&](std::size_t i) {
    MemberState& st = state[i];
    if (++st.units_done != st.num_shards) {
      return;
    }
    st.ended = true;
    if (st.error) {
      return;
    }
    try {
      members[i].sink->end();
    } catch (...) {
      st.error = std::current_exception();
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    MemberState& st = state[i];
    if (st.error) {
      continue;
    }
    try {
      members[i].sink->begin(st.info);
      st.begun = true;
    } catch (...) {
      st.error = std::current_exception();
      continue;
    }
    if (st.num_shards == 0) {
      // Zero-shard stream: begin() then end() immediately, before any
      // other member's data flows.
      st.ended = true;
      try {
        members[i].sink->end();
      } catch (...) {
        st.error = std::current_exception();
      }
    }
  }

  std::vector<std::exception_ptr> fill_errors(window);
  for (std::size_t base = 0; base < total_units; base += window) {
    const std::size_t count = std::min(window, total_units - base);
    // Cancel sweep before the fill window, once per member with work in
    // it — the solo engine's pre-window check.
    for (std::size_t slot = 0; slot < count; ++slot) {
      sweep_cancel(units[base + slot].member);
    }
    std::fill(fill_errors.begin(), fill_errors.begin() + count, nullptr);
    parallel_for(count, threads, [&](std::size_t slot) {
      const Unit u = units[base + slot];
      const FusedStream& fs = members[u.member];
      // MemberState::error is only written between windows, so this read
      // cannot race; a retired member's remaining fills are skipped.
      if (state[u.member].error) {
        return;
      }
      try {
        trace::Span fill_span("fill", fs.spec.trace_id, fs.spec.trace_ticket,
                              fs.spec.trace_group, u.shard);
        fs.fill(slot, u.shard, blocks[slot]);
        if (!fs.spec.bit_selection.empty()) {
          const ShardExtent e =
              sample_shard_extent(u.shard, fs.spec.num_shots);
          select_rows(blocks[slot], fs.spec.bit_selection, e.words,
                      filtered[u.member][slot]);
        }
      } catch (...) {
        fill_errors[slot] = std::current_exception();
      }
    });
    for (std::size_t slot = 0; slot < count; ++slot) {
      MemberState& st = state[units[base + slot].member];
      if (fill_errors[slot] && !st.error) {
        st.error = fill_errors[slot];
      }
    }
    for (std::size_t slot = 0; slot < count; ++slot) {
      const Unit u = units[base + slot];
      const FusedStream& fs = members[u.member];
      MemberState& st = state[u.member];
      sweep_cancel(u.member);  // The solo engine's pre-delivery check.
      if (!st.error) {
        try {
          const ShardExtent e =
              sample_shard_extent(u.shard, fs.spec.num_shots);
          SampleChunk chunk;
          chunk.bits = fs.spec.bit_selection.empty()
                           ? &blocks[slot]
                           : &filtered[u.member][slot];
          chunk.shot_offset = e.shot0;
          chunk.num_shots = e.shots;
          fs.sink->consume(chunk);
        } catch (...) {
          st.error = std::current_exception();
        }
      }
      finish_unit(u.member);
    }
  }

  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    errors[i] = state[i].error;
  }
  return errors;
}

void stream_sample_blocks(const StreamSpec& spec, const ShardBlockFn& fill,
                          SampleSink& sink) {
  FusedStream member;
  member.spec = spec;
  member.fill = fill;
  member.sink = &sink;
  const std::vector<std::exception_ptr> errors =
      stream_fused_sample_blocks(std::span<FusedStream>(&member, 1));
  if (errors[0]) {
    std::rethrow_exception(errors[0]);
  }
}

}  // namespace symphase
