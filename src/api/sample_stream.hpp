#pragma once

/// \file sample_stream.hpp
/// The streaming engine under the task/session API.
///
/// stream_sample_blocks() drives any shard-block producer (the
/// `sample_shard_block` methods of SymPhaseSampler / FrameSimulator, or
/// the session's detection-event fold) through a SampleSink:
///
///   1. the shot axis is cut into the library-wide 128-word shards
///      (common/parallel.hpp) — the same decomposition the materialized
///      samplers use, so shard i draws from Rng::stream(i) either way;
///   2. shards are filled into preallocated blocks in windows of
///      `num_threads` (parallel, dynamic claiming within a window);
///   3. completed blocks are handed to the sink strictly in shot order.
///
/// Peak memory is O(window · rows · kSampleShardWords) — bounded by the
/// thread budget, independent of the total shot count — and the
/// concatenated chunks are bit-identical to the materialized matrix for
/// any thread count and any window schedule.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>

#include "api/sample_sink.hpp"
#include "bitvec/bit_matrix.hpp"

namespace symphase {

/// Thrown by stream_sample_blocks() when the run's cancel flag is
/// observed set. The stream is abandoned mid-delivery: the sink's end()
/// is never called, already-delivered chunks stay delivered, and the
/// session's compiled artifacts are untouched — the session remains
/// fully reusable for the next task (the service relies on this to keep
/// a cancelled request's session cached).
struct TaskCancelled : public std::runtime_error {
  TaskCancelled() : std::runtime_error("request cancelled") {}
};

/// Geometry and scheduling of one streamed run.
struct StreamSpec {
  /// Rows each shard block carries (before bit selection).
  std::size_t bits_per_shot = 0;
  /// Rows rendered as detectors (SIZE_MAX = all of them; measurement
  /// runs). Counted against the *unselected* row space; the engine
  /// translates it through any bit selection.
  std::size_t num_detectors = SIZE_MAX;
  std::size_t num_shots = 0;
  /// Worker cap, resolved like every sampler (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Optional sorted, duplicate-free row subset to deliver (empty = all).
  std::span<const std::size_t> bit_selection = {};
  /// Optional cooperative cancellation flag, owned by the caller and
  /// outliving the run. Checked at shard-chunk boundaries (before each
  /// fill window and before each ordered chunk delivery), never inside
  /// a shard's kernel — a set flag raises TaskCancelled within one
  /// chunk's worth of work.
  const std::atomic<bool>* cancel = nullptr;
};

/// Fills `block` with the contents of global shard `shard`. Blocks are
/// bits_per_shot x kSampleShardBits and may hold stale data from a
/// previous shard; producers overwrite at least the shard's valid words.
/// Called concurrently from worker threads — one distinct block each.
using ShardBlockFn = std::function<void(std::size_t shard, BitMatrix& block)>;

/// Runs the stream: begin(), ordered consume() per shard, end().
void stream_sample_blocks(const StreamSpec& spec, const ShardBlockFn& fill,
                          SampleSink& sink);

}  // namespace symphase
