#pragma once

/// \file sample_stream.hpp
/// The streaming engine under the task/session API.
///
/// stream_sample_blocks() drives any shard-block producer (the
/// `sample_shard_block` methods of SymPhaseSampler / FrameSimulator, or
/// the session's detection-event fold) through a SampleSink:
///
///   1. the shot axis is cut into the library-wide 128-word shards
///      (common/parallel.hpp) — the same decomposition the materialized
///      samplers use, so shard i draws from Rng::stream(i) either way;
///   2. shards are filled into preallocated blocks in windows of
///      `num_threads` (parallel, dynamic claiming within a window);
///   3. completed blocks are handed to the sink strictly in shot order.
///
/// Peak memory is O(window · rows · kSampleShardWords) — bounded by the
/// thread budget, independent of the total shot count — and the
/// concatenated chunks are bit-identical to the materialized matrix for
/// any thread count and any window schedule.
///
/// stream_fused_sample_blocks() is the multi-member generalization the
/// service's cross-request shot fusion rides on: N (spec, fill, sink)
/// members share one pass and one set of fill workers, each member's
/// shards still indexed from ITS OWN shard 0 with its own seed — so
/// every member's delivered bytes are bit-identical to running it alone
/// through stream_sample_blocks(). Failures (cancellation, a throwing
/// fill, a throwing sink) are isolated per member and reported in the
/// returned vector instead of thrown.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "api/sample_sink.hpp"
#include "bitvec/bit_matrix.hpp"

namespace symphase {

/// Thrown by stream_sample_blocks() when the run's cancel flag is
/// observed set. The stream is abandoned mid-delivery: the sink's end()
/// is never called, already-delivered chunks stay delivered, and the
/// session's compiled artifacts are untouched — the session remains
/// fully reusable for the next task (the service relies on this to keep
/// a cancelled request's session cached).
struct TaskCancelled : public std::runtime_error {
  TaskCancelled() : std::runtime_error("request cancelled") {}
};

/// Geometry and scheduling of one streamed run.
struct StreamSpec {
  /// Rows each shard block carries (before bit selection).
  std::size_t bits_per_shot = 0;
  /// Rows rendered as detectors (SIZE_MAX = all of them; measurement
  /// runs). Counted against the *unselected* row space; the engine
  /// translates it through any bit selection.
  std::size_t num_detectors = SIZE_MAX;
  std::size_t num_shots = 0;
  /// Worker cap, resolved like every sampler (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Optional sorted, duplicate-free row subset to deliver (empty = all).
  std::span<const std::size_t> bit_selection = {};
  /// Optional cooperative cancellation flag, owned by the caller and
  /// outliving the run. Checked at shard-chunk boundaries (before each
  /// fill window and before each ordered chunk delivery), never inside
  /// a shard's kernel — a set flag raises TaskCancelled within one
  /// chunk's worth of work.
  const std::atomic<bool>* cancel = nullptr;
  /// Request identity stamped on this member's per-shard fill spans
  /// (common/trace.hpp); all zero outside the serving stack. Costs one
  /// relaxed load per shard when tracing is off.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_ticket = 0;
  std::uint64_t trace_group = 0;
};

/// Fills `block` with the contents of the producer's global shard
/// `shard`. Blocks are at least bits_per_shot x kSampleShardBits and may
/// hold stale data from a previous shard; producers overwrite at least
/// the shard's valid words. Called concurrently from worker threads —
/// one distinct block each. `slot` is the index of the preallocated
/// block being filled, always < stream_fill_slots() for the run: a
/// producer that needs scratch per concurrent fill (the session's
/// frame-backend detect fold) keys it by slot and reuses it across the
/// whole run instead of allocating per shard.
using ShardBlockFn =
    std::function<void(std::size_t slot, std::size_t shard, BitMatrix& block)>;

/// Runs the stream: begin(), ordered consume() per shard, end().
void stream_sample_blocks(const StreamSpec& spec, const ShardBlockFn& fill,
                          SampleSink& sink);

/// One member of a fused pass: its own geometry, producer, and sink.
struct FusedStream {
  StreamSpec spec;
  ShardBlockFn fill;
  SampleSink* sink = nullptr;
};

/// Runs N member streams through one shared fill-worker pass.
///
/// Work units are member-major — every shard of member 0, then every
/// shard of member 1, ... — so each member's chunks arrive at its sink
/// in ascending shot order and its bytes match solo execution exactly
/// (each fill still receives the member's own shard index, so shard i
/// draws from the member's own Rng::stream(i)).
///
/// Per-member isolation: a member whose spec fails validation, whose
/// cancel flag trips, or whose fill/sink throws is retired — no further
/// fills or deliveries, end() not called — and its exception is stored
/// in the returned vector at the member's index (TaskCancelled for
/// cancellation, mirroring the solo engine). Groupmates are unaffected.
/// Entry i is null when member i completed begin/consume.../end cleanly.
std::vector<std::exception_ptr> stream_fused_sample_blocks(
    std::span<FusedStream> members);

/// Upper bound on the `slot` values a run's fills will observe — the
/// number of preallocated shard blocks: min(resolved threads,
/// max(num_shards, 1)). Size per-slot producer scratch with this.
std::size_t stream_fill_slots(const StreamSpec& spec);

/// Fused-run counterpart: max of the members' resolved thread caps,
/// clamped to the combined shard count. >= the slot bound the fused
/// engine actually uses, and equals stream_fill_slots() for one member.
std::size_t fused_stream_fill_slots(std::span<const StreamSpec> specs);

}  // namespace symphase
