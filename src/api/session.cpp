#include "api/session.hpp"

#include <utility>

#include "api/sample_stream.hpp"
#include "common/parallel.hpp"
#include "common/simd_word.hpp"

namespace symphase {

namespace {

/// Reference-run seed for the lazily built FrameSimulator. Any fixed
/// value yields the correct distribution (the reference record only
/// anchors the frames); pinning it keeps session output a function of
/// the task alone.
constexpr std::uint64_t kFrameReferenceSeed = 0;

}  // namespace

SimulatorSession::SimulatorSession(Circuit circuit, CompileOptions options)
    : circuit_(std::move(circuit)), options_(options) {}

const CompiledSampler& SimulatorSession::compiled() const {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  if (!compiled_) {
    compiled_ = std::make_unique<CompiledSampler>(
        CompiledSampler::compile(circuit_, options_));
    compiled_built_.store(true, std::memory_order_release);
  }
  return *compiled_;
}

const FrameSimulator& SimulatorSession::frames() const {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  if (!frames_) {
    frames_ = std::make_unique<FrameSimulator>(circuit_, kFrameReferenceSeed);
    frames_built_.store(true, std::memory_order_release);
  }
  return *frames_;
}

const DetectorLayout& SimulatorSession::detector_layout() const {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  if (!layout_) {
    layout_ = std::make_unique<DetectorLayout>(resolve_detectors(circuit_));
    layout_built_.store(true, std::memory_order_release);
  }
  return *layout_;
}

std::size_t SimulatorSession::num_detectors() const {
  return detector_layout().detectors.size();
}

std::size_t SimulatorSession::num_observables() const {
  return detector_layout().observables.size();
}

std::size_t SimulatorSession::record_bits(const SampleTask& task) const {
  if (task.target == SampleTarget::kMeasurements) {
    return circuit_.num_measurements();
  }
  return num_detectors() + num_observables();
}

void SimulatorSession::run(const SampleTask& task, SampleSink& sink,
                           const std::atomic<bool>* cancel) const {
  StreamSpec spec;
  spec.num_shots = task.shots;
  spec.num_threads = task.num_threads;
  spec.bit_selection = task.bit_selection;
  spec.cancel = cancel;

  if (task.target == SampleTarget::kMeasurements) {
    if (task.backend == SampleBackend::kSymPhase) {
      const CompiledSampler& cs = compiled();
      spec.bits_per_shot = cs.num_measurements();
      stream_sample_blocks(
          spec,
          [&](std::size_t shard, BitMatrix& block) {
            cs.sample_shard_block(shard, task.shots, task.seed, block);
          },
          sink);
    } else {
      const FrameSimulator& fs = frames();
      spec.bits_per_shot = fs.num_measurements();
      stream_sample_blocks(
          spec,
          [&](std::size_t shard, BitMatrix& block) {
            fs.sample_shard_block(shard, task.shots, task.seed, block);
          },
          sink);
    }
    return;
  }

  // Detection events: detectors first, observables after — the joint
  // record layout shared with CompiledSampler::sample_detection_events
  // and the dets writer format.
  const DetectorLayout& layout = detector_layout();
  spec.bits_per_shot = layout.detectors.size() + layout.observables.size();
  spec.num_detectors = layout.detectors.size();

  if (task.backend == SampleBackend::kSymPhase) {
    const CompiledSampler& cs = compiled();
    stream_sample_blocks(
        spec,
        [&](std::size_t shard, BitMatrix& block) {
          cs.sample_detection_shard_block(shard, task.shots, task.seed, block);
        },
        sink);
    return;
  }

  // Frame backend: sample the shard's measurements, then fold them
  // through the resolved detector/observable definitions. The fold is
  // word-wise per row, so folding one shard block reproduces exactly
  // that word range of FrameSimulator::sample_detection_events.
  const FrameSimulator& fs = frames();
  stream_sample_blocks(
      spec,
      [&](std::size_t shard, BitMatrix& block) {
        const ShardExtent e = sample_shard_extent(shard, task.shots);
        BitMatrix measurements(fs.num_measurements(), kSampleShardBits);
        fs.sample_shard_block(shard, task.shots, task.seed, measurements);
        block.clear_all();
        const auto fold =
            [&](const std::vector<std::vector<std::size_t>>& defs,
                std::size_t row0) {
              for (std::size_t d = 0; d < defs.size(); ++d) {
                for (const std::size_t m : defs[d]) {
                  wide::xor_words(block.row(row0 + d), measurements.row(m),
                                  e.words);
                }
              }
            };
        fold(layout.detectors, 0);
        fold(layout.observables, layout.detectors.size());
      },
      sink);
}

BitMatrix SimulatorSession::run_to_matrix(const SampleTask& task) const {
  BitMatrixSink sink;
  run(task, sink);
  return sink.take();
}

SessionArtifacts SimulatorSession::artifacts() const {
  SessionArtifacts a;
  a.compiled = compiled_built_.load(std::memory_order_acquire);
  a.frames = frames_built_.load(std::memory_order_acquire);
  a.layout = layout_built_.load(std::memory_order_acquire);
  return a;
}

void SimulatorSession::reset() {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  compiled_.reset();
  frames_.reset();
  layout_.reset();
  compiled_built_.store(false, std::memory_order_release);
  frames_built_.store(false, std::memory_order_release);
  layout_built_.store(false, std::memory_order_release);
}

}  // namespace symphase
