#include "api/session.hpp"

#include <utility>

#include "api/sample_stream.hpp"
#include "common/parallel.hpp"
#include "common/simd_word.hpp"
#include "common/trace.hpp"

namespace symphase {

namespace {

/// Reference-run seed for the lazily built FrameSimulator. Any fixed
/// value yields the correct distribution (the reference record only
/// anchors the frames); pinning it keeps session output a function of
/// the task alone.
constexpr std::uint64_t kFrameReferenceSeed = 0;

}  // namespace

SimulatorSession::SimulatorSession(Circuit circuit, CompileOptions options)
    : circuit_(std::move(circuit)), options_(options) {}

const CompiledSampler& SimulatorSession::compiled() const {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  if (!compiled_) {
    trace::Span build_span("build_compiled");
    compiled_ = std::make_unique<CompiledSampler>(
        CompiledSampler::compile(circuit_, options_));
    compiled_built_.store(true, std::memory_order_release);
  }
  return *compiled_;
}

const FrameSimulator& SimulatorSession::frames() const {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  if (!frames_) {
    trace::Span build_span("build_frames");
    frames_ = std::make_unique<FrameSimulator>(circuit_, kFrameReferenceSeed);
    frames_built_.store(true, std::memory_order_release);
  }
  return *frames_;
}

const DetectorLayout& SimulatorSession::detector_layout() const {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  if (!layout_) {
    trace::Span build_span("build_layout");
    layout_ = std::make_unique<DetectorLayout>(resolve_detectors(circuit_));
    layout_built_.store(true, std::memory_order_release);
  }
  return *layout_;
}

void SimulatorSession::prepare(const SampleTask& task) const {
  if (task.target != SampleTarget::kMeasurements) {
    detector_layout();
  }
  if (task.backend == SampleBackend::kSymPhase) {
    compiled();
  } else {
    frames();
  }
}

std::size_t SimulatorSession::num_detectors() const {
  return detector_layout().detectors.size();
}

std::size_t SimulatorSession::num_observables() const {
  return detector_layout().observables.size();
}

std::size_t SimulatorSession::record_bits(const SampleTask& task) const {
  if (task.target == SampleTarget::kMeasurements) {
    return circuit_.num_measurements();
  }
  return num_detectors() + num_observables();
}

void SimulatorSession::run(const SampleTask& task, SampleSink& sink,
                           const std::atomic<bool>* cancel) const {
  SessionRunMember member;
  member.task = &task;
  member.sink = &sink;
  member.cancel = cancel;
  const std::vector<std::exception_ptr> errors =
      run_fused(std::span<const SessionRunMember>(&member, 1));
  if (errors[0]) {
    std::rethrow_exception(errors[0]);
  }
}

std::vector<std::exception_ptr> SimulatorSession::run_fused(
    std::span<const SessionRunMember> members) const {
  if (members.empty()) {
    return {};
  }
  for (const SessionRunMember& m : members) {
    SYMPHASE_CHECK(m.task != nullptr && m.sink != nullptr);
    SYMPHASE_CHECK_MSG(m.task->target == members[0].task->target &&
                           m.task->backend == members[0].task->backend,
                       "fused tasks must share target and backend");
  }
  const SampleTarget target = members[0].task->target;
  const SampleBackend backend = members[0].task->backend;

  std::vector<StreamSpec> specs(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const SampleTask& task = *members[i].task;
    specs[i].num_shots = task.shots;
    specs[i].num_threads = task.num_threads;
    specs[i].bit_selection = task.bit_selection;
    specs[i].cancel = members[i].cancel;
    specs[i].trace_id = members[i].trace_id;
    specs[i].trace_ticket = members[i].trace_ticket;
    specs[i].trace_group = members[i].trace_group;
  }

  std::vector<FusedStream> streams(members.size());
  const auto assemble = [&](const std::function<ShardBlockFn(std::size_t)>&
                                make_fill) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      streams[i].spec = specs[i];
      streams[i].fill = make_fill(i);
      streams[i].sink = members[i].sink;
    }
    return stream_fused_sample_blocks(streams);
  };

  if (target == SampleTarget::kMeasurements) {
    if (backend == SampleBackend::kSymPhase) {
      const CompiledSampler& cs = compiled();
      for (StreamSpec& spec : specs) {
        spec.bits_per_shot = cs.num_measurements();
      }
      return assemble([&](std::size_t i) -> ShardBlockFn {
        const SampleTask* task = members[i].task;
        return [&cs, task](std::size_t, std::size_t shard, BitMatrix& block) {
          cs.sample_shard_block(shard, task->shots, task->seed, block);
        };
      });
    }
    const FrameSimulator& fs = frames();
    for (StreamSpec& spec : specs) {
      spec.bits_per_shot = fs.num_measurements();
    }
    return assemble([&](std::size_t i) -> ShardBlockFn {
      const SampleTask* task = members[i].task;
      return [&fs, task](std::size_t, std::size_t shard, BitMatrix& block) {
        fs.sample_shard_block(shard, task->shots, task->seed, block);
      };
    });
  }

  // Detection events: detectors first, observables after — the joint
  // record layout shared with CompiledSampler::sample_detection_events
  // and the dets writer format.
  const DetectorLayout& layout = detector_layout();
  for (StreamSpec& spec : specs) {
    spec.bits_per_shot = layout.detectors.size() + layout.observables.size();
    spec.num_detectors = layout.detectors.size();
  }

  if (backend == SampleBackend::kSymPhase) {
    const CompiledSampler& cs = compiled();
    return assemble([&](std::size_t i) -> ShardBlockFn {
      const SampleTask* task = members[i].task;
      return [&cs, task](std::size_t, std::size_t shard, BitMatrix& block) {
        cs.sample_detection_shard_block(shard, task->shots, task->seed, block);
      };
    });
  }

  // Frame backend: sample the shard's measurements, then fold them
  // through the resolved detector/observable definitions. The fold is
  // word-wise per row, so folding one shard block reproduces exactly
  // that word range of FrameSimulator::sample_detection_events. The
  // measurement scratch is hoisted out of the fill and keyed by engine
  // slot — one allocation per concurrent fill for the whole run (and
  // the whole fused group), not one per shard.
  const FrameSimulator& fs = frames();
  std::vector<BitMatrix> scratch(
      fused_stream_fill_slots(specs),
      BitMatrix(fs.num_measurements(), kSampleShardBits));
  return assemble([&](std::size_t i) -> ShardBlockFn {
    const SampleTask* task = members[i].task;
    return [&fs, &layout, &scratch, task](std::size_t slot, std::size_t shard,
                                          BitMatrix& block) {
      const ShardExtent e = sample_shard_extent(shard, task->shots);
      BitMatrix& measurements = scratch[slot];
      fs.sample_shard_block(shard, task->shots, task->seed, measurements);
      block.clear_all();
      const auto fold = [&](const std::vector<std::vector<std::size_t>>& defs,
                            std::size_t row0) {
        for (std::size_t d = 0; d < defs.size(); ++d) {
          for (const std::size_t m : defs[d]) {
            wide::xor_words(block.row(row0 + d), measurements.row(m), e.words);
          }
        }
      };
      fold(layout.detectors, 0);
      fold(layout.observables, layout.detectors.size());
    };
  });
}

BitMatrix SimulatorSession::run_to_matrix(const SampleTask& task) const {
  BitMatrixSink sink;
  run(task, sink);
  return sink.take();
}

SessionArtifacts SimulatorSession::artifacts() const {
  SessionArtifacts a;
  a.compiled = compiled_built_.load(std::memory_order_acquire);
  a.frames = frames_built_.load(std::memory_order_acquire);
  a.layout = layout_built_.load(std::memory_order_acquire);
  return a;
}

void SimulatorSession::reset() {
  const std::lock_guard<std::mutex> lock(build_mutex_);
  compiled_.reset();
  frames_.reset();
  layout_.reset();
  compiled_built_.store(false, std::memory_order_release);
  frames_built_.store(false, std::memory_order_release);
  layout_built_.store(false, std::memory_order_release);
}

}  // namespace symphase
