#pragma once

/// \file sample_sink.hpp
/// Where streamed sample results go.
///
/// The streaming engine (sample_stream.hpp) cuts a run's shot axis into
/// the library-wide 128-word shards, fills shard blocks in parallel, and
/// delivers them to one SampleSink *in shot order*. A sink sees:
///
///   begin(info)            once, before any data
///   consume(chunk)         once per shard, chunks cover [0, num_shots)
///                          in ascending, non-overlapping shot ranges
///   end()                  once, after the last chunk
///
/// Chunks reference engine-owned scratch that is only valid during the
/// consume() call — copy what must outlive it. Because shard contents
/// are bit-identical to the corresponding word range of the materialized
/// matrix, a sink that concatenates chunks reproduces
/// CompiledSampler::sample() exactly (tests/streaming_session_test.cpp
/// pins this byte-for-byte for every writer format).

#include <cstddef>
#include <functional>
#include <ostream>

#include "bitvec/bit_matrix.hpp"
#include "sampler/sample_writer.hpp"

namespace symphase {

/// Per-run metadata handed to SampleSink::begin.
struct SampleStreamInfo {
  /// Rows per chunk = bits per shot record (after any bit selection).
  std::size_t bits_per_shot = 0;
  /// Rows rendered as detectors; rows >= this are logical observables.
  /// Equals bits_per_shot for measurement runs.
  std::size_t num_detectors = 0;
  /// Total shots the run will deliver across all chunks.
  std::size_t num_shots = 0;
};

/// One shard's worth of samples, measurement-major like every sample
/// matrix in the library: row k of `bits` is record bit k across the
/// chunk's shots, shot j of the chunk at column j.
struct SampleChunk {
  /// Block matrix; only columns [0, num_shots) are meaningful (the
  /// engine reuses fixed-width shard scratch, so cols() may be larger).
  const BitMatrix* bits = nullptr;
  /// Global index of the chunk's first shot. Always a multiple of
  /// kSampleShardBits, i.e. word-aligned on the shot axis.
  std::size_t shot_offset = 0;
  /// Valid shots in this chunk.
  std::size_t num_shots = 0;
};

/// Consumer interface for streamed samples.
class SampleSink {
 public:
  virtual ~SampleSink() = default;
  virtual void begin(const SampleStreamInfo& info) { (void)info; }
  virtual void consume(const SampleChunk& chunk) = 0;
  virtual void end() {}
};

/// Assembles the full measurement-major matrix in memory — the
/// materializing sink behind the classic BitMatrix-returning calls.
/// Memory grows with shots; prefer WriterSink for huge runs.
class BitMatrixSink final : public SampleSink {
 public:
  void begin(const SampleStreamInfo& info) override;
  void consume(const SampleChunk& chunk) override;

  /// The assembled matrix; valid after end().
  const BitMatrix& matrix() const { return matrix_; }
  BitMatrix take() { return std::move(matrix_); }

 private:
  BitMatrix matrix_;
};

/// Streams chunks through the SampleFormat serializers into an ostream.
/// The concatenated output is byte-identical to write_samples() on the
/// materialized matrix, but peak memory is one shard, not the run.
///
/// Flushing is chunk-aligned: the stream is flushed after every chunk,
/// so an incremental consumer (the service's wire frames, a pipe) sees
/// whole serialized chunks, never a partial record. For the packed
/// kPtb64 format — whose records span 64 shots — a non-final chunk must
/// cover a multiple of 64 shots or the per-chunk serialization would
/// zero-pad mid-stream and diverge from the materialized output; the
/// sink rejects such chunks outright (the engine's word-aligned shard
/// chunks always satisfy this, see tests/streaming_session_test.cpp's
/// ragged-shot regressions).
class WriterSink final : public SampleSink {
 public:
  WriterSink(std::ostream& out, SampleFormat format)
      : out_(out), format_(format) {}

  void begin(const SampleStreamInfo& info) override {
    info_ = info;
    shots_seen_ = 0;
  }
  void consume(const SampleChunk& chunk) override;
  void end() override { out_.flush(); }

 private:
  std::ostream& out_;
  SampleFormat format_;
  SampleStreamInfo info_;
  std::size_t shots_seen_ = 0;
};

/// Hands each chunk to a user callback — the extension point for custom
/// consumers (on-line decoders, histogram accumulators, network
/// shippers) that want bounded memory without subclassing.
class CallbackSink final : public SampleSink {
 public:
  using BeginFn = std::function<void(const SampleStreamInfo&)>;
  using ChunkFn = std::function<void(const SampleChunk&)>;

  explicit CallbackSink(ChunkFn on_chunk, BeginFn on_begin = nullptr)
      : on_chunk_(std::move(on_chunk)), on_begin_(std::move(on_begin)) {}

  void begin(const SampleStreamInfo& info) override {
    if (on_begin_) {
      on_begin_(info);
    }
  }
  void consume(const SampleChunk& chunk) override { on_chunk_(chunk); }

 private:
  ChunkFn on_chunk_;
  BeginFn on_begin_;
};

}  // namespace symphase
