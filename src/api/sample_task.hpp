#pragma once

/// \file sample_task.hpp
/// Request description for the streaming sampling API.
///
/// A SampleTask says *what* to sample — the target record (raw
/// measurements, or detection events = detectors followed by logical
/// observables), the shot count, seed, thread budget, backend algorithm,
/// and an optional row subset. It says nothing about where the results
/// go; that is the SampleSink's job (sample_sink.hpp), and a
/// SimulatorSession (session.hpp) connects the two. Tasks are cheap
/// value objects: build one per request, reuse the session across
/// requests (Algorithm 1's compile-once/sample-many split).
///
///   SampleTask task = SampleTask::detection_events(1'000'000)
///                         .with_seed(42)
///                         .with_threads(8);
///   session.run(task, sink);

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace symphase {

/// Which record a task samples.
enum class SampleTarget {
  /// All measurement outcomes, in record order.
  kMeasurements,
  /// Detector parities followed by logical-observable parities (the
  /// joint layout the `dets` format and decoders consume).
  kDetectionEvents,
};

/// Which sampling algorithm serves the task. Both honor the shard/RNG
/// determinism contract, but they are distinct generators: equal seeds
/// give different (equally distributed) bits across backends.
enum class SampleBackend {
  /// The paper's compiled symbolic sampler (compile once, multiply per
  /// batch). Default.
  kSymPhase,
  /// Pauli-frame propagation (the Stim-style baseline): re-traverses the
  /// circuit per shard, no compilation pass beyond the reference run.
  kFrameSimulator,
};

/// A value-type description of one sampling request.
struct SampleTask {
  SampleTarget target = SampleTarget::kMeasurements;
  SampleBackend backend = SampleBackend::kSymPhase;
  std::size_t shots = 0;
  std::uint64_t seed = 0;
  /// Worker-thread cap; 0 = hardware concurrency. Never affects the
  /// sampled bits, only wall-clock time.
  std::size_t num_threads = 0;
  /// Optional row subset: indices into the target's record (measurement
  /// indices, or joint detector/observable indices with observables
  /// numbered after detectors). Must be sorted and duplicate-free; empty
  /// means all rows. Applied after sampling, so the emitted bits for a
  /// row match the full-record run exactly.
  std::vector<std::size_t> bit_selection;

  static SampleTask measurements(std::size_t shots) {
    SampleTask task;
    task.target = SampleTarget::kMeasurements;
    task.shots = shots;
    return task;
  }

  static SampleTask detection_events(std::size_t shots) {
    SampleTask task;
    task.target = SampleTarget::kDetectionEvents;
    task.shots = shots;
    return task;
  }

  SampleTask& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }

  SampleTask& with_threads(std::size_t n) {
    num_threads = n;
    return *this;
  }

  SampleTask& with_backend(SampleBackend b) {
    backend = b;
    return *this;
  }

  SampleTask& with_bit_selection(std::vector<std::size_t> rows) {
    bit_selection = std::move(rows);
    return *this;
  }
};

}  // namespace symphase
