#pragma once

/// \file parser.hpp
/// Text format for stabilizer circuits (a practical subset of Stim's).
///
/// Grammar, one instruction per line:
///
///   line      := ws [instr] ws ['#' comment]
///   instr     := NAME ['(' float ')'] target*          e.g. X_ERROR(0.1) 0 3
///              | 'REPEAT' uint '{'                     block opens
///              | '}'                                   block closes
///   target    := uint
///
/// REPEAT blocks nest; they are expanded into the flat instruction
/// stream. Errors carry 1-based line numbers.

#include <string>
#include <string_view>

#include "circuit/circuit.hpp"

namespace symphase {

/// Parses circuit text; throws std::invalid_argument with a line-numbered
/// message on malformed input.
Circuit parse_circuit(std::string_view text);

/// Reads and parses a circuit file.
Circuit parse_circuit_file(const std::string& path);

}  // namespace symphase
