#include "circuit/generators.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace symphase {

namespace {

/// Draws `pairs` disjoint random qubit pairs from [0, n).
std::vector<std::uint32_t> draw_disjoint_pairs(std::size_t n,
                                               std::size_t pairs, Rng& rng) {
  SYMPHASE_CHECK(2 * pairs <= n);
  // Partial Fisher-Yates: the first 2*pairs entries of a shuffled
  // identity permutation.
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = 0; i < 2 * pairs; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(n - i));
    std::swap(perm[i], perm[j]);
  }
  perm.resize(2 * pairs);
  return perm;
}

}  // namespace

Circuit layered_random_circuit(const LayeredRandomCircuitOptions& options,
                               Rng& rng) {
  const std::size_t n = options.num_qubits;
  SYMPHASE_CHECK(n >= 2);
  Circuit circuit(n);

  const std::size_t pairs =
      options.half_n_cnot_pairs ? n / 2 : options.cnot_pairs_per_layer;
  SYMPHASE_CHECK_MSG(2 * pairs <= n,
                     "layer wants " << pairs << " CNOT pairs on " << n
                                    << " qubits");
  const auto measured_per_layer = static_cast<std::size_t>(
      static_cast<double>(n) * options.measure_fraction);

  for (std::size_t layer = 0; layer < options.num_layers; ++layer) {
    // Random single-qubit Clifford from {H, S, I} on every qubit. Batch
    // the targets per gate type so each layer appends at most three
    // single-qubit instructions.
    std::vector<std::uint32_t> h_targets;
    std::vector<std::uint32_t> s_targets;
    std::vector<std::uint32_t> i_targets;
    for (std::uint32_t q = 0; q < n; ++q) {
      switch (rng.next_below(3)) {
        case 0:
          h_targets.push_back(q);
          break;
        case 1:
          s_targets.push_back(q);
          break;
        default:
          i_targets.push_back(q);
          break;
      }
    }
    if (!h_targets.empty()) {
      circuit.append(GateType::H, h_targets);
    }
    if (!s_targets.empty()) {
      circuit.append(GateType::S, s_targets);
    }
    if (!i_targets.empty()) {
      circuit.append(GateType::I, i_targets);
    }

    if (pairs > 0) {
      circuit.append(GateType::CNOT, draw_disjoint_pairs(n, pairs, rng));
    }

    if (options.depolarize_probability > 0.0) {
      std::vector<std::uint32_t> all(n);
      std::iota(all.begin(), all.end(), 0u);
      circuit.append(GateType::DEPOLARIZE1, all,
                     options.depolarize_probability);
    }

    if (measured_per_layer > 0) {
      std::vector<std::uint32_t> chosen =
          draw_disjoint_pairs(n, measured_per_layer, rng);
      // draw_disjoint_pairs returns 2*k entries; keep the first k as the
      // measured subset (still a uniform k-subset).
      chosen.resize(measured_per_layer);
      std::sort(chosen.begin(), chosen.end());
      circuit.append(GateType::M, chosen);
    }

    circuit.append(GateType::TICK, {});
  }

  if (options.final_measure_all) {
    std::vector<std::uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    circuit.append(GateType::M, all);
  }
  return circuit;
}

Circuit repetition_code_memory(const RepetitionCodeOptions& options) {
  const std::size_t d = options.distance;
  SYMPHASE_CHECK(d >= 2);
  const std::size_t rounds = options.rounds;
  SYMPHASE_CHECK(rounds >= 1);
  // Data qubits 0..d-1, ancilla i (measuring Z_i Z_{i+1}) at d+i.
  const auto data = [](std::size_t i) { return static_cast<std::uint32_t>(i); };
  const auto anc = [d](std::size_t i) {
    return static_cast<std::uint32_t>(d + i);
  };

  Circuit circuit(2 * d - 1);
  for (std::size_t round = 0; round < rounds; ++round) {
    if (options.data_error_probability > 0.0) {
      std::vector<std::uint32_t> all_data(d);
      std::iota(all_data.begin(), all_data.end(), 0u);
      circuit.append(GateType::X_ERROR, all_data,
                     options.data_error_probability);
    }
    for (std::size_t i = 0; i + 1 < d; ++i) {
      circuit.append2(GateType::CNOT, data(i), anc(i));
      if (options.gate_error_probability > 0.0) {
        circuit.append(GateType::DEPOLARIZE2, {data(i), anc(i)},
                       options.gate_error_probability);
      }
      circuit.append2(GateType::CNOT, data(i + 1), anc(i));
      if (options.gate_error_probability > 0.0) {
        circuit.append(GateType::DEPOLARIZE2, {data(i + 1), anc(i)},
                       options.gate_error_probability);
      }
    }
    std::vector<std::uint32_t> ancillas;
    for (std::size_t i = 0; i + 1 < d; ++i) {
      ancillas.push_back(anc(i));
    }
    if (options.measurement_error_probability > 0.0) {
      circuit.append(GateType::X_ERROR, ancillas,
                     options.measurement_error_probability);
    }
    circuit.append(GateType::MR, ancillas);
    circuit.append(GateType::TICK, {});
  }
  std::vector<std::uint32_t> all_data(d);
  std::iota(all_data.begin(), all_data.end(), 0u);
  circuit.append(GateType::M, all_data);
  return circuit;
}

Circuit ghz_circuit(std::size_t num_qubits) {
  SYMPHASE_CHECK(num_qubits >= 1);
  Circuit circuit(num_qubits);
  circuit.append1(GateType::H, 0);
  for (std::uint32_t q = 0; q + 1 < num_qubits; ++q) {
    circuit.append2(GateType::CNOT, q, q + 1);
  }
  std::vector<std::uint32_t> all(num_qubits);
  std::iota(all.begin(), all.end(), 0u);
  circuit.append(GateType::M, all);
  return circuit;
}

Circuit steane_code_memory(const SteaneCodeOptions& options) {
  SYMPHASE_CHECK(options.rounds >= 1);
  // Hamming(7,4) parity checks; both the X- and Z-type stabilizers of
  // the Steane code use these supports.
  static const std::vector<std::vector<std::uint32_t>> kChecks = {
      {0, 2, 4, 6},
      {1, 2, 5, 6},
      {3, 4, 5, 6},
  };
  constexpr std::uint32_t kNumData = 7;
  const auto z_anc = [](std::size_t k) {
    return static_cast<std::uint32_t>(kNumData + k);
  };
  const auto x_anc = [](std::size_t k) {
    return static_cast<std::uint32_t>(kNumData + 3 + k);
  };
  constexpr std::size_t kAncillas = 6;

  Circuit circuit(kNumData + kAncillas);
  std::vector<std::uint32_t> all_data(kNumData);
  std::iota(all_data.begin(), all_data.end(), 0u);
  std::vector<std::uint32_t> all_ancillas;
  for (std::size_t k = 0; k < kAncillas; ++k) {
    all_ancillas.push_back(static_cast<std::uint32_t>(kNumData + k));
  }

  const auto rec = [&circuit](std::size_t lookback) {
    return make_rec_target(static_cast<std::uint32_t>(lookback));
  };

  for (std::size_t round = 0; round < options.rounds; ++round) {
    if (options.data_error_probability > 0.0) {
      circuit.append(GateType::X_ERROR, all_data,
                     options.data_error_probability);
    }
    // Z syndromes: CNOT data -> ancilla.
    for (std::size_t k = 0; k < kChecks.size(); ++k) {
      for (const std::uint32_t q : kChecks[k]) {
        circuit.append2(GateType::CNOT, q, z_anc(k));
      }
    }
    // X syndromes: Hadamard ancilla, CNOT ancilla -> data.
    for (std::size_t k = 0; k < kChecks.size(); ++k) {
      circuit.append1(GateType::H, x_anc(k));
      for (const std::uint32_t q : kChecks[k]) {
        circuit.append2(GateType::CNOT, x_anc(k), q);
      }
      circuit.append1(GateType::H, x_anc(k));
    }
    if (options.measurement_error_probability > 0.0) {
      circuit.append(GateType::X_ERROR, all_ancillas,
                     options.measurement_error_probability);
    }
    circuit.append(GateType::MR, all_ancillas);
    circuit.append(GateType::TICK, {});

    if (round == 0) {
      for (std::size_t k = 0; k < kChecks.size(); ++k) {
        // Z ancillas are the first three measured.
        circuit.append(GateType::DETECTOR, {rec(kAncillas - k)});
      }
    } else {
      for (std::size_t k = 0; k < kAncillas; ++k) {
        circuit.append(GateType::DETECTOR,
                       {rec(kAncillas - k), rec(2 * kAncillas - k)});
      }
    }
  }

  circuit.append(GateType::M, all_data);
  for (std::size_t k = 0; k < kChecks.size(); ++k) {
    std::vector<std::uint32_t> targets;
    for (const std::uint32_t q : kChecks[k]) {
      targets.push_back(rec(kNumData - q));
    }
    targets.push_back(rec(kNumData + kAncillas - k));
    circuit.append(GateType::DETECTOR, targets);
  }
  // Weight-3 logical Z: qubits {0, 1, 2} overlap every Hamming check
  // evenly, so it commutes with all X stabilizers.
  circuit.append(GateType::OBSERVABLE_INCLUDE,
                 {rec(kNumData - 0), rec(kNumData - 1), rec(kNumData - 2)},
                 0.0);
  return circuit;
}

Circuit figure1_circuit(double p) {
  // Fig. 1 of the paper: GHZ preparation, single-qubit fault sites, then
  // the mirror (uncompute) circuit and a transversal measurement. The
  // resulting outcome expressions are m1=s1, m2=s2, m3=s2^s3, m4=s3^s4.
  Circuit circuit(4);
  circuit.append1(GateType::H, 0);
  circuit.append2(GateType::CNOT, 0, 1);
  circuit.append2(GateType::CNOT, 1, 2);
  circuit.append2(GateType::CNOT, 2, 3);
  circuit.append(GateType::Z_ERROR, {0}, p);
  circuit.append(GateType::X_ERROR, {1}, p);
  circuit.append(GateType::X_ERROR, {2}, p);
  circuit.append(GateType::X_ERROR, {3}, p);
  circuit.append2(GateType::CNOT, 2, 3);
  circuit.append2(GateType::CNOT, 1, 2);
  circuit.append2(GateType::CNOT, 0, 1);
  circuit.append1(GateType::H, 0);
  circuit.append(GateType::M, {0, 1, 2, 3});
  return circuit;
}

Circuit random_fuzz_circuit(std::size_t num_qubits, std::size_t depth,
                            double noise_probability, Rng& rng,
                            bool include_noise) {
  SYMPHASE_CHECK(num_qubits >= 2);
  static constexpr GateType kOneQubit[] = {
      GateType::I,      GateType::X,          GateType::Y,
      GateType::Z,      GateType::H,          GateType::S,
      GateType::S_DAG,  GateType::SQRT_X,     GateType::SQRT_X_DAG,
      GateType::H_YZ,
  };
  static constexpr GateType kTwoQubit[] = {GateType::CNOT, GateType::CZ,
                                           GateType::SWAP};
  static constexpr GateType kNoise[] = {
      GateType::X_ERROR, GateType::Y_ERROR, GateType::Z_ERROR,
      GateType::DEPOLARIZE1, GateType::DEPOLARIZE2};
  static constexpr GateType kControlled[] = {GateType::COND_X,
                                             GateType::COND_Y,
                                             GateType::COND_Z};

  Circuit circuit(num_qubits);
  std::size_t measurements_so_far = 0;
  for (std::size_t step = 0; step < depth; ++step) {
    const auto q1 = static_cast<std::uint32_t>(rng.next_below(num_qubits));
    auto q2 = static_cast<std::uint32_t>(rng.next_below(num_qubits - 1));
    if (q2 >= q1) {
      ++q2;  // distinct second qubit
    }
    const std::uint64_t kind = rng.next_below(include_noise ? 11 : 9);
    if (kind < 5) {
      circuit.append1(kOneQubit[rng.next_below(std::size(kOneQubit))], q1);
    } else if (kind < 7) {
      circuit.append2(kTwoQubit[rng.next_below(std::size(kTwoQubit))], q1, q2);
    } else if (kind < 8) {
      if (rng.next_below(4) == 0) {
        circuit.append1(rng.next_below(2) == 0 ? GateType::R : GateType::MR,
                        q1);
      } else {
        circuit.append1(GateType::M, q1);
      }
      if (circuit.instructions().back().type != GateType::R) {
        ++measurements_so_far;
      }
    } else if (kind < 9) {
      // Record-controlled Pauli with a valid lookback.
      if (measurements_so_far == 0) {
        circuit.append1(GateType::M, q1);
        ++measurements_so_far;
      } else {
        const auto lookback = static_cast<std::uint32_t>(
            rng.next_below(std::min<std::size_t>(measurements_so_far, 8)) +
            1);
        circuit.append2(kControlled[rng.next_below(std::size(kControlled))],
                        make_rec_target(lookback), q1);
      }
    } else {
      const GateType noise = kNoise[rng.next_below(std::size(kNoise))];
      if (gate_arity(noise) == 2) {
        circuit.append2(noise, q1, q2, noise_probability);
      } else {
        circuit.append1(noise, q1, noise_probability);
      }
    }
  }
  // Guarantee at least one measurement so samplers have output.
  circuit.append1(GateType::M, 0);
  return circuit;
}

}  // namespace symphase
