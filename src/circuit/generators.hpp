#pragma once

/// \file generators.hpp
/// Parameterized circuit families used by the tests, examples, and the
/// paper's benchmarks.
///
/// The layered random interaction family is the benchmark of §5 / Fig. 3:
/// an n-qubit, n-layer circuit where each layer applies a random choice
/// of {H, S, I} to every qubit, then a configurable number of random
/// CNOT pairs, optionally DEPOLARIZE1 noise on every qubit, then measures
/// a random 5% subset of qubits; all qubits are measured at the end.

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace symphase {

struct LayeredRandomCircuitOptions {
  std::size_t num_qubits = 100;
  std::size_t num_layers = 100;
  /// CNOT pairs per layer. Fig. 3a uses 5; Fig. 3b/3c use n/2 (set
  /// `cnot_pairs_per_layer = 0` and `half_n_cnot_pairs = true`).
  std::size_t cnot_pairs_per_layer = 5;
  bool half_n_cnot_pairs = false;
  /// Fraction of qubits measured at each layer (paper: 5%).
  double measure_fraction = 0.05;
  /// When > 0, applies DEPOLARIZE1(p) to every qubit in every layer
  /// (Fig. 3c uses this).
  double depolarize_probability = 0.0;
  /// Measure every qubit at the end of the circuit (paper: yes).
  bool final_measure_all = true;
};

/// Builds one sample of the layered random interaction family; the
/// structure is drawn from `rng`, so a fixed seed fixes the circuit.
Circuit layered_random_circuit(const LayeredRandomCircuitOptions& options,
                               Rng& rng);

struct RepetitionCodeOptions {
  /// Number of data qubits (code distance).
  std::size_t distance = 3;
  /// Number of syndrome-measurement rounds.
  std::size_t rounds = 3;
  /// X error probability applied to every data qubit each round
  /// (code-capacity style noise before each round's syndrome extraction).
  double data_error_probability = 0.0;
  /// Depolarizing probability after each CNOT (circuit-level noise).
  double gate_error_probability = 0.0;
  /// Measurement flip probability on ancilla readout.
  double measurement_error_probability = 0.0;
};

/// Z-basis repetition-code memory experiment: `distance` data qubits,
/// distance-1 ancillas, `rounds` rounds of ZZ-parity extraction followed
/// by a transversal data measurement. Measurement record layout:
/// rounds×(distance−1) syndrome bits, then `distance` data bits.
Circuit repetition_code_memory(const RepetitionCodeOptions& options);

/// GHZ-state preparation on n qubits followed by measuring all qubits.
Circuit ghz_circuit(std::size_t num_qubits);

struct SteaneCodeOptions {
  /// Syndrome-measurement rounds (>= 1).
  std::size_t rounds = 3;
  /// X_ERROR on every data qubit before each round.
  double data_error_probability = 0.0;
  /// X_ERROR on each ancilla right before readout.
  double measurement_error_probability = 0.0;
};

/// Steane [[7,1,3]] code memory experiment in the Z basis, with DETECTOR
/// annotations (first-round Z syndromes, round-to-round comparisons of
/// all six syndromes, final data parities) and OBSERVABLE_INCLUDE(0) on
/// a weight-3 logical Z representative. Data qubits 0..6, ancillas 7..12
/// (Z-syndrome ancillas first).
Circuit steane_code_memory(const SteaneCodeOptions& options);

/// The 4-qubit example of the paper's Fig. 1: H 0; CNOTs 0→1→2→3 building
/// a GHZ-like state; single-qubit fault sites Z^s1 on qubit 0 (after H)
/// and X^s2..s4 on qubits 1..3; H on qubit 0; measure all.
/// Fault sites are expressed as X_ERROR/Z_ERROR with probability `p`.
Circuit figure1_circuit(double p);

/// Uniformly random Clifford+measurement circuit used by the fuzz tests:
/// `depth` instructions over `num_qubits` qubits, drawn from the full
/// gate set with the given noise probability for channels.
Circuit random_fuzz_circuit(std::size_t num_qubits, std::size_t depth,
                            double noise_probability, Rng& rng,
                            bool include_noise = true);

}  // namespace symphase
