#include "circuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace symphase {

void Circuit::append(GateType type, std::span<const std::uint32_t> targets,
                     double probability) {
  const GateInfo& info = gate_info(type);

  if (info.kind == GateKind::kAnnotation) {
    SYMPHASE_CHECK_MSG(targets.empty(),
                       gate_name(type) << " takes no targets");
    instructions_.push_back({type, 0.0, {}});
    return;
  }

  SYMPHASE_CHECK_MSG(!targets.empty(),
                     gate_name(type) << " needs at least one target");
  if (type == GateType::OBSERVABLE_INCLUDE) {
    SYMPHASE_CHECK_MSG(probability >= 0.0 &&
                           probability == std::floor(probability) &&
                           probability < 1e6,
                       "OBSERVABLE_INCLUDE index must be a small "
                       "non-negative integer, got "
                           << probability);
  } else if (info.takes_probability) {
    SYMPHASE_CHECK_MSG(probability >= 0.0 && probability <= 1.0,
                       gate_name(type) << " probability " << probability
                                       << " outside [0, 1]");
  } else {
    SYMPHASE_CHECK_MSG(probability == 0.0,
                       gate_name(type) << " does not take a probability");
  }
  if (info.kind == GateKind::kDetector) {
    for (const std::uint32_t t : targets) {
      SYMPHASE_CHECK_MSG(is_rec_target(t) && rec_lookback(t) >= 1,
                         gate_name(type)
                             << " takes only rec[-k] targets with k >= 1");
    }
    instructions_.push_back(
        {type, info.takes_probability ? probability : 0.0,
         std::vector<std::uint32_t>(targets.begin(), targets.end())});
    return;
  }
  if (info.kind == GateKind::kControlled) {
    SYMPHASE_CHECK_MSG(targets.size() % 2 == 0,
                       gate_name(type)
                           << " needs (record, qubit) target pairs");
    for (std::size_t i = 0; i < targets.size(); i += 2) {
      SYMPHASE_CHECK_MSG(is_rec_target(targets[i]),
                         gate_name(type) << " control must be a rec[-k] "
                                            "measurement-record target");
      SYMPHASE_CHECK_MSG(rec_lookback(targets[i]) >= 1,
                         gate_name(type) << " record lookback must be >= 1");
      SYMPHASE_CHECK_MSG(!is_rec_target(targets[i + 1]),
                         gate_name(type) << " target must be a qubit");
    }
  } else {
    for (const std::uint32_t t : targets) {
      SYMPHASE_CHECK_MSG(!is_rec_target(t),
                         gate_name(type)
                             << " does not accept measurement-record targets");
    }
    if (gate_arity(type) == 2) {
      SYMPHASE_CHECK_MSG(targets.size() % 2 == 0,
                         gate_name(type)
                             << " needs an even number of targets");
      for (std::size_t i = 0; i < targets.size(); i += 2) {
        SYMPHASE_CHECK_MSG(targets[i] != targets[i + 1],
                           gate_name(type)
                               << " target pair (" << targets[i] << ", "
                               << targets[i + 1] << ") must be distinct");
      }
    }
  }
  std::uint32_t max_target = 0;
  for (const std::uint32_t t : targets) {
    if (!is_rec_target(t)) {
      max_target = std::max(max_target, t);
    }
  }
  ensure_num_qubits(static_cast<std::size_t>(max_target) + 1);

  instructions_.push_back(
      {type, info.takes_probability ? probability : 0.0,
       std::vector<std::uint32_t>(targets.begin(), targets.end())});
}

void Circuit::append_repeated(const Circuit& body, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    append_circuit(body);
  }
}

void Circuit::append_circuit(const Circuit& other) {
  ensure_num_qubits(other.num_qubits_);
  instructions_.insert(instructions_.end(), other.instructions_.begin(),
                       other.instructions_.end());
}

CircuitStats Circuit::stats() const {
  CircuitStats s;
  s.num_qubits = num_qubits_;
  s.num_instructions = instructions_.size();
  for (const Instruction& inst : instructions_) {
    const GateInfo& info = gate_info(inst.type);
    const std::size_t units = inst.targets.size() / gate_arity(inst.type);
    switch (info.kind) {
      case GateKind::kUnitary1:
      case GateKind::kUnitary2:
        s.num_gates += units;
        break;
      case GateKind::kMeasure:
        s.num_measurements += units;
        if (inst.type == GateType::MR) {
          s.num_resets += units;
        }
        break;
      case GateKind::kReset:
        s.num_resets += units;
        break;
      case GateKind::kNoise1:
        // DEPOLARIZE1 decomposes into X^s Z^s' — still one fault site in
        // the paper's n_p accounting (single-qubit Pauli fault).
        s.num_noise_sites += units;
        break;
      case GateKind::kNoise2:
        s.num_noise_sites += 2 * units;  // two single-qubit components
        break;
      case GateKind::kControlled:
        s.num_gates += units;
        break;
      case GateKind::kDetector:
      case GateKind::kAnnotation:
        break;
    }
  }
  return s;
}

std::size_t Circuit::num_measurements() const {
  std::size_t n = 0;
  for (const Instruction& inst : instructions_) {
    if (gate_info(inst.type).kind == GateKind::kMeasure) {
      n += inst.targets.size();
    }
  }
  return n;
}

std::size_t Circuit::num_detectors() const {
  std::size_t n = 0;
  for (const Instruction& inst : instructions_) {
    n += inst.type == GateType::DETECTOR;
  }
  return n;
}

std::size_t Circuit::num_observables() const {
  std::size_t max_plus_one = 0;
  for (const Instruction& inst : instructions_) {
    if (inst.type == GateType::OBSERVABLE_INCLUDE) {
      max_plus_one = std::max(
          max_plus_one, static_cast<std::size_t>(inst.probability) + 1);
    }
  }
  return max_plus_one;
}

DetectorLayout resolve_detectors(const Circuit& circuit) {
  DetectorLayout layout;
  layout.observables.resize(circuit.num_observables());
  std::size_t measurements = 0;
  for (const Instruction& inst : circuit.instructions()) {
    if (gate_info(inst.type).kind == GateKind::kMeasure) {
      measurements += inst.targets.size();
      continue;
    }
    if (gate_info(inst.type).kind != GateKind::kDetector) {
      continue;
    }
    std::vector<std::size_t> indices;
    indices.reserve(inst.targets.size());
    for (const std::uint32_t t : inst.targets) {
      const std::uint32_t lookback = rec_lookback(t);
      SYMPHASE_CHECK_MSG(lookback <= measurements,
                         gate_name(inst.type)
                             << " lookback " << lookback
                             << " exceeds the measurement record");
      indices.push_back(measurements - lookback);
    }
    std::sort(indices.begin(), indices.end());
    if (inst.type == GateType::DETECTOR) {
      layout.detectors.push_back(std::move(indices));
    } else {
      auto& obs =
          layout.observables[static_cast<std::size_t>(inst.probability)];
      obs.insert(obs.end(), indices.begin(), indices.end());
      std::sort(obs.begin(), obs.end());
    }
  }
  return layout;
}

std::string Circuit::to_text() const {
  std::ostringstream oss;
  for (const Instruction& inst : instructions_) {
    oss << gate_name(inst.type);
    if (gate_info(inst.type).takes_probability) {
      oss << '(' << inst.probability << ')';
    }
    for (const std::uint32_t t : inst.targets) {
      if (is_rec_target(t)) {
        oss << " rec[-" << rec_lookback(t) << "]";
      } else {
        oss << ' ' << t;
      }
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace symphase
