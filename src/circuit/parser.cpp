#include "circuit/parser.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

namespace symphase {

namespace {

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  std::ostringstream oss;
  oss << "circuit parse error at line " << line_no << ": " << what;
  throw std::invalid_argument(oss.str());
}

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t')) {
      ++pos;
    }
  }

  std::string_view take_name() {
    const std::size_t start = pos;
    while (!done() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
      ++pos;
    }
    return text.substr(start, pos - start);
  }

  std::uint64_t take_uint() {
    std::uint64_t value = 0;
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) {
      parse_error(line_no, "expected an unsigned integer");
    }
    pos += static_cast<std::size_t>(ptr - begin);
    return value;
  }

  double take_double() {
    const auto* begin = text.data() + pos;
    const auto* end = text.data() + text.size();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) {
      parse_error(line_no, "expected a floating-point number");
    }
    pos += static_cast<std::size_t>(ptr - begin);
    return value;
  }
};

// An open REPEAT block being accumulated.
struct OpenBlock {
  std::size_t count;
  std::size_t line_no;
  Circuit body;
};

}  // namespace

Circuit parse_circuit(std::string_view text) {
  Circuit top;
  std::vector<OpenBlock> stack;

  const auto target_circuit = [&]() -> Circuit& {
    return stack.empty() ? top : stack.back().body;
  };

  std::size_t line_no = 0;
  std::size_t line_start = 0;
  while (line_start <= text.size()) {
    ++line_no;
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) {
      line_end = text.size();
    }
    Cursor cur{text.substr(line_start, line_end - line_start), 0, line_no};
    line_start = line_end + 1;

    cur.skip_ws();
    if (cur.done() || cur.peek() == '#') {
      if (line_start > text.size()) {
        break;
      }
      continue;
    }

    if (cur.peek() == '}') {
      ++cur.pos;
      cur.skip_ws();
      if (!cur.done() && cur.peek() != '#') {
        parse_error(line_no, "unexpected text after '}'");
      }
      if (stack.empty()) {
        parse_error(line_no, "'}' without a matching REPEAT");
      }
      OpenBlock block = std::move(stack.back());
      stack.pop_back();
      target_circuit().append_repeated(block.body, block.count);
      continue;
    }

    const std::string_view name = cur.take_name();
    if (name.empty()) {
      parse_error(line_no, "expected an instruction name");
    }

    if (name == "REPEAT") {
      cur.skip_ws();
      const std::uint64_t count = cur.take_uint();
      cur.skip_ws();
      if (cur.done() || cur.peek() != '{') {
        parse_error(line_no, "REPEAT needs '{' on the same line");
      }
      ++cur.pos;
      cur.skip_ws();
      if (!cur.done() && cur.peek() != '#') {
        parse_error(line_no, "unexpected text after 'REPEAT n {'");
      }
      stack.push_back({static_cast<std::size_t>(count), line_no, Circuit{}});
      continue;
    }

    const auto type = gate_type_from_name(name);
    if (!type.has_value()) {
      parse_error(line_no,
                  "unknown instruction '" + std::string(name) + "'");
    }

    double probability = 0.0;
    cur.skip_ws();
    if (!cur.done() && cur.peek() == '(') {
      if (!gate_info(*type).takes_probability) {
        parse_error(line_no, std::string(name) + " takes no argument");
      }
      ++cur.pos;
      cur.skip_ws();
      probability = cur.take_double();
      cur.skip_ws();
      if (cur.done() || cur.peek() != ')') {
        parse_error(line_no, "expected ')'");
      }
      ++cur.pos;
    } else if (gate_info(*type).takes_probability) {
      parse_error(line_no,
                  std::string(name) + " requires a probability argument");
    }

    std::vector<std::uint32_t> targets;
    while (true) {
      cur.skip_ws();
      if (cur.done() || cur.peek() == '#') {
        break;
      }
      if (cur.peek() == 'r') {
        // Measurement-record target: rec[-k].
        const std::string_view word = cur.take_name();
        if (word != "rec") {
          parse_error(line_no, "expected a qubit index or rec[-k]");
        }
        if (cur.done() || cur.peek() != '[') {
          parse_error(line_no, "expected '[' after rec");
        }
        ++cur.pos;
        if (cur.done() || cur.peek() != '-') {
          parse_error(line_no, "record targets look back: rec[-k]");
        }
        ++cur.pos;
        const std::uint64_t lookback = cur.take_uint();
        if (lookback == 0 || lookback >= kRecTargetFlag) {
          parse_error(line_no, "record lookback out of range");
        }
        if (cur.done() || cur.peek() != ']') {
          parse_error(line_no, "expected ']'");
        }
        ++cur.pos;
        targets.push_back(
            make_rec_target(static_cast<std::uint32_t>(lookback)));
        continue;
      }
      const std::uint64_t t = cur.take_uint();
      if (t >= kRecTargetFlag) {
        parse_error(line_no, "qubit index too large");
      }
      targets.push_back(static_cast<std::uint32_t>(t));
    }

    try {
      target_circuit().append(*type, targets, probability);
    } catch (const std::invalid_argument& e) {
      parse_error(line_no, e.what());
    }

    if (line_start > text.size()) {
      break;
    }
  }

  if (!stack.empty()) {
    parse_error(stack.back().line_no, "REPEAT block never closed");
  }
  return top;
}

Circuit parse_circuit_file(const std::string& path) {
  std::ifstream in(path);
  SYMPHASE_CHECK_MSG(in.good(), "cannot open circuit file: " << path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return parse_circuit(oss.str());
}

}  // namespace symphase
