#pragma once

/// \file gate.hpp
/// The gate set of the stabilizer-circuit IR.
///
/// The set mirrors what the paper's circuits need: the Clifford
/// generators (H, S, CNOT) plus the common derived Cliffords, Pauli
/// gates, computational-basis measurement/reset, and the Pauli noise
/// channels of §3.1 (X/Y/Z error, 1- and 2-qubit depolarization). Names
/// follow Stim's text format so circuits are interchangeable.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace symphase {

enum class GateType : std::uint8_t {
  // Single-qubit Cliffords.
  I,
  X,
  Y,
  Z,
  H,          // Hadamard (X <-> Z)
  S,          // sqrt(Z)
  S_DAG,
  SQRT_X,
  SQRT_X_DAG,
  H_YZ,       // Hadamard-like swap of Y and Z
  // Two-qubit Cliffords.
  CNOT,
  CZ,
  SWAP,
  // Measurement / reset (computational basis).
  M,   // measure Z
  MR,  // measure Z then reset to |0>
  R,   // reset to |0>
  // Pauli noise channels (probability argument required).
  X_ERROR,
  Y_ERROR,
  Z_ERROR,
  DEPOLARIZE1,
  DEPOLARIZE2,
  // Classically-controlled Paulis: targets are (record, qubit) pairs
  // where the record target is a lookback into the measurement record
  // (paper §6: conditional Pauli gates X^e for dynamic circuits).
  COND_X,
  COND_Y,
  COND_Z,
  // QEC annotations (all targets are rec[-k] lookbacks):
  // DETECTOR declares that the XOR of the referenced measurements is 0
  // in the absence of faults; OBSERVABLE_INCLUDE(k) XORs them into
  // logical observable k.
  DETECTOR,
  OBSERVABLE_INCLUDE,
  // Structural no-op separating layers; ignored by simulators.
  TICK,
};

/// Broad behavioural class of a gate; simulators dispatch on this first.
enum class GateKind : std::uint8_t {
  kUnitary1,   // single-qubit Clifford
  kUnitary2,   // two-qubit Clifford (targets consumed in pairs)
  kMeasure,    // produces one measurement record entry per target
  kReset,
  kNoise1,     // single-qubit Pauli channel
  kNoise2,     // two-qubit Pauli channel (targets consumed in pairs)
  kControlled, // record-controlled Pauli (targets: (rec, qubit) pairs)
  kDetector,   // DETECTOR / OBSERVABLE_INCLUDE (rec targets only)
  kAnnotation, // TICK
};

struct GateInfo {
  GateType type;
  std::string_view name;
  GateKind kind;
  /// Parenthesized numeric argument: a probability for noise channels,
  /// the observable index for OBSERVABLE_INCLUDE.
  bool takes_probability;
};

/// Static metadata for a gate type.
const GateInfo& gate_info(GateType type);

/// Case-sensitive name lookup ("CX" accepted as alias of "CNOT").
std::optional<GateType> gate_type_from_name(std::string_view name);

inline std::string_view gate_name(GateType type) {
  return gate_info(type).name;
}

inline bool is_unitary(GateType type) {
  const GateKind k = gate_info(type).kind;
  return k == GateKind::kUnitary1 || k == GateKind::kUnitary2;
}

inline bool is_noise(GateType type) {
  const GateKind k = gate_info(type).kind;
  return k == GateKind::kNoise1 || k == GateKind::kNoise2;
}

inline bool is_two_qubit(GateType type) {
  const GateKind k = gate_info(type).kind;
  return k == GateKind::kUnitary2 || k == GateKind::kNoise2;
}

/// Number of targets each "unit" of the instruction consumes (2 for
/// pairwise gates/noise and for (record, qubit)-controlled Paulis,
/// 1 otherwise).
inline std::size_t gate_arity(GateType type) {
  return is_two_qubit(type) || gate_info(type).kind == GateKind::kControlled
             ? 2
             : 1;
}

// --- Measurement-record targets --------------------------------------
// Controlled gates address earlier measurements by lookback: a target
// with the high bit set means "the k-th most recent measurement". The
// encoding mirrors Stim's rec[-k] syntax in the text format.

inline constexpr std::uint32_t kRecTargetFlag = 0x80000000u;

constexpr std::uint32_t make_rec_target(std::uint32_t lookback) {
  return kRecTargetFlag | lookback;
}
constexpr bool is_rec_target(std::uint32_t target) {
  return (target & kRecTargetFlag) != 0;
}
/// Lookback distance: 1 = most recent measurement.
constexpr std::uint32_t rec_lookback(std::uint32_t target) {
  return target & ~kRecTargetFlag;
}

}  // namespace symphase
