#include "circuit/surface_code.hpp"

#include <algorithm>

namespace symphase {

namespace {

/// Data qubit id for grid row i, column j (0-based), or -1 outside.
int data_id(std::size_t d, int i, int j) {
  if (i < 0 || j < 0 || i >= static_cast<int>(d) || j >= static_cast<int>(d)) {
    return -1;
  }
  return i * static_cast<int>(d) + j;
}

}  // namespace

SurfaceCodeLayout surface_code_layout(std::size_t distance) {
  SYMPHASE_CHECK_MSG(distance >= 3 && distance % 2 == 1,
                     "surface code distance must be odd and >= 3");
  const auto d = distance;
  SurfaceCodeLayout layout;
  layout.distance = d;
  layout.num_data = d * d;

  // Check centers live on the (d+1) x (d+1) grid of plaquette corners;
  // center (ci, cj) touches data qubits (ci-1..ci, cj-1..cj).
  //   Z checks: (ci + cj) odd, interior rows only (0 < ci < d) — the
  //             weight-2 Z checks sit on the left/right columns;
  //   X checks: (ci + cj) even, interior columns only (0 < cj < d).
  // This yields d^2 - 1 checks and a horizontal logical Z.
  const auto add_checks = [&](bool want_z) {
    for (std::size_t ci = 0; ci <= d; ++ci) {
      for (std::size_t cj = 0; cj <= d; ++cj) {
        const bool is_z = (ci + cj) % 2 == 1;
        if (is_z != want_z) {
          continue;
        }
        if (is_z && (ci == 0 || ci == d)) {
          continue;
        }
        if (!is_z && (cj == 0 || cj == d)) {
          continue;
        }
        SurfaceCodeLayout::Check check;
        check.is_z = is_z;
        for (const int di : {-1, 0}) {
          for (const int dj : {-1, 0}) {
            const int q = data_id(d, static_cast<int>(ci) + di,
                                  static_cast<int>(cj) + dj);
            if (q >= 0) {
              check.data.push_back(static_cast<std::uint32_t>(q));
            }
          }
        }
        SYMPHASE_ASSERT(check.data.size() == 2 || check.data.size() == 4);
        std::sort(check.data.begin(), check.data.end());
        layout.checks.push_back(std::move(check));
      }
    }
  };
  add_checks(true);   // Z checks first
  add_checks(false);  // then X checks
  SYMPHASE_ASSERT(layout.checks.size() == d * d - 1);

  for (std::size_t k = 0; k < layout.checks.size(); ++k) {
    layout.checks[k].ancilla =
        static_cast<std::uint32_t>(layout.num_data + k);
  }

  // Logical Z: the top data row (commutes with every X check: each one
  // overlaps the row in exactly 0 or 2 qubits).
  for (std::size_t j = 0; j < d; ++j) {
    layout.logical_z.push_back(static_cast<std::uint32_t>(j));
  }
  return layout;
}

Circuit surface_code_memory(const SurfaceCodeOptions& options) {
  SYMPHASE_CHECK(options.rounds >= 1);
  const SurfaceCodeLayout layout = surface_code_layout(options.distance);
  const std::size_t num_checks = layout.checks.size();
  const auto num_data32 = static_cast<std::uint32_t>(layout.num_data);

  Circuit circuit(layout.num_data + num_checks);

  std::vector<std::uint32_t> all_data(layout.num_data);
  for (std::uint32_t q = 0; q < num_data32; ++q) {
    all_data[q] = q;
  }
  std::vector<std::uint32_t> all_ancillas;
  for (const auto& check : layout.checks) {
    all_ancillas.push_back(check.ancilla);
  }

  const auto extract_round = [&] {
    if (options.data_depolarization > 0.0) {
      circuit.append(GateType::DEPOLARIZE1, all_data,
                     options.data_depolarization);
    }
    // X checks need the ancilla in the |+> basis.
    for (const auto& check : layout.checks) {
      if (!check.is_z) {
        circuit.append1(GateType::H, check.ancilla);
      }
    }
    for (const auto& check : layout.checks) {
      for (const std::uint32_t q : check.data) {
        if (check.is_z) {
          circuit.append2(GateType::CNOT, q, check.ancilla);
        } else {
          circuit.append2(GateType::CNOT, check.ancilla, q);
        }
        if (options.gate_depolarization > 0.0) {
          circuit.append(GateType::DEPOLARIZE2, {q, check.ancilla},
                         options.gate_depolarization);
        }
      }
    }
    for (const auto& check : layout.checks) {
      if (!check.is_z) {
        circuit.append1(GateType::H, check.ancilla);
      }
    }
    if (options.measurement_flip_probability > 0.0) {
      circuit.append(GateType::X_ERROR, all_ancillas,
                     options.measurement_flip_probability);
    }
    circuit.append(GateType::MR, all_ancillas);
    circuit.append(GateType::TICK, {});
  };

  const auto rec = [](std::size_t lookback) {
    return make_rec_target(static_cast<std::uint32_t>(lookback));
  };

  for (std::size_t round = 0; round < options.rounds; ++round) {
    extract_round();
    if (round == 0) {
      // |0...0> is a +1 eigenstate of every Z check: first-round Z
      // outcomes are deterministic detectors on their own.
      for (std::size_t k = 0; k < num_checks; ++k) {
        if (layout.checks[k].is_z) {
          circuit.append(GateType::DETECTOR, {rec(num_checks - k)});
        }
      }
    } else {
      // Later rounds: every check compares against the previous round.
      for (std::size_t k = 0; k < num_checks; ++k) {
        circuit.append(GateType::DETECTOR,
                       {rec(num_checks - k), rec(2 * num_checks - k)});
      }
    }
  }

  // Transversal Z-basis data measurement.
  circuit.append(GateType::M, all_data);
  // Each Z check's parity must agree with its last syndrome outcome.
  for (std::size_t k = 0; k < num_checks; ++k) {
    const auto& check = layout.checks[k];
    if (!check.is_z) {
      continue;
    }
    std::vector<std::uint32_t> targets;
    for (const std::uint32_t q : check.data) {
      targets.push_back(rec(layout.num_data - q));
    }
    targets.push_back(rec(layout.num_data + num_checks - k));
    circuit.append(GateType::DETECTOR, targets);
  }
  // Logical Z readout.
  std::vector<std::uint32_t> logical_targets;
  for (const std::uint32_t q : layout.logical_z) {
    logical_targets.push_back(rec(layout.num_data - q));
  }
  circuit.append(GateType::OBSERVABLE_INCLUDE, logical_targets, 0.0);
  return circuit;
}

}  // namespace symphase
