#include "circuit/gate.hpp"

#include <array>
#include <unordered_map>

#include "common/check.hpp"

namespace symphase {

namespace {

constexpr std::array<GateInfo, 27> kGateTable{{
    {GateType::I, "I", GateKind::kUnitary1, false},
    {GateType::X, "X", GateKind::kUnitary1, false},
    {GateType::Y, "Y", GateKind::kUnitary1, false},
    {GateType::Z, "Z", GateKind::kUnitary1, false},
    {GateType::H, "H", GateKind::kUnitary1, false},
    {GateType::S, "S", GateKind::kUnitary1, false},
    {GateType::S_DAG, "S_DAG", GateKind::kUnitary1, false},
    {GateType::SQRT_X, "SQRT_X", GateKind::kUnitary1, false},
    {GateType::SQRT_X_DAG, "SQRT_X_DAG", GateKind::kUnitary1, false},
    {GateType::H_YZ, "H_YZ", GateKind::kUnitary1, false},
    {GateType::CNOT, "CNOT", GateKind::kUnitary2, false},
    {GateType::CZ, "CZ", GateKind::kUnitary2, false},
    {GateType::SWAP, "SWAP", GateKind::kUnitary2, false},
    {GateType::M, "M", GateKind::kMeasure, false},
    {GateType::MR, "MR", GateKind::kMeasure, false},
    {GateType::R, "R", GateKind::kReset, false},
    {GateType::X_ERROR, "X_ERROR", GateKind::kNoise1, true},
    {GateType::Y_ERROR, "Y_ERROR", GateKind::kNoise1, true},
    {GateType::Z_ERROR, "Z_ERROR", GateKind::kNoise1, true},
    {GateType::DEPOLARIZE1, "DEPOLARIZE1", GateKind::kNoise1, true},
    {GateType::DEPOLARIZE2, "DEPOLARIZE2", GateKind::kNoise2, true},
    {GateType::COND_X, "COND_X", GateKind::kControlled, false},
    {GateType::COND_Y, "COND_Y", GateKind::kControlled, false},
    {GateType::COND_Z, "COND_Z", GateKind::kControlled, false},
    {GateType::DETECTOR, "DETECTOR", GateKind::kDetector, false},
    {GateType::OBSERVABLE_INCLUDE, "OBSERVABLE_INCLUDE",
     GateKind::kDetector, true},
    {GateType::TICK, "TICK", GateKind::kAnnotation, false},
}};

const std::unordered_map<std::string_view, GateType>& name_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, GateType>();
    for (const auto& info : kGateTable) {
      m->emplace(info.name, info.type);
    }
    // Aliases accepted by the parser.
    m->emplace("CX", GateType::CNOT);
    m->emplace("ZCX", GateType::CNOT);
    m->emplace("ZCZ", GateType::CZ);
    m->emplace("MZ", GateType::M);
    m->emplace("MRZ", GateType::MR);
    m->emplace("RZ", GateType::R);
    m->emplace("SQRT_Z", GateType::S);
    m->emplace("SQRT_Z_DAG", GateType::S_DAG);
    return m;
  }();
  return *map;
}

}  // namespace

const GateInfo& gate_info(GateType type) {
  const auto index = static_cast<std::size_t>(type);
  SYMPHASE_ASSERT(index < kGateTable.size());
  SYMPHASE_ASSERT(kGateTable[index].type == type);
  return kGateTable[index];
}

std::optional<GateType> gate_type_from_name(std::string_view name) {
  const auto& map = name_map();
  const auto it = map.find(name);
  if (it == map.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace symphase
