#pragma once

/// \file surface_code.hpp
/// Rotated surface-code memory circuits with detector annotations.
///
/// This is the fault-tolerant-gadget workload the paper's introduction
/// motivates: millions of samples of a QEC circuit, counted by detector
/// and logical-observable statistics. The construction is the standard
/// rotated layout: d×d data qubits, (d²−1) weight-4/weight-2 stabilizer
/// checks measured by ancillas, `rounds` rounds of syndrome extraction
/// with MR ancillas, and a final transversal Z-basis data measurement.
/// DETECTOR annotations compare consecutive syndrome rounds (plus the
/// deterministic first Z round and the final data-vs-last-round parity)
/// and OBSERVABLE_INCLUDE(0) tracks the logical Z operator.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace symphase {

struct SurfaceCodeOptions {
  /// Code distance (odd, >= 3).
  std::size_t distance = 3;
  /// Syndrome-measurement rounds (>= 1).
  std::size_t rounds = 3;
  /// DEPOLARIZE1 on every data qubit before each round.
  double data_depolarization = 0.0;
  /// DEPOLARIZE2 after every syndrome-extraction CNOT.
  double gate_depolarization = 0.0;
  /// X_ERROR on each ancilla right before its readout.
  double measurement_flip_probability = 0.0;
};

/// Geometry of the generated code, exposed for tests and decoders.
struct SurfaceCodeLayout {
  std::size_t distance = 0;
  /// Data qubit ids are row-major: data_qubit(i, j) = i*d + j.
  std::size_t num_data = 0;
  /// Ancilla ids start at num_data, in the order checks are listed.
  struct Check {
    bool is_z = false;
    std::uint32_t ancilla = 0;
    std::vector<std::uint32_t> data;  // supported data qubit ids
  };
  std::vector<Check> checks;
  /// Data qubit ids of the logical Z representative (top row).
  std::vector<std::uint32_t> logical_z;
};

/// Builds the layout only (no circuit); checks() come Z-first.
SurfaceCodeLayout surface_code_layout(std::size_t distance);

/// Builds the full Z-basis memory experiment circuit.
Circuit surface_code_memory(const SurfaceCodeOptions& options);

}  // namespace symphase
