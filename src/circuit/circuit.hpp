#pragma once

/// \file circuit.hpp
/// Flat instruction-stream representation of a stabilizer circuit.
///
/// Circuits are built through checked append calls (or parsed from the
/// Stim-style text format, see parser.hpp) and then consumed linearly by
/// the simulators. REPEAT blocks are expanded at construction time; the
/// simulators see a flat stream, which keeps every pass a single loop.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/check.hpp"

namespace symphase {

/// One instruction: a gate applied to a flat target list. For two-qubit
/// gates/noise the targets are consumed in consecutive pairs.
struct Instruction {
  GateType type = GateType::TICK;
  double probability = 0.0;  // meaningful only for noise channels
  std::vector<std::uint32_t> targets;

  bool operator==(const Instruction&) const = default;
};

/// Aggregate size statistics; these are the n, n_g, n_m, n_p of the
/// paper's Table 1.
struct CircuitStats {
  std::size_t num_qubits = 0;
  std::size_t num_gates = 0;          // n_g: 1q + 2q Clifford applications
  std::size_t num_measurements = 0;   // n_m
  std::size_t num_noise_sites = 0;    // n_p: single-qubit Pauli fault sites
  std::size_t num_resets = 0;
  std::size_t num_instructions = 0;
};

class Circuit {
 public:
  Circuit() = default;

  /// Creates an empty circuit that admits qubits [0, num_qubits).
  explicit Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  std::size_t num_qubits() const { return num_qubits_; }

  const std::vector<Instruction>& instructions() const {
    return instructions_;
  }

  /// Appends `type` on explicit targets. Validates target count parity
  /// for pairwise gates, in-range indices, distinct qubits within a pair,
  /// and the presence/absence of the probability argument.
  void append(GateType type, std::span<const std::uint32_t> targets,
              double probability = 0.0);

  void append(GateType type, std::initializer_list<std::uint32_t> targets,
              double probability = 0.0) {
    append(type, std::span<const std::uint32_t>(targets.begin(), targets.size()),
           probability);
  }

  /// Convenience single- and two-qubit appends.
  void append1(GateType type, std::uint32_t q, double probability = 0.0) {
    const std::uint32_t t[1] = {q};
    append(type, t, probability);
  }
  void append2(GateType type, std::uint32_t a, std::uint32_t b,
               double probability = 0.0) {
    const std::uint32_t t[2] = {a, b};
    append(type, t, probability);
  }

  /// Appends `body` `count` times (REPEAT expansion).
  void append_repeated(const Circuit& body, std::size_t count);

  /// Appends all instructions of `other` (qubit count widened if needed).
  void append_circuit(const Circuit& other);

  /// Grows the qubit count (never shrinks below current usage).
  void ensure_num_qubits(std::size_t n) {
    if (n > num_qubits_) {
      num_qubits_ = n;
    }
  }

  CircuitStats stats() const;

  /// Total number of measurement record entries the circuit produces.
  std::size_t num_measurements() const;

  /// Number of DETECTOR annotations.
  std::size_t num_detectors() const;
  /// One past the largest OBSERVABLE_INCLUDE index (0 when none).
  std::size_t num_observables() const;

  /// Renders the circuit in the text format parse_circuit accepts.
  std::string to_text() const;

  bool operator==(const Circuit&) const = default;

 private:
  std::size_t num_qubits_ = 0;
  std::vector<Instruction> instructions_;
};

/// Detector/observable definitions resolved to absolute measurement
/// indices (in record order). Built by resolve_detectors.
struct DetectorLayout {
  /// detectors[d] = sorted measurement indices whose XOR is detector d.
  std::vector<std::vector<std::size_t>> detectors;
  /// observables[k] = sorted measurement indices XORed into logical k
  /// (may contain duplicates if a measurement is included twice; XOR
  /// semantics make duplicates cancel downstream).
  std::vector<std::vector<std::size_t>> observables;
};

/// Scans the circuit once and resolves every DETECTOR /
/// OBSERVABLE_INCLUDE lookback to absolute measurement indices. Throws
/// if a lookback reaches before the start of the record.
DetectorLayout resolve_detectors(const Circuit& circuit);

}  // namespace symphase
