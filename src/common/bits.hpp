#pragma once

/// \file bits.hpp
/// Word-level bit manipulation shared by the packed bit containers.
///
/// All bit containers in the library pack bits little-endian into 64-bit
/// words: bit index b lives in word b/64 at position b%64. The simulator's
/// hot loops run over whole words; these helpers keep the index arithmetic
/// in one place.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace symphase {

using Word = std::uint64_t;

inline constexpr std::size_t kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

constexpr std::size_t word_index(std::size_t bit) { return bit / kWordBits; }

constexpr std::size_t bit_offset(std::size_t bit) { return bit % kWordBits; }

constexpr Word bit_mask(std::size_t bit) {
  return Word{1} << bit_offset(bit);
}

/// Mask covering the valid low bits of the final word of a `bits`-bit
/// container; all-ones when `bits` is a multiple of 64.
constexpr Word tail_mask(std::size_t bits) {
  const std::size_t rem = bits % kWordBits;
  return rem == 0 ? ~Word{0} : (Word{1} << rem) - 1;
}

inline bool get_bit(const Word* words, std::size_t bit) {
  return (words[word_index(bit)] >> bit_offset(bit)) & 1;
}

inline void set_bit(Word* words, std::size_t bit, bool value) {
  const Word mask = bit_mask(bit);
  if (value) {
    words[word_index(bit)] |= mask;
  } else {
    words[word_index(bit)] &= ~mask;
  }
}

inline void flip_bit(Word* words, std::size_t bit) {
  words[word_index(bit)] ^= bit_mask(bit);
}

inline int popcount(Word w) { return std::popcount(w); }

/// Parity (sum mod 2) of all bits in a word.
inline bool parity(Word w) { return std::popcount(w) & 1; }

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Round `v` up to a multiple of `m` (m must be a power of two).
constexpr std::size_t round_up_pow2(std::size_t v, std::size_t m) {
  return (v + m - 1) & ~(m - 1);
}

}  // namespace symphase
