#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace symphase {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) {
    return;
  }
  const std::size_t workers = std::min(threads, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Drain remaining items so sibling workers stop promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) {
    try {
      pool.emplace_back(worker);
    } catch (const std::system_error&) {
      // Thread creation can fail under resource limits; whatever was
      // spawned keeps draining items and the calling thread picks up the
      // rest below, so this degrades to fewer workers instead of
      // terminating on a joinable-thread unwind.
      break;
    }
  }
  worker();
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace symphase
