#pragma once

/// \file trace.hpp
/// Low-overhead request-lifecycle tracing.
///
/// Recording is compiled in but off by default: every instrumentation
/// site guards on enabled(), a single relaxed atomic load, so the hot
/// shard-fill loop pays one predictable branch when tracing is off.
/// When enabled, events land in per-thread ring buffers:
///
///  - Each thread owns a fixed-capacity ring (registered on first use,
///    kept alive for the process lifetime). The owning thread is the
///    only writer; recording an event is a handful of relaxed atomic
///    stores bracketed by a per-slot sequence word — no locks, no
///    allocation, no contention with other threads.
///  - When a ring wraps, the oldest undrained events are overwritten
///    and counted in dropped_events(); a drain never observes a torn
///    record (the sequence word rejects slots mid-overwrite).
///  - drain_json() consumes every ring's events recorded since the
///    previous drain and renders them as Chrome trace-event JSON
///    (the `{"traceEvents":[...]}` form), loadable in Perfetto or
///    chrome://tracing. `GET /v1/trace` and `symphase serve
///    --trace-out FILE` are thin wrappers over it.
///
/// Events carry a steady-clock nanosecond timestamp, a small per-thread
/// id (stable for the thread's lifetime), and the request identity the
/// serving stack joins logs and metrics on: request id, service ticket,
/// and fusion group. Span names must be string literals (the ring
/// stores the pointer, not a copy).

#include <cstddef>
#include <cstdint>
#include <string>

namespace symphase::trace {

/// True when recording is on. One relaxed load — safe to call on the
/// hottest path.
bool enabled();

/// Flips recording globally. Events recorded before disabling stay in
/// the rings until drained.
void set_enabled(bool on);

/// Steady-clock nanoseconds (the timestamp base for every event).
std::uint64_t now_ns();

/// Capacity (events) of rings created after this call; existing rings
/// keep their size. Rounded up to a power of two, minimum 8. Intended
/// for tests and tools; the default is 4096 events per thread.
void set_ring_capacity(std::size_t events);

/// Records a completed span [start_ns, end_ns] on the calling thread's
/// ring. No-op when tracing is disabled. `id`/`ticket`/`group` are the
/// request identity (0 = not applicable); `aux` is a site-specific
/// index (shard, chunk, ...) surfaced in the event's args.
void span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
          std::uint64_t id = 0, std::uint64_t ticket = 0,
          std::uint64_t group = 0, std::uint64_t aux = 0);

/// Records a point-in-time event (Chrome "i" phase). No-op when
/// tracing is disabled.
void instant(const char* name, std::uint64_t id = 0, std::uint64_t ticket = 0,
             std::uint64_t group = 0, std::uint64_t aux = 0);

/// RAII span: stamps the start time at construction (only when tracing
/// is enabled at that moment) and records on destruction.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t id = 0,
                std::uint64_t ticket = 0, std::uint64_t group = 0,
                std::uint64_t aux = 0)
      : name_(enabled() ? name : nullptr),
        id_(id),
        ticket_(ticket),
        group_(group),
        aux_(aux),
        start_ns_(name_ ? now_ns() : 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (name_ != nullptr) {
      span(name_, start_ns_, now_ns(), id_, ticket_, group_, aux_);
    }
  }

 private:
  const char* name_;
  std::uint64_t id_, ticket_, group_, aux_;
  std::uint64_t start_ns_;
};

/// Total events ever recorded across all rings (drained or not).
std::uint64_t recorded_events();

/// Total events lost to ring wraparound before a drain could read them.
/// Monotonic; exported as `symphase_trace_dropped_events_total`.
std::uint64_t dropped_events();

/// Drains every ring's events recorded since the previous drain and
/// renders them as a Chrome trace-event JSON object:
///
///   {"displayTimeUnit":"ms",
///    "otherData":{"dropped_events":N,"clock":"steady_ns"},
///    "traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,
///                    "pid":1,"tid":...,"args":{...}}, ...]}
///
/// `ts`/`dur` are microseconds (fractional, nanosecond precision) as
/// the Chrome format specifies. Events are sorted by start time.
/// Draining consumes: a second call returns only newer events.
/// Thread-safe; concurrent drains serialize.
std::string drain_json();

/// Testing hook: marks every ring's current contents as drained (without
/// rendering) so a test observes only its own events.
void discard_all_for_testing();

}  // namespace symphase::trace
