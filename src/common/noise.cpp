#include "common/noise.hpp"

#include <bit>
#include <cmath>
#include <optional>

#include "common/check.hpp"
#include "common/rng_lanes.hpp"
#include "common/simd_word.hpp"

namespace symphase {

namespace {

/// Word-block granularity of the engine: big enough that the per-block
/// setup (undecided mask init, early-exit checks) amortizes, small
/// enough that out + undecided + coin buffers stay L1-resident.
constexpr std::size_t kNoiseBlockWords = 128;

/// Batch size for buffered gap / pattern-index draws.
constexpr std::size_t kDrawBatch = 256;

constexpr unsigned kMaxPatternMembers = 6;

/// Refinement pass for a set digit of p: undecided bits where the coin
/// is 0 (u_j < p_j) resolve to 1; bits where the coin is 1 stay
/// undecided. Returns whether any bit is still undecided.
bool refine_digit_one(Word* out, Word* undecided, const Word* r,
                      std::size_t n) {
  WideWord acc = WideWord::zero();
  std::size_t i = 0;
  for (; i + WideWord::kWords <= n; i += WideWord::kWords) {
    const WideWord u = WideWord::load(undecided + i);
    const WideWord rv = WideWord::load(r + i);
    (WideWord::load(out + i) | andnot(rv, u)).store(out + i);
    const WideWord nu = u & rv;
    nu.store(undecided + i);
    acc |= nu;
  }
  Word tail = 0;
  for (; i < n; ++i) {
    out[i] |= undecided[i] & ~r[i];
    undecided[i] &= r[i];
    tail |= undecided[i];
  }
  return acc.nonzero() || tail != 0;
}

/// Refinement pass for a zero digit of p: undecided bits where the coin
/// is 1 (u_j > p_j) resolve to 0; the rest stay undecided.
bool refine_digit_zero(Word* undecided, const Word* r, std::size_t n) {
  WideWord acc = WideWord::zero();
  std::size_t i = 0;
  for (; i + WideWord::kWords <= n; i += WideWord::kWords) {
    const WideWord nu = andnot(WideWord::load(r + i),
                               WideWord::load(undecided + i));
    nu.store(undecided + i);
    acc |= nu;
  }
  Word tail = 0;
  for (; i < n; ++i) {
    undecided[i] &= ~r[i];
    tail |= undecided[i];
  }
  return acc.nonzero() || tail != 0;
}

/// Converts raw uniform words to (unfloored) exponential gaps
/// log(u) / log1p(-q) >= 0 with u = ((raw >> 11) + 1) * 2^-53 in
/// (0, 1]; the consumer truncates, which equals floor for non-negative
/// values. The log is an atanh-series polynomial over explicit
/// std::fma, so the loop is branch-free and vectorizes (std::floor here
/// would defeat GCC's vectorizer, which is why flooring is left to the
/// consumer), and — unlike libm's std::log — gives bit-identical gaps
/// on every platform. |relative error| < 1e-11, i.e. the Geometric(q)
/// law is met to ~1e-11.
void batch_exponential_gaps(const std::uint64_t* raw, double* gaps,
                            std::size_t n, double inv_log1m) {
  constexpr double kLn2 = 0.6931471805599453;
  constexpr double kSqrt2 = 1.4142135623730951;
  constexpr std::uint64_t kMantissaMask = (std::uint64_t{1} << 52) - 1;
  constexpr std::uint64_t kOneBits = 0x3FF0000000000000ull;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t y = (raw[i] >> 11) + 1;         // (0, 2^53]
    const double yd = static_cast<double>(y);           // exact
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(yd);
    const auto eu =
        static_cast<double>(static_cast<std::int64_t>(bits >> 52));
    double m =
        std::bit_cast<double>((bits & kMantissaMask) | kOneBits);  // [1, 2)
    const double fold = m > kSqrt2 ? 1.0 : 0.0;  // -> [sqrt2/2, sqrt2)
    m = m > kSqrt2 ? 0.5 * m : m;
    // yd = m * 2^e with e = (eu - 1023) + fold; u = yd * 2^-53.
    const double e = eu - (1023.0 + 53.0) + fold;
    // log(m) = 2 atanh(z) with z = (m-1)/(m+1), |z| <= sqrt2 - 1.
    const double z = (m - 1.0) / (m + 1.0);
    const double w = z * z;
    double s = 1.0 / 13.0;
    s = std::fma(w, s, 1.0 / 11.0);
    s = std::fma(w, s, 1.0 / 9.0);
    s = std::fma(w, s, 1.0 / 7.0);
    s = std::fma(w, s, 1.0 / 5.0);
    s = std::fma(w, s, 1.0 / 3.0);
    s = std::fma(w, s, 1.0);
    const double log_m = (2.0 * z) * s;
    const double log_u = std::fma(e, kLn2, log_m);  // <= 0
    gaps[i] = log_u * inv_log1m;
  }
}

/// Per-event pattern draws for sparse event blocks: indices are drawn
/// lazily from small buffered batches of raw words (Lemire
/// multiply-shift; the rejection branch fires with probability < 2^-60
/// and falls back to serial redraws), then deposited with single-bit
/// XORs — cheap because set bits are few, and no counting pre-scan is
/// needed (the word walk skips empty words at one test each).
void sparse_patterns(Rng& rng, const Word* events, std::size_t n,
                     unsigned members, Word* const* masks,
                     std::size_t mask_offset) {
  constexpr std::size_t kIndexBatch = 16;
  const std::uint64_t pattern_count = (std::uint64_t{1} << members) - 1;
  const std::uint64_t threshold = (0 - pattern_count) % pattern_count;
  std::uint64_t raw[kIndexBatch];
  std::size_t pos = kIndexBatch;
  const auto next_pattern = [&]() -> std::uint64_t {
    if (pos == kIndexBatch) {
      fill_random_words(rng, raw, kIndexBatch);
      pos = 0;
    }
    std::uint64_t x = raw[pos++];
    __uint128_t prod = static_cast<__uint128_t>(x) * pattern_count;
    auto low = static_cast<std::uint64_t>(prod);
    while (low < threshold) {
      x = rng();
      prod = static_cast<__uint128_t>(x) * pattern_count;
      low = static_cast<std::uint64_t>(prod);
    }
    return static_cast<std::uint64_t>(prod >> 64) + 1;
  };
  for (std::size_t w = 0; w < n; ++w) {
    Word bits = events[w];
    while (bits != 0) {
      const auto k = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint64_t pattern = next_pattern();
      for (unsigned j = 0; j < members; ++j) {
        if (((pattern >> j) & 1) != 0 && masks[j] != nullptr) {
          masks[j][mask_offset + w] ^= Word{1} << k;
        }
      }
    }
  }
}

/// One dense word-block of fill_pauli_patterns: word-parallel rejection
/// rounds (draw `members` coin words per event word; an event accepts
/// once any coin is set, conditioning the joint coins to uniform over
/// non-identity patterns); once the still-rejected population is thin,
/// the sparse per-event path finishes the stragglers.
void dense_patterns(Rng& rng, const Word* events, std::size_t n,
                    unsigned members, Word* const* masks,
                    std::size_t mask_offset) {
  alignas(64) Word remaining[kNoiseBlockWords];
  alignas(64) Word accept[kNoiseBlockWords];
  alignas(64) Word coin[kMaxPatternMembers][kNoiseBlockWords];
  wide::copy_words(remaining, events, n);
  for (;;) {
    for (unsigned j = 0; j < members; ++j) {
      fill_random_words(rng, coin[j], n);
    }
    // accept = remaining & (coin_0 | ... | coin_{m-1})
    wide::copy_words(accept, coin[0], n);
    for (unsigned j = 1; j < members; ++j) {
      wide::or_words(accept, coin[j], n);
    }
    wide::and_words(accept, remaining, n);
    for (unsigned j = 0; j < members; ++j) {
      if (masks[j] != nullptr) {
        wide::xor_masked_words(masks[j] + mask_offset, accept, coin[j], n);
      }
    }
    // accept is a subset of remaining, so XOR removes exactly it.
    wide::xor_words(remaining, accept, n);
    const std::size_t rem_total = wide::count_ones(remaining, n);
    if (rem_total == 0) {
      return;
    }
    if (rem_total * 8 < n) {
      sparse_patterns(rng, remaining, n, members, masks, mask_offset);
      return;
    }
  }
}

}  // namespace

BiasedBitPlan::BiasedBitPlan(double p) : p_(p) {
  if (!(p > 0.0)) {
    strategy_ = BiasStrategy::kZero;
  } else if (p >= 1.0) {
    strategy_ = BiasStrategy::kOne;
  } else if (p == 0.5) {
    strategy_ = BiasStrategy::kCoin;
  } else if (p < kSparseCrossover || p > 1.0 - kSparseCrossover) {
    strategy_ = p < 0.5 ? BiasStrategy::kGeometric
                        : BiasStrategy::kGeometricInverted;
    event_rate_ = p < 0.5 ? p : 1.0 - p;
    inv_log1m_ = 1.0 / std::log1p(-event_rate_);
  } else {
    strategy_ = BiasStrategy::kRefine;
    // digits_ = p * 2^64, exact: p in [2^-5, 1) puts all 53 significand
    // bits of p inside the top 58 digit positions.
    int exp = 0;
    const double m = std::frexp(p, &exp);  // p = m * 2^exp, m in [0.5, 1)
    const auto mantissa = static_cast<std::uint64_t>(std::ldexp(m, 53));
    digits_ = mantissa << (11 + exp);
    num_digits_ = 64 - std::countr_zero(digits_);
  }
}

void BiasedBitPlan::fill_refine(Rng& rng, Word* out, std::size_t count) const {
  alignas(64) Word undecided[kNoiseBlockWords];
  alignas(64) Word r[kNoiseBlockWords];
  for (std::size_t off = 0; off < count; off += kNoiseBlockWords) {
    const std::size_t n =
        count - off < kNoiseBlockWords ? count - off : kNoiseBlockWords;
    Word* o = out + off;
    wide::clear_words(o, n);
    wide::fill_words(undecided, ~Word{0}, n);
    const bool lanes_pay = n >= 64;  // fill_random_words' serial cutoff
    // One lane engine feeds every digit pass of the block: seeding (8
    // serial parent draws + 32 splitmix steps) used to rerun inside
    // each of the ~15 fill_random_words calls and dominated the pass
    // cost; hoisting it is the fused-RNG item from PR 4. The coins
    // still land in an L1-resident scratch block first — combining in
    // registers instead measured neutral on AVX-512 and 1.4x *slower*
    // on the scalar backend (interleaving the generator update with
    // the combine defeats GCC's autovectorizer), and the scratch shape
    // keeps the consumed word order identical on every backend.
    std::optional<XoshiroLanes> lanes;
    if (lanes_pay) {
      lanes.emplace(rng);
    }
    // Digit j of p decides undecided bits whose coin differs from it;
    // the loop ends when every bit is decided (expected after
    // ~log2(block bits) + 2 digits) or p's expansion is exhausted
    // (remaining undecided bits correctly resolve to 0: u > p).
    for (int j = 0; j < num_digits_; ++j) {
      if (lanes_pay) {
        lanes->fill(r, n);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          r[i] = rng.next_word();
        }
      }
      const bool digit = ((digits_ >> (63 - j)) & 1) != 0;
      const bool alive = digit ? refine_digit_one(o, undecided, r, n)
                               : refine_digit_zero(undecided, r, n);
      if (!alive) {
        break;
      }
    }
  }
}

void BiasedBitPlan::fill_geometric(Rng& rng, Word* out,
                                   std::size_t count) const {
  const bool inverted = strategy_ == BiasStrategy::kGeometricInverted;
  wide::fill_words(out, inverted ? ~Word{0} : Word{0}, count);
  const std::size_t total_bits = count * kWordBits;
  std::uint64_t raw[kDrawBatch];
  double gaps[kDrawBatch];
  // First batch sized to the expected event count (+ slack), so
  // ultra-sparse fills don't pay a full batch of conversions; later
  // batches ramp up to amortize the draw/convert call overhead.
  std::size_t batch = static_cast<std::size_t>(
                          event_rate_ * static_cast<double>(total_bits)) +
                      2;
  if (batch > kDrawBatch) {
    batch = kDrawBatch;
  }
  std::size_t bit = 0;
  for (;;) {
    fill_random_words(rng, raw, batch);
    batch_exponential_gaps(raw, gaps, batch, inv_log1m_);
    for (std::size_t i = 0; i < batch; ++i) {
      // Truncation == floor: gaps are non-negative, and for the integer
      // bound floor(g) >= remaining iff g >= remaining.
      if (gaps[i] >= static_cast<double>(total_bits - bit)) {
        return;
      }
      bit += static_cast<std::size_t>(gaps[i]);
      if (inverted) {
        out[word_index(bit)] &= ~bit_mask(bit);
      } else {
        out[word_index(bit)] |= bit_mask(bit);
      }
      ++bit;
      if (bit >= total_bits) {
        return;
      }
    }
    batch = batch < kDrawBatch ? (batch * 4 < kDrawBatch ? batch * 4
                                                         : kDrawBatch)
                               : kDrawBatch;
  }
}

void BiasedBitPlan::fill(Rng& rng, Word* out, std::size_t count) const {
  if (count == 0) {
    return;
  }
  switch (strategy_) {
    case BiasStrategy::kZero:
      wide::clear_words(out, count);
      return;
    case BiasStrategy::kOne:
      wide::fill_words(out, ~Word{0}, count);
      return;
    case BiasStrategy::kCoin:
      fill_random_words(rng, out, count);
      return;
    case BiasStrategy::kGeometric:
    case BiasStrategy::kGeometricInverted:
      fill_geometric(rng, out, count);
      return;
    case BiasStrategy::kRefine:
      fill_refine(rng, out, count);
      return;
  }
}

void fill_pauli_patterns(Rng& rng, const Word* events, std::size_t words,
                         unsigned members, Word* const* masks,
                         double event_probability) {
  SYMPHASE_ASSERT(members >= 1 && members <= kMaxPatternMembers);
  // Path choice by expected density, not by counting: sparse blocks then
  // skip every scan except the deposit walk itself.
  const bool dense = event_probability * static_cast<double>(kWordBits) >= 1.0;
  for (std::size_t off = 0; off < words; off += kNoiseBlockWords) {
    const std::size_t n =
        words - off < kNoiseBlockWords ? words - off : kNoiseBlockWords;
    if (dense) {
      dense_patterns(rng, events + off, n, members, masks, off);
    } else {
      sparse_patterns(rng, events + off, n, members, masks, off);
    }
  }
}

}  // namespace symphase
