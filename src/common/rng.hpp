#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// The samplers draw billions of bits per run, so the generator must be
/// fast and must fill whole 64-bit words of unbiased coin flips in one
/// step. We use xoshiro256** (Blackman & Vigna, 2018), seeded through
/// splitmix64 so that any 64-bit seed yields a well-mixed state. Every
/// randomized component of the library takes an explicit seed; equal seeds
/// give bit-identical streams on all platforms.

#include <cstdint>
#include <limits>

namespace symphase {

/// splitmix64 step; used for seed expansion and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
    // A theoretical all-zero state would lock the generator; splitmix64
    // cannot produce four zero outputs in a row, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 0x853C49E6748FEA9Bull;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// 64 independent fair coin flips packed into one word.
  std::uint64_t next_word() { return (*this)(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw.
  bool next_bernoulli(double p) { return next_double() < p; }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derives an independent child generator; used to give each subsystem
  /// (reference sampler, frame sampler, symbol sampler) its own stream.
  /// Advances this generator's state.
  Rng fork(std::uint64_t stream_id) {
    std::uint64_t mix = (*this)() ^ (0x9E3779B97F4A7C15ull * (stream_id + 1));
    return Rng(mix);
  }

  /// Counter-based fork: derives the generator for logical stream
  /// `stream_id` WITHOUT advancing this generator. Equal (state, id)
  /// pairs always yield the same child, so work split into numbered
  /// shards draws bit-identical randomness no matter how many threads
  /// process the shards or in what order.
  Rng stream(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ rotl(state_[1], 16) ^ rotl(state_[2], 32) ^
                       rotl(state_[3], 48);
    sm ^= 0xD1B54A32D192ED03ull * (stream_id + 1);
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fills `out[0..count)` with words of fair coin flips.
void fill_random_words(Rng& rng, std::uint64_t* out, std::size_t count);

/// Fills `out[0..count)` with words whose bits are independent
/// Bernoulli(p) draws. Thin wrapper over the noise engine
/// (common/noise.hpp): a per-p BiasedBitPlan picks batched geometric
/// skips for sparse p and word-parallel binary-expansion refinement for
/// mid-range p. Refinement is exact for the double p; the geometric path
/// meets the law to ~1e-11 via a deterministic polynomial log. Streams
/// differ from releases before the engine (same seed reproduces within a
/// release); see docs/performance.md for the compatibility note.
void fill_biased_words(Rng& rng, std::uint64_t* out, std::size_t count,
                       double p);

}  // namespace symphase
