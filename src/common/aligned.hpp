#pragma once

/// \file aligned.hpp
/// 64-byte-aligned storage for SIMD-friendly bit containers.
///
/// All packed bit data in the library lives in AlignedWordVec so that word
/// runs start on cache-line / AVX-512 boundaries and the compiler can emit
/// aligned vector loads in the hot loops.

#include <cstddef>
#include <new>
#include <vector>

namespace symphase {

inline constexpr std::size_t kSimdAlign = 64;

/// Minimal std::allocator drop-in with 64-byte alignment.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kSimdAlign}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{kSimdAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

using AlignedWordVec = AlignedVec<std::uint64_t>;

}  // namespace symphase
