#pragma once

/// \file simd_word.hpp
/// Width-abstracted SIMD word: the kernel layer under every bit container.
///
/// All hot loops in the library reduce to streaming boolean algebra over
/// packed 64-bit words. WideWord models one 512-bit (64-byte, cache-line)
/// lane of that algebra and compiles to the widest vector unit the target
/// offers — AVX-512, AVX2 (two 256-bit halves), or a plain 8×u64 scalar
/// block that the autovectorizer handles on everything else. The dispatch
/// is compile-time, same pattern as the tile transpose in
/// bitvec/transpose.cpp.
///
/// On top of the single-lane type, the `wide::` span helpers run whole
/// word runs (any count, any alignment): a full-lane main loop plus a
/// scalar tail. Containers keep their storage 64-byte aligned
/// (common/aligned.hpp), so in practice the main loop's unaligned
/// loads/stores hit aligned addresses and cost nothing extra.

#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/bits.hpp"

namespace symphase {

#if defined(__AVX512F__)

#define SYMPHASE_WIDEWORD_BACKEND "avx512"

/// 512-bit SIMD word, AVX-512 backend.
struct WideWord {
  __m512i v;

  static constexpr std::size_t kWords = 8;
  static constexpr std::size_t kBits = kWords * kWordBits;

  static WideWord zero() { return {_mm512_setzero_si512()}; }
  static WideWord splat(Word w) {
    return {_mm512_set1_epi64(static_cast<long long>(w))};
  }
  static WideWord load(const Word* p) {
    return {_mm512_loadu_si512(reinterpret_cast<const void*>(p))};
  }
  void store(Word* p) const {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
  }

  friend WideWord operator^(WideWord a, WideWord b) {
    return {_mm512_xor_si512(a.v, b.v)};
  }
  friend WideWord operator&(WideWord a, WideWord b) {
    return {_mm512_and_si512(a.v, b.v)};
  }
  friend WideWord operator|(WideWord a, WideWord b) {
    return {_mm512_or_si512(a.v, b.v)};
  }
  WideWord operator~() const {
    return {_mm512_xor_si512(v, _mm512_set1_epi64(-1))};
  }
  WideWord& operator^=(WideWord o) {
    v = _mm512_xor_si512(v, o.v);
    return *this;
  }
  WideWord& operator&=(WideWord o) {
    v = _mm512_and_si512(v, o.v);
    return *this;
  }
  WideWord& operator|=(WideWord o) {
    v = _mm512_or_si512(v, o.v);
    return *this;
  }

  /// ~a & b in one instruction.
  friend WideWord andnot(WideWord a, WideWord b) {
    return {_mm512_andnot_si512(a.v, b.v)};
  }

  /// Lanewise 64-bit add / shifts (the vectorized-PRNG building blocks).
  friend WideWord operator+(WideWord a, WideWord b) {
    return {_mm512_add_epi64(a.v, b.v)};
  }
  WideWord shl(int k) const { return {_mm512_slli_epi64(v, k)}; }
  WideWord shr(int k) const { return {_mm512_srli_epi64(v, k)}; }

  bool nonzero() const { return _mm512_test_epi64_mask(v, v) != 0; }

  std::uint64_t popcount() const {
#if defined(__AVX512VPOPCNTDQ__)
    return static_cast<std::uint64_t>(
        _mm512_reduce_add_epi64(_mm512_popcnt_epi64(v)));
#else
    alignas(64) Word w[kWords];
    _mm512_store_si512(reinterpret_cast<void*>(w), v);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
      total += static_cast<std::uint64_t>(std::popcount(w[i]));
    }
    return total;
#endif
  }

  /// XOR of the eight 64-bit lanes (parity folding for dot products).
  Word xor_fold() const {
    alignas(64) Word w[kWords];
    _mm512_store_si512(reinterpret_cast<void*>(w), v);
    return w[0] ^ w[1] ^ w[2] ^ w[3] ^ w[4] ^ w[5] ^ w[6] ^ w[7];
  }
};

#elif defined(__AVX2__)

#define SYMPHASE_WIDEWORD_BACKEND "avx2"

/// 512-bit SIMD word, AVX2 backend (two 256-bit halves).
struct WideWord {
  __m256i v[2];

  static constexpr std::size_t kWords = 8;
  static constexpr std::size_t kBits = kWords * kWordBits;

  static WideWord zero() {
    return {{_mm256_setzero_si256(), _mm256_setzero_si256()}};
  }
  static WideWord splat(Word w) {
    const __m256i s = _mm256_set1_epi64x(static_cast<long long>(w));
    return {{s, s}};
  }
  static WideWord load(const Word* p) {
    return {{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
             _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4))}};
  }
  void store(Word* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v[0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4), v[1]);
  }

  friend WideWord operator^(WideWord a, WideWord b) {
    return {{_mm256_xor_si256(a.v[0], b.v[0]),
             _mm256_xor_si256(a.v[1], b.v[1])}};
  }
  friend WideWord operator&(WideWord a, WideWord b) {
    return {{_mm256_and_si256(a.v[0], b.v[0]),
             _mm256_and_si256(a.v[1], b.v[1])}};
  }
  friend WideWord operator|(WideWord a, WideWord b) {
    return {{_mm256_or_si256(a.v[0], b.v[0]),
             _mm256_or_si256(a.v[1], b.v[1])}};
  }
  WideWord operator~() const {
    const __m256i ones = _mm256_set1_epi64x(-1);
    return {{_mm256_xor_si256(v[0], ones), _mm256_xor_si256(v[1], ones)}};
  }
  WideWord& operator^=(WideWord o) { return *this = *this ^ o; }
  WideWord& operator&=(WideWord o) { return *this = *this & o; }
  WideWord& operator|=(WideWord o) { return *this = *this | o; }

  friend WideWord andnot(WideWord a, WideWord b) {
    return {{_mm256_andnot_si256(a.v[0], b.v[0]),
             _mm256_andnot_si256(a.v[1], b.v[1])}};
  }

  friend WideWord operator+(WideWord a, WideWord b) {
    return {{_mm256_add_epi64(a.v[0], b.v[0]),
             _mm256_add_epi64(a.v[1], b.v[1])}};
  }
  WideWord shl(int k) const {
    return {{_mm256_slli_epi64(v[0], k), _mm256_slli_epi64(v[1], k)}};
  }
  WideWord shr(int k) const {
    return {{_mm256_srli_epi64(v[0], k), _mm256_srli_epi64(v[1], k)}};
  }

  bool nonzero() const {
    const __m256i both = _mm256_or_si256(v[0], v[1]);
    return _mm256_testz_si256(both, both) == 0;
  }

  std::uint64_t popcount() const {
    alignas(32) Word w[kWords];
    _mm256_store_si256(reinterpret_cast<__m256i*>(w), v[0]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(w + 4), v[1]);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
      total += static_cast<std::uint64_t>(std::popcount(w[i]));
    }
    return total;
  }

  Word xor_fold() const {
    alignas(32) Word w[kWords];
    _mm256_store_si256(reinterpret_cast<__m256i*>(w), v[0]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(w + 4), v[1]);
    return w[0] ^ w[1] ^ w[2] ^ w[3] ^ w[4] ^ w[5] ^ w[6] ^ w[7];
  }
};

#else

#define SYMPHASE_WIDEWORD_BACKEND "scalar"

/// 512-bit SIMD word, portable 8×u64 backend.
struct WideWord {
  Word v[8];

  static constexpr std::size_t kWords = 8;
  static constexpr std::size_t kBits = kWords * kWordBits;

  static WideWord zero() { return {}; }
  static WideWord splat(Word w) { return {{w, w, w, w, w, w, w, w}}; }
  static WideWord load(const Word* p) {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = p[i];
    }
    return r;
  }
  void store(Word* p) const {
    for (std::size_t i = 0; i < kWords; ++i) {
      p[i] = v[i];
    }
  }

  friend WideWord operator^(WideWord a, WideWord b) {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = a.v[i] ^ b.v[i];
    }
    return r;
  }
  friend WideWord operator&(WideWord a, WideWord b) {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = a.v[i] & b.v[i];
    }
    return r;
  }
  friend WideWord operator|(WideWord a, WideWord b) {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = a.v[i] | b.v[i];
    }
    return r;
  }
  WideWord operator~() const {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = ~v[i];
    }
    return r;
  }
  WideWord& operator^=(WideWord o) { return *this = *this ^ o; }
  WideWord& operator&=(WideWord o) { return *this = *this & o; }
  WideWord& operator|=(WideWord o) { return *this = *this | o; }

  friend WideWord andnot(WideWord a, WideWord b) { return ~a & b; }

  friend WideWord operator+(WideWord a, WideWord b) {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = a.v[i] + b.v[i];
    }
    return r;
  }
  WideWord shl(int k) const {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = v[i] << k;
    }
    return r;
  }
  WideWord shr(int k) const {
    WideWord r;
    for (std::size_t i = 0; i < kWords; ++i) {
      r.v[i] = v[i] >> k;
    }
    return r;
  }

  bool nonzero() const {
    Word acc = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
      acc |= v[i];
    }
    return acc != 0;
  }

  std::uint64_t popcount() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
      total += static_cast<std::uint64_t>(std::popcount(v[i]));
    }
    return total;
  }

  Word xor_fold() const {
    return v[0] ^ v[1] ^ v[2] ^ v[3] ^ v[4] ^ v[5] ^ v[6] ^ v[7];
  }
};

#endif

/// Span kernels: full-lane main loop + scalar tail over arbitrary word
/// counts. These are the library-wide replacements for hand-rolled
/// `for (w) dst[w] op= src[w]` loops.
namespace wide {

inline void xor_words(Word* dst, const Word* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    (WideWord::load(dst + i) ^ WideWord::load(src + i)).store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] ^= src[i];
  }
}

/// dst ^= ~src (the "reference outcome is 1" branch of frame recording).
inline void xor_not_words(Word* dst, const Word* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    (WideWord::load(dst + i) ^ ~WideWord::load(src + i)).store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] ^= ~src[i];
  }
}

inline void and_words(Word* dst, const Word* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    (WideWord::load(dst + i) & WideWord::load(src + i)).store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] &= src[i];
  }
}

/// dst &= ~src (mask removal; one andnot per lane).
inline void andnot_words(Word* dst, const Word* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    andnot(WideWord::load(src + i), WideWord::load(dst + i)).store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] &= ~src[i];
  }
}

/// dst ^= a & b (masked flip; the noise engine's pattern deposit).
inline void xor_masked_words(Word* dst, const Word* a, const Word* b,
                             std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    (WideWord::load(dst + i) ^ (WideWord::load(a + i) & WideWord::load(b + i)))
        .store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] ^= a[i] & b[i];
  }
}

inline void or_words(Word* dst, const Word* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    (WideWord::load(dst + i) | WideWord::load(src + i)).store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] |= src[i];
  }
}

inline void copy_words(Word* dst, const Word* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    WideWord::load(src + i).store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] = src[i];
  }
}

/// dst = ~src.
inline void not_copy_words(Word* dst, const Word* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    (~WideWord::load(src + i)).store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] = ~src[i];
  }
}

inline void swap_words(Word* a, Word* b, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    const WideWord va = WideWord::load(a + i);
    WideWord::load(b + i).store(a + i);
    va.store(b + i);
  }
  for (; i < count; ++i) {
    const Word t = a[i];
    a[i] = b[i];
    b[i] = t;
  }
}

inline void fill_words(Word* dst, Word value, std::size_t count) {
  std::size_t i = 0;
  const WideWord v = WideWord::splat(value);
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    v.store(dst + i);
  }
  for (; i < count; ++i) {
    dst[i] = value;
  }
}

inline void clear_words(Word* dst, std::size_t count) {
  fill_words(dst, 0, count);
}

inline std::size_t count_ones(const Word* p, std::size_t count) {
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    total += WideWord::load(p + i).popcount();
  }
  for (; i < count; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(p[i]));
  }
  return static_cast<std::size_t>(total);
}

inline bool any_nonzero(const Word* p, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    if (WideWord::load(p + i).nonzero()) {
      return true;
    }
  }
  for (; i < count; ++i) {
    if (p[i] != 0) {
      return true;
    }
  }
  return false;
}

/// XOR-fold of a & b over the span: the word whose parity is <a, b>.
inline Word xor_and_fold(const Word* a, const Word* b, std::size_t count) {
  WideWord acc = WideWord::zero();
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    acc ^= WideWord::load(a + i) & WideWord::load(b + i);
  }
  Word tail = acc.xor_fold();
  for (; i < count; ++i) {
    tail ^= a[i] & b[i];
  }
  return tail;
}

inline bool spans_equal(const Word* a, const Word* b, std::size_t count) {
  std::size_t i = 0;
  for (; i + WideWord::kWords <= count; i += WideWord::kWords) {
    if ((WideWord::load(a + i) ^ WideWord::load(b + i)).nonzero()) {
      return false;
    }
  }
  for (; i < count; ++i) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace wide

}  // namespace symphase
