#include "common/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace symphase::trace {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_ring_capacity{4096};

/// One ring slot. All fields are relaxed atomics so a concurrent drain
/// copying a slot mid-overwrite is a data-race-free *stale read*, and
/// the seq word tells the reader to discard the copy — the classic
/// seqlock, expressed in atomics so TSan can verify it.
struct Slot {
  std::atomic<std::uint64_t> seq{0};  // 2*h+2 once write #h is stable
  std::atomic<std::uint64_t> name{0};  // const char* literal
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint64_t> id{0};
  std::atomic<std::uint64_t> ticket{0};
  std::atomic<std::uint64_t> group{0};
  std::atomic<std::uint64_t> aux{0};
  std::atomic<std::uint8_t> kind{0};  // 0 span, 1 instant
};

struct Ring {
  explicit Ring(std::size_t capacity, std::uint32_t tid_in)
      : slots(capacity), mask(capacity - 1), tid(tid_in) {}

  std::vector<Slot> slots;
  std::size_t mask;
  std::uint32_t tid;
  /// Total events ever written to this ring (not an index).
  std::atomic<std::uint64_t> head{0};
  /// head value at the last drain; events below it are consumed.
  std::atomic<std::uint64_t> drain_pos{0};
  /// Events overwritten before any drain read them.
  std::atomic<std::uint64_t> dropped{0};
};

struct Registry {
  std::mutex mutex;  // guards rings growth and serializes drains
  std::vector<std::unique_ptr<Ring>> rings;
};

/// Leaked on purpose: worker threads may still be recording during
/// static destruction, and the rings are bounded (one per thread ever
/// seen).
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

Ring& local_ring() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
    std::size_t rounded = 8;
    while (rounded < capacity) {
      rounded <<= 1;
    }
    reg.rings.push_back(std::make_unique<Ring>(
        rounded, static_cast<std::uint32_t>(reg.rings.size() + 1)));
    ring = reg.rings.back().get();
  }
  return *ring;
}

void record(std::uint8_t kind, const char* name, std::uint64_t start_ns,
            std::uint64_t dur_ns, std::uint64_t id, std::uint64_t ticket,
            std::uint64_t group, std::uint64_t aux) {
  Ring& ring = local_ring();
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  const std::size_t capacity = ring.mask + 1;
  if (h >= capacity &&
      h - capacity >= ring.drain_pos.load(std::memory_order_relaxed)) {
    // Overwriting an event no drain has read yet.
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  Slot& slot = ring.slots[h & ring.mask];
  slot.seq.store(2 * h + 1, std::memory_order_relaxed);  // mark unstable
  slot.name.store(reinterpret_cast<std::uintptr_t>(name),
                  std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_relaxed);
  slot.ticket.store(ticket, std::memory_order_relaxed);
  slot.group.store(group, std::memory_order_relaxed);
  slot.aux.store(aux, std::memory_order_relaxed);
  slot.kind.store(kind, std::memory_order_relaxed);
  slot.seq.store(2 * h + 2, std::memory_order_release);  // stable
  ring.head.store(h + 1, std::memory_order_release);
}

struct Event {
  const char* name;
  std::uint64_t start_ns, dur_ns, id, ticket, group, aux;
  std::uint32_t tid;
  std::uint8_t kind;
};

/// Copies the undrained, unlapped events out of `ring`. Slots the
/// writer laps mid-read fail the seq check and are skipped (the writer
/// already counted them dropped, or will when it laps past drain_pos).
void collect(Ring& ring, std::vector<Event>& out) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::size_t capacity = ring.mask + 1;
  std::uint64_t lo = ring.drain_pos.load(std::memory_order_relaxed);
  if (head > capacity && lo < head - capacity) {
    lo = head - capacity;
  }
  for (std::uint64_t p = lo; p < head; ++p) {
    Slot& slot = ring.slots[p & ring.mask];
    const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 != 2 * p + 2) {
      continue;  // overwritten (or being overwritten) by a newer event
    }
    Event event;
    event.name = reinterpret_cast<const char*>(
        static_cast<std::uintptr_t>(slot.name.load(std::memory_order_relaxed)));
    event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    event.id = slot.id.load(std::memory_order_relaxed);
    event.ticket = slot.ticket.load(std::memory_order_relaxed);
    event.group = slot.group.load(std::memory_order_relaxed);
    event.aux = slot.aux.load(std::memory_order_relaxed);
    event.kind = slot.kind.load(std::memory_order_relaxed);
    event.tid = ring.tid;
    const std::uint64_t seq2 = slot.seq.load(std::memory_order_acquire);
    if (seq2 != seq1 || event.name == nullptr) {
      continue;  // torn: the writer lapped us mid-copy
    }
    out.push_back(event);
  }
  ring.drain_pos.store(head, std::memory_order_relaxed);
}

void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out += buf;
}

void append_event(std::string& out, const Event& event) {
  out += "{\"name\":\"";
  out += event.name;  // span names are literals: no escaping needed
  out += "\",\"cat\":\"symphase\",\"ph\":\"";
  out += event.kind == 0 ? "X" : "i";
  out += "\",\"ts\":";
  append_us(out, event.start_ns);
  if (event.kind == 0) {
    out += ",\"dur\":";
    append_us(out, event.dur_ns);
  } else {
    out += ",\"s\":\"t\"";
  }
  out += ",\"pid\":1,\"tid\":";
  append_u64(out, event.tid);
  out += ",\"args\":{\"id\":";
  append_u64(out, event.id);
  out += ",\"ticket\":";
  append_u64(out, event.ticket);
  out += ",\"group\":";
  append_u64(out, event.group);
  out += ",\"aux\":";
  append_u64(out, event.aux);
  out += "}}";
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_ring_capacity(std::size_t events) {
  g_ring_capacity.store(events < 8 ? 8 : events, std::memory_order_relaxed);
}

void span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
          std::uint64_t id, std::uint64_t ticket, std::uint64_t group,
          std::uint64_t aux) {
  if (!enabled()) {
    return;
  }
  record(0, name, start_ns, end_ns > start_ns ? end_ns - start_ns : 0, id,
         ticket, group, aux);
}

void instant(const char* name, std::uint64_t id, std::uint64_t ticket,
             std::uint64_t group, std::uint64_t aux) {
  if (!enabled()) {
    return;
  }
  record(1, name, now_ns(), 0, id, ticket, group, aux);
}

std::uint64_t recorded_events() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : reg.rings) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t dropped_events() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : reg.rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string drain_json() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  for (const auto& ring : reg.rings) {
    collect(*ring, events);
    dropped += ring->dropped.load(std::memory_order_relaxed);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::string out;
  out.reserve(128 + events.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  append_u64(out, dropped);
  out += ",\"clock\":\"steady_ns\"},\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    append_event(out, events[i]);
  }
  out += "]}";
  return out;
}

void discard_all_for_testing() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& ring : reg.rings) {
    ring->drain_pos.store(ring->head.load(std::memory_order_acquire),
                          std::memory_order_relaxed);
  }
}

}  // namespace symphase::trace
