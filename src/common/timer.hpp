#pragma once

/// \file timer.hpp
/// Wall-clock timing for the benchmark harness.

#include <chrono>
#include <cstdint>

namespace symphase {

/// Monotonic stopwatch; started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` repeatedly until at least `min_seconds` of wall time or
/// `max_reps` repetitions have elapsed; returns seconds per repetition.
/// Used by the figure benches where google-benchmark's per-iteration
/// model does not fit (we time multi-second sampler builds once).
template <typename Fn>
double time_per_rep(Fn&& fn, double min_seconds = 0.05, int max_reps = 1000) {
  Timer total;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (total.seconds() < min_seconds && reps < max_reps);
  return total.seconds() / reps;
}

}  // namespace symphase
