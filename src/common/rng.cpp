#include "common/rng.hpp"

#include "common/noise.hpp"
#include "common/rng_lanes.hpp"
#include "common/simd_word.hpp"

namespace symphase {

void fill_random_words(Rng& rng, std::uint64_t* out, std::size_t count) {
  // Bulk fills drain the 8-lane lockstep engine (rng_lanes.hpp) so the
  // whole generator vectorizes; below 64 words the serial generator wins
  // (lane seeding costs 8 draws + 32 splitmix steps). Both paths are
  // fully deterministic in the parent generator's state and bit-identical
  // on every WideWord backend.
  if (count < 64) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = rng.next_word();
    }
    return;
  }
  constexpr std::size_t kLanes = XoshiroLanes::kLanes;
  XoshiroLanes lanes(rng);
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    lanes.next().store(out + i);
  }
  if (i < count) {
    // Ragged tail: one more lockstep block into a bounce buffer.
    alignas(64) std::uint64_t tail[kLanes];
    lanes.next().store(tail);
    for (std::size_t l = 0; i < count; ++i, ++l) {
      out[i] = tail[l];
    }
  }
}

void fill_biased_words(Rng& rng, std::uint64_t* out, std::size_t count,
                       double p) {
  // One-shot entry point: builds the strategy plan on the fly. Hot paths
  // (the samplers) cache a BiasedBitPlan per instruction / symbol group
  // instead, which also hoists the log1p / binary-expansion setup.
  BiasedBitPlan(p).fill(rng, out, count);
}

}  // namespace symphase
