#include "common/rng.hpp"

#include <cmath>
#include <cstring>

#include "common/bits.hpp"

namespace symphase {

void fill_random_words(Rng& rng, std::uint64_t* out, std::size_t count) {
  // xoshiro's output has a serial dependency chain; for bulk fills, four
  // forked streams interleave so the core can overlap the state updates.
  // Still fully deterministic in the parent generator's state.
  if (count < 64) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = rng.next_word();
    }
    return;
  }
  Rng s0 = rng.fork(0);
  Rng s1 = rng.fork(1);
  Rng s2 = rng.fork(2);
  Rng s3 = rng.fork(3);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    out[i] = s0();
    out[i + 1] = s1();
    out[i + 2] = s2();
    out[i + 3] = s3();
  }
  for (; i < count; ++i) {
    out[i] = s0();
  }
}

void fill_biased_words(Rng& rng, std::uint64_t* out, std::size_t count,
                       double p) {
  if (count == 0) {
    return;
  }
  if (p <= 0.0) {
    std::memset(out, 0, count * sizeof(std::uint64_t));
    return;
  }
  if (p >= 1.0) {
    std::memset(out, 0xFF, count * sizeof(std::uint64_t));
    return;
  }
  if (p == 0.5) {
    fill_random_words(rng, out, count);
    return;
  }
  // For p > 1/2, sample the complement (which is sparse) and invert.
  const bool invert = p > 0.5;
  const double q = invert ? 1.0 - p : p;

  std::memset(out, 0, count * sizeof(std::uint64_t));
  const std::size_t total_bits = count * kWordBits;
  // Geometric skipping: successive gaps between set bits are
  // Geometric(q)-distributed. Expected cost is q * total_bits draws, which
  // is what makes sparse noise sampling cheap.
  const double denom = std::log1p(-q);
  std::size_t bit = 0;
  while (true) {
    const double u = 1.0 - rng.next_double();  // u in (0, 1]
    const double skip = std::floor(std::log(u) / denom);
    if (skip >= static_cast<double>(total_bits - bit)) {
      break;
    }
    bit += static_cast<std::size_t>(skip);
    set_bit(out, bit, true);
    ++bit;
    if (bit >= total_bits) {
      break;
    }
  }
  if (invert) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = ~out[i];
    }
  }
}

}  // namespace symphase
