#include "common/rng.hpp"

#include "common/noise.hpp"
#include "common/simd_word.hpp"

namespace symphase {

void fill_random_words(Rng& rng, std::uint64_t* out, std::size_t count) {
  // xoshiro's output has a serial dependency chain; bulk fills run eight
  // forked lanes in lockstep so the whole generator vectorizes (the lane
  // loop is elementwise: shift/add/xor/rotate, so it compiles to two
  // AVX2 or one AVX-512 vector op per step — the multiplies by 5 and 9
  // are written as shift+add because 64-bit vector multiply is not
  // universally available). The lane count is fixed, so the stream is
  // bit-identical on every backend. Still fully deterministic in the
  // parent generator's state.
  if (count < 64) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = rng.next_word();
    }
    return;
  }
  constexpr std::size_t kLanes = WideWord::kWords;  // 8 on every backend
  static_assert(kLanes == 8);
  alignas(64) std::uint64_t seed_lane[4][kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    // fork(l)'s mix followed by Rng(splitmix64(mix))'s reseed chain,
    // inlined to reach the raw state words.
    std::uint64_t sm = rng() ^ (0x9E3779B97F4A7C15ull * (l + 1));
    std::uint64_t seed = splitmix64(sm);
    for (std::size_t k = 0; k < 4; ++k) {
      seed_lane[k][l] = splitmix64(seed);
    }
  }
  WideWord s0 = WideWord::load(seed_lane[0]);
  WideWord s1 = WideWord::load(seed_lane[1]);
  WideWord s2 = WideWord::load(seed_lane[2]);
  WideWord s3 = WideWord::load(seed_lane[3]);
  const auto rot = [](WideWord x, int k) { return x.shl(k) | x.shr(64 - k); };
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    const WideWord x = s1.shl(2) + s1;  // s1 * 5
    const WideWord r = rot(x, 7);
    (r.shl(3) + r).store(out + i);  // rotl(s1 * 5, 7) * 9
    const WideWord t = s1.shl(17);
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rot(s3, 45);
  }
  if (i < count) {
    // Ragged tail: one more lockstep block into a bounce buffer.
    alignas(64) std::uint64_t tail[kLanes];
    const WideWord x = s1.shl(2) + s1;
    const WideWord r = rot(x, 7);
    (r.shl(3) + r).store(tail);
    for (std::size_t l = 0; i < count; ++i, ++l) {
      out[i] = tail[l];
    }
  }
}

void fill_biased_words(Rng& rng, std::uint64_t* out, std::size_t count,
                       double p) {
  // One-shot entry point: builds the strategy plan on the fly. Hot paths
  // (the samplers) cache a BiasedBitPlan per instruction / symbol group
  // instead, which also hoists the log1p / binary-expansion setup.
  BiasedBitPlan(p).fill(rng, out, count);
}

}  // namespace symphase
