#pragma once

/// \file noise.hpp
/// Vectorized noise-generation engine.
///
/// Every noisy workload (X/Y/Z_ERROR, DEPOLARIZE1/2, the symbol-value
/// sampler's error groups) reduces to two primitives: filling packed words
/// with independent Bernoulli(p) bits, and drawing a uniform non-identity
/// Pauli pattern for every set event bit. Both used to be scalar per-event
/// loops; this engine batches them so the cost is a handful of full-width
/// SIMD passes per word block.
///
/// `BiasedBitPlan` picks a strategy per probability once — at circuit
/// compile time for the samplers, which cache one plan per instruction /
/// symbol group — and caches the derived constants (`1/log1p(-q)`, the
/// binary expansion of p), so the per-call FP setup of the old
/// `fill_biased_words` is gone:
///
///   - kRefine (mid-range p): binary-expansion refinement. Interpret a
///     fresh fair-coin word r_j as digit j of a uniform U per bit; the
///     first digit where U differs from p decides the output
///     (u_j < p_j -> 1). Each digit is one AND/OR pass of `wide::` word
///     ops over the block plus one `fill_random_words`, and the
///     still-undecided mask empties after ~log2(block bits)+2 digits, so
///     the cost is O(min(digits of p, ~15)) full-width passes — and the
///     result is *exact* for the double p (a double is a dyadic rational,
///     so its expansion is finite).
///   - kGeometric / kGeometricInverted (sparse p, or 1-p): batched
///     geometric skips. Gaps between set bits are Geometric(q); uniform
///     raw words are drawn in blocks and converted to skips with a
///     branch-free polynomial log (deterministic across platforms, unlike
///     libm's `std::log`; relative error < 1e-11), so the FP work
///     pipelines/vectorizes instead of serializing per event. The
///     inverted flavor fills with ones and *clears* event bits, replacing
///     the old memset+invert double pass.
///   - kZero / kOne / kCoin: exact degenerate fills.
///
/// `fill_pauli_patterns` handles the channel part: for every set event
/// bit it draws a uniform non-identity pattern over `members` bits and
/// XORs pattern bit j into masks[j]. Dense blocks use word-parallel
/// rejection (draw `members` coin words; a bit is accepted if any coin is
/// set, which conditions the joint coin distribution to uniform-over-
/// nonzero), falling back to batched per-event index draws for the sparse
/// tail — no per-bit row pokes on dense noise.
///
/// Stream compatibility: the algorithms consume the generator differently
/// than the pre-engine scalar code, so sampled streams differ from
/// previous releases for the same seed (document: seeds reproduce within
/// a release, not across the engine change). The shard/`Rng::stream(i)`
/// determinism contract is untouched: a plan's output is a pure function
/// of (rng state, count), so sample matrices stay bit-identical across
/// thread counts and streamed vs. materialized paths.

#include <cstddef>
#include <cstdint>

#include "common/bits.hpp"
#include "common/rng.hpp"

namespace symphase {

/// How a BiasedBitPlan generates its bits.
enum class BiasStrategy : std::uint8_t {
  kZero,               ///< p <= 0: all zeros.
  kOne,                ///< p >= 1: all ones.
  kCoin,               ///< p == 0.5: raw fair coin words.
  kGeometric,          ///< sparse p: batched geometric skips, set bits.
  kGeometricInverted,  ///< p near 1: ones fill, clear Geometric(1-p) bits.
  kRefine,             ///< mid-range p: binary-expansion refinement.
};

/// Compiled generation strategy for one Bernoulli(p) bit stream.
/// Cheap to copy; samplers cache one per noise instruction / symbol
/// group so the strategy choice and FP setup happen once per circuit.
class BiasedBitPlan {
 public:
  /// Probabilities below this (or above 1 - this) use geometric skips;
  /// the band in between uses refinement. At the crossover the expected
  /// per-word event work of the skip loop (~p*64 events) matches the
  /// ~15 SIMD digit passes of refinement. See docs/performance.md.
  static constexpr double kSparseCrossover = 1.0 / 32.0;

  BiasedBitPlan() = default;  ///< p = 0 (all zeros).
  explicit BiasedBitPlan(double p);

  BiasStrategy strategy() const { return strategy_; }
  double probability() const { return p_; }

  /// Fills out[0..count) with words whose bits are independent
  /// Bernoulli(p) draws. Deterministic in the generator state.
  void fill(Rng& rng, Word* out, std::size_t count) const;

 private:
  void fill_geometric(Rng& rng, Word* out, std::size_t count) const;
  void fill_refine(Rng& rng, Word* out, std::size_t count) const;

  double p_ = 0.0;
  /// Geometric: the sparse event rate q (= p or 1-p) and cached
  /// 1 / log1p(-q), so no per-call log or per-event divide.
  double event_rate_ = 0.0;
  double inv_log1m_ = 0.0;
  /// Refine: binary expansion of p, MSB-aligned (bit 63 = the 1/2 digit).
  /// Exact for the refinement band (p >= 2^-5 has all 53 significand
  /// bits within the top 58 digits).
  std::uint64_t digits_ = 0;
  int num_digits_ = 0;
  BiasStrategy strategy_ = BiasStrategy::kZero;
};

/// For every set bit of events[0..words), draws a uniformly random
/// NON-identity pattern over `members` bits (members in [1, 6]) and XORs
/// pattern bit j into masks[j] at the event's bit position. Entries of
/// `masks` may be nullptr (pattern bits for unused members are drawn —
/// the joint distribution requires it — but not deposited). Bits of
/// masks[j] outside the event positions are never touched, so callers
/// may pass live frame/sample rows and get the whole-word XOR
/// application for free.
///
/// `event_probability` (the channel's p, known from the caller's plan)
/// picks the path without scanning: dense blocks (expected >= 1
/// event/word) use word-parallel rejection rounds; sparse blocks draw
/// buffered pattern indices and poke only the set bits. Both are
/// deterministic in the generator state.
void fill_pauli_patterns(Rng& rng, const Word* events, std::size_t words,
                         unsigned members, Word* const* masks,
                         double event_probability);

}  // namespace symphase
