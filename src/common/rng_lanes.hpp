#pragma once

/// \file rng_lanes.hpp
/// The 8-lane lockstep xoshiro engine behind every bulk coin fill.
///
/// xoshiro's output has a serial dependency chain, so bulk generation
/// runs eight forked lanes in lockstep across one WideWord: every step
/// is elementwise shift/add/xor/rotate and compiles to two AVX2 or one
/// AVX-512 vector op (the multiplies by 5 and 9 are shift+add because
/// 64-bit vector multiply is not universally available). The lane count
/// is fixed at 8 on every backend, so the stream is bit-identical on
/// scalar, AVX2, and AVX-512 builds — rng_test's golden pins depend on
/// that, as does the seeding chain below, which must stay exactly
/// fill_random_words' historical one.
///
/// fill_random_words (rng.cpp) drains the engine into a buffer; the
/// noise engine's kRefine digit passes (noise.cpp) consume next() words
/// in registers and fuse them straight into the AND/OR combine instead
/// of round-tripping through scratch. Both orderings draw the same
/// words, so they are interchangeable without moving any stream.

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/simd_word.hpp"

namespace symphase {

class XoshiroLanes {
 public:
  static constexpr std::size_t kLanes = WideWord::kWords;
  static_assert(kLanes == 8);

  /// Seeds lane l from fork(l)'s mix followed by Rng(splitmix64(mix))'s
  /// reseed chain, inlined to reach the raw state words (the reseed
  /// zero-guard cannot trigger on splitmix64 output). Consumes exactly
  /// kLanes draws from `rng`; the parent stays deterministic.
  explicit XoshiroLanes(Rng& rng) {
    alignas(64) std::uint64_t seed_lane[4][kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::uint64_t sm = rng() ^ (0x9E3779B97F4A7C15ull * (l + 1));
      std::uint64_t seed = splitmix64(sm);
      for (std::size_t k = 0; k < 4; ++k) {
        seed_lane[k][l] = splitmix64(seed);
      }
    }
    s0_ = WideWord::load(seed_lane[0]);
    s1_ = WideWord::load(seed_lane[1]);
    s2_ = WideWord::load(seed_lane[2]);
    s3_ = WideWord::load(seed_lane[3]);
  }

  /// Drains the next `n` coin words into `out` (lane-major blocks, with
  /// a bounce-buffer tail when n is not a lane multiple) — the bulk-fill
  /// loop shared by fill_random_words and the refine digit passes.
  void fill(Word* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      next().store(out + i);
    }
    if (i < n) {
      alignas(64) Word tail[kLanes];
      next().store(tail);
      for (std::size_t l = 0; i < n; ++i, ++l) {
        out[i] = tail[l];
      }
    }
  }

  /// The next kLanes coin words, one per lane, as a single WideWord.
  WideWord next() {
    const WideWord x = s1_.shl(2) + s1_;  // s1 * 5
    const WideWord r = rot(x, 7);
    const WideWord out = r.shl(3) + r;  // rotl(s1 * 5, 7) * 9
    const WideWord t = s1_.shl(17);
    s2_ ^= s0_;
    s3_ ^= s1_;
    s1_ ^= s2_;
    s0_ ^= s3_;
    s2_ ^= t;
    s3_ = rot(s3_, 45);
    return out;
  }

 private:
  static WideWord rot(WideWord x, int k) { return x.shl(k) | x.shr(64 - k); }

  WideWord s0_;
  WideWord s1_;
  WideWord s2_;
  WideWord s3_;
};

}  // namespace symphase
