#include "common/timer.hpp"

// Header-only today; the translation unit anchors the static library and
// reserves a home for future platform-specific timing (e.g. perf counters).
