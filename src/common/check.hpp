#pragma once

/// \file check.hpp
/// Error-handling primitives used across the library.
///
/// Two tiers, following the usual contract/recoverable split:
///  - SYMPHASE_CHECK: always-on validation of *caller-supplied* data
///    (circuit text, qubit indices, sizes). Throws std::invalid_argument.
///  - SYMPHASE_ASSERT: internal invariants. Compiled out in NDEBUG builds
///    except where a function documents otherwise.

#include <sstream>
#include <stdexcept>
#include <string>

namespace symphase {

/// Builds the standard "what failed, where" message for check failures.
inline std::string format_check_message(const char* expr, const char* file,
                                        int line, const std::string& detail) {
  std::ostringstream oss;
  oss << "check failed: " << expr << " (" << file << ":" << line << ")";
  if (!detail.empty()) {
    oss << ": " << detail;
  }
  return oss.str();
}

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line,
                                             const std::string& detail = {}) {
  throw std::invalid_argument(format_check_message(expr, file, line, detail));
}

[[noreturn]] inline void throw_assert_failure(const char* expr,
                                              const char* file, int line,
                                              const std::string& detail = {}) {
  throw std::logic_error(format_check_message(expr, file, line, detail));
}

}  // namespace symphase

/// Always-on precondition check on user-facing input. Throws
/// std::invalid_argument with location info on failure.
#define SYMPHASE_CHECK(cond)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::symphase::throw_check_failure(#cond, __FILE__, __LINE__);     \
    }                                                                 \
  } while (false)

/// Always-on precondition check with a formatted detail message.
#define SYMPHASE_CHECK_MSG(cond, msg)                                 \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream symphase_oss_;                               \
      symphase_oss_ << msg;                                           \
      ::symphase::throw_check_failure(#cond, __FILE__, __LINE__,      \
                                      symphase_oss_.str());           \
    }                                                                 \
  } while (false)

/// Internal invariant; active in debug builds only.
#ifdef NDEBUG
#define SYMPHASE_ASSERT(cond) \
  do {                        \
  } while (false)
#else
#define SYMPHASE_ASSERT(cond)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::symphase::throw_assert_failure(#cond, __FILE__, __LINE__);    \
    }                                                                 \
  } while (false)
#endif
