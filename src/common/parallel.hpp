#pragma once

/// \file parallel.hpp
/// Minimal work-sharing primitive for the shot-sharded samplers.
///
/// The samplers split the shot axis into fixed-size, word-aligned shards
/// and process each shard independently (own RNG stream, disjoint output
/// words). parallel_for runs those shards across a caller-bounded number
/// of worker threads. Because the shard decomposition and each shard's
/// RNG stream depend only on the problem size and seed — never on the
/// thread count or the dynamic item→thread mapping — the combined result
/// is bit-identical for any number of threads.

#include <cstddef>
#include <functional>

#include "common/bits.hpp"

namespace symphase {

/// Shot-shard width shared by every sampler: 128 words = 8192 shots.
/// One 100-qubit frame shard stays L2-resident (~1 KiB per qubit row per
/// frame matrix); small enough that modest batches still fan out across
/// cores, large enough that per-shard fixed costs (circuit re-traversal,
/// RNG setup) stay negligible. Part of a seed's output format: changing
/// it re-partitions the per-shard RNG streams.
inline constexpr std::size_t kSampleShardWords = 128;

/// Shots covered by one shard (8192).
inline constexpr std::size_t kSampleShardBits = kSampleShardWords * kWordBits;

/// Number of shards a `num_shots`-shot run decomposes into. The
/// decomposition depends only on num_shots — never on thread count or
/// delivery order — which is what makes shard-indexed RNG streams
/// reproducible (see the determinism contract in docs/performance.md).
constexpr std::size_t num_sample_shards(std::size_t num_shots) {
  return ceil_div(words_for_bits(num_shots), kSampleShardWords);
}

/// The slice of the shot axis owned by one shard of a `num_shots` run.
struct ShardExtent {
  std::size_t word0 = 0;  ///< First shot-axis word of the shard.
  std::size_t words = 0;  ///< Words in the shard (kSampleShardWords except
                          ///< possibly the final shard).
  std::size_t shot0 = 0;  ///< First shot covered.
  std::size_t shots = 0;  ///< Valid shots (< words * 64 only when the run's
                          ///< tail word is ragged).
};

constexpr ShardExtent sample_shard_extent(std::size_t shard,
                                          std::size_t num_shots) {
  ShardExtent e;
  e.word0 = shard * kSampleShardWords;
  const std::size_t shot_words = words_for_bits(num_shots);
  e.words = shot_words - e.word0 < kSampleShardWords ? shot_words - e.word0
                                                     : kSampleShardWords;
  e.shot0 = e.word0 * kWordBits;
  e.shots = num_shots - e.shot0 < kSampleShardBits ? num_shots - e.shot0
                                                   : kSampleShardBits;
  return e;
}

/// Resolves a requested thread count: `requested` if nonzero, otherwise
/// the hardware concurrency (at least 1).
std::size_t resolve_thread_count(std::size_t requested);

/// Runs body(i) for every i in [0, count) using at most `threads` worker
/// threads (capped at `count`). Items are claimed dynamically from a
/// shared counter, so callers must make each item's result independent of
/// which thread runs it. Runs inline (no threads spawned) when the cap or
/// the item count is <= 1. The first exception thrown by any item is
/// rethrown on the calling thread after all workers join.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace symphase
