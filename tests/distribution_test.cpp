// Statistical agreement between the three samplers (SymPhase, Pauli
// frame, naive re-simulation) on randomized noisy circuits: marginals and
// pairwise XOR correlations must match within Monte-Carlo error.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "core/symphase.hpp"
#include "sampler/frame_simulator.hpp"
#include "sampler/resample.hpp"

namespace symphase {
namespace {

double row_mean(const BitMatrix& m, std::size_t row) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(m.cols()); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(m.cols());
}

double xor_mean(const BitMatrix& m, std::size_t r1, std::size_t r2) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(m.cols()); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(r1)[w] ^ m.row(r2)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(m.cols());
}

/// 5-sigma binomial tolerance plus a small absolute floor.
double tol(double p, std::size_t shots) {
  const double sigma = std::sqrt(std::max(p * (1 - p), 1e-6) /
                                 static_cast<double>(shots));
  return 5 * sigma + 2e-3;
}

void expect_distributions_agree(const Circuit& circuit, std::uint64_t seed,
                                std::size_t shots,
                                bool check_resimulation = false) {
  const CompiledSampler sym = CompiledSampler::compile(circuit);
  const BitMatrix a = sym.sample(shots, seed + 1);
  FrameSimulator frame(circuit, seed + 2);
  const BitMatrix b = frame.sample(shots, seed + 3);
  ASSERT_EQ(a.rows(), b.rows());
  const std::size_t nm = a.rows();

  for (std::size_t k = 0; k < nm; ++k) {
    const double pa = row_mean(a, k);
    const double pb = row_mean(b, k);
    const double exact = sym.outcome_probability(k);
    // Marginals: symbolic sampler vs exact closed form, frame vs exact
    // would require frame marginal theory; instead compare both empirics
    // to each other and symphase to exact.
    ASSERT_NEAR(pa, exact, tol(exact, shots)) << "measurement " << k;
    ASSERT_NEAR(pa, pb, tol(pa, shots) + tol(pb, shots))
        << "symphase vs frame, measurement " << k;
  }
  // Pairwise XOR correlations on a spread of pairs.
  for (std::size_t k = 0; k + 1 < nm; k += std::max<std::size_t>(1, nm / 7)) {
    const std::size_t k2 = nm - 1 - k;
    if (k == k2) {
      continue;
    }
    const double xa = xor_mean(a, k, k2);
    const double xb = xor_mean(b, k, k2);
    ASSERT_NEAR(xa, xb, tol(xa, shots) + tol(xb, shots))
        << "xor pair " << k << "," << k2;
  }
  if (check_resimulation) {
    const BitMatrix c = sample_by_resimulation(circuit, shots, seed + 4);
    for (std::size_t k = 0; k < nm; ++k) {
      ASSERT_NEAR(row_mean(c, k), sym.outcome_probability(k),
                  tol(row_mean(c, k), shots))
          << "resimulation, measurement " << k;
    }
    for (std::size_t k = 0; k + 1 < nm;
         k += std::max<std::size_t>(1, nm / 5)) {
      const std::size_t k2 = nm - 1 - k;
      if (k == k2) {
        continue;
      }
      ASSERT_NEAR(xor_mean(c, k, k2), xor_mean(a, k, k2),
                  tol(xor_mean(c, k, k2), shots) + tol(xor_mean(a, k, k2),
                                                       shots))
          << "resim xor pair " << k << "," << k2;
    }
  }
}

TEST(Distribution, BellWithXError) {
  const Circuit c =
      parse_circuit("H 0\nCNOT 0 1\nX_ERROR(0.2) 0\nM 0 1");
  expect_distributions_agree(c, 100, 60000, true);
}

TEST(Distribution, SequentialMeasurementChain) {
  // Random measurement then re-use of the qubit: stresses collapse
  // semantics (coin symbols vs frame Z randomization).
  const Circuit c = parse_circuit(
      "H 0\nM 0\nH 0\nM 0\nCNOT 0 1\nM 1\nX_ERROR(0.3) 1\nM 1");
  expect_distributions_agree(c, 200, 60000, true);
}

TEST(Distribution, MrAndResetChains) {
  const Circuit c = parse_circuit(
      "H 0\nCNOT 0 1\nMR 0\nX_ERROR(0.25) 0\nM 0\nR 1\nM 1\nH 1\nM 1");
  expect_distributions_agree(c, 300, 60000, true);
}

TEST(Distribution, DepolarizingGhz) {
  Circuit c(4);
  c.append1(GateType::H, 0);
  for (std::uint32_t q = 0; q + 1 < 4; ++q) {
    c.append2(GateType::CNOT, q, q + 1);
  }
  c.append(GateType::DEPOLARIZE1, {0, 1, 2, 3}, 0.1);
  c.append(GateType::M, {0, 1, 2, 3});
  expect_distributions_agree(c, 400, 60000, true);
}

TEST(Distribution, Depolarize2Correlations) {
  const Circuit c = parse_circuit(
      "H 0\nCNOT 0 1\nDEPOLARIZE2(0.3) 0 1\nM 0 1");
  expect_distributions_agree(c, 500, 60000, true);
}

TEST(Distribution, RepetitionCodeCircuitNoise) {
  RepetitionCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 3;
  opt.data_error_probability = 0.05;
  opt.gate_error_probability = 0.02;
  opt.measurement_error_probability = 0.03;
  expect_distributions_agree(repetition_code_memory(opt), 600, 50000);
}

TEST(Distribution, FuzzedNoisyCircuits) {
  Rng rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit c = random_fuzz_circuit(6, 60, 0.1, rng);
    expect_distributions_agree(c, 1000 + static_cast<std::uint64_t>(trial),
                               40000, trial < 3);
  }
}

TEST(Distribution, LayeredRandomBenchmarkFamily) {
  LayeredRandomCircuitOptions opt;
  opt.num_qubits = 16;
  opt.num_layers = 8;
  opt.cnot_pairs_per_layer = 3;
  opt.depolarize_probability = 0.02;
  Rng rng(31);
  const Circuit c = layered_random_circuit(opt, rng);
  expect_distributions_agree(c, 2000, 30000);
}

}  // namespace
}  // namespace symphase
