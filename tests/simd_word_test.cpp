// SIMD/scalar parity tests for the WideWord kernel layer: every wide op
// must be bit-identical to a naive one-word-at-a-time reference,
// regardless of which backend (AVX-512 / AVX2 / scalar) was compiled in.

#include "common/simd_word.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "bitvec/bit_matrix.hpp"
#include "bitvec/transpose.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "tableau/dense_row_ops.hpp"
#include "tableau/row_kernels.hpp"
#include "tableau/shape.hpp"

namespace symphase {
namespace {

AlignedWordVec random_words(Rng& rng, std::size_t count) {
  AlignedWordVec v(count);
  for (auto& w : v) {
    w = rng.next_word();
  }
  return v;
}

TEST(WideWord, LaneOpsMatchScalar) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const AlignedWordVec a = random_words(rng, WideWord::kWords);
    const AlignedWordVec b = random_words(rng, WideWord::kWords);
    const WideWord wa = WideWord::load(a.data());
    const WideWord wb = WideWord::load(b.data());

    Word out[WideWord::kWords];
    (wa ^ wb).store(out);
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      EXPECT_EQ(out[i], a[i] ^ b[i]);
    }
    (wa & wb).store(out);
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      EXPECT_EQ(out[i], a[i] & b[i]);
    }
    (wa | wb).store(out);
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      EXPECT_EQ(out[i], a[i] | b[i]);
    }
    (~wa).store(out);
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      EXPECT_EQ(out[i], ~a[i]);
    }
    andnot(wa, wb).store(out);
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      EXPECT_EQ(out[i], ~a[i] & b[i]);
    }

    std::uint64_t expected_pop = 0;
    Word expected_fold = 0;
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      expected_pop += static_cast<std::uint64_t>(popcount(a[i]));
      expected_fold ^= a[i];
    }
    EXPECT_EQ(wa.popcount(), expected_pop);
    EXPECT_EQ(wa.xor_fold(), expected_fold);
    EXPECT_TRUE(wa.nonzero() == (expected_fold != 0 || expected_pop != 0));
  }
  EXPECT_FALSE(WideWord::zero().nonzero());
  EXPECT_EQ(WideWord::zero().popcount(), 0u);
  EXPECT_EQ(WideWord::splat(~Word{0}).popcount(),
            static_cast<std::uint64_t>(WideWord::kBits));
}

// Span helpers over sizes that exercise both the wide main loop and the
// scalar tail (including counts below one lane).
TEST(WideSpans, MatchScalarReference) {
  Rng rng(202);
  for (const std::size_t count : {0ul, 1ul, 3ul, 7ul, 8ul, 9ul, 15ul, 16ul,
                                  31ul, 64ul, 100ul}) {
    const AlignedWordVec a0 = random_words(rng, count);
    const AlignedWordVec b0 = random_words(rng, count);

    AlignedWordVec a = a0;
    wide::xor_words(a.data(), b0.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(a[i], a0[i] ^ b0[i]);
    }

    a = a0;
    wide::xor_not_words(a.data(), b0.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(a[i], a0[i] ^ ~b0[i]);
    }

    a = a0;
    wide::and_words(a.data(), b0.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(a[i], a0[i] & b0[i]);
    }

    a = a0;
    wide::or_words(a.data(), b0.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(a[i], a0[i] | b0[i]);
    }

    a.assign(count, 0);
    wide::copy_words(a.data(), b0.data(), count);
    EXPECT_TRUE(wide::spans_equal(a.data(), b0.data(), count));

    wide::not_copy_words(a.data(), b0.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(a[i], ~b0[i]);
    }

    a = a0;
    AlignedWordVec b = b0;
    wide::swap_words(a.data(), b.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(a[i], b0[i]);
      EXPECT_EQ(b[i], a0[i]);
    }

    wide::fill_words(a.data(), 0xDEADBEEFCAFEF00Dull, count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(a[i], 0xDEADBEEFCAFEF00Dull);
    }
    wide::clear_words(a.data(), count);
    EXPECT_FALSE(wide::any_nonzero(a.data(), count));

    std::size_t expected_ones = 0;
    Word expected_fold = 0;
    for (std::size_t i = 0; i < count; ++i) {
      expected_ones += static_cast<std::size_t>(popcount(a0[i]));
      expected_fold ^= a0[i] & b0[i];
    }
    EXPECT_EQ(wide::count_ones(a0.data(), count), expected_ones);
    EXPECT_EQ(wide::xor_and_fold(a0.data(), b0.data(), count), expected_fold);
    if (count > 0) {
      EXPECT_TRUE(wide::any_nonzero(a0.data(), count) ||
                  expected_ones == 0);
    }
  }
}

// Scalar reference for the rowsum tally, copied from the documented
// single-word semantics.
void reference_accumulate(Word x1, Word z1, Word x2, Word z2,
                          long long& plus, long long& minus) {
  const Word plus_mask =
      (x1 & z1 & ~x2 & z2) | (x1 & ~z1 & x2 & z2) | (~x1 & z1 & x2 & ~z2);
  const Word minus_mask =
      (x1 & z1 & x2 & ~z2) | (x1 & ~z1 & ~x2 & z2) | (~x1 & z1 & x2 & z2);
  plus += popcount(plus_mask);
  minus += popcount(minus_mask);
}

TEST(RowKernels, RowsumMatchesScalarReference) {
  Rng rng(303);
  for (const std::size_t count : {1ul, 5ul, 8ul, 13ul, 16ul, 40ul}) {
    AlignedWordVec dx = random_words(rng, count);
    AlignedWordVec dz = random_words(rng, count);
    const AlignedWordVec sx = random_words(rng, count);
    const AlignedWordVec sz = random_words(rng, count);

    // Reference: word-at-a-time tally + xor.
    long long ref_plus = 0;
    long long ref_minus = 0;
    AlignedWordVec rx = dx;
    AlignedWordVec rz = dz;
    for (std::size_t i = 0; i < count; ++i) {
      reference_accumulate(rx[i], rz[i], sx[i], sz[i], ref_plus, ref_minus);
      rx[i] ^= sx[i];
      rz[i] ^= sz[i];
    }

    PhaseTally tally;
    rowsum_xor_accumulate(dx.data(), dz.data(), sx.data(), sz.data(), count,
                          tally);
    EXPECT_EQ(tally.plus, ref_plus);
    EXPECT_EQ(tally.minus, ref_minus);
    EXPECT_TRUE(wide::spans_equal(dx.data(), rx.data(), count));
    EXPECT_TRUE(wide::spans_equal(dz.data(), rz.data(), count));
  }
}

// dense_rows::row_mult against a from-scratch scalar reimplementation of
// the A-G rowsum over the same storage image.
TEST(RowKernels, DenseRowMultMatchesScalarReference) {
  Rng rng(404);
  const TableauShape shape(/*n=*/150, /*col_align=*/64, /*phase_capacity=*/70);
  const std::size_t phase_words_used = words_for_bits(70);
  for (int trial = 0; trial < 20; ++trial) {
    BitMatrix bits = BitMatrix::random(shape.num_rows(), shape.num_cols(),
                                       rng);
    // Rowsum requires the Pauli product to have a real phase (even i
    // exponent); build rows whose product is guaranteed real by making
    // src and dst share their X/Z support pattern (product of a row with
    // itself has exponent 0 pairings), then perturbing only the phase
    // band of src.
    const std::size_t dst = 3;
    const std::size_t src = 7;
    {
      Word* s = bits.row(src);
      const Word* d = bits.row(dst);
      for (std::size_t w = 0; w < 2 * shape.xz_words(); ++w) {
        s[w] = d[w];
      }
    }

    BitMatrix ref = bits;
    // Scalar reference.
    {
      Word* d = ref.row(dst);
      const Word* s = ref.row(src);
      const std::size_t wx = shape.xz_words();
      long long plus = 0;
      long long minus = 0;
      for (std::size_t w = 0; w < wx; ++w) {
        reference_accumulate(d[w], d[wx + w], s[w], s[wx + w], plus, minus);
        d[w] ^= s[w];
        d[wx + w] ^= s[wx + w];
      }
      const int exponent = static_cast<int>((((plus - minus) % 4) + 4) % 4);
      ASSERT_EQ(exponent % 2, 0);
      const std::size_t pw = shape.phase_col_base() / kWordBits;
      for (std::size_t w = 0; w < phase_words_used; ++w) {
        d[pw + w] ^= s[pw + w];
      }
      if (exponent == 2) {
        d[pw] ^= Word{1};
      }
    }

    dense_rows::row_mult(bits, shape, phase_words_used, dst, src);
    EXPECT_EQ(bits, ref) << "trial " << trial;
  }
}

TEST(WideSpans, XorWordsMatchesScalar) {
  Rng rng(505);
  for (const std::size_t count : {1ul, 8ul, 9ul, 33ul}) {
    AlignedWordVec dst = random_words(rng, count);
    const AlignedWordVec src = random_words(rng, count);
    AlignedWordVec ref = dst;
    for (std::size_t i = 0; i < count; ++i) {
      ref[i] ^= src[i];
    }
    wide::xor_words(dst.data(), src.data(), count);
    EXPECT_TRUE(wide::spans_equal(dst.data(), ref.data(), count));
  }
}

TEST(WideWord, AddShiftLanesMatchScalar) {
  Rng rng(707);
  alignas(64) Word a[WideWord::kWords];
  alignas(64) Word b[WideWord::kWords];
  alignas(64) Word got[WideWord::kWords];
  for (std::size_t i = 0; i < WideWord::kWords; ++i) {
    a[i] = rng.next_word();
    b[i] = rng.next_word();
  }
  const WideWord va = WideWord::load(a);
  const WideWord vb = WideWord::load(b);
  (va + vb).store(got);
  for (std::size_t i = 0; i < WideWord::kWords; ++i) {
    EXPECT_EQ(got[i], a[i] + b[i]);
  }
  for (const int k : {1, 7, 17, 45, 63}) {
    va.shl(k).store(got);
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      EXPECT_EQ(got[i], a[i] << k);
    }
    va.shr(k).store(got);
    for (std::size_t i = 0; i < WideWord::kWords; ++i) {
      EXPECT_EQ(got[i], a[i] >> k);
    }
  }
}

TEST(WideSpans, AndnotAndMaskedXorMatchScalar) {
  Rng rng(808);
  for (const std::size_t count : {1ul, 8ul, 9ul, 33ul}) {
    AlignedWordVec dst = random_words(rng, count);
    const AlignedWordVec src = random_words(rng, count);
    const AlignedWordVec mask = random_words(rng, count);
    AlignedWordVec ref = dst;
    for (std::size_t i = 0; i < count; ++i) {
      ref[i] &= ~src[i];
    }
    wide::andnot_words(dst.data(), src.data(), count);
    EXPECT_TRUE(wide::spans_equal(dst.data(), ref.data(), count));

    for (std::size_t i = 0; i < count; ++i) {
      ref[i] ^= src[i] & mask[i];
    }
    wide::xor_masked_words(dst.data(), src.data(), mask.data(), count);
    EXPECT_TRUE(wide::spans_equal(dst.data(), ref.data(), count));
  }
}

// The blocked layout's SIMD tile transpose against the generic
// out-of-place 64x64-tiled transpose on a full 512x512 tile.
TEST(Transpose, Tile512AgreesWithBitMatrixTranspose) {
  Rng rng(606);
  AlignedWordVec tile(512 * 8);
  for (auto& w : tile) {
    w = rng.next_word();
  }
  AlignedWordVec expected(512 * 8);
  transpose_bit_matrix(tile.data(), /*wr=*/8, /*wc=*/8, expected.data());

  transpose_tile512_inplace(tile.data());
  EXPECT_TRUE(wide::spans_equal(tile.data(), expected.data(), tile.size()));
}

}  // namespace
}  // namespace symphase
