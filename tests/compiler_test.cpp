// Unit tests for the SymPhase compiler (Algorithm 1 Initialization):
// symbolic expressions on hand-checkable circuits, including the paper's
// own worked examples.

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "symbolic/symphase_compiler.hpp"

namespace symphase {
namespace {

using Expr = std::vector<std::uint32_t>;

template <typename Layout>
class CompilerTest : public ::testing::Test {};

using Layouts =
    ::testing::Types<RowMajorTableau, ColMajorTableau, BlockedTableau>;
TYPED_TEST_SUITE(CompilerTest, Layouts);

TYPED_TEST(CompilerTest, FreshQubitMeasuresConstantZero) {
  const Circuit c = parse_circuit("M 0 1");
  SymPhaseCompiler<TypeParam> compiler(c);
  ASSERT_EQ(compiler.num_measurements(), 2u);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{});
  EXPECT_FALSE(compiler.expressions()[0].was_random);
  EXPECT_EQ(compiler.symbols().num_symbols(), 1u);  // just the constant
}

TYPED_TEST(CompilerTest, XGateGivesConstantOne) {
  const Circuit c = parse_circuit("X 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{0});
  EXPECT_FALSE(compiler.expressions()[0].was_random);
}

TYPED_TEST(CompilerTest, XErrorGivesSymbol) {
  const Circuit c = parse_circuit("X_ERROR(0.1) 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});
  EXPECT_EQ(compiler.symbols().group_of(1).kind, SymbolGroupKind::kBernoulli);
  EXPECT_DOUBLE_EQ(compiler.symbols().group_of(1).probability, 0.1);
}

TYPED_TEST(CompilerTest, ZErrorInvisibleInZBasis) {
  const Circuit c = parse_circuit("Z_ERROR(0.3) 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{});
}

TYPED_TEST(CompilerTest, ZErrorVisibleThroughHadamard) {
  const Circuit c = parse_circuit("H 0\nZ_ERROR(0.3) 0\nH 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});
}

TYPED_TEST(CompilerTest, RandomMeasurementMintsCoin) {
  const Circuit c = parse_circuit("H 0\nM 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  ASSERT_EQ(compiler.num_measurements(), 2u);
  EXPECT_TRUE(compiler.expressions()[0].was_random);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});
  EXPECT_EQ(compiler.symbols().group_of(1).kind, SymbolGroupKind::kCoin);
  // Re-measurement is deterministic and repeats the same coin.
  EXPECT_FALSE(compiler.expressions()[1].was_random);
  EXPECT_EQ(compiler.expressions()[1].symbols, Expr{1});
}

TYPED_TEST(CompilerTest, BellPairCorrelatedExpressions) {
  const Circuit c = parse_circuit("H 0\nCNOT 0 1\nM 0\nM 1");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_TRUE(compiler.expressions()[0].was_random);
  EXPECT_FALSE(compiler.expressions()[1].was_random);
  // Perfectly correlated: both outcomes are the same coin.
  EXPECT_EQ(compiler.expressions()[0].symbols,
            compiler.expressions()[1].symbols);
}

// The worked example of paper §3.1: H 0; CNOT 0 1; X^{s1} 0; X^{s2} 1;
// M 0; M 1 gives m1 = s3 (fresh coin), m2 = s1 ^ s2 ^ s3.
TYPED_TEST(CompilerTest, PaperSection31WorkedExample) {
  const Circuit c = parse_circuit(
      "H 0\n"
      "CNOT 0 1\n"
      "X_ERROR(0.5) 0\n"
      "X_ERROR(0.5) 1\n"
      "M 0\n"
      "M 1");
  SymPhaseCompiler<TypeParam> compiler(c);
  ASSERT_EQ(compiler.num_measurements(), 2u);
  // Symbols: 1 = s1 (X fault on q0), 2 = s2 (X fault on q1), 3 = coin.
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{3});
  EXPECT_TRUE(compiler.expressions()[0].was_random);
  EXPECT_EQ(compiler.expressions()[1].symbols, (Expr{1, 2, 3}));
  EXPECT_FALSE(compiler.expressions()[1].was_random);
}

// Fig. 1 of the paper: m1 = s1, m2 = s2, m3 = s2^s3, m4 = s3^s4.
TYPED_TEST(CompilerTest, PaperFigure1Expressions) {
  const Circuit c = figure1_circuit(0.01);
  SymPhaseCompiler<TypeParam> compiler(c);
  ASSERT_EQ(compiler.num_measurements(), 4u);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});
  EXPECT_EQ(compiler.expressions()[1].symbols, Expr{2});
  EXPECT_EQ(compiler.expressions()[2].symbols, (Expr{2, 3}));
  EXPECT_EQ(compiler.expressions()[3].symbols, (Expr{3, 4}));
  for (const auto& e : compiler.expressions()) {
    EXPECT_FALSE(e.was_random);
  }
}

TYPED_TEST(CompilerTest, Depolarize1MakesTwoSymbols) {
  const Circuit c = parse_circuit("DEPOLARIZE1(0.2) 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  // Only the X component (symbol 1) flips a Z-basis measurement.
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});
  EXPECT_EQ(compiler.symbols().num_symbols(), 3u);
  EXPECT_EQ(compiler.symbols().group_of(1).kind,
            SymbolGroupKind::kDepolarize1);
  EXPECT_EQ(compiler.symbols().group_of(2).first_symbol, 1u);
}

TYPED_TEST(CompilerTest, Depolarize2MakesFourSymbols) {
  const Circuit c = parse_circuit("DEPOLARIZE2(0.2) 0 1\nM 0 1");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});  // X_a component
  EXPECT_EQ(compiler.expressions()[1].symbols, Expr{3});  // X_b component
  EXPECT_EQ(compiler.symbols().num_symbols(), 5u);
}

TYPED_TEST(CompilerTest, YErrorSharesOneSymbol) {
  // Y = XZ: in the Z basis only the X part matters; sandwiched between
  // Hadamards only the Z part does. Same symbol either way.
  const Circuit c =
      parse_circuit("Y_ERROR(0.2) 0\nH 1\nY_ERROR(0.2) 1\nH 1\nM 0 1");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});
  EXPECT_EQ(compiler.expressions()[1].symbols, Expr{2});
  EXPECT_EQ(compiler.symbols().num_symbols(), 3u);
}

TYPED_TEST(CompilerTest, MrResetsTheQubit) {
  const Circuit c = parse_circuit("X 0\nMR 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{0});  // reads 1
  EXPECT_EQ(compiler.expressions()[1].symbols, Expr{});   // reset to 0
}

TYPED_TEST(CompilerTest, MrAfterRandomCollapseResets) {
  const Circuit c = parse_circuit("H 0\nMR 0\nM 0");
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{1});  // fresh coin
  EXPECT_EQ(compiler.expressions()[1].symbols, Expr{});   // reset to |0>
}

TYPED_TEST(CompilerTest, ResetClearsEntanglement) {
  const Circuit c = parse_circuit("H 0\nCNOT 0 1\nR 0\nM 0\nM 1");
  SymPhaseCompiler<TypeParam> compiler(c);
  // Qubit 0 was reset: reads 0 deterministically. Qubit 1 keeps the coin
  // minted by the reset's internal measurement.
  EXPECT_EQ(compiler.expressions()[0].symbols, Expr{});
  EXPECT_EQ(compiler.expressions()[1].symbols, Expr{1});
}

TYPED_TEST(CompilerTest, ExpressionNnzAccounting) {
  const Circuit c = figure1_circuit(0.1);
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.expression_nnz(), 1u + 1 + 2 + 2);
}

TYPED_TEST(CompilerTest, RepetitionCodeSyndromesAreSparse) {
  RepetitionCodeOptions opt;
  opt.distance = 5;
  opt.rounds = 4;
  opt.data_error_probability = 0.1;
  const Circuit c = repetition_code_memory(opt);
  SymPhaseCompiler<TypeParam> compiler(c);
  // All measurements deterministic (stabilizer circuit w/o superposition
  // reaching measured ancillas); expressions stay shallow because each
  // syndrome bit depends on at most (rounds x 2) data faults.
  for (const auto& e : compiler.expressions()) {
    EXPECT_FALSE(e.was_random);
    EXPECT_LE(e.symbols.size(), 2u * opt.rounds);
  }
}

TYPED_TEST(CompilerTest, EmptyCircuitCompiles) {
  const Circuit c(3);
  SymPhaseCompiler<TypeParam> compiler(c);
  EXPECT_EQ(compiler.num_measurements(), 0u);
}

}  // namespace
}  // namespace symphase
