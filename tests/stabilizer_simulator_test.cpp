#include "tableau/stabilizer_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "tableau/col_major_tableau.hpp"
#include "tableau/row_major_tableau.hpp"

namespace symphase {
namespace {

template <typename Layout>
class StabilizerSimulatorTest : public ::testing::Test {};

using Layouts =
    ::testing::Types<RowMajorTableau, ColMajorTableau, BlockedTableau>;
TYPED_TEST_SUITE(StabilizerSimulatorTest, Layouts);

TYPED_TEST(StabilizerSimulatorTest, FreshQubitsMeasureZero) {
  StabilizerSimulator<TypeParam> sim(4, 1);
  for (std::uint32_t q = 0; q < 4; ++q) {
    const MeasureResult r = sim.measure(q);
    EXPECT_FALSE(r.outcome);
    EXPECT_FALSE(r.was_random);
  }
}

TYPED_TEST(StabilizerSimulatorTest, XThenMeasureIsOne) {
  StabilizerSimulator<TypeParam> sim(2, 1);
  sim.apply_unitary(GateType::X, 0);
  EXPECT_TRUE(sim.measure(0).outcome);
  EXPECT_FALSE(sim.measure(1).outcome);
}

TYPED_TEST(StabilizerSimulatorTest, HadamardMeasureIsRandom) {
  StabilizerSimulator<TypeParam> sim(1, 7);
  sim.apply_unitary(GateType::H, 0);
  EXPECT_FALSE(sim.measurement_is_deterministic(0));
  const MeasureResult r = sim.measure(0);
  EXPECT_TRUE(r.was_random);
  // Post-measurement the outcome repeats deterministically.
  const MeasureResult r2 = sim.measure(0);
  EXPECT_FALSE(r2.was_random);
  EXPECT_EQ(r2.outcome, r.outcome);
}

TYPED_TEST(StabilizerSimulatorTest, BellPairCorrelations) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    StabilizerSimulator<TypeParam> sim(2, seed);
    sim.apply_unitary(GateType::H, 0);
    sim.apply_unitary(GateType::CNOT, 0, 1);
    const MeasureResult m1 = sim.measure(0);
    const MeasureResult m2 = sim.measure(1);
    EXPECT_TRUE(m1.was_random);
    EXPECT_FALSE(m2.was_random);
    EXPECT_EQ(m1.outcome, m2.outcome);
  }
}

TYPED_TEST(StabilizerSimulatorTest, GhzStabilizers) {
  StabilizerSimulator<TypeParam> sim(3, 1);
  sim.apply_unitary(GateType::H, 0);
  sim.apply_unitary(GateType::CNOT, 0, 1);
  sim.apply_unitary(GateType::CNOT, 1, 2);
  EXPECT_EQ(sim.stabilizer(0).to_string(), "+XXX");
  EXPECT_EQ(sim.stabilizer(1).to_string(), "+ZZ_");
  EXPECT_EQ(sim.stabilizer(2).to_string(), "+_ZZ");
}

TYPED_TEST(StabilizerSimulatorTest, StabilizerGroupInvariants) {
  Rng rng(3);
  const Circuit c = random_fuzz_circuit(8, 120, 0.0, rng, false);
  StabilizerSimulator<TypeParam> sim(8, 5);
  sim.run_circuit(c);
  // All stabilizers commute pairwise; destabilizer i anticommutes with
  // stabilizer i only.
  for (std::size_t i = 0; i < 8; ++i) {
    const PauliString si = sim.stabilizer(i);
    EXPECT_TRUE(si.phase_is_real());
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_TRUE(si.commutes_with(sim.stabilizer(j)));
      EXPECT_EQ(sim.destabilizer(i).commutes_with(sim.stabilizer(j)), i != j)
          << i << "," << j;
    }
  }
}

TYPED_TEST(StabilizerSimulatorTest, ResetForcesZero) {
  StabilizerSimulator<TypeParam> sim(2, 11);
  sim.apply_unitary(GateType::X, 0);
  sim.apply_unitary(GateType::H, 1);
  sim.reset_qubit(0);
  sim.reset_qubit(1);
  EXPECT_FALSE(sim.measure(0).outcome);
  EXPECT_FALSE(sim.measure(1).outcome);
}

TYPED_TEST(StabilizerSimulatorTest, MrMeasuresThenResets) {
  StabilizerSimulator<TypeParam> sim(1, 13);
  Circuit c(1);
  c.append1(GateType::X, 0);
  c.append1(GateType::MR, 0);
  c.append1(GateType::M, 0);
  sim.run_circuit(c);
  ASSERT_EQ(sim.record().size(), 2u);
  EXPECT_TRUE(sim.record()[0]);
  EXPECT_FALSE(sim.record()[1]);
}

TYPED_TEST(StabilizerSimulatorTest, SGateCycle) {
  // S^4 = I observable: prepare |+>, apply S 4 times, H, measure -> 0.
  StabilizerSimulator<TypeParam> sim(1, 17);
  sim.apply_unitary(GateType::H, 0);
  for (int i = 0; i < 4; ++i) {
    sim.apply_unitary(GateType::S, 0);
  }
  sim.apply_unitary(GateType::H, 0);
  const MeasureResult r = sim.measure(0);
  EXPECT_FALSE(r.was_random);
  EXPECT_FALSE(r.outcome);
}

TYPED_TEST(StabilizerSimulatorTest, SSdagIsIdentity) {
  StabilizerSimulator<TypeParam> sim(1, 19);
  sim.apply_unitary(GateType::H, 0);
  sim.apply_unitary(GateType::S, 0);
  sim.apply_unitary(GateType::S_DAG, 0);
  sim.apply_unitary(GateType::H, 0);
  const MeasureResult r = sim.measure(0);
  EXPECT_FALSE(r.was_random);
  EXPECT_FALSE(r.outcome);
}

TYPED_TEST(StabilizerSimulatorTest, RandomOutcomesAreFair) {
  int ones = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    StabilizerSimulator<TypeParam> sim(1, static_cast<std::uint64_t>(t));
    sim.apply_unitary(GateType::H, 0);
    ones += sim.measure(0).outcome;
  }
  EXPECT_NEAR(ones, kTrials / 2, 5 * std::sqrt(kTrials / 4.0));
}

TYPED_TEST(StabilizerSimulatorTest, NoiseChannelsFlipAtRate) {
  // X_ERROR(p) then M: outcome 1 with probability p.
  constexpr double kP = 0.3;
  constexpr int kTrials = 3000;
  int ones = 0;
  Circuit c(1);
  c.append(GateType::X_ERROR, {0}, kP);
  c.append1(GateType::M, 0);
  for (int t = 0; t < kTrials; ++t) {
    StabilizerSimulator<TypeParam> sim(1, static_cast<std::uint64_t>(t) + 1);
    sim.run_circuit(c);
    ones += sim.record()[0];
  }
  EXPECT_NEAR(ones, kTrials * kP, 5 * std::sqrt(kTrials * kP * (1 - kP)));
}

TYPED_TEST(StabilizerSimulatorTest, ZErrorInvisibleInZBasis) {
  Circuit c(1);
  c.append(GateType::Z_ERROR, {0}, 1.0);
  c.append1(GateType::M, 0);
  StabilizerSimulator<TypeParam> sim(1, 23);
  sim.run_circuit(c);
  EXPECT_FALSE(sim.record()[0]);
}

TYPED_TEST(StabilizerSimulatorTest, CzViaHadamardCnot) {
  // CZ = (I x H) CNOT (I x H): compare stabilizers after both versions.
  StabilizerSimulator<TypeParam> a(2, 29);
  a.apply_unitary(GateType::H, 0);
  a.apply_unitary(GateType::S, 1);
  a.apply_unitary(GateType::CZ, 0, 1);
  StabilizerSimulator<TypeParam> b(2, 29);
  b.apply_unitary(GateType::H, 0);
  b.apply_unitary(GateType::S, 1);
  b.apply_unitary(GateType::H, 1);
  b.apply_unitary(GateType::CNOT, 0, 1);
  b.apply_unitary(GateType::H, 1);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.stabilizer(i).to_string(), b.stabilizer(i).to_string());
    EXPECT_EQ(a.destabilizer(i).to_string(), b.destabilizer(i).to_string());
  }
}

TYPED_TEST(StabilizerSimulatorTest, SwapMovesState) {
  StabilizerSimulator<TypeParam> sim(2, 31);
  sim.apply_unitary(GateType::X, 0);
  sim.apply_unitary(GateType::SWAP, 0, 1);
  EXPECT_FALSE(sim.measure(0).outcome);
  EXPECT_TRUE(sim.measure(1).outcome);
}

TYPED_TEST(StabilizerSimulatorTest, LargeCircuitAcrossWordBoundaries) {
  // 130 qubits exercises multi-word columns and (for blocked) multi-tile
  // row groups... chain CNOTs then measure all: GHZ correlations.
  constexpr std::size_t kN = 130;
  StabilizerSimulator<TypeParam> sim(kN, 37);
  sim.apply_unitary(GateType::H, 0);
  for (std::uint32_t q = 0; q + 1 < kN; ++q) {
    sim.apply_unitary(GateType::CNOT, q, q + 1);
  }
  const bool first = sim.measure(0).outcome;
  for (std::uint32_t q = 1; q < kN; ++q) {
    ASSERT_EQ(sim.measure(q).outcome, first) << q;
  }
}

}  // namespace
}  // namespace symphase
