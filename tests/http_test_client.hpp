#pragma once

// Shared test-side HTTP/1.1 plumbing for the gateway suites: an
// in-process SocketServer harness with the HTTP listener enabled, and a
// blocking client that understands chunked and Content-Length framing.
// Used by http_gateway_test.cpp (endpoint behavior),
// service_differential_test.cpp (corpus byte identity), and
// chaos_test.cpp (slow readers and aborts). Header-only; gtest
// assertions fail the including test on malformed responses.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/server.hpp"
#include "net/socket.hpp"

namespace symphase {
namespace http_testing {

/// SocketServer with an ephemeral HTTP listener, running its event loop
/// on a background thread for the lifetime of the fixture.
class GatewayHarness {
 public:
  explicit GatewayHarness(SocketServerOptions options = make_options())
      : server_(std::move(options)), loop_([this] { server_.run(); }) {}
  ~GatewayHarness() {
    server_.shutdown();
    loop_.join();
  }

  static SocketServerOptions make_options() {
    SocketServerOptions options;
    options.http_listen = "127.0.0.1:0";
    return options;
  }

  std::uint16_t http_port() const { return server_.http_port(); }
  SocketServer& server() { return server_; }

 private:
  SocketServer server_;
  std::thread loop_;
};

struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Trailer fields after the terminal 0-chunk (lowercased names), e.g.
  /// the gateway's Server-Timing stage breakdown.
  std::vector<std::pair<std::string, std::string>> trailers;
  /// True when the chunked body ended with the terminal 0-chunk (a
  /// missing terminator is how the gateway signals mid-stream failure).
  bool chunked_complete = true;

  const std::string* header(const std::string& name) const {
    for (const auto& [key, value] : headers) {
      if (key == name) {
        return &value;
      }
    }
    return nullptr;
  }

  const std::string* trailer(const std::string& name) const {
    for (const auto& [key, value] : trailers) {
      if (key == name) {
        return &value;
      }
    }
    return nullptr;
  }
};

/// Blocking test-side HTTP/1.1 client over one socket. Multiple
/// read_response() calls consume pipelined/keep-alive responses in
/// order.
class HttpClient {
 public:
  explicit HttpClient(std::uint16_t port)
      : socket_(tcp_connect({"127.0.0.1", port})) {
    timeval timeout{10, 0};  // A hung gateway fails the test, not CI.
    ::setsockopt(socket_.fd(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof timeout);
  }

  void send(const std::string& bytes) { send_all(socket_.fd(), bytes); }

  void send_request(const std::string& method, const std::string& target,
                    const std::string& body = {},
                    const std::string& extra_headers = {}) {
    std::ostringstream oss;
    oss << method << ' ' << target << " HTTP/1.1\r\nHost: t\r\n"
        << extra_headers;
    if (!body.empty() || method == "POST") {
      oss << "Content-Length: " << body.size() << "\r\n";
    }
    oss << "\r\n" << body;
    send(oss.str());
  }

  void shutdown_write() { ::shutdown(socket_.fd(), SHUT_WR); }

  int fd() const { return socket_.fd(); }

  /// Reads one full response. Fails the test on timeout or on a
  /// response cut off before its framing said it was done — except for
  /// chunked bodies, where truncation is reported via chunked_complete.
  HttpResponse read_response() {
    HttpResponse response;
    const std::size_t head_end = read_until_head_end();
    std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end);
    std::istringstream lines(head);
    std::string line;
    std::getline(lines, line);
    EXPECT_EQ(line.substr(0, 9), "HTTP/1.1 ") << line;
    response.status = std::stoi(line.substr(9, 3));
    while (std::getline(lines, line) && line != "\r" && !line.empty()) {
      if (line.back() == '\r') {
        line.pop_back();
      }
      const std::size_t colon = line.find(':');
      EXPECT_NE(colon, std::string::npos) << line;
      if (colon == std::string::npos) {
        continue;
      }
      std::string name = line.substr(0, colon);
      for (char& c : name) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      std::size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      response.headers.emplace_back(name, line.substr(value_start));
    }
    if (const std::string* te = response.header("transfer-encoding")) {
      EXPECT_EQ(*te, "chunked");
      read_chunked_body(response);
    } else if (const std::string* cl = response.header("content-length")) {
      const std::size_t length = std::stoull(*cl);
      while (buffer_.size() < length && fill()) {
      }
      EXPECT_GE(buffer_.size(), length) << "body cut short";
      response.body = buffer_.substr(0, std::min(buffer_.size(), length));
      buffer_.erase(0, response.body.size());
    } else {
      while (fill()) {
      }
      response.body = std::move(buffer_);
      buffer_.clear();
    }
    return response;
  }

  /// Whether the server closed the connection (EOF after the pending
  /// buffered bytes).
  bool at_eof() { return buffer_.empty() && !fill(); }

 private:
  std::size_t read_until_head_end() {
    for (;;) {
      const std::size_t lflf = buffer_.find("\n\n");
      const std::size_t crlf = buffer_.find("\r\n\r\n");
      if (crlf != std::string::npos &&
          (lflf == std::string::npos || crlf < lflf)) {
        return crlf + 4;
      }
      if (lflf != std::string::npos) {
        return lflf + 2;
      }
      if (!fill()) {
        ADD_FAILURE() << "connection closed before response head: "
                      << buffer_;
        return buffer_.size();
      }
    }
  }

  void read_chunked_body(HttpResponse& response) {
    for (;;) {
      std::size_t eol;
      while ((eol = buffer_.find("\r\n")) == std::string::npos) {
        if (!fill()) {
          response.chunked_complete = false;  // Truncated mid-stream.
          return;
        }
      }
      const std::size_t size =
          std::stoull(buffer_.substr(0, eol), nullptr, 16);
      buffer_.erase(0, eol + 2);
      if (size == 0) {
        // Trailer section: zero or more `Name: value` lines, then the
        // final blank line.
        for (;;) {
          std::size_t trailer_eol;
          while ((trailer_eol = buffer_.find("\r\n")) == std::string::npos) {
            if (!fill()) {
              response.chunked_complete = false;
              return;
            }
          }
          std::string line = buffer_.substr(0, trailer_eol);
          buffer_.erase(0, trailer_eol + 2);
          if (line.empty()) {
            return;
          }
          const std::size_t colon = line.find(':');
          EXPECT_NE(colon, std::string::npos) << "malformed trailer: " << line;
          if (colon == std::string::npos) {
            continue;
          }
          std::string name = line.substr(0, colon);
          for (char& c : name) {
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
          std::size_t value_start = colon + 1;
          while (value_start < line.size() && line[value_start] == ' ') {
            ++value_start;
          }
          response.trailers.emplace_back(name, line.substr(value_start));
        }
      }
      while (buffer_.size() < size + 2) {
        if (!fill()) {
          response.chunked_complete = false;
          response.body += buffer_;
          buffer_.clear();
          return;
        }
      }
      response.body += buffer_.substr(0, size);
      EXPECT_EQ(buffer_.substr(size, 2), "\r\n");
      buffer_.erase(0, size + 2);
    }
  }

  bool fill() {
    char chunk[4096];
    const ssize_t got = ::recv(socket_.fd(), chunk, sizeof chunk, 0);
    if (got <= 0) {
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
    return true;
  }

  Socket socket_;
  std::string buffer_;
};

/// JSON string escaping for building request bodies in tests.
inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace http_testing
}  // namespace symphase
