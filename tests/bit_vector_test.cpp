#include "bitvec/bit_vector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace symphase {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.any());
}

TEST(BitVector, ConstructedZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.word_count(), 3u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_FALSE(v.get(i));
  }
  EXPECT_EQ(v.count_ones(), 0u);
}

TEST(BitVector, SetGetFlip) {
  BitVector v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count_ones(), 4u);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  v.flip(1);
  EXPECT_TRUE(v.get(1));
  EXPECT_EQ(v.count_ones(), 4u);
}

TEST(BitVector, XorIsSymmetricDifference) {
  BitVector a(70);
  BitVector b(70);
  a.set(3, true);
  a.set(65, true);
  b.set(3, true);
  b.set(17, true);
  const BitVector c = a ^ b;
  EXPECT_FALSE(c.get(3));
  EXPECT_TRUE(c.get(17));
  EXPECT_TRUE(c.get(65));
  EXPECT_EQ(c.count_ones(), 2u);
}

TEST(BitVector, XorSelfIsZero) {
  Rng rng(7);
  BitVector a(200);
  for (int i = 0; i < 50; ++i) {
    a.set(rng.next_below(200), true);
  }
  BitVector b = a;
  b ^= a;
  EXPECT_FALSE(b.any());
}

TEST(BitVector, AndOr) {
  BitVector a(10);
  BitVector b(10);
  a.set(1, true);
  a.set(2, true);
  b.set(2, true);
  b.set(3, true);
  BitVector both = a;
  both &= b;
  EXPECT_EQ(both.count_ones(), 1u);
  EXPECT_TRUE(both.get(2));
  BitVector either = a;
  either |= b;
  EXPECT_EQ(either.count_ones(), 3u);
}

TEST(BitVector, DotIsParityOfAnd) {
  BitVector a(128);
  BitVector b(128);
  a.set(5, true);
  a.set(70, true);
  b.set(5, true);
  b.set(70, true);
  EXPECT_FALSE(a.dot(b));  // two overlaps -> even
  b.set(71, true);
  a.set(71, true);
  EXPECT_TRUE(a.dot(b));  // three overlaps -> odd
}

TEST(BitVector, FirstSet) {
  BitVector v(200);
  EXPECT_EQ(v.first_set(), 200u);
  v.set(130, true);
  EXPECT_EQ(v.first_set(), 130u);
  v.set(7, true);
  EXPECT_EQ(v.first_set(), 7u);
}

TEST(BitVector, ResizePreservesAndZeroExtends) {
  BitVector v(65);
  v.set(64, true);
  v.set(10, true);
  v.resize(200);
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(10));
  EXPECT_EQ(v.count_ones(), 2u);
  for (std::size_t i = 65; i < 200; ++i) {
    EXPECT_FALSE(v.get(i));
  }
}

TEST(BitVector, ResizeShrinkTrimsTail) {
  BitVector v(128);
  v.set(100, true);
  v.set(5, true);
  v.resize(64);
  EXPECT_EQ(v.count_ones(), 1u);
  EXPECT_TRUE(v.get(5));
  // Growing again must not resurrect the trimmed bit.
  v.resize(128);
  EXPECT_FALSE(v.get(100));
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector a(10);
  BitVector b(11);
  EXPECT_FALSE(a == b);
  BitVector c(10);
  EXPECT_TRUE(a == c);
  c.set(3, true);
  EXPECT_FALSE(a == c);
}

TEST(BitVector, ToStringLsbFirst) {
  BitVector v(5);
  v.set(0, true);
  v.set(3, true);
  EXPECT_EQ(v.to_string(), "10010");
}

class BitVectorParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorParamTest, CountMatchesNaive) {
  const std::size_t size = GetParam();
  Rng rng(size);
  BitVector v(size);
  std::size_t expected = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.next_bernoulli(0.3)) {
      v.set(i, true);
      ++expected;
    }
  }
  EXPECT_EQ(v.count_ones(), expected);
}

TEST_P(BitVectorParamTest, XorAssociativity) {
  const std::size_t size = GetParam();
  if (size == 0) {
    GTEST_SKIP();
  }
  Rng rng(size + 1);
  BitVector a(size);
  BitVector b(size);
  BitVector c(size);
  for (std::size_t i = 0; i < size / 2 + 1; ++i) {
    a.set(rng.next_below(size), true);
    b.set(rng.next_below(size), true);
    c.set(rng.next_below(size), true);
  }
  EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorParamTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129,
                                           511, 512, 1000));

}  // namespace
}  // namespace symphase
