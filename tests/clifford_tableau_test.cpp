// Tests for CliffordTableau: conjugation rules vs the state-vector
// oracle, group algebra (composition, inverse), and circuit synthesis.

#include "tableau/clifford_tableau.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "statevector/state_vector.hpp"

namespace symphase {
namespace {

constexpr GateType kOneQubitGates[] = {
    GateType::I,      GateType::X,          GateType::Y,
    GateType::Z,      GateType::H,          GateType::S,
    GateType::S_DAG,  GateType::SQRT_X,     GateType::SQRT_X_DAG,
    GateType::H_YZ,
};
constexpr GateType kTwoQubitGates[] = {GateType::CNOT, GateType::CZ,
                                       GateType::SWAP};

/// Checks U P U† == expected by verifying that if |psi> is stabilized by
/// P then U|psi> is stabilized by expected — for every stabilizer state
/// in a small basis of P-eigenstates... simpler and fully general: apply
/// both sides to the oracle state and compare: U P |psi> vs expected U
/// |psi> for random stabilizer |psi>.
void expect_conjugation_matches_oracle(GateType type, std::uint32_t a,
                                       std::uint32_t b,
                                       const PauliString& pauli,
                                       std::uint64_t seed) {
  const std::size_t n = pauli.num_qubits();
  CliffordTableau t(n);
  t.then_gate(type, a, b);
  const PauliString image = t.conjugate(pauli);

  // Prepare a pseudo-random state via a unitary circuit.
  Rng rng(seed);
  const Circuit prep = [&] {
    Circuit c = random_fuzz_circuit(n, 12, 0.0, rng, false);
    Circuit unitary(n);
    for (const Instruction& inst : c.instructions()) {
      if (is_unitary(inst.type)) {
        unitary.append(inst.type, inst.targets);
      }
    }
    return unitary;
  }();
  StateVector base(n);
  Rng sv_rng(seed + 1);
  std::vector<bool> record;
  base.run_circuit(prep, sv_rng, record);

  // lhs = U P |psi>.
  StateVector lhs = base;
  lhs.apply_pauli(pauli);
  lhs.apply_gate(type, a, b);
  // rhs = image U |psi>.
  StateVector rhs = base;
  rhs.apply_gate(type, a, b);
  rhs.apply_pauli(image);
  ASSERT_NEAR(lhs.fidelity_with(rhs), 1.0, 1e-9)
      << gate_name(type) << " on " << pauli.to_string() << " gave "
      << image.to_string();
  // Fidelity is phase-blind; check the global phase by comparing one
  // non-trivial amplitude directly.
  for (std::size_t i = 0; i < lhs.amplitudes().size(); ++i) {
    ASSERT_NEAR(std::abs(lhs.amplitudes()[i] - rhs.amplitudes()[i]), 0.0,
                1e-9)
        << gate_name(type) << " phase mismatch on " << pauli.to_string();
  }
}

TEST(CliffordTableau, SingleQubitConjugationsExhaustive) {
  // Every gate x every literal Pauli with every starting sign on 2
  // qubits (so identity action on bystanders is also covered).
  const SinglePauli paulis[] = {SinglePauli::I, SinglePauli::X,
                                SinglePauli::Y, SinglePauli::Z};
  std::uint64_t seed = 1;
  for (const GateType g : kOneQubitGates) {
    for (const SinglePauli p : paulis) {
      for (const bool sign : {false, true}) {
        PauliString pauli = PauliString::single(2, 0, p);
        pauli.set_sign(sign);
        expect_conjugation_matches_oracle(g, 0, 0, pauli, seed++);
      }
    }
  }
}

TEST(CliffordTableau, TwoQubitConjugationsExhaustive) {
  const SinglePauli paulis[] = {SinglePauli::I, SinglePauli::X,
                                SinglePauli::Y, SinglePauli::Z};
  std::uint64_t seed = 1000;
  for (const GateType g : kTwoQubitGates) {
    for (const SinglePauli pa : paulis) {
      for (const SinglePauli pb : paulis) {
        PauliString pauli(2);
        pauli.set_pauli(0, pa);
        pauli.set_pauli(1, pb);
        expect_conjugation_matches_oracle(g, 0, 1, pauli, seed++);
      }
    }
  }
}

TEST(CliffordTableau, IdentityProperties) {
  CliffordTableau t(4);
  EXPECT_TRUE(t.is_identity());
  EXPECT_TRUE(t.is_valid());
  const PauliString p = PauliString::from_string("-XY_Z");
  EXPECT_EQ(t.conjugate(p), p);
}

TEST(CliffordTableau, ValidityPreservedUnderGates) {
  Rng rng(7);
  CliffordTableau t = CliffordTableau::random(6, rng);
  EXPECT_TRUE(t.is_valid());
  EXPECT_FALSE(t.is_identity());
}

TEST(CliffordTableau, ComposeMatchesSequentialConjugation) {
  Rng rng(8);
  const CliffordTableau u = CliffordTableau::random(5, rng);
  const CliffordTableau v = CliffordTableau::random(5, rng);
  const CliffordTableau w = u.then(v);  // v ∘ u
  EXPECT_TRUE(w.is_valid());
  for (int trial = 0; trial < 20; ++trial) {
    const PauliString p = PauliString::random(5, rng);
    EXPECT_EQ(w.conjugate(p), v.conjugate(u.conjugate(p)));
  }
}

TEST(CliffordTableau, ComposeWithIdentity) {
  Rng rng(9);
  const CliffordTableau u = CliffordTableau::random(4, rng);
  const CliffordTableau id(4);
  EXPECT_EQ(u.then(id), u);
  EXPECT_EQ(id.then(u), u);
}

TEST(CliffordTableau, InverseComposesToIdentity) {
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const CliffordTableau u =
        CliffordTableau::random(1 + trial % 7 + 1, rng);
    const CliffordTableau inv = u.inverse();
    EXPECT_TRUE(inv.is_valid());
    EXPECT_TRUE(u.then(inv).is_identity()) << "trial " << trial;
    EXPECT_TRUE(inv.then(u).is_identity()) << "trial " << trial;
  }
}

TEST(CliffordTableau, InverseRoundTripsPaulis) {
  Rng rng(11);
  const CliffordTableau u = CliffordTableau::random(6, rng);
  const CliffordTableau inv = u.inverse();
  for (int trial = 0; trial < 30; ++trial) {
    PauliString p = PauliString::random(6, rng);
    p.set_phase_exponent(p.phase_exponent() & ~1);  // real phase
    EXPECT_EQ(inv.conjugate(u.conjugate(p)), p);
  }
}

TEST(CliffordTableau, FromCircuitMatchesGateSequence) {
  Circuit c(3);
  c.append1(GateType::H, 0);
  c.append2(GateType::CNOT, 0, 1);
  c.append1(GateType::S, 2);
  const CliffordTableau t = CliffordTableau::from_circuit(c);
  CliffordTableau manual(3);
  manual.then_gate(GateType::H, 0);
  manual.then_gate(GateType::CNOT, 0, 1);
  manual.then_gate(GateType::S, 2);
  EXPECT_EQ(t, manual);
  // GHZ-prep tableau maps Z_0 -> X_0 X_1 ... check one image.
  EXPECT_EQ(t.z_image(0).to_string(), "+XX_");
}

TEST(CliffordTableau, FromCircuitRejectsNonUnitary) {
  Circuit c(2);
  c.append1(GateType::M, 0);
  EXPECT_THROW(CliffordTableau::from_circuit(c), std::invalid_argument);
}

class SynthesisTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SynthesisTest, ToCircuitRoundTripsExactly) {
  Rng rng(GetParam() * 97 + 5);
  for (int trial = 0; trial < 8; ++trial) {
    const CliffordTableau u = CliffordTableau::random(GetParam(), rng);
    const Circuit synthesized = u.to_circuit();
    const CliffordTableau back = CliffordTableau::from_circuit(synthesized);
    ASSERT_EQ(back, u) << "n=" << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SynthesisTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(CliffordTableau, SynthesisOfIdentityIsEmpty) {
  const CliffordTableau id(5);
  EXPECT_TRUE(id.to_circuit().instructions().empty());
}

TEST(CliffordTableau, SynthesizedCircuitActsOnStates) {
  // The synthesized circuit must reproduce the exact state the original
  // gate sequence prepares (up to nothing — signs included).
  Rng rng(42);
  Circuit original(4);
  original.append1(GateType::H, 0);
  original.append2(GateType::CNOT, 0, 1);
  original.append1(GateType::S_DAG, 1);
  original.append2(GateType::CZ, 1, 2);
  original.append1(GateType::SQRT_X, 3);
  original.append2(GateType::SWAP, 2, 3);
  original.append1(GateType::Y, 0);
  const Circuit synthesized =
      CliffordTableau::from_circuit(original).to_circuit();

  StateVector a(4);
  StateVector b(4);
  Rng r1(1);
  Rng r2(1);
  std::vector<bool> rec;
  a.run_circuit(original, r1, rec);
  b.run_circuit(synthesized, r2, rec);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-9);
}

TEST(CliffordTableau, ConjugatePreservesCommutationStructure) {
  Rng rng(13);
  const CliffordTableau u = CliffordTableau::random(7, rng);
  for (int trial = 0; trial < 25; ++trial) {
    const PauliString p = PauliString::random(7, rng);
    const PauliString q = PauliString::random(7, rng);
    EXPECT_EQ(u.conjugate(p).commutes_with(u.conjugate(q)),
              p.commutes_with(q));
  }
}

TEST(CliffordTableau, ConjugateIsHomomorphism) {
  Rng rng(14);
  const CliffordTableau u = CliffordTableau::random(5, rng);
  for (int trial = 0; trial < 25; ++trial) {
    const PauliString p = PauliString::random(5, rng);
    const PauliString q = PauliString::random(5, rng);
    EXPECT_EQ(u.conjugate(p * q), u.conjugate(p) * u.conjugate(q));
  }
}

}  // namespace
}  // namespace symphase
