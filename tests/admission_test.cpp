// Admission control (src/service/admission.*) and the structured
// rejection contract of SamplingService::submit/try_submit: token
// bucket math, per-client fairness, the shots-in-flight cap,
// priority-aware shedding order, draining rejections, and the `health`
// snapshot. Everything here is deterministic — bucket time is a fixed
// SchedulerClock::time_point, never the wall clock.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "service/admission.hpp"
#include "service/errors.hpp"
#include "service/service.hpp"

namespace symphase {
namespace {

constexpr const char* kCircuit = "X 0\nM 0 1\n";

SchedulerClock::time_point at_ms(std::uint64_t ms) {
  return SchedulerClock::time_point{} + std::chrono::milliseconds(ms);
}

TEST(TokenBucket, StartsFullAndRefillsAtRate) {
  TokenBucket bucket(100.0, 50.0, at_ms(0));  // 100 shots/s, burst 50
  EXPECT_DOUBLE_EQ(bucket.tokens(at_ms(0)), 50.0);

  EXPECT_TRUE(bucket.try_take(50.0, at_ms(0)));
  EXPECT_DOUBLE_EQ(bucket.tokens(at_ms(0)), 0.0);
  EXPECT_FALSE(bucket.try_take(10.0, at_ms(0)));

  // 100/s refill: 10 tokens after 100ms, and never beyond capacity.
  EXPECT_TRUE(bucket.try_take(10.0, at_ms(100)));
  EXPECT_DOUBLE_EQ(bucket.tokens(at_ms(10'000'000)), 50.0);
}

TEST(TokenBucket, RetryAfterPredictsAffordability) {
  TokenBucket bucket(100.0, 50.0, at_ms(0));
  ASSERT_TRUE(bucket.try_take(50.0, at_ms(0)));

  EXPECT_EQ(bucket.retry_after_ms(50.0, at_ms(0)), 500u);  // full refill
  EXPECT_EQ(bucket.retry_after_ms(10.0, at_ms(0)), 100u);
  EXPECT_EQ(bucket.retry_after_ms(10.0, at_ms(100)), 0u);
  // The hint is honest: waiting exactly that long makes the take pass.
  EXPECT_TRUE(bucket.try_take(10.0, at_ms(100)));
}

TEST(TokenBucket, CostAboveCapacityIsClampedNotUnpayable) {
  TokenBucket bucket(10.0, 20.0, at_ms(0));
  // A 1M-shot request against a burst of 20 charges the whole bucket —
  // otherwise it could never be admitted at any time.
  EXPECT_TRUE(bucket.try_take(1'000'000.0, at_ms(0)));
  EXPECT_DOUBLE_EQ(bucket.tokens(at_ms(0)), 0.0);
  EXPECT_EQ(bucket.retry_after_ms(1'000'000.0, at_ms(0)), 2000u);
}

TEST(AdmissionController, RateLimitsPerClientIndependently) {
  AdmissionOptions options;
  options.client_shots_per_second = 100;
  options.client_burst_shots = 100;
  AdmissionController admission(options);

  const auto admit = [&](std::uint64_t client, std::uint64_t shots,
                         std::uint64_t ms) {
    return admission.admit(client, shots, RequestPriority::kNormal,
                           /*queue_depth=*/0, /*queue_capacity=*/64,
                           /*enforce_queue_limits=*/true, at_ms(ms));
  };

  EXPECT_TRUE(admit(1, 100, 0).admitted);
  const AdmissionDecision rejected = admit(1, 100, 0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.error.code, ErrorCode::kRateLimited);
  EXPECT_TRUE(rejected.error.retryable);
  EXPECT_EQ(rejected.error.retry_after_ms, 1000u);

  // Client 2 has its own bucket; client 1 recovers after the hint.
  EXPECT_TRUE(admit(2, 100, 0).admitted);
  EXPECT_TRUE(admit(1, 100, 1000).admitted);
}

TEST(AdmissionController, RejectedRequestsAreNotCharged) {
  AdmissionOptions options;
  options.client_shots_per_second = 100;
  options.client_burst_shots = 100;
  options.max_shots_in_flight = 10;  // gate 2 rejects before the bucket
  AdmissionController admission(options);

  ASSERT_TRUE(admission
                  .admit(1, 10, RequestPriority::kNormal, 0, 64, true,
                         at_ms(0))
                  .admitted);
  // In-flight is saturated: this rejection must not burn client 1's
  // bucket (double-charging would turn one overload into a rate-limit
  // lockout).
  const AdmissionDecision full =
      admission.admit(1, 50, RequestPriority::kNormal, 0, 64, true, at_ms(0));
  ASSERT_FALSE(full.admitted);
  EXPECT_EQ(full.error.code, ErrorCode::kQueueFull);

  admission.release(10);
  EXPECT_TRUE(admission
                  .admit(1, 90, RequestPriority::kNormal, 0, 64, true,
                         at_ms(0))
                  .admitted);
}

TEST(AdmissionController, ShotsInFlightCapAndOversizedException) {
  AdmissionOptions options;
  options.max_shots_in_flight = 1000;
  AdmissionController admission(options);

  const auto admit = [&](std::uint64_t shots) {
    return admission.admit(7, shots, RequestPriority::kNormal, 0, 64, true,
                           at_ms(0));
  };

  // A request larger than the cap is admitted only on an idle server.
  EXPECT_TRUE(admit(5000).admitted);
  EXPECT_FALSE(admit(5000).admitted);
  EXPECT_FALSE(admit(1).admitted);
  admission.release(5000);
  EXPECT_EQ(admission.shots_in_flight(), 0u);

  EXPECT_TRUE(admit(600).admitted);
  EXPECT_FALSE(admit(600).admitted);  // 1200 > 1000
  EXPECT_TRUE(admit(400).admitted);
  EXPECT_FALSE(admit(5000).admitted);  // oversized needs idle
}

TEST(AdmissionController, ShotCapRejectionHintScalesWithShotsNotQueueDepth) {
  // PR 8 regression: a single 2M-shot job saturates the shot cap while
  // the queue sits empty. The old depth-based hint told clients "retry
  // in 10 ms" — pure hammering. The hint must scale with how
  // oversubscribed the shot budget is instead.
  AdmissionOptions options;
  options.max_shots_in_flight = 1000;
  AdmissionController admission(options);

  ASSERT_TRUE(admission
                  .admit(7, 900, RequestPriority::kNormal, 0, 64, true,
                         at_ms(0))
                  .admitted);
  // Queue depth 0, but 900 + 200 shots against a 1000 cap: the hint is
  // 10 + 1100*100/1000 = 120 ms, not the 10 ms an empty queue implies.
  const AdmissionDecision shed =
      admission.admit(7, 200, RequestPriority::kNormal, 0, 64, true,
                      at_ms(0));
  ASSERT_FALSE(shed.admitted);
  EXPECT_EQ(shed.error.code, ErrorCode::kQueueFull);
  EXPECT_EQ(shed.error.retry_after_ms, 120u);

  // A much larger stuck job pushes the hint further out.
  admission.release(900);
  ASSERT_TRUE(admission
                  .admit(7, 5000, RequestPriority::kNormal, 0, 64, true,
                         at_ms(0))
                  .admitted);  // oversized, idle server
  const AdmissionDecision stuck =
      admission.admit(7, 100, RequestPriority::kNormal, 0, 64, true,
                      at_ms(0));
  ASSERT_FALSE(stuck.admitted);
  EXPECT_EQ(stuck.error.retry_after_ms, 10u + (5100u * 100u) / 1000u);
}

TEST(AdmissionController, ShedsByPriorityClassUnderQueuePressure) {
  AdmissionController admission({});  // default thresholds 0.50 / 0.75

  const auto admit = [&](RequestPriority priority, std::size_t depth) {
    return admission.admit(1, 64, priority, depth, /*queue_capacity=*/100,
                           /*enforce_queue_limits=*/true, at_ms(0));
  };

  // Low sheds first, normal later, high only when genuinely full.
  EXPECT_TRUE(admit(RequestPriority::kLow, 49).admitted);
  EXPECT_FALSE(admit(RequestPriority::kLow, 50).admitted);
  EXPECT_TRUE(admit(RequestPriority::kNormal, 74).admitted);
  EXPECT_FALSE(admit(RequestPriority::kNormal, 75).admitted);
  EXPECT_TRUE(admit(RequestPriority::kHigh, 99).admitted);
  const AdmissionDecision full = admit(RequestPriority::kHigh, 100);
  EXPECT_FALSE(full.admitted);
  EXPECT_EQ(full.error.code, ErrorCode::kQueueFull);
  EXPECT_TRUE(full.error.retryable);
  EXPECT_GT(full.error.retry_after_ms, 0u);

  // Blocking submitters skip gate 3 entirely — they wait instead.
  EXPECT_TRUE(admission
                  .admit(1, 64, RequestPriority::kLow, 100, 100,
                         /*enforce_queue_limits=*/false, at_ms(0))
                  .admitted);
}

TEST(AdmissionController, DepthLimitsFloorAtOne) {
  AdmissionController admission({});
  // A capacity-1 queue must still accept one request of every class —
  // this floor is what keeps the legacy "reject only when full"
  // behavior for small queues (pinned again by scheduler_test's
  // TrySubmitRejectsOnlyWhenFull).
  EXPECT_EQ(admission.depth_limit(RequestPriority::kLow, 1), 1u);
  EXPECT_EQ(admission.depth_limit(RequestPriority::kNormal, 1), 1u);
  EXPECT_EQ(admission.depth_limit(RequestPriority::kHigh, 1), 1u);
  EXPECT_EQ(admission.depth_limit(RequestPriority::kLow, 100), 50u);
  EXPECT_EQ(admission.depth_limit(RequestPriority::kNormal, 100), 75u);
  EXPECT_EQ(admission.depth_limit(RequestPriority::kHigh, 100), 100u);
}

TEST(ServiceAdmission, TrySubmitRejectsRateLimitedWithStructuredError) {
  ServiceOptions options;
  options.num_workers = 1;
  options.admission.client_shots_per_second = 100;
  options.admission.client_burst_shots = 100;
  SamplingService service(options);

  const FrameFn devnull = [](const FrameHeader&, std::string_view) {};
  ServiceError rejection;
  EXPECT_NE(service.try_submit(1, SampleRequest::sample(kCircuit, 100),
                               devnull, /*client_id=*/42, &rejection),
            0u);
  EXPECT_EQ(service.try_submit(2, SampleRequest::sample(kCircuit, 100),
                               devnull, /*client_id=*/42, &rejection),
            0u);
  EXPECT_EQ(rejection.code, ErrorCode::kRateLimited);
  EXPECT_TRUE(rejection.retryable);
  EXPECT_GT(rejection.retry_after_ms, 0u);

  // A different client id is not affected by 42's exhausted bucket.
  EXPECT_NE(service.try_submit(3, SampleRequest::sample(kCircuit, 100),
                               devnull, /*client_id=*/43, &rejection),
            0u);
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_rate_limited, 1u) << stats.to_line();
  EXPECT_EQ(stats.completed, 2u) << stats.to_line();
}

TEST(ServiceAdmission, DrainingRejectsNewWorkButFinishesAccepted) {
  SamplingService service({.num_workers = 1});
  std::string payload;
  std::mutex payload_mutex;
  const std::uint64_t ticket = service.submit(
      1, SampleRequest::sample(kCircuit, 500),
      [&](const FrameHeader& header, std::string_view bytes) {
        const std::lock_guard<std::mutex> lock(payload_mutex);
        if ((header.flags & kFrameLast) == 0) {
          payload += std::string(bytes);
        }
      });
  ASSERT_NE(ticket, 0u);

  service.begin_drain();
  EXPECT_TRUE(service.draining());

  ServiceError rejection;
  EXPECT_EQ(service.try_submit(2, SampleRequest::sample(kCircuit, 10),
                               [](const FrameHeader&, std::string_view) {},
                               0, &rejection),
            0u);
  EXPECT_EQ(rejection.code, ErrorCode::kDraining);
  EXPECT_TRUE(rejection.retryable);
  // Blocking submit must not hang on a draining service either.
  EXPECT_EQ(service.submit(3, SampleRequest::sample(kCircuit, 10),
                           [](const FrameHeader&, std::string_view) {}, 0,
                           &rejection),
            0u);
  EXPECT_EQ(rejection.code, ErrorCode::kDraining);

  service.drain();
  {
    const std::lock_guard<std::mutex> lock(payload_mutex);
    EXPECT_EQ(payload.size(), 500u * 3u);  // "01\n" per shot, 2 measurements
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u) << stats.to_line();
  EXPECT_EQ(stats.rejected_draining, 2u) << stats.to_line();
}

TEST(ServiceAdmission, HealthLineReflectsDrainState) {
  SamplingService service({.num_workers = 1});
  const ServiceHealth before = service.health();
  EXPECT_TRUE(before.accepting);
  const std::string accepting_line = before.to_line();
  EXPECT_NE(accepting_line.find("state=accepting"), std::string::npos)
      << accepting_line;
  for (const char* key : {"queue_depth=", "queue_capacity=", "active_jobs=",
                          "shots_in_flight=", "max_shots_in_flight="}) {
    EXPECT_NE(accepting_line.find(key), std::string::npos) << accepting_line;
  }

  service.begin_drain();
  const ServiceHealth after = service.health();
  EXPECT_FALSE(after.accepting);
  EXPECT_NE(after.to_line().find("state=draining"), std::string::npos)
      << after.to_line();
}

TEST(ServiceAdmission, BlockingSubmitWaitsForShotCapacityInsteadOfShedding) {
  ServiceOptions options;
  options.num_workers = 1;
  options.admission.max_shots_in_flight = 1000;
  SamplingService service(options);

  // Park the worker inside request 1 so its 800 shots stay in flight.
  std::mutex mutex;
  std::condition_variable cv;
  bool blocked = false;
  bool released = false;
  auto first = std::make_shared<std::atomic<bool>>(true);
  service.submit(1, SampleRequest::sample(kCircuit, 800),
                 [&, first](const FrameHeader&, std::string_view) {
                   if (first->exchange(false)) {
                     std::unique_lock<std::mutex> lock(mutex);
                     blocked = true;
                     cv.notify_all();
                     cv.wait(lock, [&] { return released; });
                   }
                 });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return blocked; });
  }

  ServiceError rejection;
  EXPECT_EQ(service.try_submit(2, SampleRequest::sample(kCircuit, 800),
                               [](const FrameHeader&, std::string_view) {}, 0,
                               &rejection),
            0u);
  EXPECT_EQ(rejection.code, ErrorCode::kQueueFull);
  EXPECT_TRUE(rejection.retryable);
  EXPECT_EQ(service.stats().shots_in_flight, 800u);

  // The blocking path parks until release() frees the shots.
  auto submitted = std::async(std::launch::async, [&] {
    return service.submit(3, SampleRequest::sample(kCircuit, 800),
                          [](const FrameHeader&, std::string_view) {});
  });
  EXPECT_EQ(submitted.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    released = true;
  }
  cv.notify_all();
  EXPECT_NE(submitted.get(), 0u);
  service.drain();
  EXPECT_EQ(service.stats().completed, 2u);
  EXPECT_EQ(service.stats().shots_in_flight, 0u);
}

TEST(ServiceAdmission, StatsLineCarriesAdmissionCounters) {
  SamplingService service({.num_workers = 1});
  const std::string line = service.stats().to_line();
  for (const char* key :
       {"rejected_queue_full=", "rejected_rate_limited=",
        "rejected_draining=", "shots_in_flight="}) {
    EXPECT_NE(line.find(key), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace symphase
