// Unit tests for the request-lifecycle trace ring (common/trace.hpp):
// enable gating, ring wraparound accounting, untorn records under
// concurrent writers (run under TSan in CI), and the Chrome
// trace-event JSON rendering parsed back through the repo's own JSON
// parser.

#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "http/json.hpp"

namespace symphase {
namespace {

/// Every trace test owns the global recorder: enable, run, then
/// restore the disabled default and discard leftovers so suites
/// compose in one process.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::discard_all_for_testing();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::discard_all_for_testing();
    trace::set_ring_capacity(4096);
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  const std::uint64_t before = trace::recorded_events();
  trace::span("noop", 10, 20, 1);
  trace::instant("noop", 1);
  { trace::Span scoped("noop", 1); }
  EXPECT_EQ(trace::recorded_events(), before);
  const std::string json = trace::drain_json();
  const JsonValue doc = parse_json(json);
  EXPECT_TRUE(doc.find("traceEvents")->as_array().empty());
}

TEST_F(TraceTest, SpanAndInstantRoundTripThroughJson) {
  trace::set_enabled(true);
  trace::span("fill", 1000, 251000, /*id=*/7, /*ticket=*/9, /*group=*/9,
              /*aux=*/3);
  trace::instant("accept", /*id=*/7, /*ticket=*/9);
  trace::set_enabled(false);

  const JsonValue doc = parse_json(trace::drain_json());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->find("clock")->as_string(), "steady_ns");
  const JsonArray& events = doc.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 2u);

  // Every event carries the Chrome-required keys.
  for (const JsonValue& event : events) {
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("ph"), nullptr);
    ASSERT_NE(event.find("ts"), nullptr);
    ASSERT_NE(event.find("tid"), nullptr);
    EXPECT_EQ(event.find("pid")->as_u64(), 1u);
  }

  // Sorted by start time: the span (ts=1µs) precedes the instant
  // (stamped at now_ns(), far later on any real clock).
  const JsonValue& span = events[0];
  EXPECT_EQ(span.find("name")->as_string(), "fill");
  EXPECT_EQ(span.find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(span.find("ts")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(span.find("dur")->as_number(), 250.0);
  const JsonValue* args = span.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("id")->as_u64(), 7u);
  EXPECT_EQ(args->find("ticket")->as_u64(), 9u);
  EXPECT_EQ(args->find("group")->as_u64(), 9u);
  EXPECT_EQ(args->find("aux")->as_u64(), 3u);

  const JsonValue& instant = events[1];
  EXPECT_EQ(instant.find("name")->as_string(), "accept");
  EXPECT_EQ(instant.find("ph")->as_string(), "i");
  EXPECT_EQ(instant.find("s")->as_string(), "t");
  EXPECT_EQ(instant.find("args")->find("id")->as_u64(), 7u);
}

TEST_F(TraceTest, DrainConsumes) {
  trace::set_enabled(true);
  trace::instant("first");
  const JsonValue once = parse_json(trace::drain_json());
  EXPECT_EQ(once.find("traceEvents")->as_array().size(), 1u);
  const JsonValue again = parse_json(trace::drain_json());
  EXPECT_TRUE(again.find("traceEvents")->as_array().empty());
  trace::instant("second");
  const JsonValue fresh = parse_json(trace::drain_json());
  const JsonArray& events = fresh.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("name")->as_string(), "second");
}

TEST_F(TraceTest, WraparoundDropsOldestAndCountsThem) {
  trace::set_ring_capacity(16);
  const std::uint64_t dropped_before = trace::dropped_events();
  trace::set_enabled(true);
  // A fresh thread gets a fresh (16-slot) ring; overflow it 4x.
  std::thread writer([] {
    for (std::uint64_t i = 0; i < 64; ++i) {
      trace::span("evt", i * 10, i * 10 + 5, /*id=*/i);
    }
  });
  writer.join();
  trace::set_enabled(false);

  const std::uint64_t dropped = trace::dropped_events() - dropped_before;
  EXPECT_EQ(dropped, 48u);

  const JsonValue doc = parse_json(trace::drain_json());
  EXPECT_GE(doc.find("otherData")->find("dropped_events")->as_u64(), 48u);
  const JsonArray& events = doc.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 16u);
  // The survivors are the newest 16, each untorn: id i pairs with
  // ts == i*10 ns == i/100 µs and dur == 5 ns.
  for (const JsonValue& event : events) {
    const std::uint64_t id = event.find("args")->find("id")->as_u64();
    EXPECT_GE(id, 48u);
    EXPECT_LT(id, 64u);
    EXPECT_DOUBLE_EQ(event.find("ts")->as_number(),
                     static_cast<double>(id * 10) / 1000.0);
    EXPECT_DOUBLE_EQ(event.find("dur")->as_number(), 0.005);
  }
}

TEST_F(TraceTest, ConcurrentWritersAndDrainerStayConsistent) {
  trace::set_ring_capacity(64);  // Small enough to force wraparound races.
  const std::uint64_t recorded_before = trace::recorded_events();
  const std::uint64_t dropped_before = trace::dropped_events();
  trace::set_enabled(true);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        // Encode (writer, i) into the fields a torn read would mix up.
        const std::uint64_t id = (static_cast<std::uint64_t>(w) << 32) | i;
        trace::span("race", i * 100, i * 100 + 7, id, /*ticket=*/id,
                    /*group=*/id, /*aux=*/static_cast<std::uint64_t>(w));
      }
    });
  }
  std::vector<std::string> drains;
  std::thread drainer([&stop, &drains] {
    while (!stop.load(std::memory_order_acquire)) {
      drains.push_back(trace::drain_json());
    }
  });
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  drainer.join();
  trace::set_enabled(false);
  drains.push_back(trace::drain_json());

  std::uint64_t seen = 0;
  std::set<std::uint64_t> ids;
  for (const std::string& json : drains) {
    const JsonValue doc = parse_json(json);
    for (const JsonValue& event : doc.find("traceEvents")->as_array()) {
      ++seen;
      const JsonValue* args = event.find("args");
      const std::uint64_t id = args->find("id")->as_u64();
      // Untorn: every field derives from the same (writer, i) pair.
      EXPECT_EQ(args->find("ticket")->as_u64(), id);
      EXPECT_EQ(args->find("group")->as_u64(), id);
      EXPECT_EQ(args->find("aux")->as_u64(), id >> 32);
      const std::uint64_t i = id & 0xffffffffu;
      EXPECT_DOUBLE_EQ(event.find("ts")->as_number(),
                       static_cast<double>(i * 100) / 1000.0);
      EXPECT_TRUE(ids.insert(id).second) << "event drained twice: " << id;
    }
  }
  // Conservation: every recorded event was either drained or counted
  // dropped. The drop counter may overcount under a racing drain (a
  // writer can count an already-drained slot), never undercount, so
  // the bound is one-sided.
  const std::uint64_t recorded = trace::recorded_events() - recorded_before;
  const std::uint64_t dropped = trace::dropped_events() - dropped_before;
  EXPECT_EQ(recorded, kWriters * kPerWriter);
  EXPECT_GE(seen + dropped, recorded);
  EXPECT_LE(seen, recorded);
}

TEST_F(TraceTest, ScopedSpanRecordsOnDestruction) {
  trace::set_enabled(true);
  { trace::Span scoped("scoped", /*id=*/42); }
  trace::set_enabled(false);
  const JsonValue doc = parse_json(trace::drain_json());
  const JsonArray& events = doc.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("name")->as_string(), "scoped");
  EXPECT_EQ(events[0].find("args")->find("id")->as_u64(), 42u);
}

}  // namespace
}  // namespace symphase
