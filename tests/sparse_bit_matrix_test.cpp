#include "bitvec/sparse_bit_matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace symphase {
namespace {

TEST(SparseBitMatrix, EmptyRows) {
  SparseBitMatrix m(3, 10);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 10u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_TRUE(m.row(0).empty());
}

TEST(SparseBitMatrix, SetRowAndDenseRoundTrip) {
  SparseBitMatrix m(2, 100);
  m.set_row(0, {1, 64, 99});
  m.set_row(1, {0});
  EXPECT_EQ(m.nnz(), 4u);
  const BitMatrix dense = m.to_dense();
  EXPECT_TRUE(dense.get(0, 1));
  EXPECT_TRUE(dense.get(0, 64));
  EXPECT_TRUE(dense.get(0, 99));
  EXPECT_TRUE(dense.get(1, 0));
  EXPECT_EQ(dense.count_ones(), 4u);
  const SparseBitMatrix back = SparseBitMatrix::from_dense(dense);
  EXPECT_EQ(back.row(0), m.row(0));
  EXPECT_EQ(back.row(1), m.row(1));
}

TEST(SparseBitMatrix, AppendRow) {
  SparseBitMatrix m(0, 5);
  m.append_row({2, 4});
  m.append_row({});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(SparseBitMatrix, MultiplyMatchesDense) {
  Rng rng(17);
  const BitMatrix dense_m = BitMatrix::random(23, 57, rng);
  const BitMatrix b = BitMatrix::random(57, 130, rng);
  const SparseBitMatrix sparse = SparseBitMatrix::from_dense(dense_m);
  EXPECT_EQ(sparse.multiply(b), dense_m.multiply(b));
}

TEST(SparseBitMatrix, MultiplyIntoAccumulates) {
  SparseBitMatrix m(1, 2);
  m.set_row(0, {0});
  BitMatrix b(2, 64);
  b.set(0, 3, true);
  BitMatrix out(1, 64);
  m.multiply_into(b, out);
  EXPECT_TRUE(out.get(0, 3));
  m.multiply_into(b, out);  // XOR semantics: applying twice cancels
  EXPECT_FALSE(out.get(0, 3));
}

TEST(SparseBitMatrix, MultiplyShapeMismatchThrows) {
  SparseBitMatrix m(1, 3);
  BitMatrix b(4, 4);
  EXPECT_THROW(m.multiply(b), std::invalid_argument);
}

class SparseMultiplyParam : public ::testing::TestWithParam<double> {};

TEST_P(SparseMultiplyParam, AgreesWithDenseAcrossDensities) {
  const double density = GetParam();
  Rng rng(static_cast<std::uint64_t>(density * 1000));
  BitMatrix dense_m(40, 200);
  for (std::size_t r = 0; r < dense_m.rows(); ++r) {
    for (std::size_t c = 0; c < dense_m.cols(); ++c) {
      if (rng.next_bernoulli(density)) {
        dense_m.set(r, c, true);
      }
    }
  }
  const BitMatrix b = BitMatrix::random(200, 99, rng);
  const SparseBitMatrix sparse = SparseBitMatrix::from_dense(dense_m);
  EXPECT_EQ(sparse.multiply(b), dense_m.multiply(b));
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseMultiplyParam,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace symphase
