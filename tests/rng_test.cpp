#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bits.hpp"

namespace symphase {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(10);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    // 5 sigma for a binomial bucket.
    EXPECT_NEAR(counts[bucket], expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  Rng parent1(5);
  Rng parent2(5);
  Rng child1 = parent1.fork(1);
  Rng child2 = parent2.fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1(), child2());
  }
  Rng other = parent1.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += child1() == other();
  }
  EXPECT_LT(same, 2);
}

TEST(FillRandomWords, BalancedBits) {
  Rng rng(12);
  std::vector<std::uint64_t> words(2000);
  fill_random_words(rng, words.data(), words.size());
  std::size_t ones = 0;
  for (const auto w : words) {
    ones += static_cast<std::size_t>(popcount(w));
  }
  const double total = static_cast<double>(words.size() * 64);
  EXPECT_NEAR(static_cast<double>(ones), total / 2, 5 * std::sqrt(total / 4));
}

class BiasedFillParam : public ::testing::TestWithParam<double> {};

TEST_P(BiasedFillParam, HitsTargetRate) {
  const double p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 1e6) + 1);
  std::vector<std::uint64_t> words(4000);
  fill_biased_words(rng, words.data(), words.size(), p);
  std::size_t ones = 0;
  for (const auto w : words) {
    ones += static_cast<std::size_t>(popcount(w));
  }
  const double total = static_cast<double>(words.size() * 64);
  const double sigma = std::sqrt(total * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(ones), total * p,
              5 * sigma + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, BiasedFillParam,
                         ::testing::Values(0.001, 0.01, 0.1, 0.3, 0.5, 0.7,
                                           0.95));

TEST(BiasedFill, ExtremesAreExact) {
  Rng rng(1);
  std::vector<std::uint64_t> words(10, 0xDEADBEEFull);
  fill_biased_words(rng, words.data(), words.size(), 0.0);
  for (const auto w : words) {
    EXPECT_EQ(w, 0u);
  }
  fill_biased_words(rng, words.data(), words.size(), 1.0);
  for (const auto w : words) {
    EXPECT_EQ(w, ~std::uint64_t{0});
  }
}

TEST(BiasedFill, Deterministic) {
  Rng a(77);
  Rng b(77);
  std::vector<std::uint64_t> wa(100);
  std::vector<std::uint64_t> wb(100);
  fill_biased_words(a, wa.data(), wa.size(), 0.05);
  fill_biased_words(b, wb.data(), wb.size(), 0.05);
  EXPECT_EQ(wa, wb);
}

TEST(Splitmix, KnownNonZeroAndMixing) {
  std::uint64_t s = 0;
  const std::uint64_t v1 = splitmix64(s);
  const std::uint64_t v2 = splitmix64(s);
  EXPECT_NE(v1, 0u);
  EXPECT_NE(v1, v2);
}

}  // namespace
}  // namespace symphase
