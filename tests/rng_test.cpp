#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bits.hpp"
#include "common/noise.hpp"

namespace symphase {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(10);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    // 5 sigma for a binomial bucket.
    EXPECT_NEAR(counts[bucket], expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  Rng parent1(5);
  Rng parent2(5);
  Rng child1 = parent1.fork(1);
  Rng child2 = parent2.fork(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1(), child2());
  }
  Rng other = parent1.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += child1() == other();
  }
  EXPECT_LT(same, 2);
}

TEST(FillRandomWords, BalancedBits) {
  Rng rng(12);
  std::vector<std::uint64_t> words(2000);
  fill_random_words(rng, words.data(), words.size());
  std::size_t ones = 0;
  for (const auto w : words) {
    ones += static_cast<std::size_t>(popcount(w));
  }
  const double total = static_cast<double>(words.size() * 64);
  EXPECT_NEAR(static_cast<double>(ones), total / 2, 5 * std::sqrt(total / 4));
}

class BiasedFillParam : public ::testing::TestWithParam<double> {};

TEST_P(BiasedFillParam, HitsTargetRate) {
  const double p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 1e6) + 1);
  std::vector<std::uint64_t> words(4000);
  fill_biased_words(rng, words.data(), words.size(), p);
  std::size_t ones = 0;
  for (const auto w : words) {
    ones += static_cast<std::size_t>(popcount(w));
  }
  const double total = static_cast<double>(words.size() * 64);
  const double sigma = std::sqrt(total * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(ones), total * p,
              5 * sigma + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, BiasedFillParam,
                         ::testing::Values(0.001, 0.01, 0.1, 0.3, 0.5, 0.7,
                                           0.95));

TEST(BiasedFill, ExtremesAreExact) {
  Rng rng(1);
  std::vector<std::uint64_t> words(10, 0xDEADBEEFull);
  fill_biased_words(rng, words.data(), words.size(), 0.0);
  for (const auto w : words) {
    EXPECT_EQ(w, 0u);
  }
  fill_biased_words(rng, words.data(), words.size(), 1.0);
  for (const auto w : words) {
    EXPECT_EQ(w, ~std::uint64_t{0});
  }
}

TEST(BiasedFill, Deterministic) {
  Rng a(77);
  Rng b(77);
  std::vector<std::uint64_t> wa(100);
  std::vector<std::uint64_t> wb(100);
  fill_biased_words(a, wa.data(), wa.size(), 0.05);
  fill_biased_words(b, wb.data(), wb.size(), 0.05);
  EXPECT_EQ(wa, wb);
}

TEST(BiasedBitPlan, StrategySelectionAndCrossovers) {
  EXPECT_EQ(BiasedBitPlan(0.0).strategy(), BiasStrategy::kZero);
  EXPECT_EQ(BiasedBitPlan(-1.0).strategy(), BiasStrategy::kZero);
  EXPECT_EQ(BiasedBitPlan(1.0).strategy(), BiasStrategy::kOne);
  EXPECT_EQ(BiasedBitPlan(2.0).strategy(), BiasStrategy::kOne);
  EXPECT_EQ(BiasedBitPlan(0.5).strategy(), BiasStrategy::kCoin);
  const double c = BiasedBitPlan::kSparseCrossover;
  EXPECT_EQ(BiasedBitPlan(c / 2).strategy(), BiasStrategy::kGeometric);
  EXPECT_EQ(BiasedBitPlan(std::nextafter(c, 0.0)).strategy(),
            BiasStrategy::kGeometric);
  EXPECT_EQ(BiasedBitPlan(c).strategy(), BiasStrategy::kRefine);
  EXPECT_EQ(BiasedBitPlan(0.3).strategy(), BiasStrategy::kRefine);
  EXPECT_EQ(BiasedBitPlan(1.0 - c).strategy(), BiasStrategy::kRefine);
  EXPECT_EQ(BiasedBitPlan(std::nextafter(1.0 - c, 1.0)).strategy(),
            BiasStrategy::kGeometricInverted);
  EXPECT_EQ(BiasedBitPlan(0.999).strategy(),
            BiasStrategy::kGeometricInverted);
}

/// Chi-square of the per-word popcount histogram against Binomial(64, p).
/// Catches rate errors, within-word correlation, and clumping that a
/// plain mean test misses.
double popcount_chi_square(double p, std::uint64_t seed, std::size_t words,
                           double* out_mean) {
  BiasedBitPlan plan(p);
  Rng rng(seed);
  std::vector<std::uint64_t> buf(words);
  plan.fill(rng, buf.data(), words);
  std::vector<std::size_t> counts(65, 0);
  std::size_t ones = 0;
  for (const auto w : buf) {
    const auto c = static_cast<std::size_t>(popcount(w));
    ++counts[c];
    ones += c;
  }
  *out_mean = static_cast<double>(ones) /
              (static_cast<double>(words) * kWordBits);
  // log Binomial(64, p) pmf via lgamma.
  const double logp = std::log(p);
  const double logq = std::log1p(-p);
  std::vector<double> expected(65);
  for (int k = 0; k <= 64; ++k) {
    const double log_pmf = std::lgamma(65.0) - std::lgamma(k + 1.0) -
                           std::lgamma(65.0 - k) + k * logp +
                           (64.0 - k) * logq;
    expected[k] = static_cast<double>(words) * std::exp(log_pmf);
  }
  // Merge cells with small expectation into running tails.
  double chi = 0.0;
  double acc_obs = 0.0;
  double acc_exp = 0.0;
  for (int k = 0; k <= 64; ++k) {
    acc_obs += static_cast<double>(counts[k]);
    acc_exp += expected[k];
    if (acc_exp >= 8.0) {
      const double d = acc_obs - acc_exp;
      chi += d * d / acc_exp;
      acc_obs = 0.0;
      acc_exp = 0.0;
    }
  }
  if (acc_exp > 0.0) {
    const double d = acc_obs - acc_exp;
    chi += d * d / acc_exp;
  }
  return chi;
}

class PlanDistributionParam : public ::testing::TestWithParam<double> {};

TEST_P(PlanDistributionParam, PopcountHistogramMatchesBinomial) {
  const double p = GetParam();
  constexpr std::size_t kWords = 60000;
  double mean = 0.0;
  const double chi = popcount_chi_square(
      p, static_cast<std::uint64_t>(p * 1e9) + 17, kWords, &mean);
  const double total = static_cast<double>(kWords) * kWordBits;
  const double sigma = std::sqrt(p * (1 - p) / total);
  EXPECT_NEAR(mean, p, 5 * sigma + 1e-7) << "p=" << p;
  // The merged histogram has at most ~65 cells; 160 is far beyond any
  // plausible 5-sigma band for that dof, while real clumping (e.g. a
  // broken skip distribution) blows past it immediately.
  EXPECT_LT(chi, 160.0) << "p=" << p;
}

// Covers every strategy and both sides of each crossover:
// geometric (1e-3, 0.02), the exact 1/32 boundary, refinement interior
// (0.1, 0.3, 0.73), coin (0.5), inverted geometric (0.98, 0.999).
INSTANTIATE_TEST_SUITE_P(Strategies, PlanDistributionParam,
                         ::testing::Values(1e-3, 0.02, 1.0 / 32.0, 0.1, 0.3,
                                           0.5, 0.73, 1.0 - 1.0 / 32.0, 0.98,
                                           0.999));

TEST(BiasedBitPlan, MatchesFillBiasedWords) {
  // The generic entry point must be the plan, bit for bit.
  for (const double p : {0.004, 0.2, 0.5, 0.97}) {
    Rng a(123);
    Rng b(123);
    std::vector<std::uint64_t> wa(300);
    std::vector<std::uint64_t> wb(300);
    BiasedBitPlan(p).fill(a, wa.data(), wa.size());
    fill_biased_words(b, wb.data(), wb.size(), p);
    EXPECT_EQ(wa, wb) << "p=" << p;
  }
}

TEST(BiasedBitPlan, DyadicProbabilitiesTerminateEarly) {
  // p = 0.25 has a two-digit expansion; the refinement must still hit
  // the exact rate (and not loop over 64 digits).
  constexpr std::size_t kWords = 40000;
  double mean = 0.0;
  const double chi = popcount_chi_square(0.25, 99, kWords, &mean);
  const double sigma =
      std::sqrt(0.25 * 0.75 / (static_cast<double>(kWords) * kWordBits));
  EXPECT_NEAR(mean, 0.25, 5 * sigma);
  EXPECT_LT(chi, 160.0);
}

/// Golden stream pins: these values were produced by this release's
/// engine and must be identical on every WideWord backend (the scalar
/// and native CI builds both run this), every platform (the geometric
/// path deliberately avoids libm), and every thread count. Regenerate
/// only on an intentional, documented RNG algorithm change.
TEST(BiasedBitPlan, GoldenStreamsStableAcrossBackends) {
  const struct {
    double p;
    std::uint64_t first;
    std::uint64_t last;
    std::size_t ones;
  } pins[] = {
      {0.01, 0x0ull, 0x2000000ull, 170u},
      // kRefine pin regenerated when fill_refine hoisted the 8-lane
      // seeding to once per 128-word block (the fused-RNG item from
      // PR 4's noise engine; see docs/performance.md "Stream
      // compatibility"). The geometric pins were unaffected.
      {0.3, 0x410038055c101805ull, 0x9d4401440000116ull, 4880u},
      {0.999, 0xffffffffffffffffull, 0xffffffffffffffffull, 16371u},
  };
  for (const auto& pin : pins) {
    Rng rng(2024);
    std::vector<std::uint64_t> buf(256);
    BiasedBitPlan(pin.p).fill(rng, buf.data(), buf.size());
    std::size_t ones = 0;
    for (const auto w : buf) {
      ones += static_cast<std::size_t>(popcount(w));
    }
    EXPECT_EQ(buf.front(), pin.first) << "p=" << pin.p;
    EXPECT_EQ(buf.back(), pin.last) << "p=" << pin.p;
    EXPECT_EQ(ones, pin.ones) << "p=" << pin.p;
  }
}

/// fill_pauli_patterns invariants for both the dense (word-parallel
/// rejection) and sparse (buffered index draw) paths: pattern bits land
/// only on event positions, every event gets a non-identity pattern, and
/// the 2^members - 1 patterns are uniform (chi-square).
void check_pattern_path(double p, unsigned members, bool expect_uniform) {
  constexpr std::size_t kWords = 8000;
  Rng rng(static_cast<std::uint64_t>(members) * 1000 +
          static_cast<std::uint64_t>(p * 1e6));
  std::vector<Word> events(kWords);
  BiasedBitPlan plan(p);
  plan.fill(rng, events.data(), kWords);
  std::vector<std::vector<Word>> mask_store(members,
                                            std::vector<Word>(kWords, 0));
  std::vector<Word*> masks(members);
  for (unsigned j = 0; j < members; ++j) {
    masks[j] = mask_store[j].data();
  }
  fill_pauli_patterns(rng, events.data(), kWords, members, masks.data(), p);

  const std::uint64_t pattern_count = (std::uint64_t{1} << members) - 1;
  std::vector<std::size_t> freq(pattern_count + 1, 0);
  for (std::size_t w = 0; w < kWords; ++w) {
    Word any_mask = 0;
    for (unsigned j = 0; j < members; ++j) {
      any_mask |= mask_store[j][w];
    }
    // Pattern bits only where events are.
    ASSERT_EQ(any_mask & ~events[w], 0u) << "word " << w;
    Word bits = events[w];
    while (bits != 0) {
      const auto k = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      std::uint64_t pattern = 0;
      for (unsigned j = 0; j < members; ++j) {
        pattern |= ((mask_store[j][w] >> k) & 1) << j;
      }
      // Non-identity on every event.
      ASSERT_NE(pattern, 0u) << "word " << w << " bit " << k;
      ++freq[pattern];
    }
  }
  if (!expect_uniform) {
    return;
  }
  std::size_t total = 0;
  for (std::uint64_t q = 1; q <= pattern_count; ++q) {
    total += freq[q];
  }
  ASSERT_GT(total, 1000u);
  const double expected =
      static_cast<double>(total) / static_cast<double>(pattern_count);
  double chi = 0.0;
  for (std::uint64_t q = 1; q <= pattern_count; ++q) {
    const double d = static_cast<double>(freq[q]) - expected;
    chi += d * d / expected;
  }
  // dof = pattern_count - 1 <= 14; 60 is far past the 0.9999 quantile.
  EXPECT_LT(chi, 60.0) << "p=" << p << " members=" << members;
}

TEST(PauliPatterns, DensePathUniformNonIdentity) {
  check_pattern_path(0.4, 2, true);
  check_pattern_path(0.4, 4, true);
}

TEST(PauliPatterns, SparsePathUniformNonIdentity) {
  check_pattern_path(0.008, 2, true);
  check_pattern_path(0.008, 4, true);
}

TEST(PauliPatterns, NullMasksConsumeIdenticalRandomness) {
  // Unused members must not change the other members' deposits.
  constexpr std::size_t kWords = 512;
  std::vector<Word> events(kWords);
  Rng ev_rng(5);
  BiasedBitPlan plan(0.2);
  plan.fill(ev_rng, events.data(), kWords);

  std::vector<Word> full[4];
  std::vector<Word> partial[4];
  for (auto& v : full) {
    v.assign(kWords, 0);
  }
  for (auto& v : partial) {
    v.assign(kWords, 0);
  }
  Word* full_masks[4] = {full[0].data(), full[1].data(), full[2].data(),
                         full[3].data()};
  Word* partial_masks[4] = {partial[0].data(), nullptr, partial[2].data(),
                            nullptr};
  Rng r1(77);
  Rng r2(77);
  fill_pauli_patterns(r1, events.data(), kWords, 4, full_masks, 0.2);
  fill_pauli_patterns(r2, events.data(), kWords, 4, partial_masks, 0.2);
  EXPECT_EQ(partial[0], full[0]);
  EXPECT_EQ(partial[2], full[2]);
  EXPECT_EQ(r1(), r2());  // identical generator consumption
}

TEST(Splitmix, KnownNonZeroAndMixing) {
  std::uint64_t s = 0;
  const std::uint64_t v1 = splitmix64(s);
  const std::uint64_t v2 = splitmix64(s);
  EXPECT_NE(v1, 0u);
  EXPECT_NE(v1, v2);
}

}  // namespace
}  // namespace symphase
