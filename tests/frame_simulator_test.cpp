#include "sampler/frame_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"

namespace symphase {
namespace {

double row_mean(const BitMatrix& m, std::size_t row, std::size_t cols) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(cols); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(cols);
}

TEST(CircuitWithoutNoise, StripsOnlyNoise) {
  const Circuit c = parse_circuit(
      "H 0\nX_ERROR(0.1) 0\nCNOT 0 1\nDEPOLARIZE2(0.1) 0 1\nM 0 1");
  const Circuit clean = circuit_without_noise(c);
  EXPECT_EQ(clean.instructions().size(), 3u);
  EXPECT_EQ(clean.stats().num_noise_sites, 0u);
  EXPECT_EQ(clean.num_measurements(), 2u);
  EXPECT_EQ(clean.num_qubits(), c.num_qubits());
}

TEST(FrameSimulator, DeterministicCircuitExactBits) {
  const Circuit c = parse_circuit("X 0\nM 0 1\nX 1\nM 1");
  FrameSimulator sim(c, 1);
  ASSERT_EQ(sim.num_measurements(), 3u);
  const BitMatrix samples = sim.sample(200, 2);
  EXPECT_DOUBLE_EQ(row_mean(samples, 0, 200), 1.0);  // X 0 -> 1
  EXPECT_DOUBLE_EQ(row_mean(samples, 1, 200), 0.0);
  EXPECT_DOUBLE_EQ(row_mean(samples, 2, 200), 1.0);
}

TEST(FrameSimulator, XErrorFlipsAtRate) {
  const Circuit c = parse_circuit("X_ERROR(0.25) 0\nM 0");
  FrameSimulator sim(c, 3);
  constexpr std::size_t kShots = 100000;
  const BitMatrix samples = sim.sample(kShots, 4);
  EXPECT_NEAR(row_mean(samples, 0, kShots), 0.25,
              5 * std::sqrt(0.25 * 0.75 / kShots));
}

TEST(FrameSimulator, BellPairPerfectCorrelation) {
  const Circuit c = parse_circuit("H 0\nCNOT 0 1\nM 0 1");
  FrameSimulator sim(c, 5);
  const BitMatrix samples = sim.sample(512, 6);
  // Within one frame batch the reference outcome is shared, so the rows
  // must be identical (both = reference ^ same frame evolution).
  for (std::size_t w = 0; w < samples.words_per_row(); ++w) {
    EXPECT_EQ(samples.row(0)[w], samples.row(1)[w]);
  }
}

TEST(FrameSimulator, ErrorBetweenBellHalvesDecorrelates) {
  const Circuit c =
      parse_circuit("H 0\nCNOT 0 1\nX_ERROR(0.5) 1\nM 0 1");
  FrameSimulator sim(c, 7);
  constexpr std::size_t kShots = 50000;
  const BitMatrix samples = sim.sample(kShots, 8);
  std::size_t disagree = 0;
  for (std::size_t j = 0; j < kShots; ++j) {
    disagree += samples.get(0, j) != samples.get(1, j);
  }
  EXPECT_NEAR(disagree, kShots * 0.5, 5 * std::sqrt(kShots * 0.25));
}

TEST(FrameSimulator, ResetKillsPriorErrors) {
  const Circuit c = parse_circuit("X_ERROR(0.9) 0\nR 0\nM 0");
  FrameSimulator sim(c, 9);
  const BitMatrix samples = sim.sample(1000, 10);
  EXPECT_DOUBLE_EQ(row_mean(samples, 0, 1000), 0.0);
}

TEST(FrameSimulator, MrRecordsThenResets) {
  const Circuit c = parse_circuit("X_ERROR(0.5) 0\nMR 0\nM 0");
  FrameSimulator sim(c, 11);
  constexpr std::size_t kShots = 20000;
  const BitMatrix samples = sim.sample(kShots, 12);
  EXPECT_NEAR(row_mean(samples, 0, kShots), 0.5, 0.02);
  EXPECT_DOUBLE_EQ(row_mean(samples, 1, kShots), 0.0);
}

TEST(FrameSimulator, ZFrameRandomizationPreventsGhostCorrelations) {
  // After M, a Z error before the measurement must not affect a later
  // X-basis measurement's statistics: H 0; Z_ERROR(1.0); M (Z basis
  // randomizes); H; M. The second measurement must be 50/50.
  const Circuit c = parse_circuit("H 0\nM 0\nH 0\nM 0");
  FrameSimulator sim(c, 13);
  constexpr std::size_t kShots = 60000;
  const BitMatrix samples = sim.sample(kShots, 14);
  EXPECT_NEAR(row_mean(samples, 1, kShots), 0.5,
              5 * std::sqrt(0.25 / kShots));
}

TEST(FrameSimulator, DeterministicInSeed) {
  Rng rng(15);
  const Circuit c = random_fuzz_circuit(8, 100, 0.1, rng);
  FrameSimulator sim(c, 16);
  EXPECT_EQ(sim.sample(777, 17), sim.sample(777, 17));
}

TEST(FrameSimulator, DepolarizeRates) {
  // DEPOLARIZE1(p) flips a Z measurement when the pattern has an X
  // component: probability 2p/3.
  const Circuit c = parse_circuit("DEPOLARIZE1(0.3) 0\nM 0");
  FrameSimulator sim(c, 18);
  constexpr std::size_t kShots = 100000;
  const BitMatrix samples = sim.sample(kShots, 19);
  EXPECT_NEAR(row_mean(samples, 0, kShots), 0.2,
              5 * std::sqrt(0.2 * 0.8 / kShots));
}

/// DEPOLARIZE2 must draw uniformly over the 15 non-identity two-qubit
/// Paulis. Two Bell pairs turn the error into four readable bits: for a
/// Bell pair prepared by H a; CNOT a b, decoding with CNOT a b; H a
/// makes both measurements deterministic, so the sampled outcome bits
/// are exactly the error's (Z_a, X_a) / (Z_b, X_b) components — every
/// pattern, including pure-Z ones that a plain Z-basis measurement
/// cannot see, lands in a distinct outcome cell.
void expect_depolarize2_uniform(double p, std::size_t shots,
                                std::uint64_t seed) {
  const Circuit c = parse_circuit(
      "H 0\nCNOT 0 2\nH 1\nCNOT 1 3\n"
      "DEPOLARIZE2(" +
      std::to_string(p) +
      ") 0 1\n"
      "CNOT 0 2\nH 0\nCNOT 1 3\nH 1\n"
      "M 0 2 1 3");
  FrameSimulator sim(c, seed);
  const BitMatrix samples = sim.sample(shots, seed + 1);
  ASSERT_EQ(samples.rows(), 4u);
  std::vector<std::size_t> freq(16, 0);
  for (std::size_t s = 0; s < shots; ++s) {
    unsigned pattern = 0;
    for (std::size_t r = 0; r < 4; ++r) {
      pattern |= static_cast<unsigned>(get_bit(samples.row(r), s)) << r;
    }
    ++freq[pattern];
  }
  // Identity: no event (1 - p). Each non-identity pattern: p / 15.
  const double n = static_cast<double>(shots);
  double chi = 0.0;
  for (unsigned q = 0; q < 16; ++q) {
    const double expected = q == 0 ? n * (1 - p) : n * p / 15.0;
    ASSERT_GT(expected, 20.0);
    const double d = static_cast<double>(freq[q]) - expected;
    chi += d * d / expected;
  }
  // 15 dof; 0.9999 quantile is ~44.3. Fixed seeds keep this stable.
  EXPECT_LT(chi, 50.0) << "p=" << p;
}

TEST(FrameSimulator, Depolarize2PatternsUniformDensePath) {
  // p * 64 >= 1: the engine's word-parallel rejection path.
  expect_depolarize2_uniform(0.9, 100000, 40);
}

TEST(FrameSimulator, Depolarize2PatternsUniformSparsePath) {
  // p * 64 < 1: the batched per-event index path.
  expect_depolarize2_uniform(0.008, 600000, 41);
}

TEST(FrameSimulator, TailColumnsMasked) {
  const Circuit c = parse_circuit("X 0\nM 0");
  FrameSimulator sim(c, 20);
  const BitMatrix samples = sim.sample(70, 21);
  // Bits beyond column 69 in the last word must be zero even though the
  // reference outcome is 1 (complement path).
  EXPECT_EQ(samples.row(0)[1] & ~tail_mask(70), 0u);
  EXPECT_DOUBLE_EQ(row_mean(samples, 0, 70), 1.0);
}

}  // namespace
}  // namespace symphase
