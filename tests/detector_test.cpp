// Tests for DETECTOR / OBSERVABLE_INCLUDE annotations: parsing,
// resolution, symbolic compilation, and sampling agreement with the
// frame baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "core/symphase.hpp"

namespace symphase {
namespace {

using Expr = std::vector<std::uint32_t>;

double row_mean(const BitMatrix& m, std::size_t row) {
  if (m.cols() == 0) {
    return 0.0;
  }
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(m.cols()); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(m.cols());
}

TEST(Detectors, ParseAndResolve) {
  const Circuit c = parse_circuit(
      "M 0 1\n"
      "DETECTOR rec[-1] rec[-2]\n"
      "M 0\n"
      "DETECTOR rec[-1]\n"
      "OBSERVABLE_INCLUDE(0) rec[-1] rec[-3]\n"
      "OBSERVABLE_INCLUDE(2) rec[-2]\n");
  EXPECT_EQ(c.num_detectors(), 2u);
  EXPECT_EQ(c.num_observables(), 3u);
  const DetectorLayout layout = resolve_detectors(c);
  ASSERT_EQ(layout.detectors.size(), 2u);
  EXPECT_EQ(layout.detectors[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(layout.detectors[1], (std::vector<std::size_t>{2}));
  ASSERT_EQ(layout.observables.size(), 3u);
  EXPECT_EQ(layout.observables[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(layout.observables[1].empty());
  EXPECT_EQ(layout.observables[2], (std::vector<std::size_t>{1}));
}

TEST(Detectors, TextRoundTrip) {
  const char* text =
      "M 0 1\n"
      "DETECTOR rec[-1] rec[-2]\n"
      "OBSERVABLE_INCLUDE(1) rec[-1]\n";
  const Circuit c = parse_circuit(text);
  EXPECT_EQ(c.to_text(), text);
  EXPECT_EQ(parse_circuit(c.to_text()), c);
}

TEST(Detectors, ValidationErrors) {
  EXPECT_THROW(parse_circuit("M 0\nDETECTOR 0"), std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0\nOBSERVABLE_INCLUDE(-1) rec[-1]"),
               std::invalid_argument);
  EXPECT_THROW(parse_circuit("M 0\nOBSERVABLE_INCLUDE(0.5) rec[-1]"),
               std::invalid_argument);
  // Lookback past the record fails at resolution time.
  const Circuit c = parse_circuit("M 0\nDETECTOR rec[-2]");
  EXPECT_THROW(resolve_detectors(c), std::invalid_argument);
}

TEST(Detectors, XorOfMeasurementExpressions) {
  // Repeated noisy measurement: detector = m1 ^ m2 picks up exactly the
  // fault between them.
  const Circuit c = parse_circuit(
      "X_ERROR(0.1) 0\n"
      "M 0\n"
      "X_ERROR(0.2) 0\n"
      "M 0\n"
      "DETECTOR rec[-1] rec[-2]\n"
      "OBSERVABLE_INCLUDE(0) rec[-1]\n");
  const CompiledSampler sampler = CompiledSampler::compile(c);
  ASSERT_EQ(sampler.num_detectors(), 1u);
  // m1 = s1, m2 = s1 ^ s2 -> detector = s2.
  EXPECT_EQ(sampler.detector_expressions()[0].symbols, Expr{2});
  EXPECT_NEAR(sampler.detector_probability(0), 0.2, 1e-12);
  // Observable = m2 = s1 ^ s2.
  EXPECT_EQ(sampler.observable_expressions()[0].symbols, (Expr{1, 2}));
  EXPECT_NEAR(sampler.observable_probability(0),
              0.1 * 0.8 + 0.9 * 0.2, 1e-12);
}

TEST(Detectors, CoinsCancelAcrossRounds) {
  // A random measurement repeated without disturbance: the detector
  // comparing the two outcomes is deterministic even though each
  // outcome alone is a coin.
  const Circuit c = parse_circuit(
      "H 0\n"
      "M 0\n"
      "M 0\n"
      "DETECTOR rec[-1] rec[-2]\n");
  const CompiledSampler sampler = CompiledSampler::compile(c);
  EXPECT_EQ(sampler.detector_expressions()[0].symbols, Expr{});
  EXPECT_DOUBLE_EQ(sampler.detector_probability(0), 0.0);
}

TEST(Detectors, NonDeterministicDetectorRejected) {
  const Circuit c = parse_circuit("H 0\nM 0\nDETECTOR rec[-1]\n");
  EXPECT_THROW(CompiledSampler::compile(c), std::invalid_argument);
}

TEST(Detectors, JointDetectorObservableSampling) {
  const Circuit c = parse_circuit(
      "X_ERROR(0.25) 0\n"
      "M 0\n"
      "DETECTOR rec[-1]\n"
      "OBSERVABLE_INCLUDE(0) rec[-1]\n");
  const CompiledSampler sampler = CompiledSampler::compile(c);
  constexpr std::size_t kShots = 50000;
  const auto events = sampler.sample_detection_events(kShots, 3);
  ASSERT_EQ(events.detectors.rows(), 1u);
  ASSERT_EQ(events.observables.rows(), 1u);
  // Same fault feeds both: rows must be bit-identical (joint sampling).
  for (std::size_t w = 0; w < events.detectors.words_per_row(); ++w) {
    ASSERT_EQ(events.detectors.row(0)[w], events.observables.row(0)[w]);
  }
  EXPECT_NEAR(row_mean(events.detectors, 0), 0.25,
              5 * std::sqrt(0.25 * 0.75 / kShots));
}

TEST(Detectors, FrameAndSymphaseDetectorDistributionsAgree) {
  RepetitionCodeOptions opt;
  opt.distance = 5;
  opt.rounds = 4;
  opt.data_error_probability = 0.05;
  opt.measurement_error_probability = 0.02;
  Circuit c = repetition_code_memory(opt);
  // Annotate detectors: ancilla outcomes between consecutive rounds,
  // first round alone (|0..0> is a Z-check eigenstate).
  const std::size_t a = opt.distance - 1;  // ancillas per round
  Circuit annotated = c;
  // Rebuild with annotations appended at the end (lookbacks reach back
  // over the whole record).
  const std::size_t total = c.num_measurements();  // rounds*a + distance
  const auto rec = [&](std::size_t absolute) {
    return make_rec_target(static_cast<std::uint32_t>(total - absolute));
  };
  for (std::size_t k = 0; k < a; ++k) {
    annotated.append(GateType::DETECTOR, {rec(k)});
  }
  for (std::size_t round = 1; round < opt.rounds; ++round) {
    for (std::size_t k = 0; k < a; ++k) {
      annotated.append(GateType::DETECTOR,
                       {rec(round * a + k), rec((round - 1) * a + k)});
    }
  }
  std::vector<std::uint32_t> logical;
  logical.push_back(rec(opt.rounds * a));  // first data qubit
  annotated.append(GateType::OBSERVABLE_INCLUDE, logical, 0.0);

  const CompiledSampler sym = CompiledSampler::compile(annotated);
  FrameSimulator frame(annotated, 7);
  constexpr std::size_t kShots = 60000;
  const auto se = sym.sample_detection_events(kShots, 8);
  const auto fe = frame.sample_detection_events(kShots, 9);
  ASSERT_EQ(se.detectors.rows(), fe.detectors.rows());
  for (std::size_t d = 0; d < se.detectors.rows(); ++d) {
    const double pa = row_mean(se.detectors, d);
    const double pb = row_mean(fe.detectors, d);
    const double exact = sym.detector_probability(d);
    const double sigma = std::sqrt(std::max(exact * (1 - exact), 1e-6) /
                                   kShots);
    ASSERT_NEAR(pa, exact, 5 * sigma + 2e-3) << "detector " << d;
    ASSERT_NEAR(pa, pb, 10 * sigma + 3e-3) << "detector " << d;
  }
  EXPECT_NEAR(row_mean(se.observables, 0), row_mean(fe.observables, 0),
              0.01);
}

TEST(Detectors, NoiselessRepetitionDetectorsSilent) {
  RepetitionCodeOptions opt;
  opt.distance = 3;
  opt.rounds = 2;
  Circuit c = repetition_code_memory(opt);
  const std::size_t total = c.num_measurements();
  const auto rec = [&](std::size_t absolute) {
    return make_rec_target(static_cast<std::uint32_t>(total - absolute));
  };
  for (std::size_t k = 0; k < 2 * 2; ++k) {  // every syndrome outcome
    c.append(GateType::DETECTOR, {rec(k)});
  }
  const CompiledSampler sampler = CompiledSampler::compile(c);
  for (std::size_t d = 0; d < sampler.num_detectors(); ++d) {
    EXPECT_TRUE(sampler.detector_expressions()[d].symbols.empty()) << d;
  }
}

}  // namespace
}  // namespace symphase
