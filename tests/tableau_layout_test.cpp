#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "symbolic/symphase_compiler.hpp"
#include "tableau/blocked_tableau.hpp"
#include "tableau/col_major_tableau.hpp"
#include "tableau/row_major_tableau.hpp"
#include "tableau/stabilizer_simulator.hpp"

namespace symphase {
namespace {

/// Full logical snapshot of a tableau, layout-independent.
struct Snapshot {
  std::vector<bool> bits;  // rows x (2n xz + phase_used), row-major

  bool operator==(const Snapshot&) const = default;
};

template <typename Layout>
Snapshot snapshot(Layout& t) {
  // Reads work in either mode via the bit accessors.
  Snapshot s;
  const std::size_t n = t.num_qubits();
  const std::size_t rows = 2 * n + 1;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t q = 0; q < n; ++q) {
      s.bits.push_back(t.x_bit(r, q));
    }
    for (std::size_t q = 0; q < n; ++q) {
      s.bits.push_back(t.z_bit(r, q));
    }
    for (std::size_t c = 0; c < t.phase_used(); ++c) {
      s.bits.push_back(t.row_phase_bit(r, c));
    }
  }
  return s;
}

template <typename Layout>
class TableauLayoutTest : public ::testing::Test {};

using Layouts =
    ::testing::Types<RowMajorTableau, ColMajorTableau, BlockedTableau>;
TYPED_TEST_SUITE(TableauLayoutTest, Layouts);

TYPED_TEST(TableauLayoutTest, IdentityInitialization) {
  TypeParam t(5, 3);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t q = 0; q < 5; ++q) {
      EXPECT_EQ(t.x_bit(t.shape().destab_row(i), q), i == q);
      EXPECT_FALSE(t.z_bit(t.shape().destab_row(i), q));
      EXPECT_EQ(t.z_bit(t.shape().stab_row(i), q), i == q);
      EXPECT_FALSE(t.x_bit(t.shape().stab_row(i), q));
    }
    EXPECT_FALSE(t.row_phase_bit(t.shape().destab_row(i), 0));
    EXPECT_FALSE(t.row_phase_bit(t.shape().stab_row(i), 0));
  }
}

TYPED_TEST(TableauLayoutTest, ModeSwitchPreservesContent) {
  TypeParam t(67, 5);  // crosses one 64-bit word boundary
  t.prepare_column_mode();
  t.gate_h(0);
  t.gate_cnot(0, 66);
  t.gate_s(33);
  const Snapshot before = snapshot(t);
  t.prepare_row_mode();
  EXPECT_EQ(snapshot(t), before);
  t.prepare_column_mode();
  EXPECT_EQ(snapshot(t), before);
  // Idempotent switches.
  t.prepare_column_mode();
  EXPECT_EQ(snapshot(t), before);
}

TYPED_TEST(TableauLayoutTest, HGateSwapsXAndZ) {
  TypeParam t(3, 1);
  t.prepare_column_mode();
  t.gate_h(1);
  // Destabilizer 1 was X_1 -> becomes Z_1; stabilizer 1 was Z_1 -> X_1.
  EXPECT_TRUE(t.z_bit(t.shape().destab_row(1), 1));
  EXPECT_FALSE(t.x_bit(t.shape().destab_row(1), 1));
  EXPECT_TRUE(t.x_bit(t.shape().stab_row(1), 1));
  EXPECT_FALSE(t.z_bit(t.shape().stab_row(1), 1));
  // Other qubits untouched.
  EXPECT_TRUE(t.x_bit(t.shape().destab_row(0), 0));
  EXPECT_TRUE(t.z_bit(t.shape().stab_row(2), 2));
}

TYPED_TEST(TableauLayoutTest, SOnYGivesPhaseFlip) {
  // S: Y -> -X. Build Y on stabilizer row via H then S (Z -> X -> Y).
  TypeParam t(1, 1);
  t.prepare_column_mode();
  t.gate_h(0);  // stab: X
  t.gate_s(0);  // stab: Y
  t.gate_s(0);  // stab: S Y S† = -X
  EXPECT_TRUE(t.x_bit(t.shape().stab_row(0), 0));
  EXPECT_FALSE(t.z_bit(t.shape().stab_row(0), 0));
  EXPECT_TRUE(t.row_phase_bit(t.shape().stab_row(0), 0));
  // Two more S return to +X... S(-X) = -Y, S(-Y) = X.
  t.gate_s(0);
  t.gate_s(0);
  EXPECT_FALSE(t.row_phase_bit(t.shape().stab_row(0), 0));
}

TYPED_TEST(TableauLayoutTest, PauliGatesFlipPhases) {
  TypeParam t(2, 1);
  t.prepare_column_mode();
  // Stabilizer 0 is Z_0: X on qubit 0 anticommutes -> phase flip.
  t.gate_x(0);
  EXPECT_TRUE(t.row_phase_bit(t.shape().stab_row(0), 0));
  EXPECT_FALSE(t.row_phase_bit(t.shape().stab_row(1), 0));
  // Destabilizer 0 is X_0: Z on qubit 0 flips it.
  t.gate_z(0);
  EXPECT_TRUE(t.row_phase_bit(t.shape().destab_row(0), 0));
  // Y on qubit 1 flips both X_1 destab and Z_1 stab.
  t.gate_y(1);
  EXPECT_TRUE(t.row_phase_bit(t.shape().destab_row(1), 0));
  EXPECT_TRUE(t.row_phase_bit(t.shape().stab_row(1), 0));
}

TYPED_TEST(TableauLayoutTest, CnotPropagatesSupports) {
  TypeParam t(2, 1);
  t.prepare_column_mode();
  t.gate_cnot(0, 1);
  // X_0 -> X_0 X_1 (destab 0), Z_1 -> Z_0 Z_1 (stab 1).
  EXPECT_TRUE(t.x_bit(t.shape().destab_row(0), 0));
  EXPECT_TRUE(t.x_bit(t.shape().destab_row(0), 1));
  EXPECT_TRUE(t.z_bit(t.shape().stab_row(1), 0));
  EXPECT_TRUE(t.z_bit(t.shape().stab_row(1), 1));
  // X_1 and Z_0 unchanged.
  EXPECT_FALSE(t.x_bit(t.shape().destab_row(1), 0));
  EXPECT_FALSE(t.z_bit(t.shape().stab_row(0), 1));
}

TYPED_TEST(TableauLayoutTest, PhaseColumnAllocationAndFaults) {
  TypeParam t(4, 8);
  EXPECT_EQ(t.phase_used(), 1u);
  const std::size_t s1 = t.allocate_phase_column();
  const std::size_t s2 = t.allocate_phase_column();
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 2u);
  t.prepare_column_mode();
  // X^{s1} on qubit 2: stabilizer Z_2 gets column s1 flipped.
  const std::uint32_t cols1[1] = {static_cast<std::uint32_t>(s1)};
  t.phase_xor_cols_where_z(2, cols1);
  EXPECT_TRUE(t.row_phase_bit(t.shape().stab_row(2), s1));
  EXPECT_FALSE(t.row_phase_bit(t.shape().stab_row(2), s2));
  EXPECT_FALSE(t.row_phase_bit(t.shape().stab_row(1), s1));
  // Z^{s2} on qubit 0: destabilizer X_0 gets column s2 flipped.
  const std::uint32_t cols2[1] = {static_cast<std::uint32_t>(s2)};
  t.phase_xor_cols_where_x(0, cols2);
  EXPECT_TRUE(t.row_phase_bit(t.shape().destab_row(0), s2));
  // Applying the same fault twice cancels.
  t.phase_xor_cols_where_z(2, cols1);
  EXPECT_FALSE(t.row_phase_bit(t.shape().stab_row(2), s1));
}

TYPED_TEST(TableauLayoutTest, PhaseCapacityExhaustionThrows) {
  TypeParam t(2, 2);
  t.allocate_phase_column();
  EXPECT_THROW(t.allocate_phase_column(), std::invalid_argument);
}

TYPED_TEST(TableauLayoutTest, RowMultPhaseVectorXors) {
  TypeParam t(3, 6);
  const auto s1 = static_cast<std::uint32_t>(t.allocate_phase_column());
  const auto s2 = static_cast<std::uint32_t>(t.allocate_phase_column());
  t.prepare_row_mode();
  const std::size_t r0 = t.shape().stab_row(0);  // Z_0
  const std::size_t r1 = t.shape().stab_row(1);  // Z_1
  t.row_phase_xor_bit(r0, s1);
  t.row_phase_xor_bit(r1, s1);
  t.row_phase_xor_bit(r1, s2);
  t.row_mult(r0, r1);  // Z_0 * Z_1 -> Z_0 Z_1, phases XOR
  EXPECT_TRUE(t.z_bit(r0, 0));
  EXPECT_TRUE(t.z_bit(r0, 1));
  EXPECT_FALSE(t.row_phase_bit(r0, s1));  // s1 ^ s1 = 0
  EXPECT_TRUE(t.row_phase_bit(r0, s2));
  // Source row unchanged.
  EXPECT_TRUE(t.row_phase_bit(r1, s1));
  EXPECT_TRUE(t.row_phase_bit(r1, s2));
}

TYPED_TEST(TableauLayoutTest, RowMultTracksImaginaryUnits) {
  // Build stabilizer rows X (via H) and Y (via H;S) on two qubits, then
  // multiply: Y_1 appears in row via gates; verify X*Y-type product sign.
  TypeParam t(2, 1);
  t.prepare_column_mode();
  t.gate_h(0);  // stab0: X_0
  t.gate_h(1);
  t.gate_s(1);  // stab1: Y_1
  t.prepare_row_mode();
  const std::size_t r0 = t.shape().stab_row(0);
  const std::size_t r1 = t.shape().stab_row(1);
  // X_0 * Y_1 commuting, no phase change expected (disjoint supports).
  t.row_mult(r0, r1);
  EXPECT_TRUE(t.x_bit(r0, 0));
  EXPECT_TRUE(t.x_bit(r0, 1));
  EXPECT_TRUE(t.z_bit(r0, 1));
  EXPECT_FALSE(t.row_phase_bit(r0, 0));
}

TYPED_TEST(TableauLayoutTest, RowCopyAndSetPlusZ) {
  TypeParam t(4, 4);
  const auto s1 = static_cast<std::uint32_t>(t.allocate_phase_column());
  t.prepare_row_mode();
  const std::size_t src = t.shape().stab_row(2);
  const std::size_t dst = t.shape().destab_row(0);
  t.row_phase_xor_bit(src, s1);
  t.row_copy(dst, src);
  EXPECT_TRUE(t.z_bit(dst, 2));
  EXPECT_FALSE(t.x_bit(dst, 0));
  EXPECT_TRUE(t.row_phase_bit(dst, s1));
  t.row_set_plus_z(dst, 3);
  EXPECT_TRUE(t.z_bit(dst, 3));
  EXPECT_FALSE(t.z_bit(dst, 2));
  EXPECT_FALSE(t.row_phase_bit(dst, s1));
}

TYPED_TEST(TableauLayoutTest, RowPhaseReadMatchesBits) {
  TypeParam t(2, 200);
  std::vector<std::uint32_t> set_cols = {1, 63, 64, 65, 130, 199};
  for (std::uint32_t c = 1; c < 200; ++c) {
    t.allocate_phase_column();
  }
  t.prepare_row_mode();
  const std::size_t row = t.shape().stab_row(1);
  for (const std::uint32_t c : set_cols) {
    t.row_phase_xor_bit(row, c);
  }
  std::vector<Word> buffer(t.phase_words_used());
  t.row_phase_read(row, buffer.data());
  for (std::uint32_t c = 0; c < 200; ++c) {
    const bool expected =
        std::find(set_cols.begin(), set_cols.end(), c) != set_cols.end();
    EXPECT_EQ(get_bit(buffer.data(), c), expected) << c;
  }
}

TYPED_TEST(TableauLayoutTest, LazyPhaseGrowthAcrossModeSwitches) {
  TypeParam t(3, 2000);
  t.prepare_column_mode();
  t.gate_h(0);
  // Allocate a first batch, fault, then switch modes and grow further.
  const auto s1 = static_cast<std::uint32_t>(t.allocate_phase_column());
  const std::uint32_t cols1[1] = {s1};
  t.phase_xor_cols_where_z(1, cols1);
  t.prepare_row_mode();
  for (int k = 0; k < 1500; ++k) {
    t.allocate_phase_column();
  }
  const std::size_t row = t.shape().stab_row(1);
  EXPECT_TRUE(t.row_phase_bit(row, s1));
  t.row_phase_xor_bit(row, 1400);
  t.prepare_column_mode();
  t.prepare_row_mode();
  EXPECT_TRUE(t.row_phase_bit(row, 1400));
  EXPECT_TRUE(t.row_phase_bit(row, s1));
  EXPECT_FALSE(t.row_phase_bit(row, 1399));
}

// Cross-layout equivalence under a long random operation sequence.
TEST(TableauLayoutEquivalence, RandomOperationFuzz) {
  constexpr std::size_t kQubits = 37;
  constexpr int kSteps = 400;
  RowMajorTableau a(kQubits, 64);
  ColMajorTableau b(kQubits, 64);
  BlockedTableau c(kQubits, 64);
  Rng rng(2024);
  std::size_t allocated = 1;

  const auto apply_all = [&](auto&& fn) {
    fn(a);
    fn(b);
    fn(c);
  };

  for (int step = 0; step < kSteps; ++step) {
    const std::uint64_t op = rng.next_below(12);
    const auto q1 = static_cast<std::size_t>(rng.next_below(kQubits));
    auto q2 = static_cast<std::size_t>(rng.next_below(kQubits - 1));
    if (q2 >= q1) {
      ++q2;
    }
    switch (op) {
      case 0:
        apply_all([&](auto& t) {
          t.prepare_column_mode();
          t.gate_h(q1);
        });
        break;
      case 1:
        apply_all([&](auto& t) {
          t.prepare_column_mode();
          t.gate_s(q1);
        });
        break;
      case 2:
        apply_all([&](auto& t) {
          t.prepare_column_mode();
          t.gate_cnot(q1, q2);
        });
        break;
      case 3:
        apply_all([&](auto& t) {
          t.prepare_column_mode();
          t.gate_cz(q1, q2);
        });
        break;
      case 4:
        apply_all([&](auto& t) {
          t.prepare_column_mode();
          t.gate_swap(q1, q2);
        });
        break;
      case 5:
        apply_all([&](auto& t) {
          t.prepare_column_mode();
          t.gate_sqrt_x(q1);
        });
        break;
      case 6:
        apply_all([&](auto& t) {
          t.prepare_column_mode();
          t.gate_x(q1);
        });
        break;
      case 7: {
        if (allocated < 63) {
          apply_all([&](auto& t) { t.allocate_phase_column(); });
          ++allocated;
        }
        const auto col = static_cast<std::uint32_t>(
            rng.next_below(allocated));
        const std::uint32_t cols[1] = {col};
        if (rng.next_below(2) == 0) {
          apply_all([&](auto& t) {
            t.prepare_column_mode();
            t.phase_xor_cols_where_z(q1, cols);
          });
        } else {
          apply_all([&](auto& t) {
            t.prepare_column_mode();
            t.phase_xor_cols_where_x(q1, cols);
          });
        }
        break;
      }
      case 8: {
        // Row multiplication of two commuting stabilizer rows.
        const std::size_t r1 = kQubits + q1;
        const std::size_t r2 = kQubits + q2;
        apply_all([&](auto& t) {
          t.prepare_row_mode();
          t.row_mult(r1, r2);
        });
        break;
      }
      case 9: {
        apply_all([&](auto& t) {
          t.prepare_row_mode();
          t.row_copy(q1, kQubits + q2);
        });
        break;
      }
      case 10:
        apply_all([&](auto& t) { t.prepare_row_mode(); });
        break;
      default:
        apply_all([&](auto& t) { t.prepare_column_mode(); });
        break;
    }
    if (step % 50 == 0 || step == kSteps - 1) {
      const Snapshot sa = snapshot(a);
      ASSERT_EQ(sa, snapshot(b)) << "col_major diverged at step " << step;
      ASSERT_EQ(sa, snapshot(c)) << "blocked diverged at step " << step;
    }
  }
}

}  // namespace
}  // namespace symphase

namespace symphase {
namespace {

// Tile-boundary sizes: identical measurement records across layouts when
// driven by the same seed (same branch structure -> same RNG draws).
class LayoutBoundaryTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LayoutBoundaryTest, RecordsAgreeAcrossLayouts) {
  const std::size_t n = GetParam();
  Circuit c(n);
  // GHZ chain + scattered single-qubit gates + measurements around the
  // word/tile boundaries.
  c.append1(GateType::H, 0);
  for (std::uint32_t q = 0; q + 1 < n; ++q) {
    c.append2(GateType::CNOT, q, q + 1);
  }
  c.append1(GateType::S, static_cast<std::uint32_t>(n - 1));
  c.append1(GateType::H, static_cast<std::uint32_t>(n / 2));
  std::vector<std::uint32_t> measured = {
      0, static_cast<std::uint32_t>(n / 2),
      static_cast<std::uint32_t>(n - 1)};
  c.append(GateType::M, measured);
  c.append1(GateType::H, 1);
  c.append1(GateType::M, 1);

  StabilizerSimulator<RowMajorTableau> a(n, 99);
  StabilizerSimulator<ColMajorTableau> b(n, 99);
  StabilizerSimulator<BlockedTableau> d(n, 99);
  a.run_circuit(c);
  b.run_circuit(c);
  d.run_circuit(c);
  EXPECT_EQ(a.record(), b.record());
  EXPECT_EQ(a.record(), d.record());
  for (std::size_t i = 0; i < n; i += n / 7 + 1) {
    EXPECT_EQ(a.stabilizer(i).to_string(), d.stabilizer(i).to_string());
    EXPECT_EQ(b.stabilizer(i).to_string(), d.stabilizer(i).to_string());
  }
}

INSTANTIATE_TEST_SUITE_P(BoundarySizes, LayoutBoundaryTest,
                         ::testing::Values(63, 64, 65, 255, 256, 257, 511,
                                           512, 513));

TEST(LayoutBoundary, SymbolicExpressionsAgreeAtTileBoundary) {
  // 513 qubits: rows span two 512-tile rows; the compiler must produce
  // identical expressions in every layout.
  Circuit c(513);
  c.append1(GateType::H, 0);
  for (std::uint32_t q = 0; q + 1 < 513; ++q) {
    c.append2(GateType::CNOT, q, q + 1);
  }
  c.append(GateType::X_ERROR, {512}, 0.01);
  c.append(GateType::M, {0, 256, 511, 512});
  SymPhaseCompiler<RowMajorTableau> row(c);
  SymPhaseCompiler<ColMajorTableau> col(c);
  SymPhaseCompiler<BlockedTableau> blocked(c);
  EXPECT_EQ(row.expressions(), col.expressions());
  EXPECT_EQ(row.expressions(), blocked.expressions());
}

}  // namespace
}  // namespace symphase
