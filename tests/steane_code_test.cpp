// Tests for the Steane [[7,1,3]] memory circuit.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "core/symphase.hpp"

namespace symphase {
namespace {

double row_mean(const BitMatrix& m, std::size_t row) {
  std::size_t ones = 0;
  for (std::size_t w = 0; w < words_for_bits(m.cols()); ++w) {
    ones += static_cast<std::size_t>(popcount(m.row(row)[w]));
  }
  return static_cast<double>(ones) / static_cast<double>(m.cols());
}

TEST(SteaneCode, NoiselessDetectorsSilent) {
  SteaneCodeOptions opt;
  opt.rounds = 3;
  const Circuit c = steane_code_memory(opt);
  EXPECT_EQ(c.num_qubits(), 13u);
  const CompiledSampler sampler = CompiledSampler::compile(c);
  // 3 first-round + 6*(rounds-1) comparisons + 3 final parities.
  EXPECT_EQ(sampler.num_detectors(), 3u + 6 * (opt.rounds - 1) + 3);
  for (std::size_t d = 0; d < sampler.num_detectors(); ++d) {
    ASSERT_TRUE(sampler.detector_expressions()[d].symbols.empty()) << d;
  }
  EXPECT_TRUE(sampler.observable_expressions()[0].symbols.empty());
}

TEST(SteaneCode, SingleDataErrorFiresMatchingSyndrome) {
  // X on data qubit 6 sits in all three Hamming checks.
  SteaneCodeOptions opt;
  opt.rounds = 1;
  Circuit c(13);
  c.append1(GateType::X, 6);
  c.append_circuit(steane_code_memory(opt));
  const CompiledSampler sampler = CompiledSampler::compile(c);
  const auto events = sampler.sample_detection_events(32, 1);
  // First-round Z detectors: all three fire; final parities stay silent
  // (the flip is consistent between data readout and last syndrome).
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(row_mean(events.detectors, d), 1.0) << d;
  }
  for (std::size_t d = 3; d < sampler.num_detectors(); ++d) {
    EXPECT_DOUBLE_EQ(row_mean(events.detectors, d), 0.0) << d;
  }
  // Qubit 6 is outside the {0,1,2} logical representative, and X_6 =
  // logical ^ stabilizers? Its readout contribution: observable tracks
  // qubits 0..2 only -> unaffected.
  EXPECT_DOUBLE_EQ(row_mean(events.observables, 0), 0.0);
}

TEST(SteaneCode, DistinctSyndromesForDistinctErrors) {
  // Every single-qubit X error produces a distinct, nonzero first-round
  // syndrome (that is what makes the code distance 3).
  std::set<std::vector<double>> syndromes;
  for (std::uint32_t q = 0; q < 7; ++q) {
    SteaneCodeOptions opt;
    opt.rounds = 1;
    Circuit c(13);
    c.append1(GateType::X, q);
    c.append_circuit(steane_code_memory(opt));
    const CompiledSampler sampler = CompiledSampler::compile(c);
    const auto events = sampler.sample_detection_events(8, q + 1);
    std::vector<double> syndrome;
    for (std::size_t d = 0; d < 3; ++d) {
      syndrome.push_back(row_mean(events.detectors, d));
    }
    EXPECT_NE(syndrome, (std::vector<double>{0, 0, 0})) << "qubit " << q;
    syndromes.insert(syndrome);
  }
  EXPECT_EQ(syndromes.size(), 7u);
}

TEST(SteaneCode, NoisyDistributionsMatchFrame) {
  SteaneCodeOptions opt;
  opt.rounds = 2;
  opt.data_error_probability = 0.03;
  opt.measurement_error_probability = 0.01;
  const Circuit c = steane_code_memory(opt);
  const CompiledSampler sym = CompiledSampler::compile(c);
  FrameSimulator frame(c, 3);
  constexpr std::size_t kShots = 50000;
  const auto se = sym.sample_detection_events(kShots, 4);
  const auto fe = frame.sample_detection_events(kShots, 5);
  for (std::size_t d = 0; d < sym.num_detectors(); ++d) {
    const double exact = sym.detector_probability(d);
    const double sigma =
        std::sqrt(std::max(exact * (1 - exact), 1e-6) / kShots);
    ASSERT_NEAR(row_mean(se.detectors, d), exact, 5 * sigma + 2e-3) << d;
    ASSERT_NEAR(row_mean(se.detectors, d), row_mean(fe.detectors, d),
                10 * sigma + 3e-3)
        << d;
  }
}

TEST(SteaneCode, ErrorModelHasHammingStructure) {
  SteaneCodeOptions opt;
  opt.rounds = 1;
  opt.data_error_probability = 0.01;
  const Circuit c = steane_code_memory(opt);
  const DetectorErrorModel dem =
      CompiledSampler::compile(c).error_model().canonicalized();
  // 7 data-error mechanisms with distinct syndromes (some also flip L0).
  ASSERT_EQ(dem.mechanisms.size(), 7u);
  std::set<std::vector<std::uint32_t>> symptom_sets;
  for (const auto& mech : dem.mechanisms) {
    EXPECT_NEAR(mech.probability, 0.01, 1e-12);
    symptom_sets.insert(mech.detectors);
  }
  EXPECT_EQ(symptom_sets.size(), 7u);
}

}  // namespace
}  // namespace symphase
