#include "statevector/state_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace symphase {
namespace {

constexpr double kTol = 1e-12;

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.amplitudes().size(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - 1.0), 0.0, kTol);
  EXPECT_NEAR(sv.prob_zero(0), 1.0, kTol);
}

TEST(StateVector, XFlipsBit) {
  StateVector sv(2);
  sv.apply_gate(GateType::X, 0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - 1.0), 0.0, kTol);
  EXPECT_NEAR(sv.prob_zero(0), 0.0, kTol);
  EXPECT_NEAR(sv.prob_zero(1), 1.0, kTol);
}

TEST(StateVector, HadamardSuperposition) {
  StateVector sv(1);
  sv.apply_gate(GateType::H, 0);
  EXPECT_NEAR(sv.prob_zero(0), 0.5, kTol);
  sv.apply_gate(GateType::H, 0);
  EXPECT_NEAR(sv.prob_zero(0), 1.0, kTol);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  sv.apply_gate(GateType::H, 0);
  sv.apply_gate(GateType::CNOT, 0, 1);
  const auto& a = sv.amplitudes();
  EXPECT_NEAR(std::abs(a[0]), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(a[3]), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(a[1]), 0.0, kTol);
  EXPECT_NEAR(std::abs(a[2]), 0.0, kTol);
  EXPECT_TRUE(sv.is_stabilized_by(PauliString::from_string("XX")));
  EXPECT_TRUE(sv.is_stabilized_by(PauliString::from_string("ZZ")));
  EXPECT_FALSE(sv.is_stabilized_by(PauliString::from_string("-XX")));
}

TEST(StateVector, GateAlgebraIdentities) {
  // S^2 = Z, SQRT_X^2 = X, H^2 = I, S S_DAG = I, on random-ish states.
  Rng rng(3);
  StateVector base(3);
  std::vector<bool> rec;
  base.run_circuit(
      [] {
        Circuit c(3);
        c.append1(GateType::H, 0);
        c.append2(GateType::CNOT, 0, 1);
        c.append1(GateType::S, 1);
        c.append1(GateType::H, 2);
        return c;
      }(),
      rng, rec);

  StateVector a = base;
  a.apply_gate(GateType::S, 0);
  a.apply_gate(GateType::S, 0);
  StateVector b = base;
  b.apply_gate(GateType::Z, 0);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-9);

  a = base;
  a.apply_gate(GateType::SQRT_X, 1);
  a.apply_gate(GateType::SQRT_X, 1);
  b = base;
  b.apply_gate(GateType::X, 1);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-9);

  a = base;
  a.apply_gate(GateType::S, 2);
  a.apply_gate(GateType::S_DAG, 2);
  EXPECT_NEAR(a.fidelity_with(base), 1.0, 1e-9);

  a = base;
  a.apply_gate(GateType::SQRT_X, 0);
  a.apply_gate(GateType::SQRT_X_DAG, 0);
  EXPECT_NEAR(a.fidelity_with(base), 1.0, 1e-9);

  a = base;
  a.apply_gate(GateType::H_YZ, 1);
  a.apply_gate(GateType::H_YZ, 1);
  EXPECT_NEAR(a.fidelity_with(base), 1.0, 1e-9);
}

TEST(StateVector, ConjugationRules) {
  // Verify U P U† action on stabilizers of simple states: H|0> stabilized
  // by X; S H|0> stabilized by Y.
  StateVector sv(1);
  sv.apply_gate(GateType::H, 0);
  EXPECT_TRUE(sv.is_stabilized_by(PauliString::from_string("X")));
  sv.apply_gate(GateType::S, 0);
  EXPECT_TRUE(sv.is_stabilized_by(PauliString::from_string("Y")));
  sv.apply_gate(GateType::S, 0);
  EXPECT_TRUE(sv.is_stabilized_by(PauliString::from_string("-X")));
}

TEST(StateVector, CzSymmetric) {
  StateVector a(2);
  a.apply_gate(GateType::H, 0);
  a.apply_gate(GateType::H, 1);
  StateVector b = a;
  a.apply_gate(GateType::CZ, 0, 1);
  b.apply_gate(GateType::CZ, 1, 0);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-9);
}

TEST(StateVector, SwapViaCnots) {
  StateVector a(2);
  a.apply_gate(GateType::H, 0);
  a.apply_gate(GateType::S, 0);
  StateVector b = a;
  a.apply_gate(GateType::SWAP, 0, 1);
  b.apply_gate(GateType::CNOT, 0, 1);
  b.apply_gate(GateType::CNOT, 1, 0);
  b.apply_gate(GateType::CNOT, 0, 1);
  EXPECT_NEAR(a.fidelity_with(b), 1.0, 1e-9);
}

TEST(StateVector, MeasureCollapses) {
  Rng rng(5);
  StateVector sv(2);
  sv.apply_gate(GateType::H, 0);
  sv.apply_gate(GateType::CNOT, 0, 1);
  const bool m1 = sv.measure(0, rng);
  // After measuring one half of a Bell pair, the other is determined.
  EXPECT_NEAR(sv.prob_zero(1), m1 ? 0.0 : 1.0, kTol);
  const bool m2 = sv.measure(1, rng);
  EXPECT_EQ(m1, m2);
}

TEST(StateVector, PostselectRenormalizes) {
  StateVector sv(1);
  sv.apply_gate(GateType::H, 0);
  const double p = sv.postselect(0, true);
  EXPECT_NEAR(p, 0.5, kTol);
  EXPECT_NEAR(sv.prob_zero(0), 0.0, kTol);
  double norm = 0;
  for (const auto& amp : sv.amplitudes()) {
    norm += std::norm(amp);
  }
  EXPECT_NEAR(norm, 1.0, kTol);
}

TEST(StateVector, PostselectImpossibleThrows) {
  StateVector sv(1);
  EXPECT_THROW(sv.postselect(0, true), std::invalid_argument);
}

TEST(StateVector, ResetForcesZero) {
  Rng rng(6);
  StateVector sv(1);
  sv.apply_gate(GateType::X, 0);
  sv.reset(0, rng);
  EXPECT_NEAR(sv.prob_zero(0), 1.0, kTol);
}

TEST(StateVector, ApplyPauliPhase) {
  StateVector sv(1);
  StateVector expected(1);
  // Y|0> = i|1>.
  sv.apply_pauli(PauliString::from_string("Y"));
  expected.apply_gate(GateType::X, 0);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1] - std::complex<double>(0, 1)), 0.0,
              kTol);
  EXPECT_NEAR(sv.fidelity_with(expected), 1.0, kTol);
}

TEST(StateVector, RunCircuitRecordsMeasurements) {
  Rng rng(7);
  Circuit c(2);
  c.append1(GateType::X, 0);
  c.append(GateType::M, {0, 1});
  StateVector sv(2);
  std::vector<bool> record;
  sv.run_circuit(c, rng, record);
  ASSERT_EQ(record.size(), 2u);
  EXPECT_TRUE(record[0]);
  EXPECT_FALSE(record[1]);
}

TEST(StateVector, MrResets) {
  Rng rng(8);
  Circuit c(1);
  c.append1(GateType::X, 0);
  c.append1(GateType::MR, 0);
  c.append1(GateType::M, 0);
  StateVector sv(1);
  std::vector<bool> record;
  sv.run_circuit(c, rng, record);
  ASSERT_EQ(record.size(), 2u);
  EXPECT_TRUE(record[0]);
  EXPECT_FALSE(record[1]);
}

}  // namespace
}  // namespace symphase
